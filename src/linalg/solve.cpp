#include "linalg/solve.hpp"

#include <cmath>

#include "util/check.hpp"

namespace npat::linalg {

std::optional<Vector> cholesky_solve(const Matrix& a, const Vector& b) {
  NPAT_CHECK_MSG(a.rows() == a.cols(), "cholesky needs a square matrix");
  NPAT_CHECK_MSG(a.rows() == b.size(), "dimension mismatch");
  const usize n = a.rows();
  Matrix l(n, n);

  for (usize j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (usize k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (usize i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (usize k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }

  // Forward substitution: L·y = b.
  Vector y(n);
  for (usize i = 0; i < n; ++i) {
    double v = b[i];
    for (usize k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  // Back substitution: Lᵀ·x = y.
  Vector x(n);
  for (usize ii = n; ii-- > 0;) {
    double v = y[ii];
    for (usize k = ii + 1; k < n; ++k) v -= l(k, ii) * x[k];
    x[ii] = v / l(ii, ii);
  }
  return x;
}

std::optional<QrDecomposition> qr_decompose(const Matrix& a) {
  const usize m = a.rows();
  const usize n = a.cols();
  NPAT_CHECK_MSG(m >= n, "QR requires rows >= cols");

  // Work on a copy; accumulate Householder reflectors into R in place and
  // apply them to an identity block to form thin Q.
  Matrix r_full = a;
  Matrix q_full = Matrix::identity(m);

  for (usize k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double norm_x = 0.0;
    for (usize i = k; i < m; ++i) norm_x += r_full(i, k) * r_full(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x < 1e-300) return std::nullopt;  // rank deficient

    const double alpha = r_full(k, k) >= 0.0 ? -norm_x : norm_x;
    Vector v(m, 0.0);
    for (usize i = k; i < m; ++i) v[i] = r_full(i, k);
    v[k] -= alpha;
    double v_norm_sq = 0.0;
    for (usize i = k; i < m; ++i) v_norm_sq += v[i] * v[i];
    if (v_norm_sq < 1e-300) continue;  // already triangular in this column

    // Apply H = I − 2·v·vᵀ/(vᵀv) to R (columns k..n−1) and to Q (all cols).
    for (usize j = k; j < n; ++j) {
      double s = 0.0;
      for (usize i = k; i < m; ++i) s += v[i] * r_full(i, j);
      s = 2.0 * s / v_norm_sq;
      for (usize i = k; i < m; ++i) r_full(i, j) -= s * v[i];
    }
    for (usize j = 0; j < m; ++j) {
      double s = 0.0;
      for (usize i = k; i < m; ++i) s += v[i] * q_full(i, j);
      s = 2.0 * s / v_norm_sq;
      for (usize i = k; i < m; ++i) q_full(i, j) -= s * v[i];
    }
  }

  // q_full now holds Hₙ…H₁ = Qᵀ. Extract thin Q (first n rows of Qᵀ,
  // transposed) and the n×n upper triangle of R.
  QrDecomposition out;
  out.q = Matrix(m, n);
  for (usize i = 0; i < m; ++i) {
    for (usize j = 0; j < n; ++j) out.q(i, j) = q_full(j, i);
  }
  out.r = Matrix(n, n);
  for (usize i = 0; i < n; ++i) {
    for (usize j = i; j < n; ++j) out.r(i, j) = r_full(i, j);
  }
  // Rank check on the diagonal of R relative to its largest entry.
  double max_diag = 0.0;
  for (usize i = 0; i < n; ++i) max_diag = std::max(max_diag, std::fabs(out.r(i, i)));
  for (usize i = 0; i < n; ++i) {
    if (std::fabs(out.r(i, i)) < 1e-12 * std::max(1.0, max_diag)) return std::nullopt;
  }
  return out;
}

std::optional<Vector> qr_least_squares(const Matrix& a, const Vector& b) {
  NPAT_CHECK_MSG(a.rows() == b.size(), "dimension mismatch");
  auto qr = qr_decompose(a);
  if (!qr) return std::nullopt;
  const usize n = a.cols();
  // x = R⁻¹ Qᵀ b.
  Vector qtb(n, 0.0);
  for (usize j = 0; j < n; ++j) {
    double s = 0.0;
    for (usize i = 0; i < a.rows(); ++i) s += qr->q(i, j) * b[i];
    qtb[j] = s;
  }
  Vector x(n);
  for (usize ii = n; ii-- > 0;) {
    double v = qtb[ii];
    for (usize k = ii + 1; k < n; ++k) v -= qr->r(ii, k) * x[k];
    x[ii] = v / qr->r(ii, ii);
  }
  return x;
}

std::optional<LeastSquaresResult> least_squares(const Matrix& a, const Vector& b) {
  NPAT_CHECK_MSG(a.rows() == b.size(), "dimension mismatch");
  NPAT_CHECK_MSG(a.rows() >= a.cols(), "least squares needs rows >= cols");

  LeastSquaresResult out;
  out.used_qr_fallback = false;

  const Matrix at = a.transposed();
  const Matrix ata = at * a;
  const Vector atb = at * b;
  if (auto beta = cholesky_solve(ata, atb)) {
    out.beta = std::move(*beta);
  } else if (auto beta_qr = qr_least_squares(a, b)) {
    out.beta = std::move(*beta_qr);
    out.used_qr_fallback = true;
  } else {
    return std::nullopt;
  }

  const Vector fitted = a * out.beta;
  double ss = 0.0;
  for (usize i = 0; i < b.size(); ++i) {
    const double r = b[i] - fitted[i];
    ss += r * r;
  }
  out.residual_ss = ss;
  return out;
}

}  // namespace npat::linalg
