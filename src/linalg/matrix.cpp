#include "linalg/matrix.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::linalg {

Matrix::Matrix(usize rows, usize cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    NPAT_CHECK_MSG(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(usize n) {
  Matrix m(n, n);
  for (usize i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_columns(const std::vector<Vector>& columns) {
  NPAT_CHECK_MSG(!columns.empty(), "from_columns needs at least one column");
  const usize n = columns.front().size();
  for (const auto& col : columns) NPAT_CHECK_MSG(col.size() == n, "column length mismatch");
  Matrix m(n, columns.size());
  for (usize c = 0; c < columns.size(); ++c) {
    for (usize r = 0; r < n; ++r) m(r, c) = columns[c][r];
  }
  return m;
}

double& Matrix::at(usize r, usize c) {
  NPAT_CHECK_MSG(r < rows_ && c < cols_, "Matrix::at out of bounds");
  return (*this)(r, c);
}

double Matrix::at(usize r, usize c) const {
  NPAT_CHECK_MSG(r < rows_ && c < cols_, "Matrix::at out of bounds");
  return (*this)(r, c);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (usize r = 0; r < rows_; ++r) {
    for (usize c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Vector Matrix::column(usize c) const {
  NPAT_CHECK(c < cols_);
  Vector out(rows_);
  for (usize r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Vector Matrix::row(usize r) const {
  NPAT_CHECK(r < rows_);
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  NPAT_CHECK_MSG(cols_ == rhs.rows_, "matmul shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (usize i = 0; i < rows_; ++i) {
    for (usize k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (usize j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& rhs) const {
  NPAT_CHECK_MSG(cols_ == rhs.size(), "matvec shape mismatch");
  Vector out(rows_, 0.0);
  for (usize i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (usize j = 0; j < cols_; ++j) acc += (*this)(i, j) * rhs[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  NPAT_CHECK_MSG(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix add shape mismatch");
  Matrix out = *this;
  for (usize i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  NPAT_CHECK_MSG(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix sub shape mismatch");
  Matrix out = *this;
  for (usize i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  NPAT_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double worst = 0.0;
  for (usize i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  for (usize r = 0; r < rows_; ++r) {
    out += "[ ";
    for (usize c = 0; c < cols_; ++c) {
      out += util::format("%.*g ", precision, (*this)(r, c));
    }
    out += "]\n";
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  NPAT_CHECK_MSG(a.size() == b.size(), "dot length mismatch");
  double acc = 0.0;
  for (usize i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

Vector axpy(double alpha, const Vector& x, const Vector& y) {
  NPAT_CHECK_MSG(x.size() == y.size(), "axpy length mismatch");
  Vector out(x.size());
  for (usize i = 0; i < x.size(); ++i) out[i] = alpha * x[i] + y[i];
  return out;
}

}  // namespace npat::linalg
