// Linear solvers: Cholesky for the SPD normal equations (the paper's
// β̂ = (XᵀX)⁻¹Xᵀy route) and Householder QR as the numerically robust
// alternative for ill-conditioned design matrices.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace npat::linalg {

/// Solves A·x = b for symmetric positive-definite A via Cholesky.
/// Returns std::nullopt if A is not (numerically) positive definite.
std::optional<Vector> cholesky_solve(const Matrix& a, const Vector& b);

/// Householder QR decomposition of an m×n matrix with m >= n.
struct QrDecomposition {
  Matrix q;  // m×n with orthonormal columns (thin Q)
  Matrix r;  // n×n upper triangular
};
std::optional<QrDecomposition> qr_decompose(const Matrix& a);

/// Least-squares solve min ||A·x − b||₂ via QR. Returns std::nullopt when A
/// is rank deficient.
std::optional<Vector> qr_least_squares(const Matrix& a, const Vector& b);

/// Least squares via the normal equations (faster, less robust); falls back
/// to QR automatically if Cholesky fails.
struct LeastSquaresResult {
  Vector beta;            // fitted coefficients
  double residual_ss;     // Σ (b − A·β)²
  bool used_qr_fallback;  // normal equations were unusable
};
std::optional<LeastSquaresResult> least_squares(const Matrix& a, const Vector& b);

}  // namespace npat::linalg
