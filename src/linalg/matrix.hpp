// Small dense linear algebra. The paper relies on Eigen 3 for the normal
// equations β̂ = (XᵀX)⁻¹Xᵀy; this module provides the (offline) equivalent:
// a row-major dense matrix with the handful of operations the statistics
// layer needs. Sizes are tiny (design matrices n×p with p ≤ 4), so clarity
// wins over blocking/vectorization tricks.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace npat::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(usize rows, usize cols, double fill = 0.0);
  /// Row-major initializer: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(usize n);
  /// Column-stacks the given columns (all must share the same length).
  static Matrix from_columns(const std::vector<Vector>& columns);

  usize rows() const noexcept { return rows_; }
  usize cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(usize r, usize c) noexcept { return data_[r * cols_ + c]; }
  double operator()(usize r, usize c) const noexcept { return data_[r * cols_ + c]; }

  /// Bounds-checked element access (throws CheckError).
  double& at(usize r, usize c);
  double at(usize r, usize c) const;

  Matrix transposed() const;
  Vector column(usize c) const;
  Vector row(usize r) const;

  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double scalar);

  /// Frobenius norm.
  double norm() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  double max_abs_diff(const Matrix& other) const;

  std::string to_string(int precision = 4) const;

 private:
  usize rows_ = 0;
  usize cols_ = 0;
  std::vector<double> data_;
};

// Vector helpers.
double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
Vector axpy(double alpha, const Vector& x, const Vector& y);  // alpha*x + y

}  // namespace npat::linalg
