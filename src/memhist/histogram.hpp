// Memhist's latency histogram (paper §IV-B, Fig. 10). Counts of loads per
// latency interval are derived by subtracting adjacent threshold
// measurements; the subtraction "poses an error that cannot be avoided" —
// negative bins are flagged as uncertain rather than hidden. Two display
// modes: event occurrences, and event costs (occurrences × latency).
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::memhist {

enum class HistogramMode : u8 { kOccurrences, kCosts };

struct LatencyBin {
  Cycles lo = 0;
  Cycles hi = 0;            // 0 = open-ended last bin
  double occurrences = 0.0;  // may be negative (uncertain sampling)
  bool uncertain = false;
  std::string annotation;   // e.g. "L2", "local memory"

  /// Latency charged per occurrence in cost mode (interval midpoint; 1.5×
  /// the lower bound for the open-ended bin).
  double representative_latency() const;
  double cost() const { return occurrences * representative_latency(); }
};

class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(std::vector<LatencyBin> bins, HistogramMode mode)
      : bins_(std::move(bins)), mode_(mode) {}

  const std::vector<LatencyBin>& bins() const noexcept { return bins_; }
  std::vector<LatencyBin>& bins() noexcept { return bins_; }
  HistogramMode mode() const noexcept { return mode_; }
  void set_mode(HistogramMode mode) noexcept { mode_ = mode; }

  /// Value of a bin under the current mode.
  double value(usize index) const;
  /// Index of the highest-valued bin (ignoring uncertain ones); nullopt if
  /// all bins are uncertain/empty.
  std::optional<usize> peak_bin() const;
  usize uncertain_bins() const;
  double total_occurrences() const;

  /// Fig. 10-style rendering: one bar per interval, grey uncertain bars,
  /// dominating bars truncated, annotations on the right.
  std::string render(const std::string& title) const;

  util::Json to_json() const;

 private:
  std::vector<LatencyBin> bins_;
  HistogramMode mode_ = HistogramMode::kOccurrences;
};

/// Annotates bins containing the machine's characteristic latencies
/// (L2/L3 hit, local DRAM, remote DRAM per hop distance) — the labels the
/// paper verified against Intel mlc.
void annotate_with_machine_levels(LatencyHistogram& histogram,
                                  const sim::MachineConfig& config);

}  // namespace npat::memhist
