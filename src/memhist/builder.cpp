#include "memhist/builder.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace npat::memhist {

Cycles slice_cycles_for_hz(double frequency_ghz, double hz) {
  NPAT_CHECK_MSG(frequency_ghz > 0.0 && hz > 0.0, "rates must be positive");
  return static_cast<Cycles>(std::llround(frequency_ghz * 1e9 / hz));
}

MemhistBuilder::MemhistBuilder(sim::Machine& machine, trace::Runner& runner,
                               MemhistOptions options)
    : machine_(&machine), options_(std::move(options)), session_(machine) {
  NPAT_CHECK_MSG(!options_.thresholds.empty(), "need at least one threshold");
  NPAT_CHECK_MSG(options_.slice_cycles > 0, "slice period must be positive");
  for (usize i = 1; i < options_.thresholds.size(); ++i) {
    NPAT_CHECK_MSG(options_.thresholds[i] > options_.thresholds[i - 1],
                   "threshold ladder must be strictly ascending");
  }
  readings_.reserve(options_.thresholds.size());
  for (Cycles t : options_.thresholds) readings_.push_back(ThresholdReading{t, 0, 0, 0});
  runner.add_sampler(options_.slice_cycles, [this](Cycles now) { rotate(now); });
}

void MemhistBuilder::start() {
  NPAT_CHECK_MSG(!running_, "builder already started");
  running_ = true;
  current_ = 0;
  started_at_ = machine_->max_clock();
  session_.arm(options_.thresholds[current_], options_.sample_period,
               options_.source_filter);
}

void MemhistBuilder::rotate(Cycles /*now*/) {
  if (!running_) return;
  NPAT_OBS_COUNT("npat_memhist_rotations_total", "Threshold ladder rotations", 1);
  const auto reading = session_.disarm();
  auto& acc = readings_[current_];
  acc.counted += reading.loads_at_or_above;
  acc.window_cycles += reading.enabled_cycles;
  acc.slices += 1;
  current_ = (current_ + 1) % options_.thresholds.size();
  session_.arm(options_.thresholds[current_], options_.sample_period,
               options_.source_filter);
}

LatencyHistogram MemhistBuilder::finish() {
  NPAT_CHECK_MSG(running_, "builder not started");
  running_ = false;
  const auto reading = session_.disarm();
  auto& acc = readings_[current_];
  acc.counted += reading.loads_at_or_above;
  acc.window_cycles += reading.enabled_cycles;
  acc.slices += 1;
  const Cycles total = machine_->max_clock() - started_at_;
  return build(readings_, total, options_.mode);
}

LatencyHistogram MemhistBuilder::build(const std::vector<ThresholdReading>& readings,
                                       Cycles total_cycles, HistogramMode mode) {
  NPAT_OBS_SPAN("memhist.assemble");
  NPAT_CHECK_MSG(!readings.empty(), "no readings to build from");

  // Extrapolate each threshold's rate over the whole run: R_i is the
  // estimated number of loads with latency >= threshold_i.
  std::vector<double> extrapolated(readings.size(), 0.0);
  std::vector<bool> unsampled(readings.size(), false);
  for (usize i = 0; i < readings.size(); ++i) {
    if (readings[i].window_cycles == 0) {
      unsampled[i] = true;
      continue;
    }
    const double rate =
        static_cast<double>(readings[i].counted) / static_cast<double>(readings[i].window_cycles);
    extrapolated[i] = rate * static_cast<double>(total_cycles);
  }

  std::vector<LatencyBin> bins;
  bins.reserve(readings.size());
  for (usize i = 0; i < readings.size(); ++i) {
    LatencyBin bin;
    bin.lo = readings[i].threshold;
    bin.hi = i + 1 < readings.size() ? readings[i + 1].threshold : 0;
    if (i + 1 < readings.size()) {
      bin.occurrences = extrapolated[i] - extrapolated[i + 1];
      // "negative event occurrences might be observed if the measurements
      // for both bounds vary excessively" — flag, do not hide.
      bin.uncertain = unsampled[i] || unsampled[i + 1] || bin.occurrences < 0.0;
    } else {
      bin.occurrences = extrapolated[i];
      bin.uncertain = unsampled[i];
    }
    bins.push_back(std::move(bin));
  }
  return LatencyHistogram(std::move(bins), mode);
}

}  // namespace npat::memhist
