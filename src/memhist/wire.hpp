// Wire protocol for Memhist's remote probing (paper Fig. 6) and the
// continuous-monitoring stream: the headless probe on the server ships
// threshold readings (and, since version 2, monitor samples) to the GUI
// over TCP. Frames are length-prefixed, CRC-32 protected, and the decoder
// resynchronizes on corruption by scanning for the magic bytes —
// measurements survive a noisy transport with at most the damaged frames
// lost.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "memhist/builder.hpp"
#include "util/types.hpp"

namespace npat::memhist::wire {

inline constexpr u8 kMagic0 = 'N';
inline constexpr u8 kMagic1 = 'P';
/// Version 2 added MonitorSampleMsg. Version 3 extends Hello with a host
/// id so a fleet collector can attribute multiplexed streams to probes.
/// Version 4 adds the resilience frames: per-frame sequence envelopes
/// (SequencedMsg), Heartbeat liveness beacons, and the Resume handshake
/// that lets a reconnecting probe retransmit only what the collector
/// never saw. Version 5 adds per-task attribution: TaskTableMsg registers
/// (pid, tid, name) tuples under compact task ids and TaskSampleMsg ships
/// per-task counter deltas keyed by those ids. Version 6 adds pipeline
/// self-observability: StampedMsg annotates a data frame's payload with
/// the probe-side monotonic emit timestamp so a collector can attribute
/// per-hop latency (encode→send→decode→reorder→deliver). Version-1/2/3/4/5
/// streams decode unchanged; older decoders skip newer frame types
/// (unknown types are dropped whole, CRC-verified, without losing framing).
inline constexpr u8 kProtocolVersion = 6;
inline constexpr usize kMaxHostIdBytes = 255;
inline constexpr usize kMaxTaskNameBytes = 255;

struct Hello {
  u8 version = kProtocolVersion;
  u32 node_count = 0;
  /// Since version 3: names the sending probe in a multi-probe fleet.
  /// Empty on version <= 2 streams (whose Hello has no host field) and
  /// encoded only when `version >= 3`, so v2 frames stay byte-identical.
  std::string host_id;

  friend bool operator==(const Hello&, const Hello&) = default;
};

struct ReadingMsg {
  ThresholdReading reading;
};

struct End {
  Cycles total_cycles = 0;
};

/// Per-node counter deltas of one monitor sampling period (see
/// monitor/sampler.hpp; kept as plain integers here so the wire layer does
/// not depend on the monitor subsystem).
struct MonitorNodeCounters {
  u64 instructions = 0;
  u64 cycles = 0;
  u64 local_dram = 0;
  u64 remote_dram = 0;
  u64 remote_hitm = 0;
  u64 imc_reads = 0;
  u64 imc_writes = 0;
  u64 qpi_flits = 0;
  u64 resident_bytes = 0;  // snapshot, not a delta

  friend bool operator==(const MonitorNodeCounters&, const MonitorNodeCounters&) = default;
};

/// One timestamped telemetry sample (version >= 2).
struct MonitorSampleMsg {
  Cycles timestamp = 0;
  u64 footprint_bytes = 0;
  std::vector<MonitorNodeCounters> nodes;

  friend bool operator==(const MonitorSampleMsg&, const MonitorSampleMsg&) = default;
};

/// Liveness beacon (version >= 4): sent by a supervised probe when it has
/// had nothing else to say for a while, so a collector can tell a silent
/// probe from a dead one. `seq` is the highest sequence number the probe
/// has assigned so far — an idle-period loss detector for free.
struct Heartbeat {
  u16 epoch = 0;
  u32 seq = 0;
  Cycles timestamp = 0;

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

inline constexpr u8 kResumeProbe = 0;      ///< probe announces "resuming epoch E"
inline constexpr u8 kResumeCollector = 1;  ///< collector acks "delivered through seq S"

/// Resume handshake (version >= 4). A reconnecting probe sends
/// role=kResumeProbe with its session epoch and next fresh sequence; the
/// collector replies role=kResumeCollector carrying the highest sequence
/// it has delivered contiguously, so the probe retransmits only the gap.
/// The collector reply doubles as the steady-state ack that lets the
/// probe prune its replay buffer.
struct Resume {
  u8 role = kResumeProbe;
  u16 epoch = 0;
  u32 seq = 0;

  friend bool operator==(const Resume&, const Resume&) = default;
};

/// Sequence envelope (version >= 4): any v1-v3 data frame's payload,
/// prefixed with (epoch, seq) so the collector can deduplicate
/// retransmissions for exactly-once accounting. The envelope replaces the
/// inner frame's own framing (one magic/length/CRC for both layers), so
/// the wire cost is 7 bytes per frame. Envelopes never nest.
struct SequencedMsg {
  u16 epoch = 0;
  u32 seq = 0;
  u8 inner_type = 0;
  std::vector<u8> inner_payload;

  friend bool operator==(const SequencedMsg&, const SequencedMsg&) = default;
};

/// Emit-timestamp annotation (version >= 6): a data frame's payload,
/// prefixed with the probe's monotonic emit clock so the collector — which
/// already aligns per-probe clock origins — can compute ingest latency per
/// hop. Like SequencedMsg, the annotation replaces the inner frame's own
/// framing, so the wire cost is a flat 9 bytes per stamped frame; probes
/// stamp a sampled subset (every Nth frame) to keep the stream overhead
/// bounded. The stamp is always the *innermost* envelope: a SequencedMsg
/// may carry a StampedMsg, but a StampedMsg never carries an envelope.
struct StampedMsg {
  Cycles emit_timestamp = 0;
  u8 inner_type = 0;
  std::vector<u8> inner_payload;

  friend bool operator==(const StampedMsg&, const StampedMsg&) = default;
};

/// One row of a TaskTableMsg (version >= 5): binds a stream-local compact
/// task id to the task's OS identity and human-readable names. Sample rows
/// reference the id so the identity bytes ship once per task, not once per
/// tick — the same indirection numatop's /proc scraper keeps in memory.
struct TaskTableEntry {
  u32 task_id = 0;
  u32 pid = 0;
  u32 tid = 0;
  std::string process_name;
  std::string thread_name;

  friend bool operator==(const TaskTableEntry&, const TaskTableEntry&) = default;
};

/// Task registration frame (version >= 5). A probe announces each task
/// before (or, across a lossy resume, possibly after) the first sample row
/// that references it; collectors must tolerate either order.
struct TaskTableMsg {
  std::vector<TaskTableEntry> entries;

  friend bool operator==(const TaskTableMsg&, const TaskTableMsg&) = default;
};

/// One hot memory area of a task: `base` is the area base address (1 MiB
/// granularity) and `samples` the cumulative sampled-load count landing in
/// it. Snapshots, not deltas, like resident_bytes.
struct TaskAreaCounters {
  u64 base = 0;
  u64 samples = 0;

  friend bool operator==(const TaskAreaCounters&, const TaskAreaCounters&) = default;
};

/// Per-task counter deltas of one sampling period (version >= 5). `node`
/// is the NUMA node that executed most of the task's cycles this period —
/// the row the task sorts under in a numatop-style drill-down.
struct TaskSampleRow {
  u32 task_id = 0;
  u32 node = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 local_dram = 0;
  u64 remote_dram = 0;
  u64 remote_hitm = 0;
  u64 loads = 0;
  u64 latency_sum = 0;
  u64 latency_loads = 0;
  std::vector<TaskAreaCounters> areas;

  friend bool operator==(const TaskSampleRow&, const TaskSampleRow&) = default;
};

/// One timestamped per-task telemetry sample (version >= 5); the task-level
/// sibling of MonitorSampleMsg, sharing its timestamp domain.
struct TaskSampleMsg {
  Cycles timestamp = 0;
  std::vector<TaskSampleRow> rows;

  friend bool operator==(const TaskSampleMsg&, const TaskSampleMsg&) = default;
};

using Message = std::variant<Hello, ReadingMsg, End, MonitorSampleMsg, Heartbeat, Resume,
                             SequencedMsg, TaskTableMsg, TaskSampleMsg, StampedMsg>;

/// CRC-32 (IEEE 802.3 polynomial, reflected).
u32 crc32(const u8* data, usize length);

std::vector<u8> encode(const Message& message);

/// Wraps `inner` (which must not itself be a SequencedMsg) in a sequence
/// envelope for (epoch, seq).
SequencedMsg wrap_sequenced(u16 epoch, u32 seq, const Message& inner);

/// Decodes the envelope's inner message; nullopt if the inner payload is
/// malformed or of an unknown (future) type. The outer frame's CRC
/// already covered these bytes, so a nullopt here means a malformed
/// *sender*, not transport damage.
std::optional<Message> unwrap_sequenced(const SequencedMsg& envelope);

/// Annotates `inner` (a data frame — never an envelope) with the probe's
/// emit timestamp. The result may in turn be wrapped by wrap_sequenced():
/// the nesting order on the wire is Sequenced(Stamped(data)).
StampedMsg wrap_stamped(Cycles emit_timestamp, const Message& inner);

/// Decodes the annotated inner message; nullopt if the inner payload is
/// malformed or of an unknown (future) type — sender damage, not
/// transport damage, exactly as for unwrap_sequenced().
std::optional<Message> unwrap_stamped(const StampedMsg& stamped);

/// Incremental decoder. Feed bytes as they arrive; poll() yields complete
/// messages. Frames with bad CRCs or unknown types are dropped and counted;
/// decoding resumes at the next magic sequence. A CRC failure discards only
/// the magic bytes of the failed frame, not the (possibly corrupted) length
/// it advertised, so one damaged frame never swallows intact successors.
class Decoder {
 public:
  void feed(const std::vector<u8>& bytes);
  std::optional<Message> poll();

  /// Signals end of stream: a frame truncated by the transport can never
  /// complete, so poll() stops waiting for it and resynchronizes on
  /// whatever intact frames remain in the buffer.
  void finish() noexcept { finished_ = true; }

  usize dropped_frames() const noexcept { return dropped_; }
  usize resyncs() const noexcept { return resyncs_; }
  /// Incomplete frames flushed at end of stream (a subset of
  /// dropped_frames(): each truncation is also counted as a drop).
  usize truncated_flushes() const noexcept { return truncated_; }

 private:
  void discard(usize bytes);

  std::vector<u8> buffer_;
  usize dropped_ = 0;
  usize resyncs_ = 0;
  usize truncated_ = 0;
  bool finished_ = false;
};

}  // namespace npat::memhist::wire
