// Wire protocol for Memhist's remote probing (paper Fig. 6): the headless
// probe on the server ships threshold readings to the GUI over TCP. Frames
// are length-prefixed, CRC-32 protected, and the decoder resynchronizes on
// corruption by scanning for the magic bytes — measurements survive a
// noisy transport with at most the damaged frames lost.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "memhist/builder.hpp"
#include "util/types.hpp"

namespace npat::memhist::wire {

inline constexpr u8 kMagic0 = 'N';
inline constexpr u8 kMagic1 = 'P';
inline constexpr u8 kProtocolVersion = 1;

struct Hello {
  u8 version = kProtocolVersion;
  u32 node_count = 0;
};

struct ReadingMsg {
  ThresholdReading reading;
};

struct End {
  Cycles total_cycles = 0;
};

using Message = std::variant<Hello, ReadingMsg, End>;

/// CRC-32 (IEEE 802.3 polynomial, reflected).
u32 crc32(const u8* data, usize length);

std::vector<u8> encode(const Message& message);

/// Incremental decoder. Feed bytes as they arrive; poll() yields complete
/// messages. Frames with bad CRCs or unknown types are dropped and counted;
/// decoding resumes at the next magic sequence.
class Decoder {
 public:
  void feed(const std::vector<u8>& bytes);
  std::optional<Message> poll();

  usize dropped_frames() const noexcept { return dropped_; }
  usize resyncs() const noexcept { return resyncs_; }

 private:
  std::vector<u8> buffer_;
  usize dropped_ = 0;
  usize resyncs_ = 0;
};

}  // namespace npat::memhist::wire
