// Remote probing (paper Fig. 6): "an additional headless probe was
// developed, which transfers the measured data via TCP to the GUI
// application". The Probe runs next to the measured machine and streams
// threshold readings; the GuiCollector accumulates them on the display
// side and rebuilds the histogram there.
#pragma once

#include <memory>

#include "memhist/builder.hpp"
#include "memhist/wire.hpp"
#include "util/channel.hpp"

namespace npat::memhist {

/// Server-side endpoint ("Probe + Measure(...)" in Fig. 6).
class Probe {
 public:
  explicit Probe(std::shared_ptr<util::ByteChannel> channel);

  /// Handshake; sends protocol version and machine shape. A non-empty
  /// `host_id` rides on the version-3 Hello so a fleet collector can
  /// attribute this stream to its source host.
  void send_hello(u32 node_count, const std::string& host_id = {});
  /// Streams one accumulated threshold reading.
  void send_reading(const ThresholdReading& reading);
  void send_readings(const std::vector<ThresholdReading>& readings);
  /// Streams one continuous-monitoring telemetry sample (protocol >= 2).
  void send_sample(const wire::MonitorSampleMsg& sample);
  /// Registers task identities ahead of per-task samples (protocol >= 5).
  void send_task_table(const wire::TaskTableMsg& table);
  /// Streams one per-task telemetry sample (protocol >= 5).
  void send_task_sample(const wire::TaskSampleMsg& sample);
  /// Ends the session; the collector can build the histogram afterwards.
  void send_end(Cycles total_cycles);

  /// Enables sampled emit stamping (protocol v6): every `interval`-th data
  /// frame is wrapped in a StampedMsg carrying the probe clock so a
  /// collector can measure per-hop pipeline latency. 0 (the default)
  /// disables stamping and keeps the byte stream identical to v5 — golden
  /// captures of unstamped sessions never change.
  void set_stamp_interval(usize interval) noexcept { stamp_interval_ = interval; }
  /// Advances the probe-side emit clock used for stamps. The probe is
  /// clockless like the rest of the transport: callers thread simulated
  /// cycles through explicitly.
  void set_clock(Cycles now) noexcept { clock_ = now; }

  /// Frames the channel accepted. Sends rejected by a closed channel are
  /// counted separately — they never reached the wire.
  usize frames_sent() const noexcept { return frames_sent_; }
  usize send_failures() const noexcept { return send_failures_; }
  /// Data frames that carried an emit-timestamp annotation.
  usize stamped_frames() const noexcept { return stamped_frames_; }

 private:
  void send_frame(const wire::Message& message, bool stampable = true);

  std::shared_ptr<util::ByteChannel> channel_;
  usize frames_sent_ = 0;
  usize send_failures_ = 0;
  usize stamp_interval_ = 0;
  usize stamped_frames_ = 0;
  usize data_frames_ = 0;
  Cycles clock_ = 0;
};

/// GUI-side endpoint ("EventFor(Interval) + Accumulate(...)" in Fig. 6).
class GuiCollector {
 public:
  explicit GuiCollector(std::shared_ptr<util::ByteChannel> channel);

  /// Drains the channel and decodes everything currently available.
  void poll();

  bool hello_received() const noexcept { return hello_.has_value(); }
  bool ended() const noexcept { return total_cycles_.has_value(); }
  const std::vector<ThresholdReading>& readings() const noexcept { return readings_; }

  /// Accumulated transport damage (dropped frames, resyncs, frames
  /// truncated by the transport at end of stream).
  usize dropped_frames() const noexcept { return decoder_.dropped_frames(); }
  usize resyncs() const noexcept { return decoder_.resyncs(); }
  usize truncated_flushes() const noexcept { return decoder_.truncated_flushes(); }
  /// Frames that decoded fine but carry a type this collector has no use
  /// for (e.g. MonitorSampleMsg telemetry in a histogram session). Counted
  /// so transport dashboards don't under-report loss.
  usize unexpected_frames() const noexcept { return unexpected_frames_; }

  /// Builds the histogram from everything received; requires ended().
  LatencyHistogram build(HistogramMode mode) const;

 private:
  std::shared_ptr<util::ByteChannel> channel_;
  wire::Decoder decoder_;
  std::optional<wire::Hello> hello_;
  std::optional<Cycles> total_cycles_;
  std::vector<ThresholdReading> readings_;
  usize unexpected_frames_ = 0;
};

}  // namespace npat::memhist
