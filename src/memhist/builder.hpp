// Memhist's measurement loop. Only one PEBS load-latency event can be
// armed at a time, so the builder *time-cycles* a ladder of thresholds
// (100 Hz in the paper — 10 ms slices), accumulating per-threshold counts
// and enable windows. Interval counts come from subtracting the
// extrapolated counts of adjacent thresholds; negative results are kept
// and flagged as uncertain.
#pragma once

#include <vector>

#include "memhist/histogram.hpp"
#include "perf/load_latency.hpp"
#include "trace/runner.hpp"

namespace npat::memhist {

struct ThresholdReading {
  Cycles threshold = 0;
  u64 counted = 0;          // loads with latency >= threshold while armed
  Cycles window_cycles = 0;  // total cycles this threshold was armed
  u64 slices = 0;            // how many time slices contributed
};

struct MemhistOptions {
  /// Ascending threshold ladder in cycles. The default ladder spans L1
  /// (which Intel cannot measure reliably below 3 cycles — the paper's
  /// note) up to deep remote latencies, with bin edges placed so each
  /// hierarchy level's use latency falls mid-bin.
  std::vector<Cycles> thresholds = {4, 8, 24, 48, 96, 160, 256, 384, 512, 768, 1024};
  /// Threshold rotation period in cycles (the paper's 100 Hz at 2.4 GHz is
  /// 24 M cycles; tests use shorter slices).
  Cycles slice_cycles = 2000000;
  u32 sample_period = 64;
  HistogramMode mode = HistogramMode::kOccurrences;
  /// Restrict the histogram to loads served from one data source — the
  /// paper's outlook: isolating TLB, coherence (HITM) and remote costs.
  std::optional<sim::DataSource> source_filter;
};

/// Slice period matching the paper's 100 Hz for a given core frequency.
Cycles slice_cycles_for_hz(double frequency_ghz, double hz = 100.0);

class MemhistBuilder {
 public:
  /// Registers the threshold-rotation hook with `runner`; the builder must
  /// outlive the run.
  MemhistBuilder(sim::Machine& machine, trace::Runner& runner, MemhistOptions options);

  /// Arms the first threshold. Call before runner.run().
  void start();
  /// Disarms and builds the histogram. Call after the run.
  LatencyHistogram finish();

  /// Raw per-threshold accumulations (also what the remote probe ships).
  const std::vector<ThresholdReading>& readings() const noexcept { return readings_; }

  /// Histogram assembly from readings — shared by the local path and the
  /// remote GUI collector. `total_cycles` scales rates to whole-run counts.
  static LatencyHistogram build(const std::vector<ThresholdReading>& readings,
                                Cycles total_cycles, HistogramMode mode);

 private:
  void rotate(Cycles now);

  sim::Machine* machine_;
  MemhistOptions options_;
  perf::LoadLatencySession session_;
  std::vector<ThresholdReading> readings_;
  usize current_ = 0;
  Cycles started_at_ = 0;
  bool running_ = false;
};

}  // namespace npat::memhist
