#include "memhist/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/histogram_render.hpp"
#include "util/strings.hpp"

namespace npat::memhist {

double LatencyBin::representative_latency() const {
  if (hi == 0) return static_cast<double>(lo) * 1.5;
  return (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
}

double LatencyHistogram::value(usize index) const {
  NPAT_CHECK(index < bins_.size());
  const LatencyBin& bin = bins_[index];
  return mode_ == HistogramMode::kOccurrences ? bin.occurrences : bin.cost();
}

std::optional<usize> LatencyHistogram::peak_bin() const {
  std::optional<usize> best;
  double best_value = 0.0;
  for (usize i = 0; i < bins_.size(); ++i) {
    if (bins_[i].uncertain) continue;
    const double v = value(i);
    if (!best || v > best_value) {
      best = i;
      best_value = v;
    }
  }
  return best;
}

usize LatencyHistogram::uncertain_bins() const {
  usize n = 0;
  for (const auto& bin : bins_) n += bin.uncertain ? 1 : 0;
  return n;
}

double LatencyHistogram::total_occurrences() const {
  double total = 0.0;
  for (const auto& bin : bins_) total += std::max(0.0, bin.occurrences);
  return total;
}

std::string LatencyHistogram::render(const std::string& title) const {
  std::vector<util::HistogramBar> bars;
  bars.reserve(bins_.size());
  for (usize i = 0; i < bins_.size(); ++i) {
    util::HistogramBar bar;
    const LatencyBin& bin = bins_[i];
    bar.label = bin.hi == 0
                    ? util::format("[%llu, inf)", static_cast<unsigned long long>(bin.lo))
                    : util::format("[%llu, %llu)", static_cast<unsigned long long>(bin.lo),
                                   static_cast<unsigned long long>(bin.hi));
    bar.value = std::max(0.0, value(i));
    bar.uncertain = bin.uncertain;
    bar.annotation = bin.annotation;
    bars.push_back(std::move(bar));
  }
  util::HistogramRenderOptions options;
  options.title = title + (mode_ == HistogramMode::kOccurrences ? " (event occurrences)"
                                                                : " (event costs)");
  options.footnote =
      "grey values: uncertain sampling; all intervals denoted in cycles; "
      "dominating bins truncated";
  options.truncate_above_fraction = 0.5;  // "L2 results truncated to ~half"
  return util::render_histogram(bars, options);
}

util::Json LatencyHistogram::to_json() const {
  util::JsonObject doc;
  doc["mode"] = mode_ == HistogramMode::kOccurrences ? "occurrences" : "costs";
  util::JsonArray bins;
  for (usize i = 0; i < bins_.size(); ++i) {
    const auto& bin = bins_[i];
    util::JsonObject b;
    b["lo"] = bin.lo;
    b["hi"] = bin.hi;
    b["occurrences"] = bin.occurrences;
    b["value"] = value(i);
    b["uncertain"] = bin.uncertain;
    if (!bin.annotation.empty()) b["annotation"] = bin.annotation;
    bins.emplace_back(std::move(b));
  }
  doc["bins"] = std::move(bins);
  return util::Json(std::move(doc));
}

void annotate_with_machine_levels(LatencyHistogram& histogram,
                                  const sim::MachineConfig& config) {
  struct Level {
    double latency;
    std::string label;
  };
  // Use latencies as the PMU reports them: the L1 access cost is part of
  // every deeper level's latency.
  const double l1 = static_cast<double>(config.l1.hit_latency);
  std::vector<Level> levels;
  levels.push_back({static_cast<double>(config.l2.hit_latency), "L2"});
  levels.push_back({static_cast<double>(config.l3.hit_latency), "L3"});
  levels.push_back({l1 + static_cast<double>(config.memory.local_dram_latency),
                    "local memory"});
  const u32 max_hops = config.topology.max_hops();
  for (u32 h = 1; h <= max_hops; ++h) {
    const double latency = l1 + static_cast<double>(config.memory.local_dram_latency) +
                           static_cast<double>(config.memory.per_hop_latency) * h;
    std::string label = "remote memory";
    if (max_hops > 1) label += util::format(" (%u hop%s)", h, h == 1 ? "" : "s");
    levels.push_back({latency, std::move(label)});
  }

  for (const auto& level : levels) {
    for (auto& bin : histogram.bins()) {
      const double hi = bin.hi == 0 ? std::numeric_limits<double>::infinity()
                                    : static_cast<double>(bin.hi);
      if (level.latency >= static_cast<double>(bin.lo) && level.latency < hi) {
        if (!bin.annotation.empty()) bin.annotation += ", ";
        bin.annotation += level.label;
        break;
      }
    }
  }
}

}  // namespace npat::memhist
