#include "memhist/wire.hpp"

#include <array>
#include <cstring>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace npat::memhist::wire {

namespace {

constexpr u8 kTypeHello = 1;
constexpr u8 kTypeReading = 2;
constexpr u8 kTypeEnd = 3;
constexpr u8 kTypeMonitorSample = 4;  // since version 2

// MonitorSampleMsg payload: timestamp(8) footprint(8) node_count(2) then
// 9 u64 fields per node.
constexpr usize kMonitorHeaderBytes = 18;
constexpr usize kMonitorNodeBytes = 72;

// Frame layout: magic(2) type(1) payload_len(2, LE) payload crc32(4, LE).
constexpr usize kHeaderBytes = 5;
constexpr usize kCrcBytes = 4;

void put_u16(std::vector<u8>& out, u16 value) {
  out.push_back(static_cast<u8>(value & 0xFF));
  out.push_back(static_cast<u8>(value >> 8));
}

void put_u32(std::vector<u8>& out, u32 value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>((value >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<u8>& out, u64 value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>((value >> (8 * i)) & 0xFF));
}

u16 get_u16(const u8* p) { return static_cast<u16>(p[0] | (p[1] << 8)); }

u32 get_u32(const u8* p) {
  u32 v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

u64 get_u64(const u8* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

const std::array<u32, 256>& crc_table() {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

u32 crc32(const u8* data, usize length) {
  const auto& table = crc_table();
  u32 crc = 0xFFFFFFFFu;
  for (usize i = 0; i < length; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<u8> encode(const Message& message) {
  std::vector<u8> payload;
  u8 type = 0;
  if (const Hello* hello = std::get_if<Hello>(&message)) {
    type = kTypeHello;
    payload.push_back(hello->version);
    put_u32(payload, hello->node_count);
    // The host id rides only on version >= 3 hellos; a v1/v2 Hello keeps
    // its historical 5-byte payload bit-for-bit.
    if (hello->version >= 3) {
      NPAT_CHECK_MSG(hello->host_id.size() <= kMaxHostIdBytes, "host id too long for Hello frame");
      payload.push_back(static_cast<u8>(hello->host_id.size()));
      payload.insert(payload.end(), hello->host_id.begin(), hello->host_id.end());
    }
  } else if (const ReadingMsg* msg = std::get_if<ReadingMsg>(&message)) {
    type = kTypeReading;
    put_u64(payload, msg->reading.threshold);
    put_u64(payload, msg->reading.counted);
    put_u64(payload, msg->reading.window_cycles);
    put_u64(payload, msg->reading.slices);
  } else if (const MonitorSampleMsg* sample = std::get_if<MonitorSampleMsg>(&message)) {
    type = kTypeMonitorSample;
    NPAT_CHECK_MSG(
        kMonitorHeaderBytes + sample->nodes.size() * kMonitorNodeBytes <= 0xFFFF,
        "too many nodes for one monitor frame");
    put_u64(payload, sample->timestamp);
    put_u64(payload, sample->footprint_bytes);
    put_u16(payload, static_cast<u16>(sample->nodes.size()));
    for (const MonitorNodeCounters& node : sample->nodes) {
      put_u64(payload, node.instructions);
      put_u64(payload, node.cycles);
      put_u64(payload, node.local_dram);
      put_u64(payload, node.remote_dram);
      put_u64(payload, node.remote_hitm);
      put_u64(payload, node.imc_reads);
      put_u64(payload, node.imc_writes);
      put_u64(payload, node.qpi_flits);
      put_u64(payload, node.resident_bytes);
    }
  } else {
    type = kTypeEnd;
    put_u64(payload, std::get<End>(message).total_cycles);
  }

  std::vector<u8> frame;
  frame.reserve(kHeaderBytes + payload.size() + kCrcBytes);
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(type);
  NPAT_CHECK_MSG(payload.size() <= 0xFFFF, "payload too large for frame");
  put_u16(frame, static_cast<u16>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, crc32(payload.data(), payload.size()));
  return frame;
}

void Decoder::feed(const std::vector<u8>& bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void Decoder::discard(usize bytes) {
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(bytes));
}

std::optional<Message> Decoder::poll() {
  for (;;) {
    // Resync: discard bytes until a magic sequence starts the buffer.
    usize skipped = 0;
    while (buffer_.size() >= 2 && !(buffer_[0] == kMagic0 && buffer_[1] == kMagic1)) {
      buffer_.erase(buffer_.begin());
      ++skipped;
    }
    if (skipped > 0) {
      ++resyncs_;
      NPAT_OBS_COUNT("npat_wire_resync_skipped_bytes_total",
                     "Garbage bytes discarded while hunting for frame magic", skipped);
    }

    usize frame_len = 0;
    if (buffer_.size() >= kHeaderBytes) {
      frame_len = kHeaderBytes + get_u16(&buffer_[3]) + kCrcBytes;
    }
    if (frame_len == 0 || buffer_.size() < frame_len) {
      if (!finished_ || buffer_.size() < 2) return std::nullopt;
      // End of stream: this header (or the length it advertises — possibly
      // corrupted upward) can never complete. Treat it as a damaged frame
      // and rescan for intact frames behind the magic bytes.
      ++dropped_;
      ++truncated_;
      NPAT_OBS_COUNT("npat_wire_truncated_flushes_total",
                     "Incomplete frames flushed at end of stream", 1);
      NPAT_OBS_COUNT("npat_wire_dropped_frames_total", "Frames dropped by the decoder", 1);
      discard(2);
      continue;
    }

    const u8 type = buffer_[2];
    const usize payload_len = frame_len - kHeaderBytes - kCrcBytes;
    const u8* payload = buffer_.data() + kHeaderBytes;
    const u32 expected_crc = get_u32(payload + payload_len);
    if (crc32(payload, payload_len) != expected_crc) {
      // The frame is damaged, so its length field cannot be trusted:
      // skipping the advertised length could swallow intact successors.
      // Drop only the magic bytes and resynchronize.
      ++dropped_;
      NPAT_OBS_COUNT("npat_wire_crc_failures_total", "Frames rejected by CRC-32 check", 1);
      NPAT_OBS_COUNT("npat_wire_dropped_frames_total", "Frames dropped by the decoder", 1);
      discard(2);
      continue;
    }

    std::optional<Message> message;
    switch (type) {
      case kTypeHello:
        // v1/v2 layout: version(1) node_count(4). v3 appends
        // host_len(1) + host bytes; the length must account exactly.
        if (payload_len >= 5) {
          Hello hello;
          hello.version = payload[0];
          hello.node_count = get_u32(payload + 1);
          if (payload_len == 5 && hello.version <= 2) {
            message = std::move(hello);
          } else if (payload_len >= 6 && payload_len == 6u + payload[5]) {
            hello.host_id.assign(reinterpret_cast<const char*>(payload + 6), payload[5]);
            message = std::move(hello);
          }
        }
        break;
      case kTypeReading:
        if (payload_len == 32) {
          ReadingMsg msg;
          msg.reading.threshold = get_u64(payload);
          msg.reading.counted = get_u64(payload + 8);
          msg.reading.window_cycles = get_u64(payload + 16);
          msg.reading.slices = get_u64(payload + 24);
          message = msg;
        }
        break;
      case kTypeEnd:
        if (payload_len == 8) {
          message = End{get_u64(payload)};
        }
        break;
      case kTypeMonitorSample:
        if (payload_len >= kMonitorHeaderBytes &&
            (payload_len - kMonitorHeaderBytes) % kMonitorNodeBytes == 0) {
          MonitorSampleMsg sample;
          sample.timestamp = get_u64(payload);
          sample.footprint_bytes = get_u64(payload + 8);
          const u16 node_count = get_u16(payload + 16);
          if (payload_len == kMonitorHeaderBytes + node_count * kMonitorNodeBytes) {
            sample.nodes.reserve(node_count);
            for (u16 i = 0; i < node_count; ++i) {
              const u8* p = payload + kMonitorHeaderBytes + i * kMonitorNodeBytes;
              MonitorNodeCounters node;
              node.instructions = get_u64(p);
              node.cycles = get_u64(p + 8);
              node.local_dram = get_u64(p + 16);
              node.remote_dram = get_u64(p + 24);
              node.remote_hitm = get_u64(p + 32);
              node.imc_reads = get_u64(p + 40);
              node.imc_writes = get_u64(p + 48);
              node.qpi_flits = get_u64(p + 56);
              node.resident_bytes = get_u64(p + 64);
              sample.nodes.push_back(node);
            }
            message = std::move(sample);
          }
        }
        break;
      default:
        break;  // unknown (future-version) type: CRC-verified, drop whole frame
    }

    // The CRC passed, so the length field is trustworthy: skipping the
    // whole frame is safe even for unknown or malformed-payload types.
    discard(frame_len);
    if (message) {
      NPAT_OBS_COUNT("npat_wire_frames_decoded_total", "Frames decoded successfully", 1);
      return message;
    }
    ++dropped_;
    NPAT_OBS_COUNT("npat_wire_dropped_frames_total", "Frames dropped by the decoder", 1);
    // Loop: try the next frame in the buffer.
  }
}

}  // namespace npat::memhist::wire
