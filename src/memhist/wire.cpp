#include "memhist/wire.hpp"

#include <array>
#include <cstring>

#include "util/check.hpp"

namespace npat::memhist::wire {

namespace {

constexpr u8 kTypeHello = 1;
constexpr u8 kTypeReading = 2;
constexpr u8 kTypeEnd = 3;

// Frame layout: magic(2) type(1) payload_len(2, LE) payload crc32(4, LE).
constexpr usize kHeaderBytes = 5;
constexpr usize kCrcBytes = 4;

void put_u16(std::vector<u8>& out, u16 value) {
  out.push_back(static_cast<u8>(value & 0xFF));
  out.push_back(static_cast<u8>(value >> 8));
}

void put_u32(std::vector<u8>& out, u32 value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>((value >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<u8>& out, u64 value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>((value >> (8 * i)) & 0xFF));
}

u16 get_u16(const u8* p) { return static_cast<u16>(p[0] | (p[1] << 8)); }

u32 get_u32(const u8* p) {
  u32 v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

u64 get_u64(const u8* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

const std::array<u32, 256>& crc_table() {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

u32 crc32(const u8* data, usize length) {
  const auto& table = crc_table();
  u32 crc = 0xFFFFFFFFu;
  for (usize i = 0; i < length; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<u8> encode(const Message& message) {
  std::vector<u8> payload;
  u8 type = 0;
  if (const Hello* hello = std::get_if<Hello>(&message)) {
    type = kTypeHello;
    payload.push_back(hello->version);
    put_u32(payload, hello->node_count);
  } else if (const ReadingMsg* msg = std::get_if<ReadingMsg>(&message)) {
    type = kTypeReading;
    put_u64(payload, msg->reading.threshold);
    put_u64(payload, msg->reading.counted);
    put_u64(payload, msg->reading.window_cycles);
    put_u64(payload, msg->reading.slices);
  } else {
    type = kTypeEnd;
    put_u64(payload, std::get<End>(message).total_cycles);
  }

  std::vector<u8> frame;
  frame.reserve(kHeaderBytes + payload.size() + kCrcBytes);
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(type);
  NPAT_CHECK_MSG(payload.size() <= 0xFFFF, "payload too large for frame");
  put_u16(frame, static_cast<u16>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, crc32(payload.data(), payload.size()));
  return frame;
}

void Decoder::feed(const std::vector<u8>& bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Message> Decoder::poll() {
  for (;;) {
    // Resync: discard bytes until a magic sequence starts the buffer.
    usize skipped = 0;
    while (buffer_.size() >= 2 && !(buffer_[0] == kMagic0 && buffer_[1] == kMagic1)) {
      buffer_.erase(buffer_.begin());
      ++skipped;
    }
    if (skipped > 0) ++resyncs_;
    if (buffer_.size() < kHeaderBytes) return std::nullopt;

    const u8 type = buffer_[2];
    const u16 payload_len = get_u16(&buffer_[3]);
    const usize frame_len = kHeaderBytes + payload_len + kCrcBytes;
    if (buffer_.size() < frame_len) return std::nullopt;

    const u8* payload = buffer_.data() + kHeaderBytes;
    const u32 expected_crc = get_u32(payload + payload_len);
    const bool crc_ok = crc32(payload, payload_len) == expected_crc;

    std::optional<Message> message;
    if (crc_ok) {
      switch (type) {
        case kTypeHello:
          if (payload_len == 5) {
            Hello hello;
            hello.version = payload[0];
            hello.node_count = get_u32(payload + 1);
            message = hello;
          }
          break;
        case kTypeReading:
          if (payload_len == 32) {
            ReadingMsg msg;
            msg.reading.threshold = get_u64(payload);
            msg.reading.counted = get_u64(payload + 8);
            msg.reading.window_cycles = get_u64(payload + 16);
            msg.reading.slices = get_u64(payload + 24);
            message = msg;
          }
          break;
        case kTypeEnd:
          if (payload_len == 8) {
            message = End{get_u64(payload)};
          }
          break;
        default:
          break;  // unknown type: drop
      }
    }

    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(frame_len));
    if (message) return message;
    ++dropped_;
    // Loop: try the next frame in the buffer.
  }
}

}  // namespace npat::memhist::wire
