#include "memhist/wire.hpp"

#include <array>
#include <cstring>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace npat::memhist::wire {

namespace {

constexpr u8 kTypeHello = 1;
constexpr u8 kTypeReading = 2;
constexpr u8 kTypeEnd = 3;
constexpr u8 kTypeMonitorSample = 4;  // since version 2
constexpr u8 kTypeHeartbeat = 5;      // since version 4
constexpr u8 kTypeResume = 6;         // since version 4
constexpr u8 kTypeSequenced = 7;      // since version 4
constexpr u8 kTypeTaskTable = 8;      // since version 5
constexpr u8 kTypeTaskSample = 9;     // since version 5
constexpr u8 kTypeStamped = 10;       // since version 6

// Sequence envelope prefix: epoch(2) seq(4) inner_type(1).
constexpr usize kSequencedPrefixBytes = 7;

// Emit-stamp annotation prefix: emit_timestamp(8) inner_type(1).
constexpr usize kStampedPrefixBytes = 9;

// MonitorSampleMsg payload: timestamp(8) footprint(8) node_count(2) then
// 9 u64 fields per node.
constexpr usize kMonitorHeaderBytes = 18;
constexpr usize kMonitorNodeBytes = 72;

// TaskTableMsg payload: entry_count(2) then per entry task_id(4) pid(4)
// tid(4) pname_len(1) pname tname_len(1) tname.
constexpr usize kTaskEntryFixedBytes = 14;

// TaskSampleMsg payload: timestamp(8) row_count(2) then per row
// task_id(4) node(4), 8 u64 counters, area_count(1) and 16 bytes per area.
constexpr usize kTaskSampleHeaderBytes = 10;
constexpr usize kTaskRowFixedBytes = 73;
constexpr usize kTaskAreaBytes = 16;

// Frame layout: magic(2) type(1) payload_len(2, LE) payload crc32(4, LE).
constexpr usize kHeaderBytes = 5;
constexpr usize kCrcBytes = 4;

void put_u16(std::vector<u8>& out, u16 value) {
  out.push_back(static_cast<u8>(value & 0xFF));
  out.push_back(static_cast<u8>(value >> 8));
}

void put_u32(std::vector<u8>& out, u32 value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>((value >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<u8>& out, u64 value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<u8>((value >> (8 * i)) & 0xFF));
}

u16 get_u16(const u8* p) { return static_cast<u16>(p[0] | (p[1] << 8)); }

u32 get_u32(const u8* p) {
  u32 v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

u64 get_u64(const u8* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

const std::array<u32, 256>& crc_table() {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Message type byte + payload bytes for one message; shared by encode()
/// (which adds the framing) and wrap_sequenced() (which nests the payload
/// inside an envelope instead of a frame of its own).
u8 encode_payload(const Message& message, std::vector<u8>& payload) {
  if (const Hello* hello = std::get_if<Hello>(&message)) {
    payload.push_back(hello->version);
    put_u32(payload, hello->node_count);
    // The host id rides only on version >= 3 hellos; a v1/v2 Hello keeps
    // its historical 5-byte payload bit-for-bit.
    if (hello->version >= 3) {
      NPAT_CHECK_MSG(hello->host_id.size() <= kMaxHostIdBytes, "host id too long for Hello frame");
      payload.push_back(static_cast<u8>(hello->host_id.size()));
      payload.insert(payload.end(), hello->host_id.begin(), hello->host_id.end());
    }
    return kTypeHello;
  }
  if (const ReadingMsg* msg = std::get_if<ReadingMsg>(&message)) {
    put_u64(payload, msg->reading.threshold);
    put_u64(payload, msg->reading.counted);
    put_u64(payload, msg->reading.window_cycles);
    put_u64(payload, msg->reading.slices);
    return kTypeReading;
  }
  if (const MonitorSampleMsg* sample = std::get_if<MonitorSampleMsg>(&message)) {
    NPAT_CHECK_MSG(
        kMonitorHeaderBytes + sample->nodes.size() * kMonitorNodeBytes <= 0xFFFF,
        "too many nodes for one monitor frame");
    put_u64(payload, sample->timestamp);
    put_u64(payload, sample->footprint_bytes);
    put_u16(payload, static_cast<u16>(sample->nodes.size()));
    for (const MonitorNodeCounters& node : sample->nodes) {
      put_u64(payload, node.instructions);
      put_u64(payload, node.cycles);
      put_u64(payload, node.local_dram);
      put_u64(payload, node.remote_dram);
      put_u64(payload, node.remote_hitm);
      put_u64(payload, node.imc_reads);
      put_u64(payload, node.imc_writes);
      put_u64(payload, node.qpi_flits);
      put_u64(payload, node.resident_bytes);
    }
    return kTypeMonitorSample;
  }
  if (const Heartbeat* heartbeat = std::get_if<Heartbeat>(&message)) {
    put_u16(payload, heartbeat->epoch);
    put_u32(payload, heartbeat->seq);
    put_u64(payload, heartbeat->timestamp);
    return kTypeHeartbeat;
  }
  if (const Resume* resume = std::get_if<Resume>(&message)) {
    NPAT_CHECK_MSG(resume->role <= kResumeCollector, "invalid Resume role");
    payload.push_back(resume->role);
    put_u16(payload, resume->epoch);
    put_u32(payload, resume->seq);
    return kTypeResume;
  }
  if (const SequencedMsg* envelope = std::get_if<SequencedMsg>(&message)) {
    NPAT_CHECK_MSG(envelope->inner_type != kTypeSequenced, "sequence envelopes never nest");
    NPAT_CHECK_MSG(kSequencedPrefixBytes + envelope->inner_payload.size() <= 0xFFFF,
                   "inner payload too large for a sequence envelope");
    put_u16(payload, envelope->epoch);
    put_u32(payload, envelope->seq);
    payload.push_back(envelope->inner_type);
    payload.insert(payload.end(), envelope->inner_payload.begin(), envelope->inner_payload.end());
    return kTypeSequenced;
  }
  if (const StampedMsg* stamped = std::get_if<StampedMsg>(&message)) {
    NPAT_CHECK_MSG(stamped->inner_type != kTypeStamped && stamped->inner_type != kTypeSequenced,
                   "emit stamps annotate data frames, never envelopes");
    NPAT_CHECK_MSG(kStampedPrefixBytes + stamped->inner_payload.size() <= 0xFFFF,
                   "inner payload too large for an emit-stamp annotation");
    put_u64(payload, stamped->emit_timestamp);
    payload.push_back(stamped->inner_type);
    payload.insert(payload.end(), stamped->inner_payload.begin(), stamped->inner_payload.end());
    return kTypeStamped;
  }
  if (const TaskTableMsg* table = std::get_if<TaskTableMsg>(&message)) {
    put_u16(payload, static_cast<u16>(table->entries.size()));
    for (const TaskTableEntry& entry : table->entries) {
      NPAT_CHECK_MSG(entry.process_name.size() <= kMaxTaskNameBytes &&
                         entry.thread_name.size() <= kMaxTaskNameBytes,
                     "task name too long for TaskTable frame");
      put_u32(payload, entry.task_id);
      put_u32(payload, entry.pid);
      put_u32(payload, entry.tid);
      payload.push_back(static_cast<u8>(entry.process_name.size()));
      payload.insert(payload.end(), entry.process_name.begin(), entry.process_name.end());
      payload.push_back(static_cast<u8>(entry.thread_name.size()));
      payload.insert(payload.end(), entry.thread_name.begin(), entry.thread_name.end());
    }
    NPAT_CHECK_MSG(table->entries.size() <= 0xFFFF && payload.size() <= 0xFFFF,
                   "too many task entries for one TaskTable frame");
    return kTypeTaskTable;
  }
  if (const TaskSampleMsg* sample = std::get_if<TaskSampleMsg>(&message)) {
    put_u64(payload, sample->timestamp);
    put_u16(payload, static_cast<u16>(sample->rows.size()));
    for (const TaskSampleRow& row : sample->rows) {
      NPAT_CHECK_MSG(row.areas.size() <= 0xFF, "too many hot areas for one task sample row");
      put_u32(payload, row.task_id);
      put_u32(payload, row.node);
      put_u64(payload, row.instructions);
      put_u64(payload, row.cycles);
      put_u64(payload, row.local_dram);
      put_u64(payload, row.remote_dram);
      put_u64(payload, row.remote_hitm);
      put_u64(payload, row.loads);
      put_u64(payload, row.latency_sum);
      put_u64(payload, row.latency_loads);
      payload.push_back(static_cast<u8>(row.areas.size()));
      for (const TaskAreaCounters& area : row.areas) {
        put_u64(payload, area.base);
        put_u64(payload, area.samples);
      }
    }
    NPAT_CHECK_MSG(sample->rows.size() <= 0xFFFF && payload.size() <= 0xFFFF,
                   "too many task rows for one TaskSample frame");
    return kTypeTaskSample;
  }
  put_u64(payload, std::get<End>(message).total_cycles);
  return kTypeEnd;
}

/// Parses one CRC-verified payload; nullopt for malformed payloads and
/// unknown (future-version) types. Shared by the Decoder and by
/// unwrap_sequenced(), so an envelope's inner message obeys exactly the
/// same validation as a bare frame.
std::optional<Message> parse_payload(u8 type, const u8* payload, usize payload_len) {
  switch (type) {
    case kTypeHello:
      // v1/v2 layout: version(1) node_count(4). v3+ appends
      // host_len(1) + host bytes; the length must account exactly.
      if (payload_len >= 5) {
        Hello hello;
        hello.version = payload[0];
        hello.node_count = get_u32(payload + 1);
        if (payload_len == 5 && hello.version <= 2) {
          return hello;
        }
        if (payload_len >= 6 && payload_len == 6u + payload[5]) {
          hello.host_id.assign(reinterpret_cast<const char*>(payload + 6), payload[5]);
          return hello;
        }
      }
      break;
    case kTypeReading:
      if (payload_len == 32) {
        ReadingMsg msg;
        msg.reading.threshold = get_u64(payload);
        msg.reading.counted = get_u64(payload + 8);
        msg.reading.window_cycles = get_u64(payload + 16);
        msg.reading.slices = get_u64(payload + 24);
        return msg;
      }
      break;
    case kTypeEnd:
      if (payload_len == 8) {
        return End{get_u64(payload)};
      }
      break;
    case kTypeMonitorSample:
      if (payload_len >= kMonitorHeaderBytes &&
          (payload_len - kMonitorHeaderBytes) % kMonitorNodeBytes == 0) {
        MonitorSampleMsg sample;
        sample.timestamp = get_u64(payload);
        sample.footprint_bytes = get_u64(payload + 8);
        const u16 node_count = get_u16(payload + 16);
        if (payload_len == kMonitorHeaderBytes + node_count * kMonitorNodeBytes) {
          sample.nodes.reserve(node_count);
          for (u16 i = 0; i < node_count; ++i) {
            const u8* p = payload + kMonitorHeaderBytes + i * kMonitorNodeBytes;
            MonitorNodeCounters node;
            node.instructions = get_u64(p);
            node.cycles = get_u64(p + 8);
            node.local_dram = get_u64(p + 16);
            node.remote_dram = get_u64(p + 24);
            node.remote_hitm = get_u64(p + 32);
            node.imc_reads = get_u64(p + 40);
            node.imc_writes = get_u64(p + 48);
            node.qpi_flits = get_u64(p + 56);
            node.resident_bytes = get_u64(p + 64);
            sample.nodes.push_back(node);
          }
          return sample;
        }
      }
      break;
    case kTypeTaskTable:
      // entry_count(2) then variable-length entries; the payload must
      // account byte-exactly (no trailing garbage, no short names).
      if (payload_len >= 2) {
        TaskTableMsg table;
        const u16 count = get_u16(payload);
        table.entries.reserve(count);
        usize off = 2;
        bool ok = true;
        for (u16 i = 0; i < count; ++i) {
          if (payload_len - off < kTaskEntryFixedBytes - 1) {
            ok = false;
            break;
          }
          TaskTableEntry entry;
          entry.task_id = get_u32(payload + off);
          entry.pid = get_u32(payload + off + 4);
          entry.tid = get_u32(payload + off + 8);
          const u8 pname_len = payload[off + 12];
          off += 13;
          if (payload_len - off < pname_len + 1u) {
            ok = false;
            break;
          }
          entry.process_name.assign(reinterpret_cast<const char*>(payload + off), pname_len);
          off += pname_len;
          const u8 tname_len = payload[off];
          off += 1;
          if (payload_len - off < tname_len) {
            ok = false;
            break;
          }
          entry.thread_name.assign(reinterpret_cast<const char*>(payload + off), tname_len);
          off += tname_len;
          table.entries.push_back(std::move(entry));
        }
        if (ok && off == payload_len) return table;
      }
      break;
    case kTypeTaskSample:
      if (payload_len >= kTaskSampleHeaderBytes) {
        TaskSampleMsg sample;
        sample.timestamp = get_u64(payload);
        const u16 row_count = get_u16(payload + 8);
        sample.rows.reserve(row_count);
        usize off = kTaskSampleHeaderBytes;
        bool ok = true;
        for (u16 i = 0; i < row_count; ++i) {
          if (payload_len - off < kTaskRowFixedBytes) {
            ok = false;
            break;
          }
          TaskSampleRow row;
          const u8* p = payload + off;
          row.task_id = get_u32(p);
          row.node = get_u32(p + 4);
          row.instructions = get_u64(p + 8);
          row.cycles = get_u64(p + 16);
          row.local_dram = get_u64(p + 24);
          row.remote_dram = get_u64(p + 32);
          row.remote_hitm = get_u64(p + 40);
          row.loads = get_u64(p + 48);
          row.latency_sum = get_u64(p + 56);
          row.latency_loads = get_u64(p + 64);
          const u8 area_count = p[72];
          off += kTaskRowFixedBytes;
          if (payload_len - off < area_count * kTaskAreaBytes) {
            ok = false;
            break;
          }
          row.areas.reserve(area_count);
          for (u8 a = 0; a < area_count; ++a) {
            row.areas.push_back(TaskAreaCounters{get_u64(payload + off), get_u64(payload + off + 8)});
            off += kTaskAreaBytes;
          }
          sample.rows.push_back(std::move(row));
        }
        if (ok && off == payload_len) return sample;
      }
      break;
    case kTypeHeartbeat:
      if (payload_len == 14) {
        Heartbeat heartbeat;
        heartbeat.epoch = get_u16(payload);
        heartbeat.seq = get_u32(payload + 2);
        heartbeat.timestamp = get_u64(payload + 6);
        return heartbeat;
      }
      break;
    case kTypeResume:
      if (payload_len == 7 && payload[0] <= kResumeCollector) {
        Resume resume;
        resume.role = payload[0];
        resume.epoch = get_u16(payload + 1);
        resume.seq = get_u32(payload + 3);
        return resume;
      }
      break;
    case kTypeStamped:
      // The stamp is the innermost envelope: an inner stamp or sequence
      // envelope is malformed, not a recursion invitation.
      if (payload_len >= kStampedPrefixBytes && payload[8] != kTypeStamped &&
          payload[8] != kTypeSequenced) {
        StampedMsg stamped;
        stamped.emit_timestamp = get_u64(payload);
        stamped.inner_type = payload[8];
        stamped.inner_payload.assign(payload + kStampedPrefixBytes, payload + payload_len);
        return stamped;
      }
      break;
    case kTypeSequenced:
      // Envelopes never nest; a sequenced inner type is malformed, not
      // a recursion invitation.
      if (payload_len >= kSequencedPrefixBytes && payload[6] != kTypeSequenced) {
        SequencedMsg envelope;
        envelope.epoch = get_u16(payload);
        envelope.seq = get_u32(payload + 2);
        envelope.inner_type = payload[6];
        envelope.inner_payload.assign(payload + kSequencedPrefixBytes, payload + payload_len);
        return envelope;
      }
      break;
    default:
      break;  // unknown (future-version) type
  }
  return std::nullopt;
}

}  // namespace

u32 crc32(const u8* data, usize length) {
  const auto& table = crc_table();
  u32 crc = 0xFFFFFFFFu;
  for (usize i = 0; i < length; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<u8> encode(const Message& message) {
  std::vector<u8> payload;
  const u8 type = encode_payload(message, payload);

  std::vector<u8> frame;
  frame.reserve(kHeaderBytes + payload.size() + kCrcBytes);
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(type);
  NPAT_CHECK_MSG(payload.size() <= 0xFFFF, "payload too large for frame");
  put_u16(frame, static_cast<u16>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, crc32(payload.data(), payload.size()));
  return frame;
}

SequencedMsg wrap_sequenced(u16 epoch, u32 seq, const Message& inner) {
  NPAT_CHECK_MSG(!std::holds_alternative<SequencedMsg>(inner), "sequence envelopes never nest");
  SequencedMsg envelope;
  envelope.epoch = epoch;
  envelope.seq = seq;
  envelope.inner_type = encode_payload(inner, envelope.inner_payload);
  return envelope;
}

std::optional<Message> unwrap_sequenced(const SequencedMsg& envelope) {
  return parse_payload(envelope.inner_type, envelope.inner_payload.data(),
                       envelope.inner_payload.size());
}

StampedMsg wrap_stamped(Cycles emit_timestamp, const Message& inner) {
  NPAT_CHECK_MSG(!std::holds_alternative<StampedMsg>(inner) &&
                     !std::holds_alternative<SequencedMsg>(inner),
                 "emit stamps annotate data frames, never envelopes");
  StampedMsg stamped;
  stamped.emit_timestamp = emit_timestamp;
  stamped.inner_type = encode_payload(inner, stamped.inner_payload);
  return stamped;
}

std::optional<Message> unwrap_stamped(const StampedMsg& stamped) {
  return parse_payload(stamped.inner_type, stamped.inner_payload.data(),
                       stamped.inner_payload.size());
}

void Decoder::feed(const std::vector<u8>& bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void Decoder::discard(usize bytes) {
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(bytes));
}

std::optional<Message> Decoder::poll() {
  for (;;) {
    // Resync: discard bytes until a magic sequence starts the buffer.
    usize skipped = 0;
    while (buffer_.size() >= 2 && !(buffer_[0] == kMagic0 && buffer_[1] == kMagic1)) {
      buffer_.erase(buffer_.begin());
      ++skipped;
    }
    if (skipped > 0) {
      ++resyncs_;
      NPAT_OBS_COUNT("npat_wire_resync_skipped_bytes_total",
                     "Garbage bytes discarded while hunting for frame magic", skipped);
    }

    usize frame_len = 0;
    if (buffer_.size() >= kHeaderBytes) {
      frame_len = kHeaderBytes + get_u16(&buffer_[3]) + kCrcBytes;
    }
    if (frame_len == 0 || buffer_.size() < frame_len) {
      if (!finished_ || buffer_.size() < 2) return std::nullopt;
      // End of stream: this header (or the length it advertises — possibly
      // corrupted upward) can never complete. Treat it as a damaged frame
      // and rescan for intact frames behind the magic bytes.
      ++dropped_;
      ++truncated_;
      NPAT_OBS_COUNT("npat_wire_truncated_flushes_total",
                     "Incomplete frames flushed at end of stream", 1);
      NPAT_OBS_COUNT("npat_wire_dropped_frames_total", "Frames dropped by the decoder", 1);
      discard(2);
      continue;
    }

    const u8 type = buffer_[2];
    const usize payload_len = frame_len - kHeaderBytes - kCrcBytes;
    const u8* payload = buffer_.data() + kHeaderBytes;
    const u32 expected_crc = get_u32(payload + payload_len);
    if (crc32(payload, payload_len) != expected_crc) {
      // The frame is damaged, so its length field cannot be trusted:
      // skipping the advertised length could swallow intact successors.
      // Drop only the magic bytes and resynchronize.
      ++dropped_;
      NPAT_OBS_COUNT("npat_wire_crc_failures_total", "Frames rejected by CRC-32 check", 1);
      NPAT_OBS_COUNT("npat_wire_dropped_frames_total", "Frames dropped by the decoder", 1);
      discard(2);
      continue;
    }

    std::optional<Message> message = parse_payload(type, payload, payload_len);

    // The CRC passed, so the length field is trustworthy: skipping the
    // whole frame is safe even for unknown or malformed-payload types.
    discard(frame_len);
    if (message) {
      NPAT_OBS_COUNT("npat_wire_frames_decoded_total", "Frames decoded successfully", 1);
      return message;
    }
    ++dropped_;
    NPAT_OBS_COUNT("npat_wire_dropped_frames_total", "Frames dropped by the decoder", 1);
    // Loop: try the next frame in the buffer.
  }
}

}  // namespace npat::memhist::wire
