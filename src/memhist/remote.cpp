#include "memhist/remote.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace npat::memhist {

Probe::Probe(std::shared_ptr<util::ByteChannel> channel) : channel_(std::move(channel)) {
  NPAT_CHECK_MSG(channel_ != nullptr, "probe needs a channel");
}

void Probe::send_hello(u32 node_count) {
  channel_->send(wire::encode(wire::Hello{wire::kProtocolVersion, node_count}));
  ++frames_sent_;
}

void Probe::send_reading(const ThresholdReading& reading) {
  channel_->send(wire::encode(wire::ReadingMsg{reading}));
  ++frames_sent_;
}

void Probe::send_readings(const std::vector<ThresholdReading>& readings) {
  for (const auto& reading : readings) send_reading(reading);
}

void Probe::send_end(Cycles total_cycles) {
  channel_->send(wire::encode(wire::End{total_cycles}));
  ++frames_sent_;
}

GuiCollector::GuiCollector(std::shared_ptr<util::ByteChannel> channel)
    : channel_(std::move(channel)) {
  NPAT_CHECK_MSG(channel_ != nullptr, "collector needs a channel");
}

void GuiCollector::poll() {
  for (;;) {
    const auto bytes = channel_->recv(4096);
    if (bytes.empty()) break;
    decoder_.feed(bytes);
  }
  while (auto message = decoder_.poll()) {
    if (const auto* hello = std::get_if<wire::Hello>(&*message)) {
      hello_ = *hello;
    } else if (const auto* reading = std::get_if<wire::ReadingMsg>(&*message)) {
      // Accumulate by threshold: multiple sends for the same threshold are
      // merged, mirroring the probe-side accumulation semantics.
      bool merged = false;
      for (auto& existing : readings_) {
        if (existing.threshold == reading->reading.threshold) {
          existing.counted += reading->reading.counted;
          existing.window_cycles += reading->reading.window_cycles;
          existing.slices += reading->reading.slices;
          merged = true;
          break;
        }
      }
      if (!merged) readings_.push_back(reading->reading);
    } else if (const auto* end = std::get_if<wire::End>(&*message)) {
      total_cycles_ = end->total_cycles;
    }
  }
}

LatencyHistogram GuiCollector::build(HistogramMode mode) const {
  NPAT_CHECK_MSG(ended(), "collector has not received the end-of-session frame");
  std::vector<ThresholdReading> sorted = readings_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ThresholdReading& a, const ThresholdReading& b) {
              return a.threshold < b.threshold;
            });
  return MemhistBuilder::build(sorted, *total_cycles_, mode);
}

}  // namespace npat::memhist
