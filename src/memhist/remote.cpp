#include "memhist/remote.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace npat::memhist {

Probe::Probe(std::shared_ptr<util::ByteChannel> channel) : channel_(std::move(channel)) {
  NPAT_CHECK_MSG(channel_ != nullptr, "probe needs a channel");
}

void Probe::send_frame(const wire::Message& message, bool stampable) {
  // Sampled emit stamping (protocol v6): every Nth data frame carries the
  // probe clock so the collector can attribute per-hop latency. Control
  // frames (Hello) stay bare — they predate the handshake's clock origin.
  std::vector<u8> frame;
  if (stampable && stamp_interval_ > 0 && data_frames_++ % stamp_interval_ == 0) {
    ++stamped_frames_;
    frame = wire::encode(wire::Message{wire::wrap_stamped(clock_, message)});
  } else {
    frame = wire::encode(message);
  }
  // Only frames the channel accepted count as sent; a closed channel's
  // rejections are accounted separately so the probe's tally reconciles
  // with what could ever reach the collector.
  if (channel_->send(frame)) {
    ++frames_sent_;
  } else {
    ++send_failures_;
    NPAT_OBS_COUNT("npat_remote_send_failures_total",
                   "Probe frames rejected by a closed channel", 1);
  }
}

void Probe::send_hello(u32 node_count, const std::string& host_id) {
  send_frame(wire::Hello{wire::kProtocolVersion, node_count, host_id}, /*stampable=*/false);
}

void Probe::send_reading(const ThresholdReading& reading) {
  send_frame(wire::ReadingMsg{reading});
}

void Probe::send_readings(const std::vector<ThresholdReading>& readings) {
  for (const auto& reading : readings) send_reading(reading);
}

void Probe::send_sample(const wire::MonitorSampleMsg& sample) { send_frame(sample); }

void Probe::send_task_table(const wire::TaskTableMsg& table) { send_frame(table); }

void Probe::send_task_sample(const wire::TaskSampleMsg& sample) { send_frame(sample); }

void Probe::send_end(Cycles total_cycles) { send_frame(wire::End{total_cycles}); }

GuiCollector::GuiCollector(std::shared_ptr<util::ByteChannel> channel)
    : channel_(std::move(channel)) {
  NPAT_CHECK_MSG(channel_ != nullptr, "collector needs a channel");
}

void GuiCollector::poll() {
  for (;;) {
    const auto bytes = channel_->recv(4096);
    if (bytes.empty()) break;
    decoder_.feed(bytes);
  }
  // The channel is drained; if it is also closed, a partially received
  // frame can never complete. Signal end of stream so the decoder flushes
  // and counts the truncation instead of waiting forever (mirrors
  // monitor::decode_stream).
  if (channel_->closed()) decoder_.finish();
  while (auto message = decoder_.poll()) {
    // Emit-stamp annotations (v6) are transparent to this collector: it
    // does not measure latency, so it unwraps and processes the inner
    // frame as if the stamp were never there.
    if (const auto* stamped = std::get_if<wire::StampedMsg>(&*message)) {
      std::optional<wire::Message> inner = wire::unwrap_stamped(*stamped);
      if (!inner.has_value()) {
        ++unexpected_frames_;
        NPAT_OBS_COUNT("npat_remote_unexpected_frames_total",
                       "Valid frames of a type the collector has no use for", 1);
        continue;
      }
      message = std::move(inner);
    }
    if (const auto* hello = std::get_if<wire::Hello>(&*message)) {
      hello_ = *hello;
    } else if (const auto* reading = std::get_if<wire::ReadingMsg>(&*message)) {
      // Accumulate by threshold: multiple sends for the same threshold are
      // merged, mirroring the probe-side accumulation semantics.
      bool merged = false;
      for (auto& existing : readings_) {
        if (existing.threshold == reading->reading.threshold) {
          existing.counted += reading->reading.counted;
          existing.window_cycles += reading->reading.window_cycles;
          existing.slices += reading->reading.slices;
          merged = true;
          break;
        }
      }
      if (!merged) readings_.push_back(reading->reading);
    } else if (const auto* end = std::get_if<wire::End>(&*message)) {
      total_cycles_ = end->total_cycles;
    } else {
      // Valid frame, wrong session kind (e.g. MonitorSampleMsg telemetry
      // in a histogram stream): useless here, but account for it so the
      // transport's loss tally stays complete.
      ++unexpected_frames_;
      NPAT_OBS_COUNT("npat_remote_unexpected_frames_total",
                     "Valid frames of a type the collector has no use for", 1);
    }
  }
}

LatencyHistogram GuiCollector::build(HistogramMode mode) const {
  NPAT_CHECK_MSG(ended(), "collector has not received the end-of-session frame");
  std::vector<ThresholdReading> sorted = readings_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ThresholdReading& a, const ThresholdReading& b) {
              return a.threshold < b.threshold;
            });
  return MemhistBuilder::build(sorted, *total_cycles_, mode);
}

}  // namespace npat::memhist
