// Task registry: the collector-side (and probe-side) table binding compact
// wire task ids to (pid, tid) identities and human-readable names — the
// in-memory mirror of protocol v5's TaskTable frames. numatop keeps the
// same structure scraped from /proc; here the simulated workload's
// trace::TaskSpec list seeds it instead.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "memhist/wire.hpp"
#include "monitor/export.hpp"
#include "trace/runner.hpp"
#include "util/types.hpp"

namespace npat::proc {

struct TaskId {
  u32 pid = 0;
  u32 tid = 0;

  friend auto operator<=>(const TaskId&, const TaskId&) = default;
};

struct TaskInfo {
  u32 pid = 0;
  u32 tid = 0;
  std::string process_name;
  std::string thread_name;

  friend bool operator==(const TaskInfo&, const TaskInfo&) = default;
};

class TaskRegistry {
 public:
  /// Registers a task, assigning the next compact id; idempotent by
  /// (pid, tid) — re-registration updates names and returns the same id.
  u32 add(TaskInfo info);

  /// Registers under an explicit wire id (collector side, folding a
  /// TaskTable frame). A clashing id for a different identity rebinds the
  /// id — the probe owns the id space.
  void add_with_id(u32 task_id, TaskInfo info);

  /// Registers every task a run of `program` will produce (see
  /// trace::resolved_tasks).
  void add_program(const trace::Program& program);

  const TaskInfo* find(u32 task_id) const;
  const TaskInfo* find_identity(u32 pid, u32 tid) const;
  std::optional<u32> id_of(u32 pid, u32 tid) const;
  usize size() const noexcept { return by_id_.size(); }

  // --- bridges -------------------------------------------------------------
  /// (pid, tid) -> wire id, for monitor::to_wire_tasks.
  std::map<std::pair<u32, u32>, u32> task_ids() const;
  /// wire id -> (pid, tid), for monitor::from_wire_tasks.
  std::map<u32, std::pair<u32, u32>> identities() const;
  /// Name lookup for monitor's CSV/JSON task exports.
  monitor::TaskNameTable name_table() const;

  /// All registered tasks as one TaskTable frame (ids ascending).
  memhist::wire::TaskTableMsg to_wire() const;
  /// Tasks registered since the last call, as TaskTable entries — what an
  /// incremental probe announces before the next sample frame. Marks them
  /// announced.
  std::vector<memhist::wire::TaskTableEntry> take_unannounced();
  /// Folds a received TaskTable frame (collector side).
  void merge_wire(const memhist::wire::TaskTableMsg& table);

 private:
  std::map<u32, TaskInfo> by_id_;
  std::map<TaskId, u32> by_identity_;
  std::vector<u32> unannounced_;
  u32 next_id_ = 1;
};

}  // namespace npat::proc
