#include "proc/drill.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"
#include "util/ansi.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::proc {

namespace {

util::Style remote_style(double remote_ratio, const DrillOptions& options) {
  if (remote_ratio >= options.bad_remote_ratio) return util::Style::kRed;
  if (remote_ratio >= options.warn_remote_ratio) return util::Style::kYellow;
  return util::Style::kGreen;
}

std::string count(u64 value) { return util::si_scaled(static_cast<double>(value)); }

std::string ratio(double value) { return util::format("%5.2f", value); }

std::string percent(double value) { return util::format("%5.1f%%", value * 100.0); }

/// Sum of every task in a window — the fleet host-row totals.
monitor::TaskStats total_of(const monitor::TaskWindowStats& window) {
  monitor::TaskStats total;
  for (const monitor::TaskStats& task : window.tasks) {
    total.samples += task.samples;
    total.instructions += task.instructions;
    total.cycles += task.cycles;
    total.local_dram += task.local_dram;
    total.remote_dram += task.remote_dram;
    total.remote_hitm += task.remote_hitm;
    total.loads += task.loads;
    total.latency_sum += task.latency_sum;
    total.latency_loads += task.latency_loads;
  }
  return total;
}

const char* process_name_of(const TaskRegistry* registry, u32 pid, u32 tid) {
  if (registry == nullptr) return "";
  const TaskInfo* info = registry->find_identity(pid, tid);
  return info != nullptr ? info->process_name.c_str() : "";
}

const char* thread_name_of(const TaskRegistry* registry, u32 pid, u32 tid) {
  if (registry == nullptr) return "";
  const TaskInfo* info = registry->find_identity(pid, tid);
  return info != nullptr ? info->thread_name.c_str() : "";
}

/// The numatop metric columns shared by process and thread rows.
void push_metric_cells(std::vector<util::Cell>& cells, const monitor::TaskStats& stats,
                       const DrillOptions& options, util::Style base) {
  cells.push_back({count(stats.rma()), base});
  cells.push_back({count(stats.lma()), base});
  cells.push_back({ratio(stats.rma_lma_ratio()), base});
  cells.push_back({ratio(stats.cpi()), base});
  cells.push_back({util::format("%6.1f", stats.avg_load_latency()), base});
  cells.push_back({percent(stats.remote_ratio()),
                   base == util::Style::kDim ? base : remote_style(stats.remote_ratio(), options)});
}

std::vector<std::string> metric_headers() {
  return {"RMA", "LMA", "RMA/LMA", "CPI", "Lat(cyc)", "Remote%"};
}

}  // namespace

const char* drill_level_name(DrillLevel level) {
  switch (level) {
    case DrillLevel::kTop:
      return "top";
    case DrillLevel::kProcesses:
      return "processes";
    case DrillLevel::kThreads:
      return "threads";
    case DrillLevel::kAreas:
      return "areas";
  }
  return "?";
}

std::vector<ProcessRow> process_rows(const monitor::TaskWindowStats& window,
                                     const TaskRegistry* registry,
                                     std::optional<u32> node_filter) {
  std::map<u32, ProcessRow> by_pid;
  std::map<u32, std::map<u32, u64>> node_cycles;  // pid -> node -> cycles
  for (const monitor::TaskStats& task : window.tasks) {
    if (node_filter && task.node != *node_filter) continue;
    ProcessRow& row = by_pid[task.pid];
    if (row.threads == 0) {
      row.pid = task.pid;
      row.name = process_name_of(registry, task.pid, task.tid);
    }
    ++row.threads;
    monitor::TaskStats& stats = row.stats;
    stats.samples += task.samples;
    stats.instructions += task.instructions;
    stats.cycles += task.cycles;
    stats.local_dram += task.local_dram;
    stats.remote_dram += task.remote_dram;
    stats.remote_hitm += task.remote_hitm;
    stats.loads += task.loads;
    stats.latency_sum += task.latency_sum;
    stats.latency_loads += task.latency_loads;
    node_cycles[task.pid][task.node] += task.cycles;
  }
  std::vector<ProcessRow> rows;
  rows.reserve(by_pid.size());
  for (auto& [pid, row] : by_pid) {
    u64 best = 0;
    for (const auto& [node, cycles] : node_cycles[pid]) {
      if (cycles > best) {
        best = cycles;
        row.stats.node = node;
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const ProcessRow& a, const ProcessRow& b) {
    if (a.stats.rma() != b.stats.rma()) return a.stats.rma() > b.stats.rma();
    if (a.stats.cycles != b.stats.cycles) return a.stats.cycles > b.stats.cycles;
    return a.pid < b.pid;
  });
  return rows;
}

std::vector<monitor::TaskStats> thread_rows(const monitor::TaskWindowStats& window, u32 pid) {
  std::vector<monitor::TaskStats> rows;
  for (const monitor::TaskStats& task : window.tasks) {
    if (task.pid == pid) rows.push_back(task);
  }
  std::sort(rows.begin(), rows.end(),
            [](const monitor::TaskStats& a, const monitor::TaskStats& b) {
              if (a.rma() != b.rma()) return a.rma() > b.rma();
              if (a.cycles != b.cycles) return a.cycles > b.cycles;
              return a.tid < b.tid;
            });
  return rows;
}

std::optional<u32> DrillDown::node_filter() const noexcept {
  if (fleet_ || level_ == DrillLevel::kTop) return std::nullopt;
  return node_;
}

usize DrillDown::rows_at_level(const DrillScope& scope) const {
  switch (level_) {
    case DrillLevel::kTop:
      return scope.fleet() ? scope.hosts.size()
                           : (scope.nodes != nullptr ? scope.nodes->nodes.size() : 0);
    case DrillLevel::kProcesses:
      return process_rows(scope.tasks, scope.registry, node_filter()).size();
    case DrillLevel::kThreads:
      return thread_rows(scope.tasks, pid_).size();
    case DrillLevel::kAreas: {
      const monitor::TaskStats* task = scope.tasks.find(pid_, tid_);
      return task != nullptr ? task->areas.size() : 0;
    }
  }
  return 0;
}

void DrillDown::descend(const DrillScope& scope) {
  switch (level_) {
    case DrillLevel::kTop: {
      const usize rows = rows_at_level(scope);
      if (cursor_ >= rows) return;
      if (scope.fleet()) {
        host_ = cursor_;
      } else {
        node_ = static_cast<u32>(cursor_);
      }
      level_ = DrillLevel::kProcesses;
      cursor_ = 0;
      return;
    }
    case DrillLevel::kProcesses: {
      const std::vector<ProcessRow> rows =
          process_rows(scope.tasks, scope.registry, node_filter());
      if (cursor_ >= rows.size()) return;
      pid_ = rows[cursor_].pid;
      level_ = DrillLevel::kThreads;
      cursor_ = 0;
      return;
    }
    case DrillLevel::kThreads: {
      const std::vector<monitor::TaskStats> rows = thread_rows(scope.tasks, pid_);
      if (cursor_ >= rows.size()) return;
      tid_ = rows[cursor_].tid;
      level_ = DrillLevel::kAreas;
      cursor_ = 0;
      return;
    }
    case DrillLevel::kAreas:
      return;  // leaf
  }
}

void DrillDown::ascend() {
  if (level_ == DrillLevel::kTop) return;
  level_ = static_cast<DrillLevel>(static_cast<u8>(level_) - 1);
  cursor_ = 0;
}

void DrillDown::apply_key(char key, const DrillScope& scope) {
  NPAT_OBS_COUNT("npat_proc_drill_keys_total", "Drill-down keys applied", 1);
  if (key >= '0' && key <= '9') {
    const usize target = static_cast<usize>(key - '0');
    if (target < rows_at_level(scope)) cursor_ = target;
    return;
  }
  switch (key) {
    case 'j':
      if (cursor_ + 1 < rows_at_level(scope)) ++cursor_;
      return;
    case 'k':
      if (cursor_ > 0) --cursor_;
      return;
    case 'd':
    case '\n':
    case '\r':
      descend(scope);
      return;
    case 'u':
    case 'b':
      ascend();
      return;
    case 'q':
      quit_ = true;
      return;
    default:
      return;  // ignore unknown keys ('.' is the scripted no-op)
  }
}

std::string DrillDown::breadcrumb(const DrillScope& scope) const {
  if (level_ == DrillLevel::kTop) return scope.fleet() ? "fleet" : "nodes";
  std::string out;
  if (scope.fleet()) {
    out = "host " + (host_ < scope.hosts.size() ? scope.hosts[host_] : util::format("%zu", host_));
  } else {
    out = util::format("node %u", node_);
  }
  if (level_ >= DrillLevel::kThreads) {
    const char* name = process_name_of(scope.registry, pid_, 0);
    // Any thread of the pid names the process; tid 0 rarely exists, so
    // fall back to scanning the window for one.
    if (name[0] == '\0') {
      for (const monitor::TaskStats& task : scope.tasks.tasks) {
        if (task.pid == pid_) {
          name = process_name_of(scope.registry, task.pid, task.tid);
          break;
        }
      }
    }
    out += name[0] != '\0' ? util::format(" > pid %u (%s)", pid_, name)
                           : util::format(" > pid %u", pid_);
  }
  if (level_ >= DrillLevel::kAreas) {
    const char* name = thread_name_of(scope.registry, pid_, tid_);
    out += name[0] != '\0' ? util::format(" > tid %u (%s)", tid_, name)
                           : util::format(" > tid %u", tid_);
  }
  return out;
}

std::string render_drill(const DrillDown& drill, const DrillScope& scope,
                         const DrillOptions& options) {
  std::string out;
  if (options.clear_screen && util::ansi_enabled()) out += "\x1b[H\x1b[2J";
  out += util::format("%s — %s [%s]  t=%s cycles  window=%s cycles  tasks=%zu\n",
                      options.title.c_str(), drill.breadcrumb(scope).c_str(),
                      drill_level_name(drill.level()),
                      util::si_scaled(static_cast<double>(scope.tasks.end)).c_str(),
                      util::si_scaled(static_cast<double>(scope.tasks.end - scope.tasks.start))
                          .c_str(),
                      scope.tasks.tasks.size());

  const auto cursor_mark = [&drill](usize row) {
    return std::string(row == drill.cursor() ? ">" : " ");
  };
  const auto truncate = [&options](usize rows) {
    return options.max_rows > 0 ? std::min(rows, options.max_rows) : rows;
  };

  switch (drill.level()) {
    case DrillLevel::kTop: {
      if (scope.fleet()) {
        std::vector<std::string> headers = {"", "Host"};
        for (std::string& h : metric_headers()) headers.push_back(std::move(h));
        util::Table table(std::move(headers));
        for (usize c = 2; c <= 7; ++c) table.set_align(c, util::Align::kRight);
        const usize rows = truncate(scope.hosts.size());
        for (usize i = 0; i < rows; ++i) {
          const monitor::TaskStats total = i < scope.host_tasks.size()
                                               ? total_of(scope.host_tasks[i])
                                               : monitor::TaskStats{};
          std::vector<util::Cell> cells;
          cells.push_back({cursor_mark(i), util::Style::kBold});
          cells.push_back({scope.hosts[i], util::Style::kNone});
          push_metric_cells(cells, total, options, util::Style::kNone);
          table.add_styled_row(std::move(cells));
        }
        out += table.render();
      } else if (scope.nodes != nullptr) {
        // Per-node latency comes from the task stream (NodeStats carries
        // no load-latency fields): sum tasks by dominant node.
        std::map<u32, std::pair<u64, u64>> latency_by_node;  // node -> (sum, loads)
        for (const monitor::TaskStats& task : scope.tasks.tasks) {
          latency_by_node[task.node].first += task.latency_sum;
          latency_by_node[task.node].second += task.latency_loads;
        }
        util::Table table({"", "Node", "RMA", "LMA", "RMA/LMA", "CPI", "Lat(cyc)", "Remote%"});
        for (usize c = 2; c <= 7; ++c) table.set_align(c, util::Align::kRight);
        const usize rows = truncate(scope.nodes->nodes.size());
        for (usize node = 0; node < rows; ++node) {
          const monitor::NodeStats& stats = scope.nodes->nodes[node];
          const u64 rma = stats.remote_dram + stats.remote_hitm;
          const double cpi = stats.instructions == 0
                                 ? 0.0
                                 : static_cast<double>(stats.cycles) /
                                       static_cast<double>(stats.instructions);
          const auto latency = latency_by_node.find(static_cast<u32>(node));
          const double avg_latency =
              latency != latency_by_node.end() && latency->second.second > 0
                  ? static_cast<double>(latency->second.first) /
                        static_cast<double>(latency->second.second)
                  : 0.0;
          const bool idle = stats.instructions == 0;
          const util::Style base = idle ? util::Style::kDim : util::Style::kNone;
          std::vector<util::Cell> cells;
          cells.push_back({cursor_mark(node), util::Style::kBold});
          cells.push_back({util::format("%zu", node), base});
          cells.push_back({count(rma), base});
          cells.push_back({count(stats.local_dram), base});
          cells.push_back({ratio(stats.local_dram == 0
                                     ? 0.0
                                     : static_cast<double>(rma) /
                                           static_cast<double>(stats.local_dram)),
                           base});
          cells.push_back({ratio(cpi), base});
          cells.push_back({util::format("%6.1f", avg_latency), base});
          cells.push_back({percent(stats.remote_ratio()),
                           idle ? base : remote_style(stats.remote_ratio(), options)});
          table.add_styled_row(std::move(cells));
        }
        out += table.render();
      }
      break;
    }
    case DrillLevel::kProcesses: {
      const std::vector<ProcessRow> rows =
          process_rows(scope.tasks, scope.registry, drill.node_filter());
      std::vector<std::string> headers = {"", "PID", "Process", "Thr", "Node"};
      for (std::string& h : metric_headers()) headers.push_back(std::move(h));
      util::Table table(std::move(headers));
      for (usize c = 5; c <= 10; ++c) table.set_align(c, util::Align::kRight);
      const usize shown = truncate(rows.size());
      for (usize i = 0; i < shown; ++i) {
        const ProcessRow& row = rows[i];
        std::vector<util::Cell> cells;
        cells.push_back({cursor_mark(i), util::Style::kBold});
        cells.push_back({util::format("%u", row.pid), util::Style::kNone});
        cells.push_back({row.name, util::Style::kNone});
        cells.push_back({util::format("%u", row.threads), util::Style::kNone});
        cells.push_back({util::format("%u", row.stats.node), util::Style::kNone});
        push_metric_cells(cells, row.stats, options, util::Style::kNone);
        table.add_styled_row(std::move(cells));
      }
      out += table.render();
      if (shown < rows.size()) {
        out += util::format("… %zu more processes\n", rows.size() - shown);
      }
      break;
    }
    case DrillLevel::kThreads: {
      const std::vector<monitor::TaskStats> rows = thread_rows(scope.tasks, drill.selected_pid());
      std::vector<std::string> headers = {"", "TID", "Thread", "Node"};
      for (std::string& h : metric_headers()) headers.push_back(std::move(h));
      util::Table table(std::move(headers));
      for (usize c = 4; c <= 9; ++c) table.set_align(c, util::Align::kRight);
      const usize shown = truncate(rows.size());
      for (usize i = 0; i < shown; ++i) {
        const monitor::TaskStats& row = rows[i];
        std::vector<util::Cell> cells;
        cells.push_back({cursor_mark(i), util::Style::kBold});
        cells.push_back({util::format("%u", row.tid), util::Style::kNone});
        cells.push_back({thread_name_of(scope.registry, row.pid, row.tid), util::Style::kNone});
        cells.push_back({util::format("%u", row.node), util::Style::kNone});
        push_metric_cells(cells, row, options, util::Style::kNone);
        table.add_styled_row(std::move(cells));
      }
      out += table.render();
      break;
    }
    case DrillLevel::kAreas: {
      const monitor::TaskStats* task =
          scope.tasks.find(drill.selected_pid(), drill.selected_tid());
      util::Table table({"", "Area", "Samples", "Share"});
      table.set_align(2, util::Align::kRight);
      table.set_align(3, util::Align::kRight);
      if (task != nullptr) {
        u64 total_samples = 0;
        for (const monitor::TaskArea& area : task->areas) total_samples += area.samples;
        const usize shown = truncate(task->areas.size());
        for (usize i = 0; i < shown; ++i) {
          const monitor::TaskArea& area = task->areas[i];
          const double share = total_samples == 0 ? 0.0
                                                  : static_cast<double>(area.samples) /
                                                        static_cast<double>(total_samples);
          std::vector<util::Cell> cells;
          cells.push_back({cursor_mark(i), util::Style::kBold});
          cells.push_back({util::format("0x%012llx",
                                        static_cast<unsigned long long>(area.base)),
                           util::Style::kNone});
          cells.push_back({util::format("%llu", static_cast<unsigned long long>(area.samples)),
                           util::Style::kNone});
          cells.push_back({percent(share), util::Style::kNone});
          table.add_styled_row(std::move(cells));
        }
      }
      out += table.render();
      break;
    }
  }

  out += "keys: 0-9 select  j/k move  d drill  u up  q quit\n";
  return out;
}

}  // namespace npat::proc
