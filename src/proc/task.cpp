#include "proc/task.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace npat::proc {

u32 TaskRegistry::add(TaskInfo info) {
  const TaskId identity{info.pid, info.tid};
  const auto it = by_identity_.find(identity);
  if (it != by_identity_.end()) {
    by_id_[it->second] = std::move(info);  // refresh names, keep the id
    return it->second;
  }
  const u32 id = next_id_++;
  by_identity_.emplace(identity, id);
  by_id_.emplace(id, std::move(info));
  unannounced_.push_back(id);
  NPAT_OBS_COUNT("npat_proc_tasks_registered_total", "Tasks registered in a TaskRegistry", 1);
  return id;
}

void TaskRegistry::add_with_id(u32 task_id, TaskInfo info) {
  const auto existing = by_id_.find(task_id);
  if (existing != by_id_.end()) {
    // Rebinding: drop the stale identity mapping for this id.
    by_identity_.erase(TaskId{existing->second.pid, existing->second.tid});
  }
  by_identity_[TaskId{info.pid, info.tid}] = task_id;
  by_id_[task_id] = std::move(info);
  next_id_ = std::max(next_id_, task_id + 1);
}

void TaskRegistry::add_program(const trace::Program& program) {
  for (const trace::TaskSpec& spec : trace::resolved_tasks(program)) {
    add(TaskInfo{spec.pid, spec.tid, spec.process_name, spec.thread_name});
  }
}

const TaskInfo* TaskRegistry::find(u32 task_id) const {
  const auto it = by_id_.find(task_id);
  return it != by_id_.end() ? &it->second : nullptr;
}

const TaskInfo* TaskRegistry::find_identity(u32 pid, u32 tid) const {
  const auto it = by_identity_.find(TaskId{pid, tid});
  return it != by_identity_.end() ? find(it->second) : nullptr;
}

std::optional<u32> TaskRegistry::id_of(u32 pid, u32 tid) const {
  const auto it = by_identity_.find(TaskId{pid, tid});
  return it != by_identity_.end() ? std::optional<u32>(it->second) : std::nullopt;
}

std::map<std::pair<u32, u32>, u32> TaskRegistry::task_ids() const {
  std::map<std::pair<u32, u32>, u32> out;
  for (const auto& [identity, id] : by_identity_) out[{identity.pid, identity.tid}] = id;
  return out;
}

std::map<u32, std::pair<u32, u32>> TaskRegistry::identities() const {
  std::map<u32, std::pair<u32, u32>> out;
  for (const auto& [id, info] : by_id_) out[id] = {info.pid, info.tid};
  return out;
}

monitor::TaskNameTable TaskRegistry::name_table() const {
  monitor::TaskNameTable out;
  for (const auto& [id, info] : by_id_) {
    out[{info.pid, info.tid}] = monitor::TaskNames{info.process_name, info.thread_name};
  }
  return out;
}

memhist::wire::TaskTableMsg TaskRegistry::to_wire() const {
  memhist::wire::TaskTableMsg table;
  table.entries.reserve(by_id_.size());
  for (const auto& [id, info] : by_id_) {
    table.entries.push_back(
        memhist::wire::TaskTableEntry{id, info.pid, info.tid, info.process_name,
                                      info.thread_name});
  }
  return table;
}

std::vector<memhist::wire::TaskTableEntry> TaskRegistry::take_unannounced() {
  std::vector<memhist::wire::TaskTableEntry> out;
  out.reserve(unannounced_.size());
  for (const u32 id : unannounced_) {
    const TaskInfo* info = find(id);
    if (info == nullptr) continue;  // rebound away before announcement
    out.push_back(memhist::wire::TaskTableEntry{id, info->pid, info->tid, info->process_name,
                                                info->thread_name});
  }
  unannounced_.clear();
  return out;
}

void TaskRegistry::merge_wire(const memhist::wire::TaskTableMsg& table) {
  for (const memhist::wire::TaskTableEntry& entry : table.entries) {
    add_with_id(entry.task_id,
                TaskInfo{entry.pid, entry.tid, entry.process_name, entry.thread_name});
  }
}

}  // namespace npat::proc
