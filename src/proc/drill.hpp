// Keyboard drill-down over per-task telemetry, numatop's interaction
// model: a top level of NUMA nodes (or fleet hosts), descending into the
// processes running there, a process's threads, and finally a thread's
// hot memory areas. Each level renders a numatop-style table (RMA, LMA,
// RMA/LMA ratio, CPI, average load latency); navigation state is a tiny
// pure state machine driven one key at a time, so scripted key sequences
// exercise it deterministically in tests and CI.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "monitor/aggregate.hpp"
#include "proc/task.hpp"
#include "util/types.hpp"

namespace npat::proc {

enum class DrillLevel : u8 { kTop = 0, kProcesses, kThreads, kAreas };

const char* drill_level_name(DrillLevel level);

/// Everything one refresh of the drill view navigates and renders.
/// Rebuilt by the caller per refresh; the DrillDown keeps only cursor and
/// selection state across refreshes.
struct DrillScope {
  /// Per-node window for the single-host top level. Ignored in fleet mode.
  const monitor::WindowStats* nodes = nullptr;
  /// Fleet mode: host labels for the top level (non-empty enables it).
  std::vector<std::string> hosts;
  /// Per-host task windows, parallel to `hosts` (fleet top-level totals).
  std::vector<monitor::TaskWindowStats> host_tasks;
  /// Task window of the drilled scope: the whole host in single-host
  /// mode, the selected host's merge in fleet mode.
  monitor::TaskWindowStats tasks;
  /// Names for pid/tid rows; optional.
  const TaskRegistry* registry = nullptr;

  bool fleet() const noexcept { return !hosts.empty(); }
};

/// One process row: threads of a pid aggregated (numatop's top-level
/// process table).
struct ProcessRow {
  u32 pid = 0;
  std::string name;
  u32 threads = 0;
  monitor::TaskStats stats;  // pid/tid meaningless on the aggregate
};

/// Processes in the window, heaviest RMA first. `node_filter` keeps only
/// tasks whose dominant node matches (the single-host drill path).
std::vector<ProcessRow> process_rows(const monitor::TaskWindowStats& window,
                                     const TaskRegistry* registry,
                                     std::optional<u32> node_filter);

/// Threads of `pid` in the window, heaviest RMA first.
std::vector<monitor::TaskStats> thread_rows(const monitor::TaskWindowStats& window, u32 pid);

struct DrillOptions {
  double warn_remote_ratio = 0.2;
  double bad_remote_ratio = 0.5;
  /// Rows rendered per level (heaviest first); 0 = unlimited.
  usize max_rows = 16;
  bool clear_screen = false;
  std::string title = "npat-top/proc";
};

/// Keys: '0'..'9' put the cursor on a row, 'j'/'k' move it down/up, 'd'
/// (or Enter) descends into the row under the cursor, 'u' (or 'b')
/// ascends, 'q' requests quit, anything else is ignored.
class DrillDown {
 public:
  explicit DrillDown(bool fleet = false) : fleet_(fleet) {}

  DrillLevel level() const noexcept { return level_; }
  usize cursor() const noexcept { return cursor_; }
  bool quit_requested() const noexcept { return quit_; }
  bool fleet() const noexcept { return fleet_; }

  /// Committed selections (valid at levels below the selecting one).
  usize selected_host() const noexcept { return host_; }
  u32 selected_node() const noexcept { return node_; }
  u32 selected_pid() const noexcept { return pid_; }
  u32 selected_tid() const noexcept { return tid_; }
  /// Node filter for process rows: the selected node in single-host mode,
  /// nullopt in fleet mode (hosts, not nodes, partition the fleet view).
  std::optional<u32> node_filter() const noexcept;

  /// Applies one key against the rows `scope` currently offers.
  void apply_key(char key, const DrillScope& scope);

  /// "node 1 > pid 42 (sort) > tid 3" — the path above the table.
  std::string breadcrumb(const DrillScope& scope) const;

 private:
  usize rows_at_level(const DrillScope& scope) const;
  void descend(const DrillScope& scope);
  void ascend();

  bool fleet_ = false;
  DrillLevel level_ = DrillLevel::kTop;
  usize cursor_ = 0;
  bool quit_ = false;
  usize host_ = 0;
  u32 node_ = 0;
  u32 pid_ = 0;
  u32 tid_ = 0;
};

/// Renders one frame of the drill view at the DrillDown's current level.
std::string render_drill(const DrillDown& drill, const DrillScope& scope,
                         const DrillOptions& options = {});

}  // namespace npat::proc
