#include "stats/ttest.hpp"

#include <cmath>
#include <vector>

#include "stats/tdist.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace npat::stats {

namespace {

TTestResult finish(double mean_a, double mean_b, double t, double df) {
  TTestResult r;
  r.mean_a = mean_a;
  r.mean_b = mean_b;
  r.mean_delta = mean_b - mean_a;
  r.relative_delta = mean_a != 0.0 ? r.mean_delta / std::fabs(mean_a) : 0.0;
  r.t = t;
  r.df = df;
  r.p_two_tailed = two_tailed_p(t, df);
  r.confidence = 1.0 - r.p_two_tailed;
  return r;
}

TTestResult degenerate_result(double mean_a, double mean_b) {
  // Zero variance on both sides: either identical (no evidence of change)
  // or deterministically different (infinitely strong evidence).
  TTestResult r;
  r.mean_a = mean_a;
  r.mean_b = mean_b;
  r.mean_delta = mean_b - mean_a;
  r.relative_delta = mean_a != 0.0 ? r.mean_delta / std::fabs(mean_a) : 0.0;
  if (mean_a == mean_b) {
    r.degenerate = true;
    r.p_two_tailed = 1.0;
    r.confidence = 0.0;
  } else {
    r.t = std::numeric_limits<double>::infinity();
    r.df = 1.0;
    r.p_two_tailed = 0.0;
    r.confidence = 1.0;
  }
  return r;
}

}  // namespace

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  NPAT_CHECK_MSG(a.size() >= 2 && b.size() >= 2, "t-test needs >= 2 samples per side");
  Accumulator acc_a;
  Accumulator acc_b;
  for (double v : a) acc_a.add(v);
  for (double v : b) acc_b.add(v);

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = acc_a.variance();  // Bessel-corrected
  const double vb = acc_b.variance();
  const double se2 = va / na + vb / nb;
  if (se2 <= 0.0) return degenerate_result(acc_a.mean(), acc_b.mean());

  const double t = (acc_b.mean() - acc_a.mean()) / std::sqrt(se2);
  // Welch–Satterthwaite degrees of freedom.
  const double df = se2 * se2 /
                    ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
  return finish(acc_a.mean(), acc_b.mean(), t, df);
}

TTestResult student_t_test(std::span<const double> a, std::span<const double> b) {
  NPAT_CHECK_MSG(a.size() >= 2 && b.size() >= 2, "t-test needs >= 2 samples per side");
  Accumulator acc_a;
  Accumulator acc_b;
  for (double v : a) acc_a.add(v);
  for (double v : b) acc_b.add(v);

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double df = na + nb - 2.0;
  const double pooled =
      ((na - 1.0) * acc_a.variance() + (nb - 1.0) * acc_b.variance()) / df;
  if (pooled <= 0.0) return degenerate_result(acc_a.mean(), acc_b.mean());

  const double t =
      (acc_b.mean() - acc_a.mean()) / std::sqrt(pooled * (1.0 / na + 1.0 / nb));
  return finish(acc_a.mean(), acc_b.mean(), t, df);
}

TTestResult t_test(std::span<const double> a, std::span<const double> b, TTestKind kind) {
  switch (kind) {
    case TTestKind::kStudentPooled: return student_t_test(a, b);
    case TTestKind::kWelch: return welch_t_test(a, b);
    case TTestKind::kPermutation: return permutation_t_test(a, b);
  }
  return welch_t_test(a, b);
}

TTestResult permutation_t_test(std::span<const double> a, std::span<const double> b,
                               u32 permutations, u64 seed) {
  NPAT_CHECK_MSG(a.size() >= 2 && b.size() >= 2, "t-test needs >= 2 samples per side");
  NPAT_CHECK_MSG(permutations >= 100, "need at least 100 permutations");

  std::vector<double> pooled(a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());

  auto mean_of = [](const double* begin, usize n) {
    double sum = 0.0;
    for (usize i = 0; i < n; ++i) sum += begin[i];
    return sum / static_cast<double>(n);
  };
  const double observed =
      mean_of(pooled.data() + a.size(), b.size()) - mean_of(pooled.data(), a.size());

  util::Xoshiro256ss rng(seed);
  u32 at_least_as_extreme = 0;
  for (u32 p = 0; p < permutations; ++p) {
    // Fisher–Yates reshuffle of the group labels.
    for (usize i = pooled.size() - 1; i > 0; --i) {
      std::swap(pooled[i], pooled[rng.below(i + 1)]);
    }
    const double diff =
        mean_of(pooled.data() + a.size(), b.size()) - mean_of(pooled.data(), a.size());
    if (std::fabs(diff) >= std::fabs(observed) - 1e-12) ++at_least_as_extreme;
  }

  TTestResult result;
  // Means from the *original* grouping.
  {
    Accumulator acc_a;
    Accumulator acc_b;
    for (double v : a) acc_a.add(v);
    for (double v : b) acc_b.add(v);
    result.mean_a = acc_a.mean();
    result.mean_b = acc_b.mean();
    result.mean_delta = result.mean_b - result.mean_a;
    result.relative_delta =
        result.mean_a != 0.0 ? result.mean_delta / std::fabs(result.mean_a) : 0.0;
  }
  result.df = static_cast<double>(a.size() + b.size() - 2);
  // Add-one smoothing so p is never exactly 0 with finite permutations.
  result.p_two_tailed = (static_cast<double>(at_least_as_extreme) + 1.0) /
                        (static_cast<double>(permutations) + 1.0);
  result.confidence = 1.0 - result.p_two_tailed;
  result.degenerate = result.mean_delta == 0.0 && result.p_two_tailed >= 1.0;
  return result;
}

}  // namespace npat::stats
