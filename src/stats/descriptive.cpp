#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace npat::stats {

void Accumulator::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::variance_population() const noexcept {
  return count_ < 1 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  NPAT_CHECK_MSG(!sorted.empty(), "quantile of empty sample");
  NPAT_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const usize lo = static_cast<usize>(pos);
  const usize hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  NPAT_CHECK_MSG(!values.empty(), "summarize of empty sample");
  Accumulator acc;
  for (double v : values) acc.add(v);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = quantile_sorted(sorted, 0.5);
  s.p05 = quantile_sorted(sorted, 0.05);
  s.p95 = quantile_sorted(sorted, 0.95);
  return s;
}

double mean(std::span<const double> values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.mean();
}

double variance(std::span<const double> values) {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.variance();
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double median(std::span<const double> values) {
  NPAT_CHECK_MSG(!values.empty(), "median of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, 0.5);
}

double mad(std::span<const double> values) {
  const double center = median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - center));
  std::sort(deviations.begin(), deviations.end());
  return quantile_sorted(deviations, 0.5);
}

std::optional<double> pearson(std::span<const double> x, std::span<const double> y) {
  NPAT_CHECK_MSG(x.size() == y.size(), "pearson length mismatch");
  if (x.size() < 2) return std::nullopt;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (usize i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace npat::stats
