#include "stats/multiple_comparisons.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace npat::stats {

std::vector<double> bonferroni_adjust(std::span<const double> p_values) {
  const double m = static_cast<double>(p_values.size());
  std::vector<double> out(p_values.size());
  for (usize i = 0; i < p_values.size(); ++i) {
    NPAT_CHECK_MSG(p_values[i] >= 0.0 && p_values[i] <= 1.0, "p-values must be in [0,1]");
    out[i] = std::min(1.0, p_values[i] * m);
  }
  return out;
}

std::vector<double> holm_adjust(std::span<const double> p_values) {
  const usize m = p_values.size();
  std::vector<usize> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](usize a, usize b) { return p_values[a] < p_values[b]; });

  std::vector<double> out(m, 0.0);
  double running_max = 0.0;
  for (usize rank = 0; rank < m; ++rank) {
    const usize idx = order[rank];
    NPAT_CHECK_MSG(p_values[idx] >= 0.0 && p_values[idx] <= 1.0, "p-values must be in [0,1]");
    const double adjusted = std::min(1.0, p_values[idx] * static_cast<double>(m - rank));
    running_max = std::max(running_max, adjusted);  // enforce monotonicity
    out[idx] = running_max;
  }
  return out;
}

usize bonferroni_required_tests(double alpha, usize comparisons) {
  NPAT_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  NPAT_CHECK_MSG(comparisons > 0, "need at least one comparison");
  // Detecting at level alpha/m with a t-test needs roughly a factor
  // ln(m/alpha)/ln(1/alpha) more samples (normal-tail approximation);
  // round up to whole repetitions.
  const double m = static_cast<double>(comparisons);
  const double factor = std::log(m / alpha) / std::log(1.0 / alpha);
  return static_cast<usize>(std::ceil(factor));
}

}  // namespace npat::stats
