// Multiple-comparisons corrections. The paper (§III-B.1) warns that
// screening hundreds of counters inflates false positives and names the
// Bonferroni correction as the remedy; EvSel applies these adjustments when
// flagging significant counters.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace npat::stats {

/// Classic Bonferroni: p' = min(1, p·m).
std::vector<double> bonferroni_adjust(std::span<const double> p_values);

/// Holm–Bonferroni step-down adjustment (uniformly more powerful while
/// controlling the family-wise error rate). Output is in input order.
std::vector<double> holm_adjust(std::span<const double> p_values);

/// Number of additional samples Bonferroni demands: smallest n such that a
/// per-test level alpha/m is still detectable — exposed as a planning
/// helper (the paper: "requires more samples when the possibility of a
/// multiple comparisons problem exists").
usize bonferroni_required_tests(double alpha, usize comparisons);

}  // namespace npat::stats
