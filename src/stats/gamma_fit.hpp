// Three-parameter gamma fit. The paper (§IV-A.2) notes that assuming a
// normal distribution for counter measurements "can be considered
// controversial since the measurement is clearly biased towards smaller
// values" and suggests "determining the aforementioned minimum with a
// suitable estimator and employing a gamma distribution starting at this
// minimum point". This module implements that suggested improvement.
#pragma once

#include <optional>
#include <span>

#include "util/types.hpp"

namespace npat::stats {

struct GammaFit {
  double location = 0.0;  // estimated lower bound (shift)
  double shape = 1.0;     // k
  double scale = 1.0;     // θ
  double log_likelihood = 0.0;

  double mean() const { return location + shape * scale; }
  double variance() const { return shape * scale * scale; }
  /// Density at x (0 for x <= location).
  double pdf(double x) const;
};

/// Fits location by a downward-biased minimum estimator (min − spacing of
/// the two smallest order statistics) and shape/scale by Newton iteration
/// on the MLE equation ln k − ψ(k) = ln(x̄/g̃) (Minka's update).
/// Requires >= 3 samples with positive spread above the location.
std::optional<GammaFit> fit_gamma_shifted(std::span<const double> samples);

/// Standard two-parameter gamma MLE (location fixed at 0).
std::optional<GammaFit> fit_gamma(std::span<const double> samples);

}  // namespace npat::stats
