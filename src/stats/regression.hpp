// Parameter-to-indicator regressions (EvSel §IV-A.2): "linear, quadratic,
// and exponential regressions are created and evaluated". Each fit reports
// its coefficient of determination R²; EvSel shows the best fit per event
// (paper Fig. 9 displays fit type, function, and R).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace npat::stats {

enum class FitKind { kLinear, kQuadratic, kExponential };

const char* fit_kind_name(FitKind kind);

struct Fit {
  FitKind kind = FitKind::kLinear;
  /// Coefficients, lowest order first:
  ///   linear      y = c0 + c1·x
  ///   quadratic   y = c0 + c1·x + c2·x²
  ///   exponential y = c0 · exp(c1·x)
  std::vector<double> coefficients;
  double r_squared = 0.0;
  /// Signed correlation for linear fits (sign of slope × √R²); EvSel's UI
  /// reports R with sign to distinguish positive/negative correlations.
  double r = 0.0;
  double residual_ss = 0.0;

  double evaluate(double x) const;
  /// Human-readable function, e.g. "y = 3.2 + 0.45·x" (Fig. 9 style).
  std::string formula(int precision = 4) const;
};

/// Least-squares polynomial fit of the given degree (>= 1).
std::optional<Fit> fit_polynomial(std::span<const double> x, std::span<const double> y,
                                  int degree);

std::optional<Fit> fit_linear(std::span<const double> x, std::span<const double> y);
std::optional<Fit> fit_quadratic(std::span<const double> x, std::span<const double> y);

/// y = a·e^{bx} via log-linear least squares; requires all y > 0.
std::optional<Fit> fit_exponential(std::span<const double> x, std::span<const double> y);

/// Runs all three model families and returns them ordered best-R² first.
std::vector<Fit> fit_all(std::span<const double> x, std::span<const double> y);

/// Convenience: best fit of the three families, if any model converged.
std::optional<Fit> best_fit(std::span<const double> x, std::span<const double> y);

/// R² of predictions against observations (1 − SS_res/SS_tot); nullopt when
/// the observations are constant.
std::optional<double> r_squared(std::span<const double> observed,
                                std::span<const double> predicted);

}  // namespace npat::stats
