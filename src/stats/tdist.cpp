#include "stats/tdist.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace npat::stats {

double log_gamma(double x) { return std::lgamma(x); }

namespace {

/// Continued fraction for the incomplete beta (Numerical Recipes style,
/// modified Lentz method).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  NPAT_CHECK_MSG(a > 0.0 && b > 0.0, "incomplete_beta requires a,b > 0");
  NPAT_CHECK_MSG(x >= 0.0 && x <= 1.0, "incomplete_beta requires x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  const double ln_front =
      log_gamma(a + b) - log_gamma(a) - log_gamma(b) + a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  NPAT_CHECK_MSG(df > 0.0, "degrees of freedom must be positive");
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double two_tailed_p(double t, double df) {
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

double digamma(double x) {
  NPAT_CHECK_MSG(x > 0.0, "digamma requires x > 0");
  double result = 0.0;
  // Shift x upward until the asymptotic series is accurate.
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

double trigamma(double x) {
  NPAT_CHECK_MSG(x > 0.0, "trigamma requires x > 0");
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0))));
  return result;
}

}  // namespace npat::stats
