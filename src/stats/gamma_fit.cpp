#include "stats/gamma_fit.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/tdist.hpp"
#include "util/check.hpp"

namespace npat::stats {

double GammaFit::pdf(double x) const {
  if (x <= location) return 0.0;
  const double z = x - location;
  const double log_pdf = (shape - 1.0) * std::log(z) - z / scale - shape * std::log(scale) -
                         log_gamma(shape);
  return std::exp(log_pdf);
}

namespace {

std::optional<GammaFit> fit_with_location(std::span<const double> samples, double location) {
  double sum = 0.0;
  double log_sum = 0.0;
  usize n = 0;
  for (double v : samples) {
    const double z = v - location;
    if (!(z > 0.0)) return std::nullopt;
    sum += z;
    log_sum += std::log(z);
    ++n;
  }
  if (n < 3) return std::nullopt;

  const double mean_z = sum / static_cast<double>(n);
  const double mean_log = log_sum / static_cast<double>(n);
  const double s = std::log(mean_z) - mean_log;  // >= 0 by Jensen
  if (!(s > 0.0)) return std::nullopt;           // degenerate (all equal)

  // Initial guess (Minka 2002), then Newton on f(k) = ln k − ψ(k) − s.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
  for (int iter = 0; iter < 60; ++iter) {
    const double f = std::log(k) - digamma(k) - s;
    const double fprime = 1.0 / k - trigamma(k);
    const double step = f / fprime;
    double next = k - step;
    if (next <= 0.0) next = k / 2.0;
    if (std::fabs(next - k) < 1e-12 * k) {
      k = next;
      break;
    }
    k = next;
  }
  if (!(k > 0.0) || !std::isfinite(k)) return std::nullopt;

  GammaFit fit;
  fit.location = location;
  fit.shape = k;
  fit.scale = mean_z / k;

  double ll = 0.0;
  for (double v : samples) {
    const double z = v - location;
    ll += (k - 1.0) * std::log(z) - z / fit.scale;
  }
  ll -= static_cast<double>(n) * (k * std::log(fit.scale) + log_gamma(k));
  fit.log_likelihood = ll;
  return fit;
}

}  // namespace

std::optional<GammaFit> fit_gamma(std::span<const double> samples) {
  return fit_with_location(samples, 0.0);
}

std::optional<GammaFit> fit_gamma_shifted(std::span<const double> samples) {
  if (samples.size() < 3) return std::nullopt;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  // Lower-bound estimator: x₍₁₎ minus the first order-statistic spacing,
  // which corrects the positive bias of the raw minimum.
  const double spacing = sorted[1] - sorted[0];
  const double location = sorted[0] - std::max(spacing, 1e-9 * std::max(1.0, sorted[0]));
  return fit_with_location(samples, location);
}

}  // namespace npat::stats
