// Two-sample t-tests as used by EvSel (§IV-A.2 of the paper):
//  * Student's t assuming equal variances (pooled, Bessel-corrected),
//  * Welch's t for unequal population sizes — the paper employs Welch's
//    method "since the test should be possible for any user-chosen program
//    runs" while assuming similar standard deviations.
#pragma once

#include <span>

#include "stats/descriptive.hpp"

namespace npat::stats {

enum class TTestKind {
  kStudentPooled,
  kWelch,
  /// Distribution-free permutation test (addresses the paper's §IV-A.2
  /// concern that counter samples are not really normal).
  kPermutation,
};

struct TTestResult {
  double t = 0.0;
  double df = 0.0;
  double p_two_tailed = 1.0;
  double confidence = 0.0;  // 1 − p, what EvSel displays next to the icon
  double mean_a = 0.0;
  double mean_b = 0.0;
  double mean_delta = 0.0;          // mean_b − mean_a
  double relative_delta = 0.0;      // (mean_b − mean_a) / |mean_a|; 0 if mean_a == 0
  bool degenerate = false;          // both samples constant and equal -> no test

  bool significant(double alpha = 0.05) const { return !degenerate && p_two_tailed < alpha; }
};

/// Welch two-sample t-test; samples need >= 2 elements each.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Student pooled-variance two-sample t-test; samples need >= 2 elements.
TTestResult student_t_test(std::span<const double> a, std::span<const double> b);

TTestResult t_test(std::span<const double> a, std::span<const double> b, TTestKind kind);

/// Permutation version of the two-sample test (the paper's reference [38]
/// compares Welch with its permutation counterpart): the group labels are
/// reshuffled `permutations` times and the p-value is the fraction of
/// permutations whose |mean difference| meets or exceeds the observed one.
/// Distribution-free — no normality assumption at all.
TTestResult permutation_t_test(std::span<const double> a, std::span<const double> b,
                               u32 permutations = 2000, u64 seed = 0x9e37);

}  // namespace npat::stats
