// Segmented linear regression — the core of Phasenprüfer (§IV-C.1).
//
// The paper's algorithm: every data point is iteratively considered a pivot,
// a least-squares line is fitted before and after it, and the pivot with the
// minimal summed squared error is the phase transition. Two implementations
// are provided:
//  * detect_two_phases_naive — the literal algorithm (refits per pivot),
//  * detect_two_phases      — an O(n) incremental scan over prefix sums
//    (same optimum, used by default; the ablation bench compares both).
// A k-segment dynamic-programming extension covers the paper's outlook of
// recognizing additional phases (BSP supersteps).
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace npat::stats {

struct LineSegment {
  usize begin = 0;       // first sample index (inclusive)
  usize end = 0;         // one-past-last sample index
  double intercept = 0;  // β₀ of y = β₀ + β₁·x on this range
  double slope = 0;      // β₁
  double sse = 0;        // residual sum of squares
};

struct SegmentedFit {
  std::vector<LineSegment> segments;  // ordered by begin
  double total_sse = 0.0;
  /// Highest segment count the producing search actually evaluated (0 when
  /// the fit predates model selection). Lets callers tell "one phase
  /// detected" (k_considered > 1, one segment chosen) from "multi-phase
  /// never attempted" (k_considered == 1, too few samples).
  usize k_considered = 0;

  /// Pivot between segment 0 and 1 (two-phase case): segments[1].begin.
  usize pivot() const { return segments.size() > 1 ? segments[1].begin : 0; }
};

/// Precomputed prefix sums enabling O(1) least-squares over any range.
///
/// The sums are accumulated over x − x₀ (x₀ = the first appended abscissa),
/// so a series whose x values are huge but closely spaced — raw cycle
/// timestamps, say — does not push sxx into the ~1e18 range where the
/// centered moments cancel catastrophically. Slopes and SSE are invariant
/// under the shift; intercepts are mapped back to the caller's frame.
///
/// Grows append-only: the span constructor is a convenience loop over
/// append(), so an incremental consumer (phasen::OnlineDetector) that feeds
/// the same series point-by-point holds bit-identical state.
class SegmentCost {
 public:
  /// Empty cost; grow with append().
  SegmentCost() = default;
  SegmentCost(std::span<const double> x, std::span<const double> y);

  /// Appends one (x, y) sample in O(1) amortized.
  void append(double x, double y);
  void reserve(usize n);

  usize size() const { return n_; }

  /// Least-squares line over samples [begin, end); end − begin >= 2.
  LineSegment fit(usize begin, usize end) const;

  /// Residual sum of squares for [begin, end) without building the segment.
  double sse(usize begin, usize end) const;

 private:
  usize n_ = 0;
  double x0_ = 0.0;  // shift origin: first appended x
  std::vector<double> sx_, sy_, sxx_, sxy_, syy_;  // prefix sums, index 0 = empty
};

/// Result of one two-phase pivot scan over a SegmentCost.
struct TwoPhaseScan {
  usize pivot = 0;
  double total_sse = 0.0;
};

/// The O(n) pivot scan shared by detect_two_phases and the online detector:
/// evaluates every pivot in [min_segment, n − min_segment] and keeps the
/// first minimum (strict-less tie-breaking). Requires n >= 2*min_segment.
TwoPhaseScan scan_two_phase_pivot(const SegmentCost& cost, usize min_segment = 2);

/// Two-phase split; requires n >= 2*min_segment, min_segment >= 2.
SegmentedFit detect_two_phases(std::span<const double> x, std::span<const double> y,
                               usize min_segment = 2);

/// The literal per-pivot refit from the paper (kept for the ablation bench;
/// produces the same optimum).
SegmentedFit detect_two_phases_naive(std::span<const double> x, std::span<const double> y,
                                     usize min_segment = 2);

/// Optimal split into exactly k segments via dynamic programming,
/// minimizing total SSE. k >= 1; requires n >= k*min_segment.
SegmentedFit detect_k_phases(std::span<const double> x, std::span<const double> y, usize k,
                             usize min_segment = 2);

/// Model-selection helper: picks k in [1, max_k] minimizing a BIC-style
/// score total_sse·n·log(n)-penalized criterion, so flat traces resolve to
/// one phase instead of hallucinating transitions.
SegmentedFit detect_phases_auto(std::span<const double> x, std::span<const double> y,
                                usize max_k = 4, usize min_segment = 4);

}  // namespace npat::stats
