#include "stats/segmented.hpp"

#include <cmath>
#include <limits>

#include "stats/regression.hpp"
#include "util/check.hpp"

namespace npat::stats {

SegmentCost::SegmentCost(std::span<const double> x, std::span<const double> y) {
  NPAT_CHECK_MSG(x.size() == y.size(), "segmented fit length mismatch");
  reserve(x.size());
  for (usize i = 0; i < x.size(); ++i) append(x[i], y[i]);
}

void SegmentCost::reserve(usize n) {
  sx_.reserve(n + 1);
  sy_.reserve(n + 1);
  sxx_.reserve(n + 1);
  sxy_.reserve(n + 1);
  syy_.reserve(n + 1);
}

void SegmentCost::append(double x, double y) {
  if (n_ == 0) {
    x0_ = x;
    sx_.push_back(0.0);
    sy_.push_back(0.0);
    sxx_.push_back(0.0);
    sxy_.push_back(0.0);
    syy_.push_back(0.0);
  }
  // Accumulate in the shifted frame so sxx stays near the spread of the
  // series, not the square of its magnitude.
  const double xs = x - x0_;
  sx_.push_back(sx_.back() + xs);
  sy_.push_back(sy_.back() + y);
  sxx_.push_back(sxx_.back() + xs * xs);
  sxy_.push_back(sxy_.back() + xs * y);
  syy_.push_back(syy_.back() + y * y);
  ++n_;
}

LineSegment SegmentCost::fit(usize begin, usize end) const {
  NPAT_CHECK_MSG(begin < end && end <= n_, "invalid segment range");
  NPAT_CHECK_MSG(end - begin >= 2, "segment needs >= 2 samples");
  const double n = static_cast<double>(end - begin);
  const double sx = sx_[end] - sx_[begin];
  const double sy = sy_[end] - sy_[begin];
  const double sxx = sxx_[end] - sxx_[begin];
  const double sxy = sxy_[end] - sxy_[begin];
  const double syy = syy_[end] - syy_[begin];

  // Centered second moments.
  const double cxx = sxx - sx * sx / n;
  const double cxy = sxy - sx * sy / n;
  const double cyy = syy - sy * sy / n;

  LineSegment seg;
  seg.begin = begin;
  seg.end = end;
  // Degenerate-abscissa guard. `sxx` here is already origin-shifted, so the
  // comparison is against the centered magnitude of the x series — a
  // late-starting capture with ~1e12-cycle timestamps no longer dwarfs a
  // genuine spread into the "all x equal" branch the way a raw
  // second-moment comparison did.
  if (cxx <= 1e-12 * std::max(1.0, sxx)) {
    // Degenerate abscissa (all x equal): best "line" is the mean level.
    seg.slope = 0.0;
    seg.intercept = sy / n;
    seg.sse = std::max(0.0, cyy);
  } else {
    seg.slope = cxy / cxx;
    // Intercept in the caller's frame: the fit ran over x − x₀.
    seg.intercept = (sy - seg.slope * sx) / n - seg.slope * x0_;
    seg.sse = std::max(0.0, cyy - seg.slope * cxy);
  }
  return seg;
}

double SegmentCost::sse(usize begin, usize end) const { return fit(begin, end).sse; }

TwoPhaseScan scan_two_phase_pivot(const SegmentCost& cost, usize min_segment) {
  NPAT_CHECK_MSG(min_segment >= 2, "min_segment must be >= 2");
  NPAT_CHECK_MSG(cost.size() >= 2 * min_segment, "not enough samples for two phases");

  TwoPhaseScan out;
  out.total_sse = std::numeric_limits<double>::infinity();
  out.pivot = min_segment;
  for (usize pivot = min_segment; pivot + min_segment <= cost.size(); ++pivot) {
    const double total = cost.sse(0, pivot) + cost.sse(pivot, cost.size());
    if (total < out.total_sse) {
      out.total_sse = total;
      out.pivot = pivot;
    }
  }
  return out;
}

SegmentedFit detect_two_phases(std::span<const double> x, std::span<const double> y,
                               usize min_segment) {
  const SegmentCost cost(x, y);
  const TwoPhaseScan scan = scan_two_phase_pivot(cost, min_segment);

  SegmentedFit out;
  out.segments = {cost.fit(0, scan.pivot), cost.fit(scan.pivot, x.size())};
  out.total_sse = scan.total_sse;
  out.k_considered = 2;
  return out;
}

SegmentedFit detect_two_phases_naive(std::span<const double> x, std::span<const double> y,
                                     usize min_segment) {
  NPAT_CHECK_MSG(min_segment >= 2, "min_segment must be >= 2");
  NPAT_CHECK_MSG(x.size() >= 2 * min_segment, "not enough samples for two phases");

  // The paper's formulation: refit y = Xβ from scratch on both sides of
  // every candidate pivot via the normal equations.
  auto refit_sse = [&](usize begin, usize end) {
    std::vector<double> xs(x.begin() + static_cast<std::ptrdiff_t>(begin),
                           x.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<double> ys(y.begin() + static_cast<std::ptrdiff_t>(begin),
                           y.begin() + static_cast<std::ptrdiff_t>(end));
    const auto fit = fit_linear(xs, ys);
    if (!fit) {
      // Constant response: SSE against the mean is zero.
      return 0.0;
    }
    return fit->residual_ss;
  };

  double best = std::numeric_limits<double>::infinity();
  usize best_pivot = min_segment;
  for (usize pivot = min_segment; pivot + min_segment <= x.size(); ++pivot) {
    const double total = refit_sse(0, pivot) + refit_sse(pivot, x.size());
    if (total < best) {
      best = total;
      best_pivot = pivot;
    }
  }

  const SegmentCost cost(x, y);
  SegmentedFit out;
  out.segments = {cost.fit(0, best_pivot), cost.fit(best_pivot, x.size())};
  out.total_sse = out.segments[0].sse + out.segments[1].sse;
  out.k_considered = 2;
  return out;
}

SegmentedFit detect_k_phases(std::span<const double> x, std::span<const double> y, usize k,
                             usize min_segment) {
  NPAT_CHECK_MSG(k >= 1, "need at least one segment");
  NPAT_CHECK_MSG(min_segment >= 2, "min_segment must be >= 2");
  const usize n = x.size();
  NPAT_CHECK_MSG(n >= k * min_segment, "not enough samples for k phases");
  const SegmentCost cost(x, y);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[s][e] = minimal SSE covering samples [0, e) with s segments.
  std::vector<std::vector<double>> dp(k + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<usize>> parent(k + 1, std::vector<usize>(n + 1, 0));
  dp[0][0] = 0.0;

  for (usize s = 1; s <= k; ++s) {
    for (usize e = s * min_segment; e <= n; ++e) {
      // Last segment is [b, e) with b s.t. the prefix holds s−1 segments.
      const usize b_lo = (s - 1) * min_segment;
      for (usize b = b_lo; b + min_segment <= e; ++b) {
        if (dp[s - 1][b] == kInf) continue;
        const double candidate = dp[s - 1][b] + cost.sse(b, e);
        if (candidate < dp[s][e]) {
          dp[s][e] = candidate;
          parent[s][e] = b;
        }
      }
    }
  }

  NPAT_CHECK_MSG(dp[k][n] != kInf, "k-phase DP found no feasible split");

  SegmentedFit out;
  out.total_sse = dp[k][n];
  std::vector<std::pair<usize, usize>> ranges;
  usize e = n;
  for (usize s = k; s >= 1; --s) {
    const usize b = parent[s][e];
    ranges.emplace_back(b, e);
    e = b;
  }
  for (auto it = ranges.rbegin(); it != ranges.rend(); ++it) {
    out.segments.push_back(cost.fit(it->first, it->second));
  }
  out.k_considered = k;
  return out;
}

SegmentedFit detect_phases_auto(std::span<const double> x, std::span<const double> y,
                                usize max_k, usize min_segment) {
  NPAT_CHECK_MSG(max_k >= 1, "max_k must be >= 1");
  const usize n = x.size();
  NPAT_CHECK_MSG(n >= min_segment, "not enough samples");

  const SegmentCost cost(x, y);  // shared by the k = 1 candidate; built once
  SegmentedFit best;
  double best_score = std::numeric_limits<double>::infinity();
  usize k_considered = 0;
  for (usize k = 1; k <= max_k && n >= k * min_segment; ++k) {
    k_considered = k;
    SegmentedFit candidate;
    if (k == 1) {
      const LineSegment whole = cost.fit(0, n);
      candidate.total_sse = whole.sse;
      candidate.segments = {whole};
    } else {
      candidate = detect_k_phases(x, y, k, min_segment);
    }
    // BIC-style criterion: n·ln(SSE/n) + params·ln(n); each segment adds a
    // slope, an intercept and (after the first) a breakpoint.
    const double params = static_cast<double>(3 * k - 1);
    const double sse = std::max(candidate.total_sse, 1e-12);
    const double score = static_cast<double>(n) * std::log(sse / static_cast<double>(n)) +
                         params * std::log(static_cast<double>(n));
    if (score < best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  // When n < 2·min_segment the loop only ever evaluated k = 1; the caller
  // can tell that apart from "two phases considered and rejected".
  best.k_considered = k_considered;
  return best;
}

}  // namespace npat::stats
