#include "stats/segmented.hpp"

#include <cmath>
#include <limits>

#include "stats/regression.hpp"
#include "util/check.hpp"

namespace npat::stats {

SegmentCost::SegmentCost(std::span<const double> x, std::span<const double> y) : n_(x.size()) {
  NPAT_CHECK_MSG(x.size() == y.size(), "segmented fit length mismatch");
  sx_.resize(n_ + 1, 0.0);
  sy_.resize(n_ + 1, 0.0);
  sxx_.resize(n_ + 1, 0.0);
  sxy_.resize(n_ + 1, 0.0);
  syy_.resize(n_ + 1, 0.0);
  for (usize i = 0; i < n_; ++i) {
    sx_[i + 1] = sx_[i] + x[i];
    sy_[i + 1] = sy_[i] + y[i];
    sxx_[i + 1] = sxx_[i] + x[i] * x[i];
    sxy_[i + 1] = sxy_[i] + x[i] * y[i];
    syy_[i + 1] = syy_[i] + y[i] * y[i];
  }
}

LineSegment SegmentCost::fit(usize begin, usize end) const {
  NPAT_CHECK_MSG(begin < end && end <= n_, "invalid segment range");
  NPAT_CHECK_MSG(end - begin >= 2, "segment needs >= 2 samples");
  const double n = static_cast<double>(end - begin);
  const double sx = sx_[end] - sx_[begin];
  const double sy = sy_[end] - sy_[begin];
  const double sxx = sxx_[end] - sxx_[begin];
  const double sxy = sxy_[end] - sxy_[begin];
  const double syy = syy_[end] - syy_[begin];

  // Centered second moments.
  const double cxx = sxx - sx * sx / n;
  const double cxy = sxy - sx * sy / n;
  const double cyy = syy - sy * sy / n;

  LineSegment seg;
  seg.begin = begin;
  seg.end = end;
  if (cxx <= 1e-12 * std::max(1.0, sxx)) {
    // Degenerate abscissa (all x equal): best "line" is the mean level.
    seg.slope = 0.0;
    seg.intercept = sy / n;
    seg.sse = std::max(0.0, cyy);
  } else {
    seg.slope = cxy / cxx;
    seg.intercept = (sy - seg.slope * sx) / n;
    seg.sse = std::max(0.0, cyy - seg.slope * cxy);
  }
  return seg;
}

double SegmentCost::sse(usize begin, usize end) const { return fit(begin, end).sse; }

SegmentedFit detect_two_phases(std::span<const double> x, std::span<const double> y,
                               usize min_segment) {
  NPAT_CHECK_MSG(min_segment >= 2, "min_segment must be >= 2");
  NPAT_CHECK_MSG(x.size() >= 2 * min_segment, "not enough samples for two phases");
  const SegmentCost cost(x, y);

  double best = std::numeric_limits<double>::infinity();
  usize best_pivot = min_segment;
  for (usize pivot = min_segment; pivot + min_segment <= x.size(); ++pivot) {
    const double total = cost.sse(0, pivot) + cost.sse(pivot, x.size());
    if (total < best) {
      best = total;
      best_pivot = pivot;
    }
  }

  SegmentedFit out;
  out.segments = {cost.fit(0, best_pivot), cost.fit(best_pivot, x.size())};
  out.total_sse = best;
  return out;
}

SegmentedFit detect_two_phases_naive(std::span<const double> x, std::span<const double> y,
                                     usize min_segment) {
  NPAT_CHECK_MSG(min_segment >= 2, "min_segment must be >= 2");
  NPAT_CHECK_MSG(x.size() >= 2 * min_segment, "not enough samples for two phases");

  // The paper's formulation: refit y = Xβ from scratch on both sides of
  // every candidate pivot via the normal equations.
  auto refit_sse = [&](usize begin, usize end) {
    std::vector<double> xs(x.begin() + static_cast<std::ptrdiff_t>(begin),
                           x.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<double> ys(y.begin() + static_cast<std::ptrdiff_t>(begin),
                           y.begin() + static_cast<std::ptrdiff_t>(end));
    const auto fit = fit_linear(xs, ys);
    if (!fit) {
      // Constant response: SSE against the mean is zero.
      return 0.0;
    }
    return fit->residual_ss;
  };

  double best = std::numeric_limits<double>::infinity();
  usize best_pivot = min_segment;
  for (usize pivot = min_segment; pivot + min_segment <= x.size(); ++pivot) {
    const double total = refit_sse(0, pivot) + refit_sse(pivot, x.size());
    if (total < best) {
      best = total;
      best_pivot = pivot;
    }
  }

  const SegmentCost cost(x, y);
  SegmentedFit out;
  out.segments = {cost.fit(0, best_pivot), cost.fit(best_pivot, x.size())};
  out.total_sse = out.segments[0].sse + out.segments[1].sse;
  return out;
}

SegmentedFit detect_k_phases(std::span<const double> x, std::span<const double> y, usize k,
                             usize min_segment) {
  NPAT_CHECK_MSG(k >= 1, "need at least one segment");
  NPAT_CHECK_MSG(min_segment >= 2, "min_segment must be >= 2");
  const usize n = x.size();
  NPAT_CHECK_MSG(n >= k * min_segment, "not enough samples for k phases");
  const SegmentCost cost(x, y);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[s][e] = minimal SSE covering samples [0, e) with s segments.
  std::vector<std::vector<double>> dp(k + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<usize>> parent(k + 1, std::vector<usize>(n + 1, 0));
  dp[0][0] = 0.0;

  for (usize s = 1; s <= k; ++s) {
    for (usize e = s * min_segment; e <= n; ++e) {
      // Last segment is [b, e) with b s.t. the prefix holds s−1 segments.
      const usize b_lo = (s - 1) * min_segment;
      for (usize b = b_lo; b + min_segment <= e; ++b) {
        if (dp[s - 1][b] == kInf) continue;
        const double candidate = dp[s - 1][b] + cost.sse(b, e);
        if (candidate < dp[s][e]) {
          dp[s][e] = candidate;
          parent[s][e] = b;
        }
      }
    }
  }

  NPAT_CHECK_MSG(dp[k][n] != kInf, "k-phase DP found no feasible split");

  SegmentedFit out;
  out.total_sse = dp[k][n];
  std::vector<std::pair<usize, usize>> ranges;
  usize e = n;
  for (usize s = k; s >= 1; --s) {
    const usize b = parent[s][e];
    ranges.emplace_back(b, e);
    e = b;
  }
  for (auto it = ranges.rbegin(); it != ranges.rend(); ++it) {
    out.segments.push_back(cost.fit(it->first, it->second));
  }
  return out;
}

SegmentedFit detect_phases_auto(std::span<const double> x, std::span<const double> y,
                                usize max_k, usize min_segment) {
  NPAT_CHECK_MSG(max_k >= 1, "max_k must be >= 1");
  const usize n = x.size();
  NPAT_CHECK_MSG(n >= min_segment, "not enough samples");

  SegmentedFit best;
  double best_score = std::numeric_limits<double>::infinity();
  for (usize k = 1; k <= max_k && n >= k * min_segment; ++k) {
    SegmentedFit candidate =
        k == 1 ? SegmentedFit{{SegmentCost(x, y).fit(0, n)}, SegmentCost(x, y).sse(0, n)}
               : detect_k_phases(x, y, k, min_segment);
    // BIC-style criterion: n·ln(SSE/n) + params·ln(n); each segment adds a
    // slope, an intercept and (after the first) a breakpoint.
    const double params = static_cast<double>(3 * k - 1);
    const double sse = std::max(candidate.total_sse, 1e-12);
    const double score = static_cast<double>(n) * std::log(sse / static_cast<double>(n)) +
                         params * std::log(static_cast<double>(n));
    if (score < best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace npat::stats
