#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/solve.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::stats {

const char* fit_kind_name(FitKind kind) {
  switch (kind) {
    case FitKind::kLinear: return "linear";
    case FitKind::kQuadratic: return "quadratic";
    case FitKind::kExponential: return "exponential";
  }
  return "?";
}

double Fit::evaluate(double x) const {
  switch (kind) {
    case FitKind::kLinear:
      return coefficients[0] + coefficients[1] * x;
    case FitKind::kQuadratic:
      return coefficients[0] + coefficients[1] * x + coefficients[2] * x * x;
    case FitKind::kExponential:
      return coefficients[0] * std::exp(coefficients[1] * x);
  }
  return 0.0;
}

std::string Fit::formula(int precision) const {
  using util::compact_double;
  switch (kind) {
    case FitKind::kLinear:
      return "y = " + compact_double(coefficients[0], precision) +
             (coefficients[1] >= 0 ? " + " : " - ") +
             compact_double(std::fabs(coefficients[1]), precision) + "·x";
    case FitKind::kQuadratic:
      return "y = " + compact_double(coefficients[0], precision) +
             (coefficients[1] >= 0 ? " + " : " - ") +
             compact_double(std::fabs(coefficients[1]), precision) + "·x" +
             (coefficients[2] >= 0 ? " + " : " - ") +
             compact_double(std::fabs(coefficients[2]), precision) + "·x²";
    case FitKind::kExponential:
      return "y = " + compact_double(coefficients[0], precision) + "·e^(" +
             compact_double(coefficients[1], precision) + "·x)";
  }
  return "";
}

std::optional<double> r_squared(std::span<const double> observed,
                                std::span<const double> predicted) {
  NPAT_CHECK_MSG(observed.size() == predicted.size(), "r_squared length mismatch");
  const double my = mean(observed);
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (usize i = 0; i < observed.size(); ++i) {
    ss_tot += (observed[i] - my) * (observed[i] - my);
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
  }
  if (ss_tot <= 0.0) return std::nullopt;
  return 1.0 - ss_res / ss_tot;
}

namespace {

std::optional<Fit> finish_fit(FitKind kind, std::vector<double> coefficients,
                              std::span<const double> x, std::span<const double> y) {
  Fit fit;
  fit.kind = kind;
  fit.coefficients = std::move(coefficients);

  std::vector<double> predicted(x.size());
  for (usize i = 0; i < x.size(); ++i) predicted[i] = fit.evaluate(x[i]);
  const auto r2 = r_squared(y, predicted);
  if (!r2) return std::nullopt;  // constant response: no meaningful fit
  fit.r_squared = std::max(0.0, *r2);

  double ss_res = 0.0;
  for (usize i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - predicted[i]) * (y[i] - predicted[i]);
  }
  fit.residual_ss = ss_res;

  // Sign convention: the fitted trend across the sampled range (a
  // quadratic dominated by its linear term must not flip the sign of R).
  const auto [min_it, max_it] = std::minmax_element(x.begin(), x.end());
  const double direction = fit.evaluate(*max_it) - fit.evaluate(*min_it);
  fit.r = std::copysign(std::sqrt(fit.r_squared), direction == 0.0 ? 1.0 : direction);
  return fit;
}

}  // namespace

std::optional<Fit> fit_polynomial(std::span<const double> x, std::span<const double> y,
                                  int degree) {
  NPAT_CHECK_MSG(degree >= 1 && degree <= 3, "supported polynomial degrees: 1..3");
  NPAT_CHECK_MSG(x.size() == y.size(), "fit length mismatch");
  if (x.size() < static_cast<usize>(degree) + 1) return std::nullopt;

  // Design matrix with columns [1, x, x², ...] — exactly the overdetermined
  // system y = Xβ the paper spells out in §IV-C.1.
  linalg::Matrix design(x.size(), static_cast<usize>(degree) + 1);
  for (usize i = 0; i < x.size(); ++i) {
    double pow_x = 1.0;
    for (int d = 0; d <= degree; ++d) {
      design(i, static_cast<usize>(d)) = pow_x;
      pow_x *= x[i];
    }
  }
  const auto solution = linalg::least_squares(design, linalg::Vector(y.begin(), y.end()));
  if (!solution) return std::nullopt;
  const FitKind kind = degree == 1 ? FitKind::kLinear : FitKind::kQuadratic;
  return finish_fit(kind, solution->beta, x, y);
}

std::optional<Fit> fit_linear(std::span<const double> x, std::span<const double> y) {
  return fit_polynomial(x, y, 1);
}

std::optional<Fit> fit_quadratic(std::span<const double> x, std::span<const double> y) {
  return fit_polynomial(x, y, 2);
}

std::optional<Fit> fit_exponential(std::span<const double> x, std::span<const double> y) {
  NPAT_CHECK_MSG(x.size() == y.size(), "fit length mismatch");
  if (x.size() < 3) return std::nullopt;
  // Log-linearize: ln y = ln a + b·x. Requires strictly positive responses.
  std::vector<double> log_y(y.size());
  for (usize i = 0; i < y.size(); ++i) {
    if (!(y[i] > 0.0)) return std::nullopt;
    log_y[i] = std::log(y[i]);
  }
  const auto linear = fit_polynomial(x, log_y, 1);
  if (!linear) return std::nullopt;
  std::vector<double> coefficients = {std::exp(linear->coefficients[0]),
                                      linear->coefficients[1]};
  return finish_fit(FitKind::kExponential, std::move(coefficients), x, y);
}

std::vector<Fit> fit_all(std::span<const double> x, std::span<const double> y) {
  std::vector<Fit> fits;
  if (auto f = fit_linear(x, y)) fits.push_back(std::move(*f));
  if (auto f = fit_quadratic(x, y)) fits.push_back(std::move(*f));
  if (auto f = fit_exponential(x, y)) fits.push_back(std::move(*f));
  std::stable_sort(fits.begin(), fits.end(),
                   [](const Fit& a, const Fit& b) { return a.r_squared > b.r_squared; });
  return fits;
}

std::optional<Fit> best_fit(std::span<const double> x, std::span<const double> y) {
  auto fits = fit_all(x, y);
  if (fits.empty()) return std::nullopt;
  return std::move(fits.front());
}

}  // namespace npat::stats
