// Descriptive statistics. Welford's online algorithm provides numerically
// stable mean/variance; variance uses Bessel's correction (n−1) as the
// paper does for t-tests on measured counter samples.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace npat::stats {

/// Online mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double value) noexcept;
  void merge(const Accumulator& other) noexcept;

  usize count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance with Bessel's correction; 0 for fewer than 2 samples.
  double variance() const noexcept;
  /// Population variance (divides by n).
  double variance_population() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  usize count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct Summary {
  usize count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // Bessel-corrected
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
};

/// Full-pass summary of a sample (copies & sorts internally for quantiles).
Summary summarize(std::span<const double> values);

/// Linear-interpolated quantile of a *sorted* sample, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

double mean(std::span<const double> values);
/// Bessel-corrected sample variance.
double variance(std::span<const double> values);
double stddev(std::span<const double> values);

/// Median (copies & sorts internally).
double median(std::span<const double> values);
/// Median absolute deviation about the median, unscaled — multiply by
/// 1.4826 for a robust sigma estimate under normality. Robust outlier
/// screens (EvSel's repeated-run quarantine) use this instead of the
/// stddev, which the outlier itself inflates.
double mad(std::span<const double> values);

/// Pearson correlation coefficient; nullopt if either side is constant.
std::optional<double> pearson(std::span<const double> x, std::span<const double> y);

}  // namespace npat::stats
