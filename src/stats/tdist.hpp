// Student's t distribution via the regularized incomplete beta function.
// Needed to turn t statistics into the confidence values EvSel displays
// ("the reached confidence is shown", Fig. 5).
#pragma once

namespace npat::stats {

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
/// Continued-fraction evaluation (Lentz), accurate to ~1e-12.
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// Two-tailed p-value for a t statistic.
double two_tailed_p(double t, double df);

/// ln Γ(x) wrapper (std::lgamma without the sign-global issue).
double log_gamma(double x);

/// Digamma ψ(x) (asymptotic series with recurrence shift), x > 0.
double digamma(double x);

/// Trigamma ψ'(x), x > 0.
double trigamma(double x);

}  // namespace npat::stats
