#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace npat::sim {

namespace {
// Time constant of the memory-starvation EMA that throttles speculation:
// long enough that a barrier wait suppresses speculative retirement for a
// meaningful stretch of the following compute.
constexpr double kStallEmaTauCycles = 262144.0;
}

Machine::CoreState::CoreState(const MachineConfig& config)
    : l1(config.l1),
      l2(config.l2),
      tlb(config.tlb),
      fill_buffer(config.fill_buffer),
      prefetcher(config.prefetcher),
      branch(config.branch) {}

Machine::NodeState::NodeState(const MachineConfig& config) : l3(config.l3) {}

Machine::Machine(MachineConfig config)
    : config_(std::move(config)),
      directory_(config_.topology.nodes, config_.coherence),
      memory_(config_.topology, config_.memory, config_.seed ^ 0xfeedULL),
      rng_(config_.seed) {
  config_.topology.validate();
  NPAT_CHECK_MSG(config_.base_ipc > 0.0, "base IPC must be positive");
  NPAT_CHECK_MSG(config_.stall_exposure >= 0.0 && config_.stall_exposure <= 1.0,
                 "stall exposure must be in [0,1]");
  cores_.reserve(cores());
  for (u32 c = 0; c < cores(); ++c) cores_.emplace_back(config_);
  nodes_.reserve(nodes());
  for (u32 n = 0; n < nodes(); ++n) nodes_.emplace_back(config_);
}

Machine::CoreState& Machine::core_state(CoreId core) {
  NPAT_CHECK_MSG(core < cores_.size(), "core id out of range");
  return cores_[core];
}
const Machine::CoreState& Machine::core_state(CoreId core) const {
  NPAT_CHECK_MSG(core < cores_.size(), "core id out of range");
  return cores_[core];
}
Machine::NodeState& Machine::node_state(NodeId node) {
  NPAT_CHECK_MSG(node < nodes_.size(), "node id out of range");
  return nodes_[node];
}
const Machine::NodeState& Machine::node_state(NodeId node) const {
  NPAT_CHECK_MSG(node < nodes_.size(), "node id out of range");
  return nodes_[node];
}

void Machine::advance(CoreId core, Cycles cycles) { charge_cycles(core, cycles, 0); }

void Machine::wait(CoreId core, Cycles cycles) { charge_cycles(core, 0, cycles); }

Cycles Machine::max_clock() const {
  Cycles worst = 0;
  for (const auto& c : cores_) worst = std::max(worst, c.clock);
  return worst;
}

void Machine::update_stall_ema(CoreState& state, Cycles busy, Cycles stalled) {
  const double total = static_cast<double>(busy + stalled);
  if (total <= 0.0) return;
  const double ratio = static_cast<double>(stalled) / total;
  // Duration-weighted EMA: long waits move the estimate proportionally.
  const double alpha = total / (total + kStallEmaTauCycles);
  state.stall_ema += alpha * (ratio - state.stall_ema);
}

void Machine::charge_cycles(CoreId core, Cycles busy, Cycles stalled) {
  CoreState& state = core_state(core);
  const Cycles total = busy + stalled;
  state.clock += total;
  state.pmu.counters().add(Event::kCycles, total);
  state.pmu.counters().add(Event::kRefCycles, total);
  if (stalled > 0) state.pmu.counters().add(Event::kStallCyclesTotal, stalled);
  update_stall_ema(state, busy, stalled);
}

void Machine::issue_prefetches(CoreState& cs, NodeState& ns, NodeId node, u64 line) {
  cs.prefetcher.observe(line, prefetch_scratch_);
  for (const auto& request : prefetch_scratch_) {
    // A prefetch that reaches DRAM fetches from the line's *home* node and
    // consumes interconnect bandwidth when that node is remote.
    const NodeId home = node_of_paddr(request.line * kCacheLineBytes);
    if (home >= nodes()) continue;  // prefetcher ran past installed memory
    auto charge_dram_fetch = [&] {
      node_state(home).uncore.add(Event::kUncImcReads);
      if (home != node) {
        ns.uncore.add(Event::kUncQpiTxFlits, topology().hops(node, home));
      }
    };

    if (request.target == PrefetchTarget::kL2) {
      // Prefetch requests look up L2 like demand traffic does — the real
      // L2_RQSTS umasks include prefetch hits and misses.
      cs.pmu.counters().add(Event::kL2PrefetchRequests);
      cs.pmu.counters().add(Event::kL2Access);
      const auto outcome = cs.l2.fill(request.line);
      if (outcome.hit) {
        cs.pmu.counters().add(Event::kL2Hit);
      } else {
        // The prefetch pulls the line from L3/DRAM in the background; only
        // bandwidth is consumed, the core does not stall.
        cs.pmu.counters().add(Event::kL2Miss);
        cs.pmu.counters().add(Event::kL3Access);
        ns.uncore.add(Event::kUncLlcLookups);
        if (ns.l3.access(request.line, false).hit) {
          cs.pmu.counters().add(Event::kL3Hit);
        } else {
          cs.pmu.counters().add(Event::kL3Miss);
          ns.uncore.add(Event::kUncLlcMisses);
          charge_dram_fetch();
        }
      }
    } else {
      // LLC streamer: fills into L3 only, bypassing L2 entirely.
      cs.pmu.counters().add(Event::kL3PrefetchRequests);
      cs.pmu.counters().add(Event::kL3Access);
      ns.uncore.add(Event::kUncLlcLookups);
      if (ns.l3.fill(request.line).hit) {
        cs.pmu.counters().add(Event::kL3Hit);
      } else {
        cs.pmu.counters().add(Event::kL3Miss);
        ns.uncore.add(Event::kUncLlcMisses);
        charge_dram_fetch();
      }
    }
  }
}

Machine::AccessResult Machine::access_impl(CoreId core, PhysAddr paddr, VirtAddr vaddr,
                                           u64 tlb_page, bool is_write, bool is_atomic) {
  CoreState& cs = core_state(core);
  const NodeId node = topology().node_of_core(core);
  NodeState& ns = node_state(node);
  const NodeId target_node = node_of_paddr(paddr);
  NPAT_CHECK_MSG(target_node < nodes(), "physical address outside installed memory");
  const u64 line = cache_line_of(paddr);
  const Cycles now = cs.clock;
  auto& counters = cs.pmu.counters();

  counters.add(is_write ? Event::kStoresRetired : Event::kLoadsRetired);
  counters.add(Event::kInstructions);
  counters.add(Event::kUopsIssued);
  counters.add(Event::kUopsRetired);
  ns.energy_pj += config_.energy_pj_per_instruction;

  Cycles latency = 0;
  Cycles translation_stall = 0;
  Cycles miss_exposed = 0;

  // --- address translation ---
  counters.add(Event::kDtlbAccess);
  switch (cs.tlb.access(tlb_page)) {
    case TlbOutcome::kDtlbHit:
      break;
    case TlbOutcome::kStlbHit:
      counters.add(Event::kDtlbMiss);
      counters.add(Event::kStlbHit);
      // STLB lookups overlap well with OoO execution; expose a sliver.
      latency += 7;
      translation_stall = 2;
      break;
    case TlbOutcome::kPageWalk: {
      counters.add(Event::kDtlbMiss);
      counters.add(Event::kPageWalks);
      const Cycles walk = config_.tlb.walk_latency + rng_.below(8);
      counters.add(Event::kPageWalkCycles, walk);
      // The page walker locks the L1D while it injects its loads.
      counters.add(Event::kL1dLocks);
      latency += walk;
      translation_stall = walk / 2;
      break;
    }
  }

  // --- cache hierarchy ---
  counters.add(Event::kL1dAccess);
  DataSource source = DataSource::kL1;
  const auto l1_outcome = cs.l1.access(line, is_write);
  latency += config_.l1.hit_latency;

  if (l1_outcome.hit) {
    counters.add(Event::kL1dHit);
    if (!is_write) counters.add(Event::kMemLoadL1Hit);
  } else {
    counters.add(Event::kL1dMiss);
    if (l1_outcome.evicted_line && l1_outcome.evicted_dirty) {
      counters.add(Event::kL1dEviction);
    }

    counters.add(Event::kL2Access);
    const auto l2_outcome = cs.l2.access(line, is_write);
    Cycles fill_latency = 0;

    if (l2_outcome.hit) {
      counters.add(Event::kL2Hit);
      if (!is_write) counters.add(Event::kMemLoadL2Hit);
      source = DataSource::kL2;
      fill_latency = config_.l2.hit_latency - config_.l1.hit_latency;
    } else {
      counters.add(Event::kL2Miss);
      if (l2_outcome.evicted_line) counters.add(Event::kL2Eviction);

      counters.add(Event::kL3Access);
      ns.uncore.add(Event::kUncLlcLookups);
      const auto l3_outcome = ns.l3.access(line, is_write);

      if (l3_outcome.hit) {
        counters.add(Event::kL3Hit);
        if (!is_write) counters.add(Event::kMemLoadL3Hit);
        source = DataSource::kL3;
        fill_latency = config_.l3.hit_latency - config_.l1.hit_latency;
      } else {
        counters.add(Event::kL3Miss);
        ns.uncore.add(Event::kUncLlcMisses);

        // Coherence: a remote cache may hold the line modified.
        bool served_by_remote_cache = false;
        if (coherence_enabled_) {
          const auto coherence = is_write ? directory_.on_write(line, core, node)
                                          : directory_.on_read(line, core, node);
          if (coherence.remote_snoops > 0) {
            node_state(target_node).uncore.add(Event::kUncSnoopsReceived,
                                               coherence.remote_snoops);
          }
          if (coherence.remote_hitm) {
            // kMemLoadRemoteHitm is a *load* data-source event; stores and
            // RMWs still pay the forward but retire as stores.
            if (!is_write) counters.add(Event::kMemLoadRemoteHitm);
            node_state(target_node).uncore.add(Event::kUncHitmResponses);
            source = DataSource::kRemoteCacheHitm;
            served_by_remote_cache = true;
          }
          fill_latency += coherence.extra_latency;
        }

        if (!served_by_remote_cache) {
          const auto dram = memory_.access(node, target_node, now);
          fill_latency += dram.latency;
          NodeState& target = node_state(target_node);
          target.uncore.add(is_write ? Event::kUncImcWrites : Event::kUncImcReads);
          target.energy_pj += config_.energy_pj_per_dram_access;
          if (target_node != node) {
            source = DataSource::kRemoteDram;
            if (!is_write) counters.add(Event::kMemLoadRemoteDram);
            ns.uncore.add(Event::kUncQpiTxFlits, dram.hops);
            ns.energy_pj += config_.energy_pj_per_hop * dram.hops;
          } else {
            source = DataSource::kLocalDram;
            if (!is_write) counters.add(Event::kMemLoadLocalDram);
          }
        }
      }
    }

    // Line-fill buffer: the miss occupies an entry for its whole duration;
    // a full buffer rejects the demand and stalls the pipeline until a slot
    // frees. Misses with free slots are mostly overlapped (MLP): the drain
    // stall scales with current occupancy, so an empty buffer hides latency
    // completely and a saturated one throttles the core.
    counters.add(Event::kFillBufferAllocations);
    const double occupancy_fraction =
        static_cast<double>(cs.fill_buffer.busy(now)) /
        static_cast<double>(config_.fill_buffer.entries);
    const auto fb = cs.fill_buffer.allocate(now, fill_latency);
    if (fb.rejects > 0) {
      counters.add(Event::kFillBufferRejects, fb.rejects);
    }
    // Quartic pressure curve: plenty of MLP headroom until the buffers are
    // nearly full, then the backend drains hard — miss-bound streams pin
    // the buffers at capacity instead of settling below it.
    const double pressure =
        occupancy_fraction * occupancy_fraction * occupancy_fraction * occupancy_fraction;
    miss_exposed = static_cast<Cycles>(std::llround(static_cast<double>(fill_latency) *
                                                    config_.stall_exposure * pressure)) +
                   fb.stall;
    fill_latency += fb.stall;
    latency += fill_latency;

    // Hardware prefetchers observe the demand-miss stream.
    issue_prefetches(cs, ns, node, line);
  }

  if (coherence_enabled_ && l1_outcome.hit && is_write) {
    // Writes that hit locally may still need to invalidate remote sharers.
    const auto coherence = directory_.on_write(line, core, node);
    if (coherence.remote_snoops > 0) {
      node_state(target_node).uncore.add(Event::kUncSnoopsReceived, coherence.remote_snoops);
      latency += coherence.extra_latency;
    }
  } else if (coherence_enabled_ && l1_outcome.hit && !is_write) {
    directory_.on_read(line, core, node);
  }

  if (is_atomic) {
    counters.add(Event::kAtomicOps);
    counters.add(Event::kL1dLocks);
    counters.add(Event::kLockCycles, config_.atomic_latency);
    latency += config_.atomic_latency;
  }

  // --- pipeline accounting ---
  // TLB walks and atomics serialize the pipeline fully; miss latency is
  // mostly hidden behind the fill buffers (miss_exposed computed above).
  const Cycles busy = config_.mem_issue_cycles;
  Cycles exposed = miss_exposed + translation_stall;
  if (is_atomic) exposed += config_.atomic_latency;
  if (exposed > 0) counters.add(Event::kStallCyclesMem, exposed);
  charge_cycles(core, busy, exposed);

  AccessResult result;
  result.latency = latency;
  result.source = source;
  if (!is_write) cs.pmu.on_load_retired(vaddr, latency, source, cs.clock);
  return result;
}

Machine::AccessResult Machine::load(CoreId core, PhysAddr paddr, VirtAddr vaddr,
                                    u64 tlb_page) {
  return access_impl(core, paddr, vaddr, tlb_page, /*is_write=*/false, /*is_atomic=*/false);
}

Machine::AccessResult Machine::store(CoreId core, PhysAddr paddr, VirtAddr vaddr,
                                     u64 tlb_page) {
  return access_impl(core, paddr, vaddr, tlb_page, /*is_write=*/true, /*is_atomic=*/false);
}

Machine::AccessResult Machine::atomic_rmw(CoreId core, PhysAddr paddr, VirtAddr vaddr,
                                          u64 tlb_page) {
  return access_impl(core, paddr, vaddr, tlb_page, /*is_write=*/true, /*is_atomic=*/true);
}

Machine::AccessResult Machine::load(CoreId core, PhysAddr paddr, VirtAddr vaddr) {
  return load(core, paddr, vaddr, page_of(vaddr));
}

Machine::AccessResult Machine::store(CoreId core, PhysAddr paddr, VirtAddr vaddr) {
  return store(core, paddr, vaddr, page_of(vaddr));
}

Machine::AccessResult Machine::atomic_rmw(CoreId core, PhysAddr paddr, VirtAddr vaddr) {
  return atomic_rmw(core, paddr, vaddr, page_of(vaddr));
}

void Machine::execute(CoreId core, u64 count) {
  if (count == 0) return;
  CoreState& cs = core_state(core);
  auto& counters = cs.pmu.counters();
  counters.add(Event::kInstructions, count);
  counters.add(Event::kUopsIssued, count);
  counters.add(Event::kUopsRetired, count);
  node_state(topology().node_of_core(core)).energy_pj +=
      config_.energy_pj_per_instruction * static_cast<double>(count);
  const Cycles busy =
      std::max<Cycles>(1, static_cast<Cycles>(std::llround(static_cast<double>(count) /
                                                           config_.base_ipc)));
  charge_cycles(core, busy, 0);
}

void Machine::branch(CoreId core, u64 site_key, bool taken) {
  CoreState& cs = core_state(core);
  auto& counters = cs.pmu.counters();
  counters.add(Event::kInstructions);
  counters.add(Event::kBranches);
  counters.add(Event::kUopsIssued);
  counters.add(Event::kUopsRetired);

  const auto outcome = cs.branch.execute(site_key, taken);
  Cycles stall = 0;
  if (outcome.mispredicted) {
    counters.add(Event::kBranchMisses);
    stall = cs.branch.config().misprediction_penalty;
    // Squashed wrong-path work shows up as extra issued uops.
    counters.add(Event::kUopsIssued, 4);
  }

  // Speculative jump retirement: the front end can only run ahead of the
  // pipeline while the core actually executes; stall and wait cycles are
  // lost speculation opportunity. The per-branch credit therefore scales
  // with the core's achieved duty cycle (busy / total) — the effect behind
  // the strong negative thread-count correlation in the paper's Fig. 9.
  const double total_cycles = static_cast<double>(counters[Event::kCycles]);
  const double stalled_cycles = static_cast<double>(counters[Event::kStallCyclesTotal]);
  const double duty =
      total_cycles > 0.0 ? 1.0 - stalled_cycles / total_cycles : 1.0;
  cs.spec_credit += duty * (outcome.mispredicted ? 0.25 : 1.0);
  while (cs.spec_credit >= 1.0) {
    counters.add(Event::kSpeculativeJumpsRetired);
    cs.spec_credit -= 1.0;
  }

  charge_cycles(core, 1, stall);
}

void Machine::invalidate_page(u64 page) {
  for (auto& core : cores_) core.tlb.invalidate(page);
}

void Machine::count_software_event(Event event, u64 count) {
  core_state(0).pmu.counters().add(event, count);
}

namespace {
void apply_mutation(CounterBlock& block, const CounterMutation& mutation) {
  u64& value = block.values[static_cast<usize>(mutation.event)];
  value = static_cast<u64>(std::llround(static_cast<double>(value) * mutation.scale));
}
}  // namespace

CounterBlock Machine::uncore_counters(NodeId node) const {
  const NodeState& state = node_state(node);
  CounterBlock snapshot = state.uncore;
  snapshot.values[static_cast<usize>(Event::kUncEnergyMicroJoules)] =
      static_cast<u64>(std::llround(state.energy_pj / 1e6));
  if (config_.counter_mutation &&
      event_info(config_.counter_mutation->event).scope == EventScope::kUncore) {
    apply_mutation(snapshot, *config_.counter_mutation);
  }
  return snapshot;
}

CounterBlock Machine::aggregate_counters() const {
  CounterBlock total;
  for (u32 c = 0; c < cores(); ++c) total += core_counters(c);
  // Uncore snapshots arrive already mutated (per node); core-scope events
  // are scaled once on the aggregated total so the perturbation matches
  // what a single scaled counter bank would have reported.
  for (u32 n = 0; n < nodes(); ++n) total += uncore_counters(n);
  if (config_.counter_mutation &&
      event_info(config_.counter_mutation->event).scope != EventScope::kUncore) {
    apply_mutation(total, *config_.counter_mutation);
  }
  return total;
}

void Machine::flush_task_accounting() {
  for (auto& core : cores_) core.pmu.flush_current_task();
}

void Machine::reset() {
  for (auto& core : cores_) {
    core.l1.clear();
    core.l2.clear();
    core.tlb.flush();
    core.fill_buffer.clear();
    core.prefetcher.clear();
    core.branch.clear();
    core.pmu.clear();
    core.clock = 0;
    core.stall_ema = 0.0;
    core.spec_credit = 0.0;
  }
  for (auto& node : nodes_) {
    node.l3.clear();
    node.uncore.clear();
    node.energy_pj = 0.0;
  }
  directory_.clear();
  memory_.clear();
  rng_.reseed(config_.seed);
}

}  // namespace npat::sim
