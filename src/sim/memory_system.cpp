#include "sim/memory_system.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace npat::sim {

MemorySystem::MemorySystem(const Topology& topology, const MemoryConfig& config, u64 seed)
    : topology_(&topology), config_(config), nodes_(topology.nodes), rng_(seed) {
  NPAT_CHECK_MSG(config.bandwidth_window > 0 && config.service_cycles > 0,
                 "invalid bandwidth model parameters");
}

MemorySystem::AccessResult MemorySystem::access(NodeId from_node, NodeId target_node,
                                                Cycles now) {
  NodeState& state = nodes_[target_node];

  // Roll the utilization window forward. If the access arrives beyond the
  // current window, the previous window's utilization is recomputed.
  if (now >= state.window_start + config_.bandwidth_window) {
    state.utilization = static_cast<double>(state.accesses_in_window * config_.service_cycles) /
                        static_cast<double>(config_.bandwidth_window);
    // Decay across idle windows so stale pressure does not linger.
    const u64 windows_elapsed = (now - state.window_start) / config_.bandwidth_window;
    if (windows_elapsed > 1) {
      state.utilization /= static_cast<double>(windows_elapsed);
    }
    state.window_start = now - (now - state.window_start) % config_.bandwidth_window;
    state.accesses_in_window = 0;
  }
  state.accesses_in_window += 1;

  AccessResult result;
  result.hops = topology_->hops(from_node, target_node);
  result.utilization = state.utilization;

  const double base = static_cast<double>(config_.local_dram_latency) +
                      static_cast<double>(config_.per_hop_latency) * result.hops;

  // M/D/1-flavoured queueing above the onset utilization, capped.
  const double rho = std::min(state.utilization, 0.95);
  const double excess = std::max(0.0, rho - config_.queueing_onset);
  const double queueing =
      std::min(base * excess / (1.0 - rho), base * config_.max_queueing_factor);

  const double jitter = rng_.normal(0.0, config_.jitter_fraction * base);
  const double total = std::max(base * 0.6, base + queueing + jitter);
  result.latency = static_cast<Cycles>(std::llround(total));
  return result;
}

double MemorySystem::utilization(NodeId node) const {
  NPAT_CHECK(node < nodes_.size());
  return nodes_[node].utilization;
}

void MemorySystem::clear() {
  for (auto& n : nodes_) n = NodeState{};
}

}  // namespace npat::sim
