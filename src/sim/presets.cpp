#include "sim/presets.hpp"

#include "util/check.hpp"

namespace npat::sim {

MachineConfig hpe_dl580_gen9(u32 cores_per_node) {
  MachineConfig config;
  config.topology = make_fully_connected(4, cores_per_node);
  config.topology.model_name = "HPE ProLiant DL580 Gen9 Server";
  config.topology.processor_name = "Intel Xeon E7-8890 v3";
  config.topology.frequency_ghz = 2.4;
  config.topology.memory_per_node_bytes = GiB(32);
  config.topology.memory_frequency_mhz = 1600;
  // E7-8890v3 cache geometry (L3 scaled per socket).
  config.l1 = {"L1D", KiB(32), 8, 64, 4};
  config.l2 = {"L2", KiB(256), 8, 64, 12};
  config.l3 = {"L3", MiB(45), 16, 64, 60};
  return config;
}

SystemSpec hpe_dl580_gen9_spec() {
  return SystemSpec{
      "HPE ProLiant DL580 Gen9 Server",
      "4x Intel Xeon E7-8890 v3 @ 2.4 GHz",
      "Fully interconnected",
      "4 x 32 GiB RAM @ 1600 MHz",
      "npat NUMA machine simulator",
      "npat 1.0.0",
  };
}

MachineConfig dual_socket_small(u32 cores_per_node) {
  MachineConfig config;
  config.topology = make_fully_connected(2, cores_per_node);
  config.topology.model_name = "dual-socket-small";
  config.topology.memory_per_node_bytes = GiB(4);
  config.l3 = {"L3", MiB(4), 16, 64, 60};
  return config;
}

MachineConfig uma_single_node(u32 cores) {
  MachineConfig config;
  config.topology = make_fully_connected(1, cores);
  config.topology.model_name = "uma-single-node";
  config.topology.memory_per_node_bytes = GiB(8);
  config.l3 = {"L3", MiB(8), 16, 64, 60};
  return config;
}

MachineConfig eight_socket_cube(u32 cores_per_node) {
  MachineConfig config;
  config.topology = make_twisted_cube(cores_per_node);
  config.topology.memory_per_node_bytes = GiB(16);
  config.l3 = {"L3", MiB(8), 16, 64, 60};
  return config;
}

MachineConfig preset_by_name(const std::string& name) {
  if (name == "dl580") return hpe_dl580_gen9(4);  // simulation-friendly core count
  if (name == "dl580-full") return hpe_dl580_gen9(18);
  if (name == "dual") return dual_socket_small();
  if (name == "uma") return uma_single_node();
  if (name == "cube8") return eight_socket_cube();
  NPAT_CHECK_MSG(false, "unknown machine preset: " + name);
  return MachineConfig{};
}

std::vector<std::string> preset_names() {
  return {"dl580", "dl580-full", "dual", "uma", "cube8"};
}

}  // namespace npat::sim
