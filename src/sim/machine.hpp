// The simulated NUMA machine: cores with private L1/L2, TLBs, fill buffers,
// prefetchers and branch predictors; sockets with a shared L3, a memory
// controller and uncore counters; a coherence directory and an interconnect
// between sockets.
//
// The machine executes *primitive operations* (load/store/atomic/compute/
// branch) issued by the OS layer with already-translated physical
// addresses, advances per-core cycle clocks, and increments the full
// hardware event set. It deliberately models costs, not data values.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"
#include "sim/coherence.hpp"
#include "sim/data_source.hpp"
#include "sim/events.hpp"
#include "sim/fill_buffer.hpp"
#include "sim/memory_system.hpp"
#include "sim/pmu.hpp"
#include "sim/prefetcher.hpp"
#include "sim/tlb.hpp"
#include "sim/topology.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace npat::sim {

/// Physical addresses encode the home node in the top bits.
constexpr PhysAddr make_paddr(NodeId node, u64 offset) noexcept {
  return (static_cast<u64>(node) << 40) | offset;
}
constexpr NodeId node_of_paddr(PhysAddr paddr) noexcept {
  return static_cast<NodeId>(paddr >> 40);
}

/// Deliberate perturbation of one counter path, applied when counter
/// snapshots are read (uncore_counters / aggregate_counters). Exists for
/// the validation harness's mutation smoke tests: the refutation gate must
/// demonstrably catch a simulator whose counter semantics drifted, and the
/// cheapest honest drift is scaling one event at the snapshot boundary.
/// Per-core reads through core_counters() are unaffected (they return the
/// raw banks by reference).
struct CounterMutation {
  Event event = Event::kCycles;
  double scale = 1.0;
};

struct MachineConfig {
  Topology topology = make_fully_connected(1, 1);
  CacheConfig l1 = {"L1D", 32 * 1024, 8, 64, 4};
  CacheConfig l2 = {"L2", 256 * 1024, 8, 64, 12};
  CacheConfig l3 = {"L3", 8 * 1024 * 1024, 16, 64, 60};  // per socket
  TlbConfig tlb;
  FillBufferConfig fill_buffer;
  PrefetcherConfig prefetcher;
  BranchPredictorConfig branch;
  CoherenceCosts coherence;
  MemoryConfig memory;

  /// Instructions per cycle when the pipeline is not stalled.
  double base_ipc = 2.0;
  /// Issue cost of a memory access in cycles. Out-of-order cores keep many
  /// loads in flight, so the pipeline charge per access is ~1 cycle; the
  /// *latency* of a miss is absorbed by the line-fill buffers, and stalls
  /// emerge when those fill up (the MLP model behind Fig. 8's fill-buffer
  /// reject explosion).
  Cycles mem_issue_cycles = 1;
  /// Fraction of miss latency exposed as dependent-use stall at *full*
  /// fill-buffer occupancy (quartic in occupancy below that). Default 0:
  /// out-of-order execution hides miss latency until the fill buffers
  /// saturate, and the buffer-full stall is what throttles the core — the
  /// mechanism behind Fig. 8's fill-buffer reject explosion. Raise it for
  /// an in-order-ish ablation.
  double stall_exposure = 0.0;
  Cycles atomic_latency = 24;

  /// Energy model (drives the RAPL-style uncore counter).
  double energy_pj_per_instruction = 250.0;
  double energy_pj_per_dram_access = 12000.0;
  double energy_pj_per_hop = 4000.0;

  u64 seed = 12345;

  /// Unset in normal operation; see CounterMutation.
  std::optional<CounterMutation> counter_mutation;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const noexcept { return config_; }
  const Topology& topology() const noexcept { return config_.topology; }
  u32 cores() const noexcept { return topology().total_cores(); }
  u32 nodes() const noexcept { return topology().nodes; }

  // --- clocks ---
  Cycles core_clock(CoreId core) const { return core_state(core).clock; }
  /// Advances a core's clock doing useful (busy) work.
  void advance(CoreId core, Cycles cycles);
  /// Advances a core's clock *waiting* (spin/synchronization): counted as
  /// stall, which suppresses speculative retirement afterwards.
  void wait(CoreId core, Cycles cycles);
  /// Maximum core clock; the OS layer keeps cores loosely synchronized.
  Cycles max_clock() const;

  // --- execution primitives ---
  struct AccessResult {
    Cycles latency = 0;
    DataSource source = DataSource::kL1;
  };

  /// `tlb_page` is the translation-cache key for the access (the OS layer
  /// supplies it; huge pages use a coarser key, so one TLB entry covers
  /// 512 small pages). The three-argument overloads assume 4 KiB pages.
  AccessResult load(CoreId core, PhysAddr paddr, VirtAddr vaddr, u64 tlb_page);
  AccessResult store(CoreId core, PhysAddr paddr, VirtAddr vaddr, u64 tlb_page);
  AccessResult atomic_rmw(CoreId core, PhysAddr paddr, VirtAddr vaddr, u64 tlb_page);
  AccessResult load(CoreId core, PhysAddr paddr, VirtAddr vaddr);
  AccessResult store(CoreId core, PhysAddr paddr, VirtAddr vaddr);
  /// Locked read-modify-write (used for barriers/locks in workloads).
  AccessResult atomic_rmw(CoreId core, PhysAddr paddr, VirtAddr vaddr);
  /// Retires `count` ALU instructions.
  void execute(CoreId core, u64 count);
  /// Executes one branch instruction at static site `site_key`.
  void branch(CoreId core, u64 site_key, bool taken);

  /// Invalidate translation caching for a freed page (all cores).
  void invalidate_page(u64 page);

  /// Records an OS software event (e.g. NUMA page migrations). Software
  /// events are aggregated on core 0's block, like perf's per-process
  /// software counters.
  void count_software_event(Event event, u64 count = 1);

  // --- coherence participation ---
  /// The directory is consulted only when enabled (the OS layer enables it
  /// for multi-threaded programs; tracking single-threaded streams would
  /// only burn memory).
  void set_coherence_enabled(bool enabled) { coherence_enabled_ = enabled; }
  bool coherence_enabled() const noexcept { return coherence_enabled_; }

  // --- PMU / counters ---
  CorePmu& pmu(CoreId core) { return core_state(core).pmu; }
  const CorePmu& pmu(CoreId core) const { return core_state(core).pmu; }
  const CounterBlock& core_counters(CoreId core) const { return core_state(core).pmu.counters(); }
  /// Snapshot of a node's uncore counters (energy materialized on read).
  CounterBlock uncore_counters(NodeId node) const;
  /// Sum over all cores plus all uncore blocks (system-wide totals).
  CounterBlock aggregate_counters() const;

  /// Folds every core's in-flight per-task counter slice (see
  /// CorePmu::flush_current_task) so task-domain reads are consistent
  /// across cores.
  void flush_task_accounting();

  /// Memory-stall EMA of a core in [0,1]; feeds the speculation model.
  double stall_ratio(CoreId core) const { return core_state(core).stall_ema; }

  /// Resets caches, TLBs, predictors, counters and clocks (fresh run).
  void reset();

 private:
  struct CoreState {
    Cache l1;
    Cache l2;
    Tlb tlb;
    FillBuffer fill_buffer;
    Prefetcher prefetcher;
    BranchPredictor branch;
    CorePmu pmu;
    Cycles clock = 0;
    double stall_ema = 0.0;
    double spec_credit = 0.0;

    explicit CoreState(const MachineConfig& config);
  };

  struct NodeState {
    Cache l3;
    CounterBlock uncore;
    double energy_pj = 0.0;

    explicit NodeState(const MachineConfig& config);
  };

  CoreState& core_state(CoreId core);
  const CoreState& core_state(CoreId core) const;
  NodeState& node_state(NodeId node);
  const NodeState& node_state(NodeId node) const;

  /// Shared memory-access path; is_write selects store semantics.
  AccessResult access_impl(CoreId core, PhysAddr paddr, VirtAddr vaddr, u64 tlb_page,
                           bool is_write, bool is_atomic);
  void charge_cycles(CoreId core, Cycles busy, Cycles stalled);
  void update_stall_ema(CoreState& state, Cycles busy, Cycles stalled);
  void issue_prefetches(CoreState& cs, NodeState& ns, NodeId node, u64 line);

  MachineConfig config_;
  std::vector<CoreState> cores_;
  std::vector<NodeState> nodes_;
  CoherenceDirectory directory_;
  MemorySystem memory_;
  util::Xoshiro256ss rng_;
  bool coherence_enabled_ = false;
  std::vector<PrefetchRequest> prefetch_scratch_;
};

}  // namespace npat::sim
