// Line-fill buffer (MSHR) occupancy model. Each L1D miss allocates an
// entry that stays busy until its fill completes; when every entry is busy
// a demand request is *rejected* and must retry — the paper's Fig. 8 shows
// this counter exploding from 26 to ~3 million in the cache-miss variant.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "util/types.hpp"

namespace npat::sim {

struct FillBufferConfig {
  u32 entries = 10;  // Intel L1D line-fill buffers
};

class FillBuffer {
 public:
  explicit FillBuffer(const FillBufferConfig& config);

  struct Result {
    u32 rejects = 0;       // times the request found all entries busy
    Cycles stall = 0;      // cycles waited for a slot to free
  };

  /// Allocates an entry for a miss issued at `now` completing at
  /// `now + fill_latency`. If the buffer is full, the request stalls until
  /// the earliest completion and the rejection is counted.
  Result allocate(Cycles now, Cycles fill_latency);

  /// Entries still busy at `now` (for occupancy metrics/tests).
  u32 busy(Cycles now) const;

  void clear();

 private:
  void expire(Cycles now);

  FillBufferConfig config_;
  std::vector<Cycles> release_times_;  // unsorted small set, size <= entries
};

}  // namespace npat::sim
