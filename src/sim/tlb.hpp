// Two-level data TLB. A DTLB miss consults the STLB; an STLB miss triggers
// a hardware page walk, which costs cycles and locks the L1D (the paper's
// Fig. 9 attributes l1d.locks to "TLB page walks by the uncore").
#pragma once

#include <vector>

#include "util/types.hpp"

namespace npat::sim {

struct TlbConfig {
  u32 dtlb_entries = 64;
  u32 dtlb_ways = 4;
  u32 stlb_entries = 1536;
  u32 stlb_ways = 12;
  Cycles walk_latency = 28;  // nominal page-walk duration
};

enum class TlbOutcome : u8 { kDtlbHit, kStlbHit, kPageWalk };

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  const TlbConfig& config() const noexcept { return config_; }

  /// Translates (looks up) the page; fills both levels on a walk.
  TlbOutcome access(u64 page);

  /// Removes a page translation everywhere (used on remap/free).
  void invalidate(u64 page);
  void flush();

 private:
  struct Entry {
    u64 page = 0;
    u64 stamp = 0;
    bool valid = false;
  };

  struct Level {
    u32 sets;
    u32 ways;
    std::vector<Entry> entries;

    Level(u32 total_entries, u32 ways_in);
    bool lookup_and_touch(u64 page, u64 clock);
    void insert(u64 page, u64 clock);
    void invalidate(u64 page);
    void flush();
  };

  TlbConfig config_;
  Level dtlb_;
  Level stlb_;
  u64 clock_ = 0;
};

}  // namespace npat::sim
