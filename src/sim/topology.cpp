#include "sim/topology.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::sim {

u32 Topology::hops(NodeId from, NodeId to) const {
  NPAT_CHECK_MSG(from < nodes && to < nodes, "node id out of range");
  return distance_hops[from][to];
}

u32 Topology::max_hops() const {
  u32 worst = 0;
  for (const auto& row : distance_hops) {
    for (u32 h : row) worst = std::max(worst, h);
  }
  return worst;
}

void Topology::validate() const {
  NPAT_CHECK_MSG(nodes >= 1, "topology needs at least one node");
  NPAT_CHECK_MSG(cores_per_node >= 1, "topology needs at least one core per node");
  NPAT_CHECK_MSG(frequency_ghz > 0.0, "frequency must be positive");
  NPAT_CHECK_MSG(distance_hops.size() == nodes, "distance matrix row count mismatch");
  for (u32 a = 0; a < nodes; ++a) {
    NPAT_CHECK_MSG(distance_hops[a].size() == nodes, "distance matrix must be square");
    NPAT_CHECK_MSG(distance_hops[a][a] == 0, "distance diagonal must be zero");
    for (u32 b = 0; b < nodes; ++b) {
      NPAT_CHECK_MSG(distance_hops[a][b] == distance_hops[b][a],
                     "distance matrix must be symmetric");
      NPAT_CHECK_MSG(a == b || distance_hops[a][b] >= 1,
                     "distinct nodes must be at least one hop apart");
    }
  }
}

std::string Topology::describe() const {
  std::string out = util::format(
      "%s: %u node(s) x %u core(s) @ %.1f GHz, %s RAM per node @ %u MHz\n",
      model_name.c_str(), nodes, cores_per_node, frequency_ghz,
      util::human_bytes(memory_per_node_bytes).c_str(), memory_frequency_mhz);
  out += "  hop matrix:\n";
  for (u32 a = 0; a < nodes; ++a) {
    out += "   ";
    for (u32 b = 0; b < nodes; ++b) out += util::format(" %u", distance_hops[a][b]);
    out += "\n";
  }
  return out;
}

Topology make_fully_connected(u32 nodes, u32 cores_per_node) {
  Topology t;
  t.model_name = util::format("fully-connected-%u", nodes);
  t.nodes = nodes;
  t.cores_per_node = cores_per_node;
  t.distance_hops.assign(nodes, std::vector<u32>(nodes, 1));
  for (u32 a = 0; a < nodes; ++a) t.distance_hops[a][a] = 0;
  t.validate();
  return t;
}

Topology make_ring(u32 nodes, u32 cores_per_node) {
  Topology t;
  t.model_name = util::format("ring-%u", nodes);
  t.nodes = nodes;
  t.cores_per_node = cores_per_node;
  t.distance_hops.assign(nodes, std::vector<u32>(nodes, 0));
  for (u32 a = 0; a < nodes; ++a) {
    for (u32 b = 0; b < nodes; ++b) {
      const u32 clockwise = (b + nodes - a) % nodes;
      t.distance_hops[a][b] = std::min(clockwise, nodes - clockwise);
    }
  }
  t.validate();
  return t;
}

Topology make_twisted_cube(u32 cores_per_node) {
  constexpr u32 kNodes = 8;
  Topology t;
  t.model_name = "twisted-cube-8";
  t.nodes = kNodes;
  t.cores_per_node = cores_per_node;
  t.distance_hops.assign(kNodes, std::vector<u32>(kNodes, 0));
  // Two fully meshed quads {0..3} and {4..7}; node i links to i+4. Crossing
  // to a non-partner node of the other quad costs two hops.
  for (u32 a = 0; a < kNodes; ++a) {
    for (u32 b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      const bool same_quad = (a / 4) == (b / 4);
      const bool partners = (a % 4) == (b % 4);
      t.distance_hops[a][b] = same_quad ? 1 : (partners ? 1 : 2);
    }
  }
  t.validate();
  return t;
}

}  // namespace npat::sim
