// MESI-lite coherence directory. Tracks, per cache line, the owning core
// and a coarse per-node sharer vector — enough to model invalidation
// traffic, remote snoops and HITM forwards, which dominate NUMA costs for
// write-shared data.
#pragma once

#include <optional>
#include <unordered_map>

#include "sim/topology.hpp"
#include "util/types.hpp"

namespace npat::sim {

struct CoherenceCosts {
  Cycles invalidation = 40;   // per remote sharer node invalidated
  Cycles hitm_forward = 90;   // dirty line forwarded from a remote cache
};

/// Effects of a coherence transaction, to be charged by the machine.
struct CoherenceOutcome {
  Cycles extra_latency = 0;
  u32 remote_snoops = 0;       // snoop messages sent to remote nodes
  bool remote_hitm = false;    // data came modified from a remote cache
  u32 invalidations_sent = 0;
};

class CoherenceDirectory {
 public:
  CoherenceDirectory(u32 nodes, const CoherenceCosts& costs);

  /// Records a read of `line` by `core` on `node`; reports whether a remote
  /// node held the line modified (HITM forward).
  CoherenceOutcome on_read(u64 line, CoreId core, NodeId node);

  /// Records a write; invalidates remote sharers.
  CoherenceOutcome on_write(u64 line, CoreId core, NodeId node);

  /// Drops a line from the directory (evicted everywhere / freed page).
  void forget(u64 line);

  usize tracked_lines() const { return lines_.size(); }
  void clear() { lines_.clear(); }

 private:
  struct Entry {
    u32 owner_core_plus1 = 0;  // 0 = none
    u8 owner_node = 0;
    u16 sharer_nodes = 0;      // bitmask over nodes (<= 16 nodes)
    bool dirty = false;
  };

  u32 nodes_;
  CoherenceCosts costs_;
  std::unordered_map<u64, Entry> lines_;
};

}  // namespace npat::sim
