#include "sim/events.hpp"

#include <unordered_map>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::sim {

namespace {

// clang-format off
constexpr EventInfo kEvents[] = {
    {Event::kCycles, "cpu.cycles", 0x3C, 0x00, EventScope::kFixed, "pipeline",
     "Core clock cycles while the logical processor is active."},
    {Event::kInstructions, "inst.retired", 0xC0, 0x00, EventScope::kFixed, "pipeline",
     "Instructions retired from execution."},
    {Event::kRefCycles, "cpu.ref_cycles", 0x3C, 0x01, EventScope::kFixed, "pipeline",
     "Reference cycles at the nominal TSC frequency."},

    {Event::kBranches, "br_inst.retired", 0xC4, 0x00, EventScope::kCore, "branch",
     "Branch instructions retired."},
    {Event::kBranchMisses, "br_misp.retired", 0xC5, 0x00, EventScope::kCore, "branch",
     "Mispredicted branch instructions retired."},
    {Event::kSpeculativeJumpsRetired, "br_inst.spec_exec", 0x89, 0x04, EventScope::kCore, "branch",
     "Speculatively executed jump instructions that later retired; drops when"
     " the pipeline is starved by memory stalls (paper Fig. 9)."},
    {Event::kStallCyclesTotal, "cycle_activity.stalls_total", 0xA3, 0x04, EventScope::kCore,
     "pipeline", "Cycles with no uops executed (any stall reason)."},
    {Event::kStallCyclesMem, "cycle_activity.stalls_mem_any", 0xA3, 0x14, EventScope::kCore,
     "pipeline", "Execution stall cycles while at least one demand load is outstanding."},
    {Event::kUopsIssued, "uops_issued.any", 0x0E, 0x01, EventScope::kCore, "pipeline",
     "Micro-ops issued by the front end."},
    {Event::kUopsRetired, "uops_retired.all", 0xC2, 0x01, EventScope::kCore, "pipeline",
     "Micro-ops retired."},

    {Event::kL1dAccess, "l1d.access", 0x40, 0x01, EventScope::kCore, "cache",
     "Demand loads and stores that looked up the L1 data cache."},
    {Event::kL1dHit, "l1d.hit", 0x40, 0x02, EventScope::kCore, "cache",
     "Demand references that hit the L1 data cache."},
    {Event::kL1dMiss, "l1d.replacement", 0x51, 0x01, EventScope::kCore, "cache",
     "L1 data cache misses (lines brought in, replacing another)."},
    {Event::kL1dEviction, "l1d.eviction", 0x51, 0x02, EventScope::kCore, "cache",
     "Modified lines evicted from the L1 data cache."},
    {Event::kL1dLocks, "l1d.locks", 0x63, 0x02, EventScope::kCore, "cache",
     "Cycles the L1D is locked by TLB page walks of the uncore or atomic"
     " operations (paper Fig. 9 correlates this with thread count)."},

    {Event::kL2Access, "l2_rqsts.references", 0x24, 0xFF, EventScope::kCore, "cache",
     "All demand and prefetch requests that reached the L2 cache."},
    {Event::kL2Hit, "l2_rqsts.hit", 0x24, 0xD7, EventScope::kCore, "cache",
     "Requests that hit the L2 cache."},
    {Event::kL2Miss, "l2_rqsts.miss", 0x24, 0x3F, EventScope::kCore, "cache",
     "Requests that missed the L2 cache."},
    {Event::kL2Eviction, "l2_lines_out.any", 0xF2, 0x07, EventScope::kCore, "cache",
     "Lines evicted from L2."},
    {Event::kL2PrefetchRequests, "l2_rqsts.pf_to_l2", 0x24, 0x30, EventScope::kCore, "prefetch",
     "Hardware prefetches targeting L2; the streamer redirects to L3 when"
     " strides exceed a page (paper Fig. 8: −90 % in the miss case)."},

    {Event::kL3Access, "llc.references", 0x2E, 0x4F, EventScope::kCore, "cache",
     "Demand and prefetch requests that reached the last-level cache."},
    {Event::kL3Hit, "llc.hits", 0x2E, 0x4E, EventScope::kCore, "cache",
     "Requests that hit the last-level cache."},
    {Event::kL3Miss, "llc.misses", 0x2E, 0x41, EventScope::kCore, "cache",
     "Requests that missed the last-level cache."},
    {Event::kL3PrefetchRequests, "llc.pf_requests", 0x2E, 0x72, EventScope::kCore, "prefetch",
     "Streamer prefetches that bypass L2 and fill into the LLC only."},

    {Event::kFillBufferAllocations, "l1d_pend_miss.fb_alloc", 0x48, 0x02, EventScope::kCore,
     "cache", "Line-fill buffer entries allocated for L1D misses."},
    {Event::kFillBufferRejects, "l1d_pend_miss.fb_full", 0x48, 0x04, EventScope::kCore, "cache",
     "Demand requests rejected because every line-fill buffer entry was busy"
     " (paper Fig. 8: 26 occurrences vs ~3 million)."},

    {Event::kDtlbAccess, "dtlb.access", 0x08, 0x01, EventScope::kCore, "tlb",
     "First-level data TLB lookups."},
    {Event::kDtlbMiss, "dtlb_load_misses.any", 0x08, 0x81, EventScope::kCore, "tlb",
     "First-level data TLB misses (STLB consulted)."},
    {Event::kStlbHit, "dtlb_load_misses.stlb_hit", 0x5F, 0x04, EventScope::kCore, "tlb",
     "DTLB misses that hit the unified second-level TLB."},
    {Event::kPageWalks, "dtlb_load_misses.walk_completed", 0x08, 0x0E, EventScope::kCore, "tlb",
     "Hardware page walks completed."},
    {Event::kPageWalkCycles, "dtlb_load_misses.walk_duration", 0x08, 0x10, EventScope::kCore,
     "tlb", "Cycles spent in hardware page walks."},

    {Event::kLoadsRetired, "mem_uops.loads", 0xD0, 0x81, EventScope::kCore, "memory",
     "Load micro-ops retired."},
    {Event::kStoresRetired, "mem_uops.stores", 0xD0, 0x82, EventScope::kCore, "memory",
     "Store micro-ops retired."},
    {Event::kMemLoadL1Hit, "mem_load_uops.l1_hit", 0xD1, 0x01, EventScope::kCore, "memory",
     "Retired loads with L1 data sources."},
    {Event::kMemLoadL2Hit, "mem_load_uops.l2_hit", 0xD1, 0x02, EventScope::kCore, "memory",
     "Retired loads with L2 data sources."},
    {Event::kMemLoadL3Hit, "mem_load_uops.l3_hit", 0xD1, 0x04, EventScope::kCore, "memory",
     "Retired loads with LLC data sources."},
    {Event::kMemLoadLocalDram, "mem_load_uops.local_dram", 0xD3, 0x01, EventScope::kCore, "numa",
     "Retired loads served from DRAM attached to the local socket."},
    {Event::kMemLoadRemoteDram, "mem_load_uops.remote_dram", 0xD3, 0x04, EventScope::kCore,
     "numa", "Retired loads served from DRAM attached to a remote socket."},
    {Event::kMemLoadRemoteHitm, "mem_load_uops.remote_hitm", 0xD3, 0x10, EventScope::kCore,
     "numa", "Retired loads that hit modified data in a remote cache."},
    {Event::kLoadLatencyAbove, "mem_trans_retired.load_latency", 0xCD, 0x01, EventScope::kCore,
     "memory", "PEBS: retired loads whose use latency met or exceeded the armed"
     " threshold (Memhist's building block)."},

    {Event::kAtomicOps, "mem_uops.lock_loads", 0xD0, 0x21, EventScope::kCore, "sync",
     "Locked (atomic) memory operations retired."},
    {Event::kLockCycles, "lock_cycles.cache_lock", 0x63, 0x01, EventScope::kCore, "sync",
     "Cycles a cache-line lock was held for atomics."},

    {Event::kSwPageMigrations, "sw.numa_page_migrations", 0x00, 0x05, EventScope::kFixed,
     "os", "Software event: pages migrated between NUMA nodes by the kernel's"
     " automatic NUMA balancing."},

    {Event::kUncLlcLookups, "unc_cbo.llc_lookups", 0x34, 0x11, EventScope::kUncore, "uncore",
     "Uncore: LLC lookups on this socket from any core."},
    {Event::kUncLlcMisses, "unc_cbo.llc_misses", 0x34, 0x21, EventScope::kUncore, "uncore",
     "Uncore: LLC misses on this socket."},
    {Event::kUncImcReads, "unc_imc.cas_reads", 0x04, 0x03, EventScope::kUncore, "uncore",
     "Uncore: DRAM CAS read commands issued by this socket's memory controller."},
    {Event::kUncImcWrites, "unc_imc.cas_writes", 0x04, 0x0C, EventScope::kUncore, "uncore",
     "Uncore: DRAM CAS write commands issued by this socket's memory controller."},
    {Event::kUncQpiTxFlits, "unc_qpi.tx_flits", 0x00, 0x02, EventScope::kUncore, "uncore",
     "Uncore: interconnect flits transmitted to remote sockets."},
    {Event::kUncSnoopsReceived, "unc_cbo.snoops_rx", 0x35, 0x01, EventScope::kUncore, "uncore",
     "Uncore: snoop requests received from remote sockets."},
    {Event::kUncHitmResponses, "unc_cbo.hitm_rsp", 0x35, 0x08, EventScope::kUncore, "uncore",
     "Uncore: snoops answered with modified data (HITM)."},
    {Event::kUncEnergyMicroJoules, "unc_rapl.pkg_energy", 0x01, 0x00, EventScope::kUncore,
     "power", "Uncore: accumulated package energy in microjoules (RAPL-style;"
     " the paper cites wattage as an indicator of hidden thermal state)."},
};
// clang-format on

static_assert(std::size(kEvents) == kEventCount,
              "every Event enumerator needs a registry entry");

constexpr bool registry_is_ordered() {
  for (usize i = 0; i < std::size(kEvents); ++i) {
    if (static_cast<usize>(kEvents[i].event) != i) return false;
  }
  return true;
}
static_assert(registry_is_ordered(), "registry must be indexed by Event value");

}  // namespace

std::span<const EventInfo> all_events() { return kEvents; }

const EventInfo& event_info(Event event) {
  const usize idx = static_cast<usize>(event);
  NPAT_CHECK_MSG(idx < kEventCount, "invalid event id");
  return kEvents[idx];
}

std::string_view event_name(Event event) { return event_info(event).name; }

std::optional<Event> event_by_name(std::string_view name) {
  static const auto index = [] {
    std::unordered_map<std::string_view, Event> map;
    for (const auto& info : kEvents) map.emplace(info.name, info.event);
    return map;
  }();
  const auto it = index.find(name);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

std::optional<Event> event_by_code(u16 code, u8 umask) {
  for (const auto& info : kEvents) {
    if (info.code == code && info.umask == umask) return info.event;
  }
  return std::nullopt;
}

namespace {
const char* scope_name(EventScope scope) {
  switch (scope) {
    case EventScope::kFixed: return "fixed";
    case EventScope::kCore: return "core";
    case EventScope::kUncore: return "uncore";
  }
  return "?";
}
}  // namespace

util::Json events_to_json() {
  util::JsonArray entries;
  for (const auto& info : kEvents) {
    util::JsonObject obj;
    obj["EventName"] = std::string(info.name);
    obj["EventCode"] = util::format("0x%02X", info.code);
    obj["UMask"] = util::format("0x%02X", info.umask);
    obj["Scope"] = scope_name(info.scope);
    obj["Category"] = std::string(info.category);
    obj["BriefDescription"] = std::string(info.description);
    entries.emplace_back(std::move(obj));
  }
  util::JsonObject doc;
  doc["Platform"] = "npat simulated PMU";
  doc["Events"] = std::move(entries);
  return util::Json(std::move(doc));
}

std::vector<EventInfo> events_from_json(const util::Json& doc) {
  std::vector<EventInfo> out;
  for (const auto& entry : doc.at("Events").as_array()) {
    const std::string name = entry.get_string("EventName");
    const auto event = event_by_name(name);
    if (!event) continue;  // unknown on this platform
    out.push_back(event_info(*event));
  }
  return out;
}

}  // namespace npat::sim
