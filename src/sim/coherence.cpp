#include "sim/coherence.hpp"

#include <bit>

#include "util/check.hpp"

namespace npat::sim {

CoherenceDirectory::CoherenceDirectory(u32 nodes, const CoherenceCosts& costs)
    : nodes_(nodes), costs_(costs) {
  NPAT_CHECK_MSG(nodes >= 1 && nodes <= 16, "directory supports 1..16 nodes");
}

CoherenceOutcome CoherenceDirectory::on_read(u64 line, CoreId core, NodeId node) {
  CoherenceOutcome outcome;
  auto [it, inserted] = lines_.try_emplace(line);
  Entry& entry = it->second;
  const u16 node_bit = static_cast<u16>(1u << node);

  if (!inserted && entry.dirty && entry.owner_node != node) {
    // Remote cache holds the line modified: snoop + HITM forward, then the
    // line is downgraded to shared (owner writes back).
    outcome.remote_hitm = true;
    outcome.remote_snoops = 1;
    outcome.extra_latency = costs_.hitm_forward;
    entry.dirty = false;
  }
  entry.sharer_nodes |= node_bit;
  if (entry.owner_core_plus1 == 0) {
    entry.owner_core_plus1 = core + 1;
    entry.owner_node = static_cast<u8>(node);
  }
  return outcome;
}

CoherenceOutcome CoherenceDirectory::on_write(u64 line, CoreId core, NodeId node) {
  CoherenceOutcome outcome;
  auto [it, inserted] = lines_.try_emplace(line);
  Entry& entry = it->second;
  const u16 node_bit = static_cast<u16>(1u << node);

  if (!inserted) {
    if (entry.dirty && entry.owner_node != node) {
      outcome.remote_hitm = true;
      outcome.extra_latency += costs_.hitm_forward;
      outcome.remote_snoops += 1;
    }
    const u16 remote_sharers = static_cast<u16>(entry.sharer_nodes & ~node_bit);
    if (remote_sharers != 0) {
      const u32 count = static_cast<u32>(std::popcount(remote_sharers));
      outcome.invalidations_sent = count;
      outcome.remote_snoops += count;
      outcome.extra_latency += costs_.invalidation * count;
    }
  }
  entry.owner_core_plus1 = core + 1;
  entry.owner_node = static_cast<u8>(node);
  entry.sharer_nodes = node_bit;
  entry.dirty = true;
  return outcome;
}

void CoherenceDirectory::forget(u64 line) { lines_.erase(line); }

}  // namespace npat::sim
