// Hardware stride prefetcher. Tracks per-stream strides; short strides
// prefetch the next lines into L2, while strides at or beyond a page defeat
// the L2 prefetcher and are handled by the LLC streamer instead — the
// mechanism behind the paper's Fig. 8 observation that "L2 prefetch
// requests dropped by 90 %, since prefetchers directly accessed the L3
// cache".
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace npat::sim {

struct PrefetcherConfig {
  u32 streams = 16;           // tracked access streams
  u32 degree = 2;             // lines prefetched per trigger
  i64 max_l2_stride_lines = 8;  // |stride| beyond this goes to the LLC streamer
  u32 confirmations = 2;      // identical strides required before issuing
  /// A demand access continues an existing stream if it lands within this
  /// many lines of the stream's last access (covers page-sized strides).
  i64 match_distance_lines = 256;
};

/// Targets a prefetch can fill into.
enum class PrefetchTarget : u8 { kL2, kL3 };

struct PrefetchRequest {
  u64 line = 0;
  PrefetchTarget target = PrefetchTarget::kL2;
};

class Prefetcher {
 public:
  explicit Prefetcher(const PrefetcherConfig& config);

  /// Observes a demand line access and returns prefetches to issue.
  /// `out` is cleared first; at most config.degree requests are produced.
  void observe(u64 line_addr, std::vector<PrefetchRequest>& out);

  void clear();

 private:
  struct Stream {
    u64 last_line = 0;
    i64 stride = 0;
    u32 confidence = 0;
    u64 stamp = 0;
    bool valid = false;
  };

  PrefetcherConfig config_;
  std::vector<Stream> streams_;
  u64 clock_ = 0;
};

}  // namespace npat::sim
