// Ready-made machine configurations, including the paper's Table I testbed.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace npat::sim {

struct SystemSpec {
  std::string server_model;
  std::string processor;
  std::string numa_topology;
  std::string memory;
  std::string operating_system;
  std::string kernel_version;
};

/// The evaluation system of the paper's Table I: HPE ProLiant DL580 Gen9,
/// 4× Xeon E7-8890v3 @ 2.4 GHz, fully interconnected, 4 × 32 GiB.
/// `cores_per_node` defaults to 18 (the E7-8890v3); benches use fewer
/// simulated cores for speed without changing the topology shape.
MachineConfig hpe_dl580_gen9(u32 cores_per_node = 18);

/// Descriptive metadata matching Table I (with the simulator substituted
/// for Ubuntu/the kernel).
SystemSpec hpe_dl580_gen9_spec();

/// A small 2-socket machine for fast tests.
MachineConfig dual_socket_small(u32 cores_per_node = 2);

/// Single-node UMA machine (baseline: no remote accesses possible).
MachineConfig uma_single_node(u32 cores = 4);

/// 8-socket twisted-cube machine (paper outlook: larger topologies).
MachineConfig eight_socket_cube(u32 cores_per_node = 4);

/// All presets by name (used by example CLIs): "dl580", "dual", "uma",
/// "cube8". Throws CheckError for unknown names.
MachineConfig preset_by_name(const std::string& name);
std::vector<std::string> preset_names();

}  // namespace npat::sim
