#include "sim/branch_predictor.hpp"

#include "util/check.hpp"

namespace npat::sim {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config)
    : config_(config),
      mask_((1ULL << config.table_bits) - 1),
      history_mask_((1ULL << config.history_bits) - 1),
      counters_(1ULL << config.table_bits, 1) {
  NPAT_CHECK_MSG(config.table_bits >= 4 && config.table_bits <= 24, "table_bits out of range");
  NPAT_CHECK_MSG(config.history_bits <= 32, "history_bits out of range");
}

BranchPredictor::Outcome BranchPredictor::execute(u64 key, bool taken) {
  const usize idx = index(key);
  u8& counter = counters_[idx];

  Outcome outcome;
  outcome.predicted_taken = counter >= 2;
  outcome.mispredicted = outcome.predicted_taken != taken;

  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
  return outcome;
}

void BranchPredictor::clear() {
  for (auto& c : counters_) c = 1;
  history_ = 0;
}

}  // namespace npat::sim
