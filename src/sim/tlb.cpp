#include "sim/tlb.hpp"

#include "util/check.hpp"

namespace npat::sim {

Tlb::Level::Level(u32 total_entries, u32 ways_in)
    : sets(total_entries / ways_in), ways(ways_in), entries(total_entries) {
  NPAT_CHECK_MSG(ways_in > 0 && total_entries % ways_in == 0,
                 "TLB entries must divide evenly into ways");
  NPAT_CHECK_MSG(sets > 0, "TLB needs at least one set");
}

bool Tlb::Level::lookup_and_touch(u64 page, u64 clock) {
  const usize set = static_cast<usize>(page % sets);
  Entry* base = &entries[set * ways];
  for (u32 w = 0; w < ways; ++w) {
    if (base[w].valid && base[w].page == page) {
      base[w].stamp = clock;
      return true;
    }
  }
  return false;
}

void Tlb::Level::insert(u64 page, u64 clock) {
  const usize set = static_cast<usize>(page % sets);
  Entry* base = &entries[set * ways];
  Entry* slot = base;
  for (u32 w = 0; w < ways; ++w) {
    if (!base[w].valid) {
      slot = &base[w];
      break;
    }
    if (base[w].stamp < slot->stamp) slot = &base[w];
  }
  slot->valid = true;
  slot->page = page;
  slot->stamp = clock;
}

void Tlb::Level::invalidate(u64 page) {
  const usize set = static_cast<usize>(page % sets);
  Entry* base = &entries[set * ways];
  for (u32 w = 0; w < ways; ++w) {
    if (base[w].valid && base[w].page == page) base[w].valid = false;
  }
}

void Tlb::Level::flush() {
  for (auto& e : entries) e.valid = false;
}

Tlb::Tlb(const TlbConfig& config)
    : config_(config),
      dtlb_(config.dtlb_entries, config.dtlb_ways),
      stlb_(config.stlb_entries, config.stlb_ways) {}

TlbOutcome Tlb::access(u64 page) {
  ++clock_;
  if (dtlb_.lookup_and_touch(page, clock_)) return TlbOutcome::kDtlbHit;
  if (stlb_.lookup_and_touch(page, clock_)) {
    dtlb_.insert(page, clock_);
    return TlbOutcome::kStlbHit;
  }
  stlb_.insert(page, clock_);
  dtlb_.insert(page, clock_);
  return TlbOutcome::kPageWalk;
}

void Tlb::invalidate(u64 page) {
  dtlb_.invalidate(page);
  stlb_.invalidate(page);
}

void Tlb::flush() {
  dtlb_.flush();
  stlb_.flush();
}

}  // namespace npat::sim
