// Set-associative cache model with true-LRU replacement and write-back
// semantics. Used for private L1D/L2 per core and a shared L3 per socket.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace npat::sim {

struct CacheConfig {
  std::string name = "cache";
  u64 size_bytes = 32 * 1024;
  u32 ways = 8;
  u32 line_bytes = 64;
  Cycles hit_latency = 4;

  u64 sets() const noexcept { return size_bytes / (static_cast<u64>(ways) * line_bytes); }
  u64 lines() const noexcept { return size_bytes / line_bytes; }
};

/// Result of a cache access.
struct CacheOutcome {
  bool hit = false;
  /// Line evicted to make room (only on misses into a full set).
  std::optional<u64> evicted_line;
  bool evicted_dirty = false;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const noexcept { return config_; }

  /// Looks up and (on miss) fills `line_addr`, updating LRU and dirty bits.
  CacheOutcome access(u64 line_addr, bool is_write);

  /// Lookup without fill or LRU update (used by coherence probes).
  bool contains(u64 line_addr) const;

  /// Removes a line (coherence invalidation); returns whether it was dirty.
  /// No-op returning false when the line is absent.
  bool invalidate(u64 line_addr);

  /// Fills a line without a demand access (prefetch). Returns the eviction
  /// like access(); does nothing if already present.
  CacheOutcome fill(u64 line_addr);

  /// Number of currently valid lines (for tests / occupancy metrics).
  u64 valid_lines() const;

  void clear();

 private:
  struct Line {
    u64 tag = 0;
    u64 stamp = 0;  // global LRU stamp; smaller = older
    bool valid = false;
    bool dirty = false;
  };

  usize set_index(u64 line_addr) const noexcept {
    return static_cast<usize>(line_addr % sets_);
  }
  u64 tag_of(u64 line_addr) const noexcept { return line_addr / sets_; }

  Line* find(u64 line_addr);
  const Line* find(u64 line_addr) const;
  Line& victim(usize set);

  CacheConfig config_;
  u64 sets_;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  u64 clock_ = 0;
};

}  // namespace npat::sim
