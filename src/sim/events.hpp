// Hardware event registry for the simulated PMU.
//
// Mirrors the role of Intel's per-platform event JSON that EvSel consumes:
// every event has a code/umask pair, a short name, a human description and
// a scope (core PMU vs. uncore/socket PMU). The simulator increments all of
// them unconditionally — exactly like real silicon, where events are always
// "happening" and the PMU registers merely select which ones are *counted*.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::sim {

enum class Event : u16 {
  // --- fixed counters (always available, like Intel's FIXC) ---
  kCycles = 0,
  kInstructions,
  kRefCycles,

  // --- pipeline / speculation ---
  kBranches,
  kBranchMisses,
  kSpeculativeJumpsRetired,
  kStallCyclesTotal,
  kStallCyclesMem,
  kUopsIssued,
  kUopsRetired,

  // --- L1 data cache ---
  kL1dAccess,
  kL1dHit,
  kL1dMiss,
  kL1dEviction,
  kL1dLocks,  // cache locked by TLB page walks / atomics (paper Fig. 9)

  // --- L2 ---
  kL2Access,
  kL2Hit,
  kL2Miss,
  kL2Eviction,
  kL2PrefetchRequests,  // prefetches targeting L2 (paper Fig. 8: −90 %)

  // --- L3 / LLC (core-side view) ---
  kL3Access,
  kL3Hit,
  kL3Miss,
  kL3PrefetchRequests,

  // --- fill buffers (line-fill buffers / MSHR) ---
  kFillBufferAllocations,
  kFillBufferRejects,  // demand rejected, all entries busy (Fig. 8: 26 → 3 M)

  // --- TLB ---
  kDtlbAccess,
  kDtlbMiss,
  kStlbHit,
  kPageWalks,
  kPageWalkCycles,

  // --- memory / NUMA data sources (retired load breakdown) ---
  kLoadsRetired,
  kStoresRetired,
  kMemLoadL1Hit,
  kMemLoadL2Hit,
  kMemLoadL3Hit,
  kMemLoadLocalDram,
  kMemLoadRemoteDram,
  kMemLoadRemoteHitm,  // dirty hit in a remote cache
  kLoadLatencyAbove,   // PEBS: loads with latency >= armed threshold

  // --- synchronization ---
  kAtomicOps,
  kLockCycles,

  // --- OS software events (free-running, no PMU register needed) ---
  kSwPageMigrations,

  // --- uncore (per NUMA node / socket) ---
  kUncLlcLookups,
  kUncLlcMisses,
  kUncImcReads,
  kUncImcWrites,
  kUncQpiTxFlits,     // interconnect traffic to remote sockets
  kUncSnoopsReceived,
  kUncHitmResponses,
  kUncEnergyMicroJoules,  // RAPL-style package energy (wattage indicator)

  kEventCount_,
};

inline constexpr usize kEventCount = static_cast<usize>(Event::kEventCount_);

enum class EventScope : u8 { kFixed, kCore, kUncore };

struct EventInfo {
  Event event;
  std::string_view name;        // canonical, e.g. "l1d.replacement"
  u16 code;                     // synthetic event-select code
  u8 umask;                     // synthetic unit mask
  EventScope scope;
  std::string_view category;    // e.g. "cache", "tlb", "numa"
  std::string_view description; // shown by EvSel next to the counter
};

/// Static registry of all simulated events, indexed by Event.
std::span<const EventInfo> all_events();

const EventInfo& event_info(Event event);
std::string_view event_name(Event event);

/// Lookup by canonical name; nullopt if unknown.
std::optional<Event> event_by_name(std::string_view name);
/// Lookup by code/umask pair (EvSel presents event codes with unit masks).
std::optional<Event> event_by_code(u16 code, u8 umask);

/// Serializes the registry in the Intel-JSON-like layout EvSel reads
/// ("the event codes available on the platform are read from a JSON file").
util::Json events_to_json();
/// Parses a platform event file; throws util::JsonError on malformed input.
/// Unknown events are ignored (forward compatibility across platforms).
std::vector<EventInfo> events_from_json(const util::Json& doc);

/// Per-core (or per-node, for uncore) bank of always-running counters.
struct CounterBlock {
  std::array<u64, kEventCount> values{};

  u64 operator[](Event e) const noexcept { return values[static_cast<usize>(e)]; }
  void add(Event e, u64 n = 1) noexcept { values[static_cast<usize>(e)] += n; }
  void clear() noexcept { values.fill(0); }

  CounterBlock& operator+=(const CounterBlock& other) noexcept {
    for (usize i = 0; i < kEventCount; ++i) values[i] += other.values[i];
    return *this;
  }
};

}  // namespace npat::sim
