#include "sim/cache.hpp"

#include "util/check.hpp"

namespace npat::sim {

Cache::Cache(const CacheConfig& config) : config_(config), sets_(config.sets()) {
  NPAT_CHECK_MSG(config_.line_bytes > 0 && config_.ways > 0, "invalid cache geometry");
  NPAT_CHECK_MSG(config_.size_bytes % (static_cast<u64>(config_.ways) * config_.line_bytes) == 0,
                 "cache size must be divisible by ways*line");
  NPAT_CHECK_MSG(sets_ > 0, "cache must have at least one set");
  lines_.resize(sets_ * config_.ways);
}

Cache::Line* Cache::find(u64 line_addr) {
  const usize set = set_index(line_addr);
  const u64 tag = tag_of(line_addr);
  Line* base = &lines_[set * config_.ways];
  for (u32 w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::find(u64 line_addr) const {
  return const_cast<Cache*>(this)->find(line_addr);
}

Cache::Line& Cache::victim(usize set) {
  Line* base = &lines_[set * config_.ways];
  Line* best = base;
  for (u32 w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) return base[w];
    if (base[w].stamp < best->stamp) best = &base[w];
  }
  return *best;
}

CacheOutcome Cache::access(u64 line_addr, bool is_write) {
  ++clock_;
  CacheOutcome outcome;
  if (Line* line = find(line_addr)) {
    outcome.hit = true;
    line->stamp = clock_;
    line->dirty |= is_write;
    return outcome;
  }
  const usize set = set_index(line_addr);
  Line& slot = victim(set);
  if (slot.valid) {
    // Reconstruct the evicted line address from tag and set.
    outcome.evicted_line = slot.tag * sets_ + static_cast<u64>(set);
    outcome.evicted_dirty = slot.dirty;
  }
  slot.valid = true;
  slot.tag = tag_of(line_addr);
  slot.stamp = clock_;
  slot.dirty = is_write;
  return outcome;
}

CacheOutcome Cache::fill(u64 line_addr) {
  ++clock_;
  CacheOutcome outcome;
  if (find(line_addr) != nullptr) {
    outcome.hit = true;
    // Prefetch hits do not refresh LRU: demand traffic dominates recency.
    return outcome;
  }
  const usize set = set_index(line_addr);
  Line& slot = victim(set);
  if (slot.valid) {
    outcome.evicted_line = slot.tag * sets_ + static_cast<u64>(set);
    outcome.evicted_dirty = slot.dirty;
  }
  slot.valid = true;
  slot.tag = tag_of(line_addr);
  slot.stamp = clock_;
  slot.dirty = false;
  return outcome;
}

bool Cache::contains(u64 line_addr) const { return find(line_addr) != nullptr; }

bool Cache::invalidate(u64 line_addr) {
  if (Line* line = find(line_addr)) {
    const bool dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return dirty;
  }
  return false;
}

u64 Cache::valid_lines() const {
  u64 count = 0;
  for (const auto& line : lines_) count += line.valid ? 1 : 0;
  return count;
}

void Cache::clear() {
  for (auto& line : lines_) line = Line{};
  clock_ = 0;
}

}  // namespace npat::sim
