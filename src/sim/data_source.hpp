// Where a memory access was satisfied. Matches the data-source encodings
// PEBS attaches to sampled loads, which Memhist uses to annotate latency
// peaks (L2 / L3 / local memory / remote memory in Fig. 10).
#pragma once

#include <string_view>

#include "util/types.hpp"

namespace npat::sim {

enum class DataSource : u8 {
  kL1,
  kL2,
  kL3,
  kLocalDram,
  kRemoteDram,
  kRemoteCacheHitm,  // modified line forwarded from a remote cache
};

constexpr std::string_view data_source_name(DataSource source) {
  switch (source) {
    case DataSource::kL1: return "L1";
    case DataSource::kL2: return "L2";
    case DataSource::kL3: return "L3";
    case DataSource::kLocalDram: return "local memory";
    case DataSource::kRemoteDram: return "remote memory";
    case DataSource::kRemoteCacheHitm: return "remote cache (HITM)";
  }
  return "?";
}

}  // namespace npat::sim
