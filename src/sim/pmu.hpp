// Per-core performance monitoring unit.
//
// Like real silicon, events "happen" continuously: the machine increments
// the full CounterBlock unconditionally and reading a counter returns its
// free-running total. The perf layer implements the *programming* model on
// top (limited registers, enable windows, multiplexing) via delta reads —
// see perf/session.hpp.
//
// PEBS load-latency sampling is the one stateful facility: only a single
// threshold can be armed at a time (the hardware restriction that forces
// Memhist to time-cycle thresholds), and qualifying loads are counted and
// periodically recorded with their data source.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "sim/data_source.hpp"
#include "sim/events.hpp"
#include "util/types.hpp"

namespace npat::sim {

/// Identity of a software task for per-task attribution (numatop's unit
/// of account). Ordered so task domains iterate deterministically.
struct TaskKey {
  u32 pid = 0;
  u32 tid = 0;

  friend auto operator<=>(const TaskKey&, const TaskKey&) = default;
};

/// Hot-area tracking granularity: 1 MiB regions, numatop's default
/// memory-area bucket.
inline constexpr u32 kTaskAreaShift = 20;
/// Every Nth retired load of a task records its area (statistical, like
/// PEBS — exact per-access attribution would double the hot-path cost).
inline constexpr u32 kTaskAreaPeriod = 64;
/// Bounded per-task area map; the coldest overflow is tallied, not kept.
inline constexpr usize kMaxTaskAreas = 256;

/// Per-task counter domain. The PMU charges the core's free-running
/// counters unconditionally; on every task switch the delta since the
/// previous switch is folded into the outgoing task's domain — the same
/// save/restore-on-context-switch model perf uses for per-task counting.
struct TaskDomain {
  CounterBlock counters;
  /// Load-latency accumulation over *all* retired loads (not only those
  /// above the armed PEBS threshold), so avg latency is meaningful even
  /// when PEBS is disarmed.
  u64 latency_sum = 0;
  u64 latency_loads = 0;
  /// Sampled hot memory areas: (vaddr >> kTaskAreaShift) -> sampled loads.
  std::map<u64, u64> areas;
  u64 area_samples_dropped = 0;
  u32 area_countdown = kTaskAreaPeriod;
};

struct PebsConfig {
  Cycles latency_threshold = 32;
  /// Every Nth qualifying load produces a full sample record.
  u32 sample_period = 64;
  /// Restrict counting/sampling to loads served from one data source
  /// (e.g. remote HITM only) — the data-source umask filters real PEBS
  /// offers, and the hook for the paper's "coherency protocol overhead"
  /// and "TLB miss cost" follow-ups.
  std::optional<DataSource> source_filter;
};

struct PebsRecord {
  VirtAddr vaddr = 0;
  Cycles latency = 0;
  DataSource source = DataSource::kL1;
  Cycles timestamp = 0;
};

class CorePmu {
 public:
  CorePmu() = default;

  // --- free-running counters ---
  CounterBlock& counters() noexcept { return counters_; }
  const CounterBlock& counters() const noexcept { return counters_; }
  u64 read(Event e) const noexcept { return counters_[e]; }

  // --- PEBS load latency ---
  /// Arms the single load-latency event; replaces any previous config and
  /// clears pending samples.
  void arm_pebs(const PebsConfig& config);
  void disarm_pebs();
  bool pebs_armed() const noexcept { return pebs_.has_value(); }
  const std::optional<PebsConfig>& pebs_config() const noexcept { return pebs_; }

  /// Called by the machine for every retired load.
  void on_load_retired(VirtAddr vaddr, Cycles latency, DataSource source, Cycles now);

  /// Drains collected sample records.
  std::vector<PebsRecord> take_samples();
  usize pending_samples() const noexcept { return samples_.size(); }

  // --- per-task counter domains ---
  /// Switches the current task: folds the counter delta since the last
  /// switch into the outgoing task's domain, then re-baselines for the
  /// incoming one. First call enables task accounting on this core.
  /// Cheap when the key does not change (the thread-per-core steady
  /// state): a single comparison.
  void set_current_task(const TaskKey& key);
  /// Folds the in-flight delta of the current task without switching, so
  /// a sampler can read up-to-date domains mid-run.
  void flush_current_task();
  /// Stops per-task accounting and drops all domains.
  void clear_task_accounting();
  bool task_accounting_active() const noexcept { return current_domain_ != nullptr; }
  const std::optional<TaskKey>& current_task() const noexcept { return current_task_; }
  /// Folded per-task domains; call flush_current_task() first for totals
  /// that include the running slice.
  const std::map<TaskKey, TaskDomain>& task_domains() const noexcept { return task_domains_; }

  void clear();

 private:
  CounterBlock counters_;
  std::optional<PebsConfig> pebs_;
  u32 pebs_countdown_ = 0;
  std::vector<PebsRecord> samples_;
  // Real PEBS buffers are finite; cap so pathological runs cannot OOM.
  static constexpr usize kMaxSamples = 1 << 20;

  std::map<TaskKey, TaskDomain> task_domains_;
  std::optional<TaskKey> current_task_;
  /// Domain of the current task (map nodes are pointer-stable), so the
  /// retired-load hot path avoids a map lookup.
  TaskDomain* current_domain_ = nullptr;
  /// Counter snapshot at the last task switch; the next fold charges
  /// counters_ - task_baseline_ to the outgoing task.
  CounterBlock task_baseline_;
};

}  // namespace npat::sim
