// Per-core performance monitoring unit.
//
// Like real silicon, events "happen" continuously: the machine increments
// the full CounterBlock unconditionally and reading a counter returns its
// free-running total. The perf layer implements the *programming* model on
// top (limited registers, enable windows, multiplexing) via delta reads —
// see perf/session.hpp.
//
// PEBS load-latency sampling is the one stateful facility: only a single
// threshold can be armed at a time (the hardware restriction that forces
// Memhist to time-cycle thresholds), and qualifying loads are counted and
// periodically recorded with their data source.
#pragma once

#include <optional>
#include <vector>

#include "sim/data_source.hpp"
#include "sim/events.hpp"
#include "util/types.hpp"

namespace npat::sim {

struct PebsConfig {
  Cycles latency_threshold = 32;
  /// Every Nth qualifying load produces a full sample record.
  u32 sample_period = 64;
  /// Restrict counting/sampling to loads served from one data source
  /// (e.g. remote HITM only) — the data-source umask filters real PEBS
  /// offers, and the hook for the paper's "coherency protocol overhead"
  /// and "TLB miss cost" follow-ups.
  std::optional<DataSource> source_filter;
};

struct PebsRecord {
  VirtAddr vaddr = 0;
  Cycles latency = 0;
  DataSource source = DataSource::kL1;
  Cycles timestamp = 0;
};

class CorePmu {
 public:
  CorePmu() = default;

  // --- free-running counters ---
  CounterBlock& counters() noexcept { return counters_; }
  const CounterBlock& counters() const noexcept { return counters_; }
  u64 read(Event e) const noexcept { return counters_[e]; }

  // --- PEBS load latency ---
  /// Arms the single load-latency event; replaces any previous config and
  /// clears pending samples.
  void arm_pebs(const PebsConfig& config);
  void disarm_pebs();
  bool pebs_armed() const noexcept { return pebs_.has_value(); }
  const std::optional<PebsConfig>& pebs_config() const noexcept { return pebs_; }

  /// Called by the machine for every retired load.
  void on_load_retired(VirtAddr vaddr, Cycles latency, DataSource source, Cycles now);

  /// Drains collected sample records.
  std::vector<PebsRecord> take_samples();
  usize pending_samples() const noexcept { return samples_.size(); }

  void clear();

 private:
  CounterBlock counters_;
  std::optional<PebsConfig> pebs_;
  u32 pebs_countdown_ = 0;
  std::vector<PebsRecord> samples_;
  // Real PEBS buffers are finite; cap so pathological runs cannot OOM.
  static constexpr usize kMaxSamples = 1 << 20;
};

}  // namespace npat::sim
