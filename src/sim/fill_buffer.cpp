#include "sim/fill_buffer.hpp"

#include "util/check.hpp"

namespace npat::sim {

FillBuffer::FillBuffer(const FillBufferConfig& config) : config_(config) {
  NPAT_CHECK_MSG(config.entries > 0, "fill buffer needs at least one entry");
  release_times_.reserve(config.entries);
}

void FillBuffer::expire(Cycles now) {
  for (usize i = 0; i < release_times_.size();) {
    if (release_times_[i] <= now) {
      release_times_[i] = release_times_.back();
      release_times_.pop_back();
    } else {
      ++i;
    }
  }
}

FillBuffer::Result FillBuffer::allocate(Cycles now, Cycles fill_latency) {
  Result result;
  expire(now);
  Cycles start = now;
  if (release_times_.size() >= config_.entries) {
    // All entries busy: the demand registration is rejected and retried
    // every few cycles until the earliest outstanding fill completes —
    // each failed retry counts (Fig. 8 reports per-attempt rejections).
    const Cycles earliest = *std::min_element(release_times_.begin(), release_times_.end());
    result.stall = earliest > now ? earliest - now : 0;
    constexpr Cycles kRetryInterval = 4;
    result.rejects = 1 + static_cast<u32>(result.stall / kRetryInterval);
    start = earliest;
    expire(start);
  }
  release_times_.push_back(start + fill_latency);
  return result;
}

u32 FillBuffer::busy(Cycles now) const {
  u32 count = 0;
  for (Cycles t : release_times_) count += t > now ? 1 : 0;
  return count;
}

void FillBuffer::clear() { release_times_.clear(); }

}  // namespace npat::sim
