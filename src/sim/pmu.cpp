#include "sim/pmu.hpp"

#include "util/check.hpp"

namespace npat::sim {

void CorePmu::arm_pebs(const PebsConfig& config) {
  NPAT_CHECK_MSG(config.sample_period > 0, "PEBS sample period must be positive");
  pebs_ = config;
  pebs_countdown_ = config.sample_period;
  samples_.clear();
}

void CorePmu::disarm_pebs() {
  pebs_.reset();
  pebs_countdown_ = 0;
}

void CorePmu::on_load_retired(VirtAddr vaddr, Cycles latency, DataSource source, Cycles now) {
  if (!pebs_) return;
  if (latency < pebs_->latency_threshold) return;
  if (pebs_->source_filter && *pebs_->source_filter != source) return;
  counters_.add(Event::kLoadLatencyAbove);
  if (--pebs_countdown_ == 0) {
    pebs_countdown_ = pebs_->sample_period;
    if (samples_.size() < kMaxSamples) {
      samples_.push_back(PebsRecord{vaddr, latency, source, now});
    }
  }
}

std::vector<PebsRecord> CorePmu::take_samples() {
  std::vector<PebsRecord> out;
  out.swap(samples_);
  return out;
}

void CorePmu::clear() {
  counters_.clear();
  disarm_pebs();
  samples_.clear();
}

}  // namespace npat::sim
