#include "sim/pmu.hpp"

#include "util/check.hpp"

namespace npat::sim {

void CorePmu::arm_pebs(const PebsConfig& config) {
  NPAT_CHECK_MSG(config.sample_period > 0, "PEBS sample period must be positive");
  pebs_ = config;
  pebs_countdown_ = config.sample_period;
  samples_.clear();
}

void CorePmu::disarm_pebs() {
  pebs_.reset();
  pebs_countdown_ = 0;
}

void CorePmu::on_load_retired(VirtAddr vaddr, Cycles latency, DataSource source, Cycles now) {
  // Task accounting sees every retired load regardless of PEBS state: the
  // per-task latency average must not depend on which threshold Memhist
  // happens to have armed.
  if (current_domain_ != nullptr) {
    TaskDomain& domain = *current_domain_;
    domain.latency_sum += latency;
    ++domain.latency_loads;
    if (--domain.area_countdown == 0) {
      domain.area_countdown = kTaskAreaPeriod;
      const u64 area = vaddr >> kTaskAreaShift;
      auto it = domain.areas.find(area);
      if (it != domain.areas.end()) {
        ++it->second;
      } else if (domain.areas.size() < kMaxTaskAreas) {
        domain.areas.emplace(area, 1);
      } else {
        ++domain.area_samples_dropped;
      }
    }
  }
  if (!pebs_) return;
  if (latency < pebs_->latency_threshold) return;
  if (pebs_->source_filter && *pebs_->source_filter != source) return;
  counters_.add(Event::kLoadLatencyAbove);
  if (--pebs_countdown_ == 0) {
    pebs_countdown_ = pebs_->sample_period;
    if (samples_.size() < kMaxSamples) {
      samples_.push_back(PebsRecord{vaddr, latency, source, now});
    }
  }
}

std::vector<PebsRecord> CorePmu::take_samples() {
  std::vector<PebsRecord> out;
  out.swap(samples_);
  return out;
}

void CorePmu::set_current_task(const TaskKey& key) {
  if (current_task_ && *current_task_ == key) return;  // steady state: no switch
  flush_current_task();
  current_task_ = key;
  current_domain_ = &task_domains_[key];
  task_baseline_ = counters_;
}

void CorePmu::flush_current_task() {
  if (current_domain_ == nullptr) return;
  CounterBlock& into = current_domain_->counters;
  for (usize i = 0; i < kEventCount; ++i) {
    into.values[i] += counters_.values[i] - task_baseline_.values[i];
  }
  task_baseline_ = counters_;
}

void CorePmu::clear_task_accounting() {
  task_domains_.clear();
  current_task_.reset();
  current_domain_ = nullptr;
  task_baseline_.clear();
}

void CorePmu::clear() {
  counters_.clear();
  disarm_pebs();
  samples_.clear();
  clear_task_accounting();
}

}  // namespace npat::sim
