#include "sim/prefetcher.hpp"

#include <cmath>

#include "util/check.hpp"

namespace npat::sim {

Prefetcher::Prefetcher(const PrefetcherConfig& config) : config_(config) {
  NPAT_CHECK_MSG(config.streams > 0, "prefetcher needs at least one stream");
  NPAT_CHECK_MSG(config.match_distance_lines > 0, "match distance must be positive");
  streams_.resize(config.streams);
}

void Prefetcher::observe(u64 line_addr, std::vector<PrefetchRequest>& out) {
  out.clear();
  ++clock_;

  // Match the nearest stream within the tracking window (real prefetchers
  // track a handful of concurrent streams by address proximity).
  Stream* stream = nullptr;
  Stream* victim = &streams_[0];
  i64 best_distance = config_.match_distance_lines + 1;
  for (auto& s : streams_) {
    if (!s.valid) {
      if (victim->valid) victim = &s;  // free slot beats any LRU victim
      continue;
    }
    if (victim->valid && s.stamp < victim->stamp) victim = &s;
    const i64 distance =
        std::llabs(static_cast<i64>(line_addr) - static_cast<i64>(s.last_line));
    if (distance < best_distance) {
      best_distance = distance;
      stream = &s;
    }
  }
  if (best_distance > config_.match_distance_lines) stream = nullptr;

  if (stream == nullptr) {
    *victim = Stream{line_addr, 0, 0, clock_, true};
    return;
  }

  const i64 stride = static_cast<i64>(line_addr) - static_cast<i64>(stream->last_line);
  if (stride == 0) {
    stream->stamp = clock_;
    return;  // same line, nothing to learn
  }
  if (stride == stream->stride) {
    stream->confidence = std::min(stream->confidence + 1, 255u);
  } else {
    stream->stride = stride;
    stream->confidence = 1;
  }
  stream->last_line = line_addr;
  stream->stamp = clock_;

  if (stream->confidence < config_.confirmations) return;

  const PrefetchTarget target = std::llabs(stream->stride) <= config_.max_l2_stride_lines
                                    ? PrefetchTarget::kL2
                                    : PrefetchTarget::kL3;
  for (u32 d = 1; d <= config_.degree; ++d) {
    const i64 next = static_cast<i64>(line_addr) + stream->stride * static_cast<i64>(d);
    if (next < 0) break;
    out.push_back(PrefetchRequest{static_cast<u64>(next), target});
  }
}

void Prefetcher::clear() {
  for (auto& s : streams_) s = Stream{};
  clock_ = 0;
}

}  // namespace npat::sim
