// DRAM and interconnect latency/bandwidth model. Local accesses pay the
// node's DRAM latency; remote accesses additionally pay per-hop interconnect
// latency. A sliding-window utilization model adds queueing delay under
// bandwidth contention — the "use latency" jitter real PEBS reports.
#pragma once

#include <vector>

#include "sim/topology.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace npat::sim {

struct MemoryConfig {
  Cycles local_dram_latency = 190;
  Cycles per_hop_latency = 120;
  /// Relative std-dev of multiplicative latency jitter.
  double jitter_fraction = 0.06;
  /// Window used for utilization accounting.
  Cycles bandwidth_window = 16384;
  /// Cycles of DRAM service capacity consumed per access; a node saturates
  /// at window/service accesses per window.
  Cycles service_cycles = 8;
  /// Utilization below which no queueing delay accrues (modern controllers
  /// pipeline moderate request streams without visible queueing).
  double queueing_onset = 0.5;
  /// Queueing delay cap as a multiple of the base latency.
  double max_queueing_factor = 3.0;
};

class MemorySystem {
 public:
  MemorySystem(const Topology& topology, const MemoryConfig& config, u64 seed);

  struct AccessResult {
    Cycles latency = 0;
    u32 hops = 0;
    double utilization = 0.0;  // of the target node's memory controller
  };

  /// Latency of a DRAM access issued at `now` from `from_node` to memory
  /// on `target_node`. Updates the target's bandwidth window.
  AccessResult access(NodeId from_node, NodeId target_node, Cycles now);

  /// Current utilization estimate for a node (for tests and reports).
  double utilization(NodeId node) const;

  const MemoryConfig& config() const noexcept { return config_; }

  void clear();

 private:
  struct NodeState {
    Cycles window_start = 0;
    u64 accesses_in_window = 0;
    double utilization = 0.0;  // of the *previous* window
  };

  const Topology* topology_;
  MemoryConfig config_;
  std::vector<NodeState> nodes_;
  util::Xoshiro256ss rng_;
};

}  // namespace npat::sim
