// Branch predictor: gshare-style table of two-bit saturating counters with
// a global history register. Drives br_misp.retired and, together with the
// pipeline stall model, br_inst.spec_exec (speculatively executed jumps).
#pragma once

#include <vector>

#include "util/types.hpp"

namespace npat::sim {

struct BranchPredictorConfig {
  u32 table_bits = 12;       // 4096 two-bit counters
  u32 history_bits = 8;
  Cycles misprediction_penalty = 15;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config);

  struct Outcome {
    bool predicted_taken = false;
    bool mispredicted = false;
  };

  /// Predicts branch `key` (a static branch-site identifier), then trains
  /// on the actual direction.
  Outcome execute(u64 key, bool taken);

  const BranchPredictorConfig& config() const noexcept { return config_; }

  void clear();

 private:
  usize index(u64 key) const noexcept {
    const u64 hashed = key * 0x9e3779b97f4a7c15ULL;
    return static_cast<usize>((hashed ^ history_) & mask_);
  }

  BranchPredictorConfig config_;
  u64 mask_;
  u64 history_mask_;
  u64 history_ = 0;
  std::vector<u8> counters_;  // 0..3, >=2 predicts taken
};

}  // namespace npat::sim
