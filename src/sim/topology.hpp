// NUMA topology description: sockets (= NUMA nodes), cores, per-node memory
// and the inter-node distance matrix in hops. Matches the role of Table I's
// "NUMA Topology: Fully interconnected" line and supports the paper's
// outlook of "simulating and incorporating different topologies".
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace npat::sim {

using NodeId = u32;
using CoreId = u32;

struct Topology {
  std::string model_name = "generic";
  std::string processor_name = "generic";
  u32 nodes = 1;
  u32 cores_per_node = 1;
  double frequency_ghz = 2.4;
  u64 memory_per_node_bytes = 0;
  u32 memory_frequency_mhz = 1600;
  /// distance_hops[a][b]: interconnect hops between nodes a and b (0 on the
  /// diagonal, 1 for directly connected nodes).
  std::vector<std::vector<u32>> distance_hops;

  u32 total_cores() const noexcept { return nodes * cores_per_node; }
  NodeId node_of_core(CoreId core) const noexcept { return core / cores_per_node; }
  /// Core ids belonging to a node: [first_core(n), first_core(n)+cores_per_node).
  CoreId first_core(NodeId node) const noexcept { return node * cores_per_node; }

  u32 hops(NodeId from, NodeId to) const;
  u32 max_hops() const;

  /// Validates shape invariants (square symmetric matrix, zero diagonal,
  /// connectivity); throws CheckError on violation.
  void validate() const;

  /// Human-readable topology description (used by bench/table1_system).
  std::string describe() const;
};

/// Builders for the interconnect shapes discussed in the paper's outlook.
/// All return validated topologies.
Topology make_fully_connected(u32 nodes, u32 cores_per_node);
Topology make_ring(u32 nodes, u32 cores_per_node);
/// 8-socket "twisted hypercube" style: pairs of fully meshed quads with one
/// hop between quads, two across the twist.
Topology make_twisted_cube(u32 cores_per_node);

}  // namespace npat::sim
