// Terminal rendering of advisor output: the counter-signature rationale,
// the ranked candidate table, migration hints, and the before/after
// replay verdict ("before X cycles, after Y cycles") with per-event deltas.
#pragma once

#include <string>

#include "advisor/advisor.hpp"

namespace npat::advisor {

struct ReportOptions {
  /// Candidates listed in the ranked-prediction table (0 = all).
  usize max_candidates = 6;
  /// Migration hints listed (0 = all).
  usize max_hints = 6;
  /// Append the full per-event before/after comparison table.
  bool include_event_deltas = true;
};

/// The profile pane: signature, phases, alerts, hints, ranked predictions.
std::string render_profile(const Recommendation& recommendation,
                           const ReportOptions& options = {});

/// The replay pane: predicted vs measured speedups and the before/after
/// cycle verdict with per-event deltas.
std::string render_replay(const Recommendation& recommendation,
                          const ReportOptions& options = {});

/// Both panes — the full advisor report.
std::string render_recommendation(const Recommendation& recommendation,
                                  const ReportOptions& options = {});

}  // namespace npat::advisor
