// Placement advisor: closes the detect→act loop. The assessment half of
// the toolkit (per-phase attribution, per-task hot-area profiles, live
// remote-ratio alerts) says *that* a workload is remote-heavy; the advisor
// turns the counter signature into ranked candidate placements
// (AffinityPolicy × PagePolicy × bind node, plus page-migration hints for
// the hottest 1 MiB areas), then *replays* the unmodified workload under
// the advised placement — os::AddressSpace policy override + os::affinity
// pinning through evsel — and reports "before X cycles, after Y cycles"
// with per-event deltas. Per Röhl et al. (event validation), a predicted
// improvement is only trustworthy once re-measured against ground truth;
// every replay therefore carries both its predicted and measured speedup.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "evsel/collector.hpp"
#include "evsel/compare.hpp"
#include "evsel/measurement.hpp"
#include "os/affinity.hpp"
#include "os/vm.hpp"
#include "phasen/detector.hpp"
#include "sim/machine.hpp"
#include "validate/trust.hpp"

namespace npat::advisor {

/// One candidate thread+page placement — what taskset + numactl would pin.
struct Placement {
  os::AffinityPolicy affinity = os::AffinityPolicy::kCompact;
  /// nullopt = leave the workload's own allocation policies alone.
  std::optional<os::PagePolicy> page_policy;
  sim::NodeId bind_node = 0;  // only meaningful for kBind

  /// "scatter+first-touch", "compact+bind(2)", "scatter+as-is".
  std::string name() const;

  friend bool operator==(const Placement&, const Placement&) = default;
};

/// Parses a Placement::name() string ("<affinity>+<page policy>", bind
/// optionally suffixed "(n)"). Hard-errors on unrecognized policies — the
/// apply path must reject typos, never fall back silently.
Placement placement_from_name(const std::string& name, const sim::Topology& topology);

/// Counter signature of the profiled compute phase — the evidence every
/// recommendation cites (the paper's §II indicator set).
struct CounterSignature {
  u64 cycles = 0;            // compute-phase cycles (summed over cores)
  u64 stall_cycles_mem = 0;  // memory stall cycles in the phase
  u64 numa_loads = 0;        // DRAM + remote-HITM loads in the phase
  /// (remote DRAM + HITM) / numa_loads; when the load-uop DRAM events are
  /// silent (cache-resident working set whose misses are store/RFO cold
  /// misses) this is estimated from the uncore instead: QPI flits per
  /// average hop over total IMC reads+writes.
  double remote_ratio = 0.0;
  double stall_fraction = 0.0;      // stall_cycles_mem / cycles
  double qpi_flits_per_kinstr = 0.0;
  /// Largest per-node share of executed cycles (1/nodes = balanced).
  double node_cycle_imbalance = 0.0;
  /// Fraction of sampled loads landing in 1 MiB areas where no single task
  /// owns a majority of the samples — decides whether first-touch (private
  /// data) or a thread/data co-location fix (shared data) is the better
  /// move. Majority ownership keeps per-thread arrays that merely straddle
  /// an area boundary out of the shared bucket.
  double shared_fraction = 0.0;
  /// Resident-page share per node at the end of the profile run (numastat
  /// style) — the scoring model's picture of where the workload's own
  /// allocation policy put the data.
  std::vector<double> page_share;
  /// True when remote_ratio came from the uncore estimate rather than the
  /// load-uop DRAM breakdown — either because the primary events were
  /// silent, or because the trust harness rated them below bounded.
  bool remote_ratio_from_uncore = false;
  /// Events the trust harness rated suspect or refuted that this signature
  /// would normally rely on, with their tier ("mem_load_remote_dram
  /// (refuted)"). Non-empty means the recommendation runs on degraded
  /// inputs and the report says so.
  std::vector<std::string> degraded_inputs;
};

/// Page-migration hint: move one hot 1 MiB area next to its dominant task
/// (the move_pages(2) the recommendation would issue on a live system).
struct MigrationHint {
  u32 pid = 0;
  u32 tid = 0;
  std::string task;        // "process/thread" from the proc registry
  u64 area_base = 0;       // 1 MiB aligned virtual base
  u64 samples = 0;         // sampled loads attributed to the area
  sim::NodeId target = 0;  // the task's dominant execution node
};

/// One scored candidate, ranked by predicted cycles.
struct Candidate {
  Placement placement;
  double predicted_remote_ratio = 0.0;
  double predicted_cycles = 0.0;
  double predicted_speedup = 1.0;  // baseline cycles / predicted cycles
  std::string rationale;           // counter-signature justification
};

/// One replayed (re-measured) candidate.
struct Replay {
  Placement placement;
  evsel::Measurement measurement;
  double cycles = 0.0;
  double measured_speedup = 1.0;   // before cycles / measured cycles
  double predicted_speedup = 1.0;  // the Röhl-style validation column
};

struct Recommendation {
  CounterSignature signature;
  phasen::PhaseSplit phases;
  usize compute_phase = 0;            // index of the phase the signature covers
  std::vector<std::string> alerts;    // committed remote-ratio transitions
  std::vector<MigrationHint> hints;   // hottest areas first
  std::vector<Candidate> ranked;      // best predicted first
  Placement baseline;
  evsel::Measurement before;          // measured under `baseline`
  double before_cycles = 0.0;
  std::vector<Replay> replays;        // measured candidates, ranked order
  usize best_replay = 0;              // argmin measured cycles
  evsel::Comparison delta;            // before vs. best replay, per event

  const Replay& best() const { return replays.at(best_replay); }
  double measured_speedup() const { return best().measured_speedup; }
  /// True when no replay beat the baseline — keep the current placement.
  bool keep_current() const { return replays.empty() || measured_speedup() <= 1.0; }
};

struct AdvisorOptions {
  /// Placement the profile run (the "before") executes under.
  Placement baseline;
  /// Repetitions per measured configuration (before + each replayed
  /// candidate); >= 2 keeps the per-event t-tests alive.
  u32 replay_repetitions = 3;
  /// Candidates re-measured, best predicted first. The rest stay
  /// prediction-only in `ranked`.
  usize replay_top_k = 3;
  /// Profile sampler period in simulated cycles (footprint, counters,
  /// per-node and per-task telemetry all share it).
  Cycles sample_period = 20000;
  u64 seed = 2017;
  /// Events measured before/after; empty = the advisor's NUMA indicator set.
  std::vector<sim::Event> events;
  /// Remote-ratio alert thresholds evaluated over the profile windows.
  double warn_remote_ratio = 0.20;
  double bad_remote_ratio = 0.50;
  /// Migration hints emitted per task.
  usize max_hints_per_task = 2;
  /// Trust report consulted before reading the signature's primary events;
  /// nullptr falls back to validate::active_trust_report() (no validation
  /// run = every event trusted, the pre-harness behavior).
  const validate::TrustReport* trust = nullptr;
};

/// The advisor's default before/after event set (the paper's indicators).
std::vector<sim::Event> default_events();

/// Scores every candidate placement from the signature alone — no runs.
/// Exposed for tests and the report's predicted-vs-measured validation.
/// `threads` is the profiled thread count; `remote_penalty` the modeled
/// remote/local latency ratio (Advisor derives it from the machine config).
std::vector<Candidate> score_candidates(const CounterSignature& signature,
                                        const sim::Topology& topology, u32 threads,
                                        const Placement& baseline, double remote_penalty);

class Advisor {
 public:
  explicit Advisor(sim::MachineConfig config);

  /// Full detect→recommend→apply→re-measure loop on `factory`'s program.
  Recommendation advise(const evsel::ProgramFactory& factory,
                        const AdvisorOptions& options = {});

  /// Remote/local latency ratio of the configured machine (one average-hop
  /// remote access vs. a local one) — the scoring model's penalty term.
  double remote_penalty() const;

 private:
  sim::MachineConfig config_;
};

}  // namespace npat::advisor
