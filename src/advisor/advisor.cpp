#include "advisor/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <span>

#include "monitor/aggregate.hpp"
#include "monitor/sampler.hpp"
#include "monitor/task_sampler.hpp"
#include "obs/alert.hpp"
#include "os/procfs.hpp"
#include "phasen/attribution.hpp"
#include "proc/task.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::advisor {

namespace {

constexpr u64 kAreaBytes = 1024 * 1024;  // hot-area granularity (TaskSampler's)

/// Stall-cycle weight of one unit of memory-controller imbalance (max/mean
/// of per-node DRAM traffic, the paper's imbalance factor): at weight w, a
/// placement funneling everything through one of N controllers pays
/// 1 + w*(N-1) on its memory stalls relative to a balanced one.
constexpr double kImbalanceWeight = 0.2;

double clamp01(double value) { return std::min(1.0, std::max(0.0, value)); }

/// Fraction of `threads` logical threads running on `node` under `affinity`.
double thread_share_on_node(const sim::Topology& topology, os::AffinityPolicy affinity,
                            u32 threads, sim::NodeId node) {
  u32 on_node = 0;
  for (u32 i = 0; i < threads; ++i) {
    const sim::CoreId core = os::core_for_thread(topology, affinity, i);
    if (topology.node_of_core(core) == node) ++on_node;
  }
  return static_cast<double>(on_node) / static_cast<double>(threads);
}

/// Mean interconnect hops between distinct nodes (1.0 when fully
/// connected); the flits-per-remote-access normalizer.
double average_hops(const sim::Topology& topology) {
  if (topology.nodes < 2) return 1.0;
  double hops = 0.0;
  u32 pairs = 0;
  for (sim::NodeId a = 0; a < topology.nodes; ++a) {
    for (sim::NodeId b = 0; b < topology.nodes; ++b) {
      if (a == b) continue;
      hops += static_cast<double>(topology.hops(a, b));
      ++pairs;
    }
  }
  return pairs > 0 ? std::max(1.0, hops / pairs) : 1.0;
}

/// Expected remote fraction when pages stay where the profile saw them
/// (numastat shares) and threads run under `affinity`.
double remote_ratio_for_profiled_pages(const sim::Topology& topology,
                                       os::AffinityPolicy affinity, u32 threads,
                                       const std::vector<double>& page_share) {
  if (page_share.size() != topology.nodes) {
    return 1.0 - 1.0 / static_cast<double>(topology.nodes);  // assume uniform
  }
  double local = 0.0;
  for (u32 i = 0; i < threads; ++i) {
    const sim::CoreId core = os::core_for_thread(topology, affinity, i);
    local += page_share[topology.node_of_core(core)];
  }
  return clamp01(1.0 - local / static_cast<double>(threads));
}

}  // namespace

// --- Placement ---------------------------------------------------------------

std::string Placement::name() const {
  std::string out = os::affinity_name(affinity);
  out += '+';
  if (!page_policy) {
    out += "as-is";
  } else if (*page_policy == os::PagePolicy::kBind) {
    out += util::format("bind(%u)", bind_node);
  } else {
    out += os::page_policy_name(*page_policy);
  }
  return out;
}

Placement placement_from_name(const std::string& name, const sim::Topology& topology) {
  const auto plus = name.find('+');
  NPAT_CHECK_MSG(plus != std::string::npos,
                 "placement must be <affinity>+<page policy>, got: " + name);
  Placement placement;
  placement.affinity = os::affinity_from_name(name.substr(0, plus));
  std::string page = name.substr(plus + 1);
  if (page == "as-is") return placement;
  if (const auto paren = page.find('('); paren != std::string::npos) {
    NPAT_CHECK_MSG(page.back() == ')', "malformed bind node in placement: " + name);
    const std::string digits = page.substr(paren + 1, page.size() - paren - 2);
    NPAT_CHECK_MSG(!digits.empty() &&
                       digits.find_first_not_of("0123456789") == std::string::npos,
                   "malformed bind node in placement: " + name);
    placement.bind_node = static_cast<sim::NodeId>(std::stoul(digits));
    page = page.substr(0, paren);
  }
  placement.page_policy = os::page_policy_from_name(page);
  NPAT_CHECK_MSG(*placement.page_policy != os::PagePolicy::kBind ||
                     placement.bind_node < topology.nodes,
                 "bind node out of range in placement: " + name);
  return placement;
}

std::vector<sim::Event> default_events() {
  return {
      sim::Event::kCycles,           sim::Event::kInstructions,
      sim::Event::kStallCyclesMem,   sim::Event::kMemLoadLocalDram,
      sim::Event::kMemLoadRemoteDram, sim::Event::kMemLoadRemoteHitm,
      sim::Event::kUncQpiTxFlits,    sim::Event::kUncImcReads,
      sim::Event::kSwPageMigrations,
  };
}

// --- scoring -----------------------------------------------------------------

std::vector<Candidate> score_candidates(const CounterSignature& signature,
                                        const sim::Topology& topology, u32 threads,
                                        const Placement& baseline, double remote_penalty) {
  threads = std::max(threads, 1u);
  const double nodes = static_cast<double>(topology.nodes);
  const double measured_remote = clamp01(signature.remote_ratio);
  const double cycles = static_cast<double>(signature.cycles);
  const double stall = static_cast<double>(signature.stall_cycles_mem);
  const double penalty = std::max(remote_penalty, 1.0);

  // Candidate grid: both affinities x {keep the workload's own policy,
  // first-touch, interleave, bind to each node}.
  std::vector<Placement> grid;
  for (const auto affinity : {baseline.affinity, baseline.affinity == os::AffinityPolicy::kCompact
                                                     ? os::AffinityPolicy::kScatter
                                                     : os::AffinityPolicy::kCompact}) {
    grid.push_back({affinity, std::nullopt, 0});
    grid.push_back({affinity, os::PagePolicy::kFirstTouch, 0});
    grid.push_back({affinity, os::PagePolicy::kInterleave, 0});
    for (sim::NodeId n = 0; n < topology.nodes; ++n) {
      grid.push_back({affinity, os::PagePolicy::kBind, n});
    }
  }

  std::vector<Candidate> out;
  out.reserve(grid.size());
  for (const Placement& placement : grid) {
    const double shared = clamp01(signature.shared_fraction);
    const double private_frac = 1.0 - shared;
    // First-touch places shared pages on whichever thread touches first —
    // model it as thread 0's node.
    const sim::NodeId first_toucher = topology.node_of_core(
        os::core_for_thread(topology, placement.affinity, 0));

    double r_private = 0.0;
    double r_shared = 0.0;
    if (!placement.page_policy) {
      // Pages stay where the workload's own policy put them during the
      // profile (exact for bind/interleave workloads; first-touch pages
      // would follow the new thread placement, which this overestimates).
      const double r = remote_ratio_for_profiled_pages(topology, placement.affinity,
                                                       threads, signature.page_share);
      r_private = r;
      r_shared = r;
    } else {
      switch (*placement.page_policy) {
        case os::PagePolicy::kFirstTouch:
          r_private = 0.0;  // every thread touches its own pages first
          r_shared =
              1.0 - thread_share_on_node(topology, placement.affinity, threads, first_toucher);
          break;
        case os::PagePolicy::kInterleave:
          r_private = 1.0 - 1.0 / nodes;
          r_shared = 1.0 - 1.0 / nodes;
          break;
        case os::PagePolicy::kBind: {
          const double on_bind =
              thread_share_on_node(topology, placement.affinity, threads, placement.bind_node);
          r_private = 1.0 - on_bind;
          r_shared = 1.0 - on_bind;
          break;
        }
      }
    }
    double predicted_remote = clamp01(private_frac * r_private + shared * r_shared);
    if (placement == baseline) predicted_remote = measured_remote;  // status quo is measured

    // DRAM traffic distribution over memory controllers under this
    // candidate; its max/mean is the paper's imbalance factor. One loaded
    // controller queues where four would stream, so concentration costs
    // stall cycles even when every access is local.
    std::vector<double> traffic(topology.nodes, 0.0);
    if (!placement.page_policy) {
      if (signature.page_share.size() == traffic.size()) {
        traffic = signature.page_share;
      } else {
        std::fill(traffic.begin(), traffic.end(), 1.0 / nodes);
      }
    } else {
      switch (*placement.page_policy) {
        case os::PagePolicy::kFirstTouch:
          for (sim::NodeId n = 0; n < topology.nodes; ++n) {
            traffic[n] = thread_share_on_node(topology, placement.affinity, threads, n);
          }
          break;
        case os::PagePolicy::kInterleave:
          std::fill(traffic.begin(), traffic.end(), 1.0 / nodes);
          break;
        case os::PagePolicy::kBind:
          traffic[placement.bind_node] = 1.0;
          break;
      }
    }
    const double imbalance = std::max(
        1.0, *std::max_element(traffic.begin(), traffic.end()) * nodes);
    double baseline_imbalance = 1.0;
    if (signature.page_share.size() == traffic.size() && !signature.page_share.empty()) {
      baseline_imbalance = std::max(
          1.0, *std::max_element(signature.page_share.begin(), signature.page_share.end()) *
                   nodes);
    }

    // Memory stalls scale with the average access penalty: a remote access
    // costs `penalty` local ones, so the stall budget moves with
    // 1 + (penalty-1) * remote_ratio; controller concentration scales it
    // again via the imbalance factor. Compute cycles are unaffected.
    const double baseline_factor = (1.0 + (penalty - 1.0) * measured_remote) *
                                   (1.0 + kImbalanceWeight * (baseline_imbalance - 1.0));
    const double candidate_factor = (1.0 + (penalty - 1.0) * predicted_remote) *
                                    (1.0 + kImbalanceWeight * (imbalance - 1.0));
    const double predicted_stall = stall * candidate_factor / baseline_factor;
    const double predicted_cycles = std::max(1.0, cycles - stall + predicted_stall);

    Candidate candidate;
    candidate.placement = placement;
    candidate.predicted_remote_ratio = predicted_remote;
    candidate.predicted_cycles = predicted_cycles;
    candidate.predicted_speedup = cycles > 0.0 ? cycles / predicted_cycles : 1.0;
    candidate.rationale = util::format(
        "compute phase: %.0f%% remote, %.0f%% of cycles stalled on memory, controller "
        "imbalance %.1f; %s predicts %.0f%% remote at imbalance %.1f -> %.2fx",
        100.0 * measured_remote, 100.0 * clamp01(signature.stall_fraction),
        baseline_imbalance, candidate.placement.name().c_str(), 100.0 * predicted_remote,
        imbalance, candidate.predicted_speedup);
    out.push_back(std::move(candidate));
  }

  std::stable_sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.predicted_cycles < b.predicted_cycles;
  });
  return out;
}

// --- Advisor -----------------------------------------------------------------

Advisor::Advisor(sim::MachineConfig config) : config_(std::move(config)) {}

double Advisor::remote_penalty() const {
  if (config_.topology.nodes < 2) return 1.0;
  const double local = static_cast<double>(config_.memory.local_dram_latency);
  const double remote = local + average_hops(config_.topology) *
                                    static_cast<double>(config_.memory.per_hop_latency);
  return remote / local;
}

Recommendation Advisor::advise(const evsel::ProgramFactory& factory,
                               const AdvisorOptions& options) {
  NPAT_CHECK_MSG(options.replay_repetitions >= 1, "need at least one replay repetition");
  NPAT_CHECK_MSG(options.sample_period > 0, "sample period must be positive");

  Recommendation rec;
  rec.baseline = options.baseline;

  // ---- 1. profile run: one instrumented execution under the baseline ----
  sim::Machine machine(config_);
  os::AddressSpace space(machine.topology());
  if (options.baseline.page_policy) {
    space.set_policy_override(*options.baseline.page_policy, options.baseline.bind_node);
  }
  trace::RunnerConfig runner_config;
  runner_config.seed = options.seed;
  runner_config.affinity = options.baseline.affinity;
  runner_config.task_accounting = true;
  trace::Runner runner(machine, space, runner_config);

  monitor::SamplerConfig sampler_config;
  sampler_config.period = options.sample_period;
  monitor::Sampler sampler(machine, space, sampler_config);
  sampler.attach(runner);
  monitor::TaskSamplerConfig task_config;
  task_config.period = options.sample_period;
  monitor::TaskSampler task_sampler(machine, task_config);
  task_sampler.attach(runner);
  phasen::CounterTimeline timeline(machine);
  os::FootprintRecorder footprint(space);
  runner.add_sampler(options.sample_period, [&](Cycles now) {
    timeline.sample(now);
    footprint.sample(now);
  });

  const trace::Program program = factory();
  const u32 threads = static_cast<u32>(program.threads.size());
  proc::TaskRegistry registry;
  registry.add_program(program);
  // Baseline snapshot at t=0: without it the first phase's deltas would
  // start at the first periodic tick and silently drop everything before
  // it (for short runs, the whole allocation/fill phase).
  timeline.sample(0);
  footprint.sample(0);
  runner.run(program);
  const Cycles end_clock = machine.max_clock();
  sampler.sample(end_clock);
  task_sampler.sample(end_clock);
  timeline.sample(end_clock);
  footprint.sample(end_clock);

  // numastat share of resident pages per node.
  const std::vector<u64> node_pages = space.pages_per_node();
  u64 total_pages = 0;
  for (const u64 pages : node_pages) total_pages += pages;
  for (const u64 pages : node_pages) {
    rec.signature.page_share.push_back(
        total_pages > 0 ? static_cast<double>(pages) / static_cast<double>(total_pages) : 0.0);
  }

  // ---- 2. phase split + per-phase attribution; the compute phase is the
  //         one carrying the most cycles ----
  const auto& footprint_samples = footprint.samples();
  if (footprint_samples.size() >= 8) {
    rec.phases = phasen::detect_phases_auto(footprint_samples);
  } else if (!footprint_samples.empty()) {
    phasen::Phase whole;
    whole.first_sample = 0;
    whole.last_sample = footprint_samples.size() - 1;
    whole.start_time = footprint_samples.front().timestamp;
    whole.end_time = footprint_samples.back().timestamp;
    rec.phases.phases.push_back(whole);
  }

  phasen::PhaseCounters compute;
  if (timeline.snapshots().size() >= 2 && !rec.phases.phases.empty()) {
    const phasen::PhaseAttribution attribution = phasen::attribute(timeline, rec.phases);
    usize best_phase = 0;
    for (usize p = 1; p < attribution.phases.size(); ++p) {
      if (attribution.phases[p].count(sim::Event::kCycles) >
          attribution.phases[best_phase].count(sim::Event::kCycles)) {
        best_phase = p;
      }
    }
    rec.compute_phase = best_phase;
    compute = attribution.phases[best_phase];
  } else {
    // Degenerate capture (too few snapshots): attribute the whole run.
    compute.start_time = 0;
    compute.end_time = end_clock;
    compute.deltas = machine.aggregate_counters();
  }

  CounterSignature& sig = rec.signature;
  sig.cycles = compute.count(sim::Event::kCycles);
  sig.stall_cycles_mem = compute.count(sim::Event::kStallCyclesMem);
  const u64 local_dram = compute.count(sim::Event::kMemLoadLocalDram);
  const u64 remote_dram = compute.count(sim::Event::kMemLoadRemoteDram);
  const u64 remote_hitm = compute.count(sim::Event::kMemLoadRemoteHitm);
  sig.numa_loads = local_dram + remote_dram + remote_hitm;
  sig.remote_ratio =
      sig.numa_loads > 0
          ? static_cast<double>(remote_dram + remote_hitm) / static_cast<double>(sig.numa_loads)
          : 0.0;
  // Trust gate: when the harness rated one of the load-uop DRAM events
  // suspect or refuted, the per-uop remote ratio above is built on counts
  // we cannot believe — fall back to the uncore estimate and flag the
  // degraded inputs in the recommendation.
  const validate::TrustReport* trust =
      options.trust != nullptr ? options.trust : validate::active_trust_report();
  bool primaries_untrusted = false;
  if (trust != nullptr) {
    for (const sim::Event event :
         {sim::Event::kMemLoadLocalDram, sim::Event::kMemLoadRemoteDram,
          sim::Event::kMemLoadRemoteHitm}) {
      const validate::TrustTier tier = trust->tier(event);
      if (validate::below_bounded(tier)) {
        primaries_untrusted = true;
        sig.degraded_inputs.push_back(std::string(sim::event_name(event)) + " (" +
                                      validate::tier_name(tier) + ")");
      }
    }
  }
  if (sig.numa_loads == 0 || primaries_untrusted) {
    // Cache-resident working sets miss only on cold lines, and those misses
    // are often store/RFO traffic the load-uop DRAM events never see. The
    // uncore still sees every access: flits / avg-hops approximates remote
    // DRAM accesses, IMC reads+writes the total.
    const double dram_accesses = static_cast<double>(compute.count(sim::Event::kUncImcReads) +
                                                     compute.count(sim::Event::kUncImcWrites));
    const double remote_accesses =
        static_cast<double>(compute.count(sim::Event::kUncQpiTxFlits)) /
        average_hops(machine.topology());
    if (dram_accesses > 0.0) {
      sig.remote_ratio = clamp01(remote_accesses / dram_accesses);
      sig.remote_ratio_from_uncore = true;
    }
    if (trust != nullptr) {
      // The fallback is only as good as the uncore counters themselves.
      for (const sim::Event event :
           {sim::Event::kUncQpiTxFlits, sim::Event::kUncImcReads, sim::Event::kUncImcWrites}) {
        const validate::TrustTier tier = trust->tier(event);
        if (validate::below_bounded(tier)) {
          sig.degraded_inputs.push_back(std::string(sim::event_name(event)) + " (" +
                                        validate::tier_name(tier) + ")");
        }
      }
    }
  }
  sig.stall_fraction =
      sig.cycles > 0 ? static_cast<double>(sig.stall_cycles_mem) / static_cast<double>(sig.cycles)
                     : 0.0;
  const u64 instructions = compute.count(sim::Event::kInstructions);
  sig.qpi_flits_per_kinstr =
      instructions > 0 ? 1000.0 * static_cast<double>(compute.count(sim::Event::kUncQpiTxFlits)) /
                             static_cast<double>(instructions)
                       : 0.0;

  // ---- 3. per-node windows: cycle imbalance + live remote-ratio alerts ----
  const std::vector<monitor::Sample> node_samples = sampler.ring().drain();
  {
    std::vector<u64> node_cycles(machine.nodes(), 0);
    u64 total_cycles = 0;
    for (const monitor::Sample& sample : node_samples) {
      if (sample.timestamp <= compute.start_time || sample.timestamp > compute.end_time) {
        continue;
      }
      for (usize n = 0; n < sample.nodes.size() && n < node_cycles.size(); ++n) {
        node_cycles[n] += sample.nodes[n].cycles;
        total_cycles += sample.nodes[n].cycles;
      }
    }
    if (total_cycles > 0) {
      const u64 peak = *std::max_element(node_cycles.begin(), node_cycles.end());
      sig.node_cycle_imbalance = static_cast<double>(peak) / static_cast<double>(total_cycles);
    }
  }
  {
    obs::AlertEngine engine;
    engine.add_rule(obs::remote_ratio_rule(options.warn_remote_ratio, options.bad_remote_ratio,
                                           /*dwell_windows=*/2));
    constexpr usize kWindow = 8;
    for (usize start = 0; start + kWindow <= node_samples.size(); start += kWindow) {
      const monitor::WindowStats window = monitor::aggregate(
          std::span<const monitor::Sample>(node_samples.data() + start, kWindow));
      for (usize n = 0; n < window.nodes.size(); ++n) {
        engine.evaluate("remote_ratio", "node" + std::to_string(n),
                        window.nodes[n].remote_ratio());
      }
      // Uncore view of the same window — catches remote store/RFO traffic
      // the load-uop breakdown misses (see the signature fallback).
      u64 dram_accesses = 0;
      u64 flits = 0;
      for (usize s = start; s < start + kWindow; ++s) {
        for (const monitor::NodeSample& node : node_samples[s].nodes) {
          dram_accesses += node.imc_reads + node.imc_writes;
          flits += node.qpi_flits;
        }
      }
      if (dram_accesses > 0) {
        engine.evaluate("remote_ratio", "uncore",
                        clamp01(static_cast<double>(flits) /
                                average_hops(machine.topology()) /
                                static_cast<double>(dram_accesses)));
      }
    }
    for (const obs::AlertTransition& transition : engine.transitions()) {
      rec.alerts.push_back(util::format(
          "%s %s: %s -> %s at %.0f%% remote", transition.rule.c_str(),
          transition.subject.c_str(), obs::severity_name(transition.from),
          obs::severity_name(transition.to), 100.0 * transition.value));
    }
  }

  // ---- 4. per-task hot areas: shared fraction + migration hints ----
  const std::vector<monitor::TaskSample> task_samples = task_sampler.ring().drain();
  if (!task_samples.empty()) {
    const monitor::TaskWindowStats window = monitor::aggregate_tasks(
        std::span<const monitor::TaskSample>(task_samples.data(), task_samples.size()));
    std::map<u64, std::map<std::pair<u32, u32>, u64>> area_tasks;
    std::map<u64, u64> area_samples;
    for (const monitor::TaskStats& task : window.tasks) {
      for (const monitor::TaskArea& area : task.areas) {
        area_tasks[area.base][{task.pid, task.tid}] += area.samples;
        area_samples[area.base] += area.samples;
      }
    }
    // An area is "shared" only when no single task owns two thirds of its
    // samples: per-thread arrays merely straddling a 1 MiB boundary must
    // not masquerade as shared data (the scorer would write off first-touch
    // for workloads it is exactly right for), while a table split evenly
    // between tasks still counts.
    u64 shared_samples = 0;
    u64 total_samples = 0;
    for (const auto& [base, samples] : area_samples) {
      total_samples += samples;
      u64 dominant = 0;
      for (const auto& [task, count] : area_tasks[base]) dominant = std::max(dominant, count);
      if (3 * dominant <= 2 * samples) shared_samples += samples;
    }
    sig.shared_fraction = total_samples > 0 ? static_cast<double>(shared_samples) /
                                                  static_cast<double>(total_samples)
                                            : 0.0;

    // Hints: for each remote-heavy task, move its hottest areas next to the
    // node executing it (ordered hottest-first across tasks).
    for (const monitor::TaskStats& task : window.tasks) {
      if (task.remote_ratio() < options.warn_remote_ratio) continue;
      std::vector<monitor::TaskArea> areas = task.areas;
      std::sort(areas.begin(), areas.end(),
                [](const monitor::TaskArea& a, const monitor::TaskArea& b) {
                  return a.samples > b.samples;
                });
      usize emitted = 0;
      for (const monitor::TaskArea& area : areas) {
        if (emitted >= options.max_hints_per_task) break;
        MigrationHint hint;
        hint.pid = task.pid;
        hint.tid = task.tid;
        if (const proc::TaskInfo* info = registry.find_identity(task.pid, task.tid)) {
          hint.task = info->process_name + "/" + info->thread_name;
        }
        hint.area_base = area.base / kAreaBytes * kAreaBytes;
        hint.samples = area.samples;
        hint.target = task.node;
        rec.hints.push_back(std::move(hint));
        ++emitted;
      }
    }
    std::stable_sort(rec.hints.begin(), rec.hints.end(),
                     [](const MigrationHint& a, const MigrationHint& b) {
                       return a.samples > b.samples;
                     });
  }

  // ---- 5. score the candidate grid from the signature ----
  rec.ranked =
      score_candidates(sig, machine.topology(), threads, options.baseline, remote_penalty());

  // ---- 6. apply-and-rerun: measure the baseline and the top-k candidates
  //         with the placement override; ground truth picks the winner ----
  evsel::Collector collector(config_);
  evsel::CollectOptions collect;
  collect.repetitions = options.replay_repetitions;
  collect.events = options.events.empty() ? default_events() : options.events;
  collect.seed = options.seed;
  collect.affinity = options.baseline.affinity;
  collect.page_policy_override = options.baseline.page_policy;
  collect.override_bind_node = options.baseline.bind_node;
  rec.before = collector.measure("before " + options.baseline.name(), factory, collect);
  rec.before_cycles = rec.before.mean(sim::Event::kCycles);

  for (const Candidate& candidate : rec.ranked) {
    if (rec.replays.size() >= options.replay_top_k) break;
    if (candidate.placement == options.baseline) continue;  // already measured
    evsel::CollectOptions apply = collect;
    apply.affinity = candidate.placement.affinity;
    apply.page_policy_override = candidate.placement.page_policy;
    apply.override_bind_node = candidate.placement.bind_node;
    Replay replay;
    replay.placement = candidate.placement;
    replay.measurement =
        collector.measure("after " + candidate.placement.name(), factory, apply);
    replay.cycles = replay.measurement.mean(sim::Event::kCycles);
    replay.measured_speedup = replay.cycles > 0.0 ? rec.before_cycles / replay.cycles : 1.0;
    replay.predicted_speedup = candidate.predicted_speedup;
    rec.replays.push_back(std::move(replay));
  }
  if (!rec.replays.empty()) {
    rec.best_replay = 0;
    for (usize r = 1; r < rec.replays.size(); ++r) {
      if (rec.replays[r].cycles < rec.replays[rec.best_replay].cycles) rec.best_replay = r;
    }
    rec.delta = evsel::compare(rec.before, rec.replays[rec.best_replay].measurement);
  }
  return rec;
}

}  // namespace npat::advisor
