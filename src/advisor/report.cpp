#include "advisor/report.hpp"

#include "evsel/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::advisor {

namespace {

usize capped(usize count, usize cap) { return cap == 0 ? count : std::min(count, cap); }

}  // namespace

std::string render_profile(const Recommendation& rec, const ReportOptions& options) {
  const CounterSignature& sig = rec.signature;
  std::string out;
  out += util::format(
      "profile: compute phase %zu of %zu, %.0f%% remote loads, %.0f%% of cycles "
      "stalled on memory, %.1f QPI flits/kinstr, peak node carries %.0f%% of cycles, "
      "%.0f%% of sampled loads in shared areas\n",
      rec.compute_phase + 1, rec.phases.phases.size(), 100.0 * sig.remote_ratio,
      100.0 * sig.stall_fraction, sig.qpi_flits_per_kinstr,
      100.0 * sig.node_cycle_imbalance, 100.0 * sig.shared_fraction);
  if (sig.remote_ratio_from_uncore) {
    out += "remote ratio estimated from the uncore (QPI flits / IMC accesses)\n";
  }
  if (!sig.degraded_inputs.empty()) {
    out += "degraded inputs — counter trust below bounded:";
    for (const std::string& input : sig.degraded_inputs) out += " " + input;
    out += '\n';
  }
  if (!sig.page_share.empty()) {
    out += "pages per node:";
    for (usize n = 0; n < sig.page_share.size(); ++n) {
      out += util::format(" node%zu %.0f%%", n, 100.0 * sig.page_share[n]);
    }
    out += '\n';
  }
  for (const std::string& alert : rec.alerts) out += "alert: " + alert + "\n";

  if (!rec.hints.empty()) {
    util::Table hints({"task", "hot area", "samples", "migrate to"});
    hints.set_title("page-migration hints (hottest 1 MiB areas)");
    hints.set_align(2, util::Align::kRight);
    for (usize h = 0; h < capped(rec.hints.size(), options.max_hints); ++h) {
      const MigrationHint& hint = rec.hints[h];
      hints.add_row({hint.task.empty()
                         ? util::format("%u/%u", hint.pid, hint.tid)
                         : hint.task,
                     util::format("0x%llx", static_cast<unsigned long long>(hint.area_base)),
                     util::format("%llu", static_cast<unsigned long long>(hint.samples)),
                     util::format("node%u", hint.target)});
    }
    out += hints.render();
  }

  util::Table ranked({"#", "placement", "pred. remote", "pred. cycles", "pred. speedup"});
  ranked.set_title("ranked candidate placements");
  for (usize c = 2; c < 5; ++c) ranked.set_align(c, util::Align::kRight);
  for (usize i = 0; i < capped(rec.ranked.size(), options.max_candidates); ++i) {
    const Candidate& candidate = rec.ranked[i];
    ranked.add_row({util::format("%zu", i + 1), candidate.placement.name(),
                    util::format("%.0f%%", 100.0 * candidate.predicted_remote_ratio),
                    util::si_scaled(candidate.predicted_cycles),
                    util::format("%.2fx", candidate.predicted_speedup)});
  }
  out += ranked.render();
  if (!rec.ranked.empty()) out += "why: " + rec.ranked.front().rationale + "\n";
  return out;
}

std::string render_replay(const Recommendation& rec, const ReportOptions& options) {
  std::string out;
  if (rec.replays.empty()) {
    out += "no candidate replayed (top-k = 0 or every candidate equals the baseline)\n";
    return out;
  }
  util::Table replays({"placement", "cycles", "measured", "predicted"});
  replays.set_title("apply-and-rerun (measured vs predicted speedup)");
  for (usize c = 1; c < 4; ++c) replays.set_align(c, util::Align::kRight);
  replays.add_row({rec.baseline.name() + " (before)", util::si_scaled(rec.before_cycles),
                   "1.00x", "1.00x"});
  for (const Replay& replay : rec.replays) {
    replays.add_row({replay.placement.name(), util::si_scaled(replay.cycles),
                     util::format("%.2fx", replay.measured_speedup),
                     util::format("%.2fx", replay.predicted_speedup)});
  }
  out += replays.render();

  const Replay& best = rec.best();
  if (rec.keep_current()) {
    out += util::format(
        "verdict: keep %s — no replayed candidate beat the baseline's %s cycles\n",
        rec.baseline.name().c_str(), util::si_scaled(rec.before_cycles).c_str());
  } else {
    out += util::format("verdict: apply %s — before %s cycles, after %s cycles (%s)\n",
                        best.placement.name().c_str(),
                        util::si_scaled(rec.before_cycles).c_str(),
                        util::si_scaled(best.cycles).c_str(),
                        util::percent_delta(best.cycles / rec.before_cycles - 1.0).c_str());
  }
  if (options.include_event_deltas && !rec.delta.rows.empty()) {
    evsel::ReportOptions event_options;
    event_options.include_all_events = true;
    event_options.show_descriptions = false;
    out += evsel::render_comparison(rec.delta, event_options);
  }
  return out;
}

std::string render_recommendation(const Recommendation& rec, const ReportOptions& options) {
  return render_profile(rec, options) + "\n" + render_replay(rec, options);
}

}  // namespace npat::advisor
