// Alert engine: configurable warn/bad rules evaluated once per monitor
// aggregation window, with hysteresis so alerts don't flap.
//
// Hysteresis is two-fold:
//  * separate raise/clear thresholds — a severity raised at `*_raise` only
//    clears once the value drops below `*_clear` (the band in between is
//    sticky in both directions);
//  * a minimum-windows dwell — a *different* target severity must persist
//    for `dwell_windows` consecutive evaluations before the committed
//    state changes, so a single outlier window never raises or clears.
//
// The first rule shipped is the ROADMAP's RMA/LMA remote-ratio rule: the
// live view's colour cues (warn at 20 % remote, bad at 50 %) promoted to
// programmatic alerts. Committed transitions are emitted as obs metrics
// (npat_alert_transitions_total, npat_alert_state) and as trace instant
// events, so they land in the same Prometheus export and Chrome trace as
// everything else.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace npat::obs {

enum class Severity : u8 { kOk = 0, kWarn = 1, kBad = 2 };

const char* severity_name(Severity severity) noexcept;

struct AlertRule {
  std::string name = "remote_ratio";
  double warn_raise = 0.20;
  double warn_clear = 0.15;
  double bad_raise = 0.50;
  double bad_clear = 0.40;
  /// Consecutive windows a new target severity must persist before the
  /// committed state transitions (1 = immediate).
  usize dwell_windows = 2;
};

/// The ROADMAP's configurable remote-to-local ratio rule, thresholds
/// matching the historical npat-top colour cues.
AlertRule remote_ratio_rule(double warn_raise = 0.20, double bad_raise = 0.50,
                            usize dwell_windows = 2);

struct AlertTransition {
  std::string rule;
  std::string subject;
  Severity from = Severity::kOk;
  Severity to = Severity::kOk;
  u64 window = 0;     // per-(rule, subject) evaluation index at commit time
  double value = 0.0;  // the value that committed the transition
};

/// Process-wide observer invoked on every committed transition, after the
/// metric/trace emission. npat::introspect hooks its flight recorder here
/// (obs sits below introspect in the DAG, so the dependency is inverted
/// through this pointer); nullptr disables. Swap only from one thread.
using TransitionObserver = void (*)(const AlertTransition&);
void set_transition_observer(TransitionObserver observer) noexcept;
TransitionObserver transition_observer() noexcept;

class AlertEngine {
 public:
  AlertEngine() = default;

  /// Registers (or replaces) a rule. Thresholds must satisfy
  /// clear <= raise per severity and warn_raise <= bad_raise.
  void add_rule(AlertRule rule);
  bool has_rule(const std::string& name) const { return rules_.count(name) > 0; }

  /// Feeds one aggregation-window value for (`rule`, `subject`) — e.g.
  /// rule "remote_ratio", subject "node0" — and returns the committed
  /// severity after hysteresis.
  Severity evaluate(const std::string& rule, const std::string& subject, double value);

  /// Committed severity without evaluating (kOk for unseen subjects).
  Severity state(const std::string& rule, const std::string& subject) const;

  const std::vector<AlertTransition>& transitions() const noexcept { return transitions_; }

  /// Human-readable one-line-per-transition log (empty string if none).
  std::string render_transitions() const;

 private:
  struct SubjectState {
    Severity committed = Severity::kOk;
    Severity candidate = Severity::kOk;
    usize streak = 0;
    u64 windows = 0;
  };

  static Severity target_severity(const AlertRule& rule, Severity current, double value) noexcept;
  void emit(const AlertRule& rule, const std::string& subject, const AlertTransition& transition);

  std::map<std::string, AlertRule> rules_;
  std::map<std::pair<std::string, std::string>, SubjectState> states_;
  std::vector<AlertTransition> transitions_;
};

}  // namespace npat::obs
