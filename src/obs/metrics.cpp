#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::obs {

namespace {

/// "npat_x_total{rule="r"}" -> "npat_x_total" (HELP/TYPE lines carry the
/// base name; the label suffix is rendered verbatim on the sample line).
std::string_view base_name(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

void add_double(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

std::string render_double(double value) {
  // Integral values print without a fractional part, like Prometheus does.
  return util::compact_double(value, 6);
}

/// HELP text escaping per the exposition format: backslash and newline
/// (a raw newline in help would end the HELP line mid-sentence).
std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  NPAT_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bucket bounds must be ascending");
}

void Histogram::observe(double value) noexcept {
  if (!enabled()) return;
  if (value != value) {  // NaN: would land in +Inf *and* poison sum_ forever
    nan_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  usize bucket = bounds_.size();  // +Inf
  for (usize i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_double(sum_, value);
}

void Histogram::reset() noexcept {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  nan_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labeled_name(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>> labels) {
  std::string out(base);
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

Registry::Entry& Registry::entry_of(const std::string& name, Kind kind, const std::string& help) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    NPAT_CHECK_MSG(it->second.kind == kind, "metric re-registered with a different kind");
    // Help policy: first non-empty help wins, a later empty help backfills
    // nothing away, and two call sites disagreeing out loud is a bug.
    if (it->second.help.empty()) {
      it->second.help = help;
    } else {
      NPAT_CHECK_MSG(help.empty() || help == it->second.help,
                     "metric re-registered with a conflicting help string");
    }
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_of(name, Kind::kCounter, help);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_of(name, Kind::kGauge, help);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds,
                               const std::string& help) {
  std::lock_guard lock(mutex_);
  Entry& entry = entry_of(name, Kind::kHistogram, help);
  if (!entry.histogram) entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *entry.histogram;
}

u64 Registry::counter_value(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.counter ? it->second.counter->value() : 0;
}

double Registry::gauge_value(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.gauge ? it->second.gauge->value() : 0.0;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.histogram.get() : nullptr;
}

usize Registry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::string Registry::prometheus_text() const {
  std::lock_guard lock(mutex_);
  std::string out;
  std::string_view last_base;
  for (const auto& [name, entry] : entries_) {
    const std::string_view base = base_name(name);
    if (base != last_base) {
      if (!entry.help.empty()) {
        out += util::format("# HELP %.*s %s\n", static_cast<int>(base.size()), base.data(),
                            escape_help(entry.help).c_str());
      }
      const char* type = entry.kind == Kind::kCounter  ? "counter"
                         : entry.kind == Kind::kGauge ? "gauge"
                                                      : "histogram";
      out += util::format("# TYPE %.*s %s\n", static_cast<int>(base.size()), base.data(), type);
      last_base = base;
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += util::format("%s %llu\n", name.c_str(),
                            static_cast<unsigned long long>(entry.counter->value()));
        break;
      case Kind::kGauge:
        out += util::format("%s %s\n", name.c_str(), render_double(entry.gauge->value()).c_str());
        break;
      case Kind::kHistogram: {
        const Histogram& histogram = *entry.histogram;
        // A labeled series "base{l=\"v\"}" must fold `le` into the existing
        // label set: "base_bucket{l=\"v\",le=\"...\"}" — suffixing the full
        // name would put text after the closing brace, which Prometheus
        // rejects.
        const std::string series(base);
        const std::string labels = name.size() > base.size() ? name.substr(base.size()) : "";
        const std::string inner =
            labels.empty() ? "" : labels.substr(1, labels.size() - 2) + ",";
        u64 cumulative = 0;
        for (usize i = 0; i < histogram.bounds().size(); ++i) {
          cumulative += histogram.bucket_count(i);
          out += util::format("%s_bucket{%sle=\"%s\"} %llu\n", series.c_str(), inner.c_str(),
                              render_double(histogram.bounds()[i]).c_str(),
                              static_cast<unsigned long long>(cumulative));
        }
        cumulative += histogram.bucket_count(histogram.bounds().size());
        out += util::format("%s_bucket{%sle=\"+Inf\"} %llu\n", series.c_str(), inner.c_str(),
                            static_cast<unsigned long long>(cumulative));
        out += util::format("%s_sum%s %s\n", series.c_str(), labels.c_str(),
                            render_double(histogram.sum()).c_str());
        out += util::format("%s_count%s %llu\n", series.c_str(), labels.c_str(),
                            static_cast<unsigned long long>(histogram.count()));
        break;
      }
    }
  }
  return out;
}

util::Json Registry::to_json() const {
  std::lock_guard lock(mutex_);
  util::JsonObject doc;
  for (const auto& [name, entry] : entries_) {
    util::JsonObject metric;
    metric["help"] = entry.help;
    switch (entry.kind) {
      case Kind::kCounter:
        metric["type"] = "counter";
        metric["value"] = entry.counter->value();
        break;
      case Kind::kGauge:
        metric["type"] = "gauge";
        metric["value"] = entry.gauge->value();
        break;
      case Kind::kHistogram: {
        metric["type"] = "histogram";
        const Histogram& histogram = *entry.histogram;
        util::JsonArray buckets;
        for (usize i = 0; i < histogram.bounds().size(); ++i) {
          util::JsonObject bucket;
          bucket["le"] = histogram.bounds()[i];
          bucket["count"] = histogram.bucket_count(i);
          buckets.push_back(std::move(bucket));
        }
        util::JsonObject overflow;
        overflow["le"] = "+Inf";
        overflow["count"] = histogram.bucket_count(histogram.bounds().size());
        buckets.push_back(std::move(overflow));
        metric["buckets"] = std::move(buckets);
        metric["sum"] = histogram.sum();
        metric["count"] = histogram.count();
        metric["nan_observations"] = histogram.nan_observations();
        break;
      }
    }
    doc[name] = std::move(metric);
  }
  return doc;
}

bool Registry::remove(const std::string& name) {
  std::lock_guard lock(mutex_);
  return entries_.erase(name) > 0;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

}  // namespace npat::obs
