#include "obs/alert.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::obs {

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kWarn:
      return "warn";
    case Severity::kBad:
      return "bad";
    case Severity::kOk:
      break;
  }
  return "ok";
}

AlertRule remote_ratio_rule(double warn_raise, double bad_raise, usize dwell_windows) {
  AlertRule rule;
  rule.name = "remote_ratio";
  rule.warn_raise = warn_raise;
  rule.warn_clear = warn_raise * 0.75;
  rule.bad_raise = bad_raise;
  rule.bad_clear = bad_raise * 0.8;
  rule.dwell_windows = dwell_windows;
  return rule;
}

void AlertEngine::add_rule(AlertRule rule) {
  NPAT_CHECK_MSG(!rule.name.empty(), "alert rule needs a name");
  NPAT_CHECK_MSG(rule.warn_clear <= rule.warn_raise && rule.bad_clear <= rule.bad_raise,
                 "alert clear thresholds must not exceed their raise thresholds");
  NPAT_CHECK_MSG(rule.warn_raise <= rule.bad_raise, "warn must raise at or below bad");
  NPAT_CHECK_MSG(rule.dwell_windows >= 1, "dwell must be at least one window");
  rules_[rule.name] = std::move(rule);
}

Severity AlertEngine::target_severity(const AlertRule& rule, Severity current,
                                      double value) noexcept {
  switch (current) {
    case Severity::kOk:
      if (value >= rule.bad_raise) return Severity::kBad;
      if (value >= rule.warn_raise) return Severity::kWarn;
      return Severity::kOk;
    case Severity::kWarn:
      if (value >= rule.bad_raise) return Severity::kBad;
      if (value < rule.warn_clear) return Severity::kOk;
      return Severity::kWarn;
    case Severity::kBad:
      if (value >= rule.bad_clear) return Severity::kBad;
      // Bad has cleared; warn (raised on the way up) stays until its own
      // clear threshold is crossed.
      if (value >= rule.warn_clear) return Severity::kWarn;
      return Severity::kOk;
  }
  return Severity::kOk;
}

Severity AlertEngine::evaluate(const std::string& rule_name, const std::string& subject,
                               double value) {
  const auto rule_it = rules_.find(rule_name);
  NPAT_CHECK_MSG(rule_it != rules_.end(), "unknown alert rule");
  const AlertRule& rule = rule_it->second;

  SubjectState& state = states_[{rule_name, subject}];
  ++state.windows;

  const Severity target = target_severity(rule, state.committed, value);
  if (target == state.committed) {
    state.candidate = state.committed;
    state.streak = 0;
    return state.committed;
  }
  if (target == state.candidate) {
    ++state.streak;
  } else {
    state.candidate = target;
    state.streak = 1;
  }
  if (state.streak < rule.dwell_windows) return state.committed;

  AlertTransition transition;
  transition.rule = rule_name;
  transition.subject = subject;
  transition.from = state.committed;
  transition.to = target;
  transition.window = state.windows;
  transition.value = value;
  state.committed = target;
  state.candidate = target;
  state.streak = 0;
  emit(rule, subject, transition);
  transitions_.push_back(std::move(transition));
  return state.committed;
}

Severity AlertEngine::state(const std::string& rule, const std::string& subject) const {
  const auto it = states_.find({rule, subject});
  return it == states_.end() ? Severity::kOk : it->second.committed;
}

namespace {
TransitionObserver g_transition_observer = nullptr;
}  // namespace

void set_transition_observer(TransitionObserver observer) noexcept {
  g_transition_observer = observer;
}

TransitionObserver transition_observer() noexcept { return g_transition_observer; }

void AlertEngine::emit(const AlertRule& rule, const std::string& subject,
                       const AlertTransition& transition) {
  metrics()
      .counter(util::format("npat_alert_transitions_total{rule=\"%s\",to=\"%s\"}",
                            rule.name.c_str(), severity_name(transition.to)),
               "Committed alert state transitions")
      .add(1);
  metrics()
      .gauge(util::format("npat_alert_state{rule=\"%s\",subject=\"%s\"}", rule.name.c_str(),
                          subject.c_str()),
             "Current alert severity (0=ok 1=warn 2=bad)")
      .set(static_cast<double>(transition.to));
  tracer().instant(
      "alert." + rule.name,
      util::format("%s %s->%s value=%.4f window=%llu", subject.c_str(),
                   severity_name(transition.from), severity_name(transition.to), transition.value,
                   static_cast<unsigned long long>(transition.window)));
  if (g_transition_observer != nullptr) g_transition_observer(transition);
}

std::string AlertEngine::render_transitions() const {
  std::string out;
  for (const AlertTransition& t : transitions_) {
    out += util::format("[%s] %s: %s -> %s (value %.3f, window %llu)\n", t.rule.c_str(),
                        t.subject.c_str(), severity_name(t.from), severity_name(t.to), t.value,
                        static_cast<unsigned long long>(t.window));
  }
  return out;
}

}  // namespace npat::obs
