#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "util/strings.hpp"

namespace npat::obs {

namespace {

u64 steady_now_us() {
  static const auto start = std::chrono::steady_clock::now();
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count());
}

}  // namespace

Tracer::Tracer(usize capacity) : capacity_(capacity), now_us_(steady_now_us) {}

void Tracer::set_clock(Clock now_us) {
  std::lock_guard lock(mutex_);
  now_us_ = now_us ? std::move(now_us) : Clock(steady_now_us);
}

Tracer::ThreadState& Tracer::state_locked() {
  auto [it, inserted] = threads_.try_emplace(std::this_thread::get_id());
  if (inserted) it->second.tid = next_tid_++;
  return it->second;
}

bool Tracer::begin_span(std::string_view name) {
  if (!enabled()) return false;
  std::lock_guard lock(mutex_);
  ThreadState& state = state_locked();
  OpenSpan open;
  open.name = std::string(name);
  open.path = state.stack.empty() ? open.name : state.stack.back().path + ";" + open.name;
  open.start_us = now_us_();
  state.stack.push_back(std::move(open));
  return true;
}

void Tracer::end_span() {
  std::lock_guard lock(mutex_);
  const auto it = threads_.find(std::this_thread::get_id());
  if (it == threads_.end() || it->second.stack.empty()) return;
  ThreadState& state = it->second;
  OpenSpan open = std::move(state.stack.back());
  state.stack.pop_back();
  const u64 end_us = now_us_();
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  SpanEvent event;
  event.name = std::move(open.name);
  event.path = std::move(open.path);
  event.tid = state.tid;
  event.depth = static_cast<u32>(state.stack.size());
  event.start_us = open.start_us;
  event.duration_us = end_us > open.start_us ? end_us - open.start_us : 0;
  spans_.push_back(std::move(event));
}

void Tracer::instant(std::string_view name, std::string detail) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  ThreadState& state = state_locked();
  if (instants_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  InstantEvent event;
  event.name = std::string(name);
  event.detail = std::move(detail);
  event.tid = state.tid;
  event.timestamp_us = now_us_();
  instants_.push_back(std::move(event));
}

std::vector<SpanEvent> Tracer::spans() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::vector<InstantEvent> Tracer::instants() const {
  std::lock_guard lock(mutex_);
  return instants_;
}

usize Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  instants_.clear();
  threads_.clear();
  next_tid_ = 0;
  dropped_ = 0;
}

util::Json Tracer::chrome_trace() const {
  std::lock_guard lock(mutex_);
  util::JsonArray events;
  events.reserve(spans_.size() + instants_.size());
  for (const SpanEvent& span : spans_) {
    util::JsonObject event;
    event["ph"] = "X";
    event["cat"] = "npat";
    event["name"] = span.name;
    event["pid"] = 1;
    event["tid"] = static_cast<u64>(span.tid);
    event["ts"] = span.start_us;
    event["dur"] = span.duration_us;
    util::JsonObject args;
    args["depth"] = static_cast<u64>(span.depth);
    args["path"] = span.path;
    event["args"] = std::move(args);
    events.push_back(std::move(event));
  }
  for (const InstantEvent& instant : instants_) {
    util::JsonObject event;
    event["ph"] = "i";
    event["cat"] = "npat";
    event["name"] = instant.name;
    event["pid"] = 1;
    event["tid"] = static_cast<u64>(instant.tid);
    event["ts"] = instant.timestamp_us;
    event["s"] = "t";
    if (!instant.detail.empty()) {
      util::JsonObject args;
      args["detail"] = instant.detail;
      event["args"] = std::move(args);
    }
    events.push_back(std::move(event));
  }
  util::JsonObject doc;
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = std::move(events);
  return doc;
}

std::string Tracer::flame_summary() const {
  std::lock_guard lock(mutex_);
  struct Folded {
    u64 count = 0;
    u64 total_us = 0;
    u64 child_us = 0;
  };
  std::map<std::string, Folded> folded;
  for (const SpanEvent& span : spans_) {
    Folded& f = folded[span.path];
    ++f.count;
    f.total_us += span.duration_us;
  }
  for (const SpanEvent& span : spans_) {
    if (span.depth == 0) continue;
    const auto cut = span.path.rfind(';');
    if (cut == std::string::npos) continue;
    const auto parent = folded.find(span.path.substr(0, cut));
    if (parent != folded.end()) parent->second.child_us += span.duration_us;
  }

  std::vector<std::pair<std::string, Folded>> rows(folded.begin(), folded.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second.total_us > b.second.total_us; });

  usize width = 9;  // "span path"
  for (const auto& [path, f] : rows) width = std::max(width, util::display_width(path));

  std::string out = util::pad_right("span path", width) + "  " + util::pad_left("count", 8) +
                    "  " + util::pad_left("total us", 12) + "  " + util::pad_left("self us", 12) +
                    "\n";
  for (const auto& [path, f] : rows) {
    const u64 self_us = f.total_us >= f.child_us ? f.total_us - f.child_us : 0;
    out += util::pad_right(path, width) + "  " +
           util::pad_left(util::format("%llu", static_cast<unsigned long long>(f.count)), 8) +
           "  " +
           util::pad_left(util::format("%llu", static_cast<unsigned long long>(f.total_us)), 12) +
           "  " +
           util::pad_left(util::format("%llu", static_cast<unsigned long long>(self_us)), 12) +
           "\n";
  }
  if (dropped_ > 0) {
    out += util::format("(%llu events dropped at capacity %llu)\n",
                        static_cast<unsigned long long>(dropped_),
                        static_cast<unsigned long long>(capacity_));
  }
  return out;
}

}  // namespace npat::obs
