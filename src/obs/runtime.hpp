// Process-wide runtime switch for npat::obs instrumentation.
//
// Two layers of disablement keep the zero-overhead path zero:
//  * compile time — building with -DNPAT_OBS_COMPILED=0 (CMake option
//    NPAT_OBS=OFF) turns every NPAT_OBS_* macro into nothing, so the
//    instrumented subsystems contain no observability code at all;
//  * run time — obs::set_enabled(false) turns recording into an early-out
//    (one relaxed atomic load) without recompiling, for latency-sensitive
//    production runs that still want the option of flipping it back on.
//
// Instrumentation never touches simulator state either way: the simulated
// results of a run are bit-identical with observability on, off, or
// compiled out (bench/extension_monitor_overhead asserts this).
#pragma once

#include <atomic>

#ifndef NPAT_OBS_COMPILED
#define NPAT_OBS_COMPILED 1
#endif

namespace npat::obs {

namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// RAII guard for tests and benches that flip the global switch.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) : previous_(enabled()) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(previous_); }
  EnabledGuard(const EnabledGuard&) = delete;
  EnabledGuard& operator=(const EnabledGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace npat::obs
