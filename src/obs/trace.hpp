// Span tracer: RAII scoped spans with nesting and per-thread span stacks,
// exported as Chrome trace-event JSON (loadable in about:tracing /
// Perfetto) and as a plain-text flame summary (folded-stack totals).
//
// Spans observe the *toolkit's* wall-clock time — where an EvSel sweep or
// a Memhist assembly spends its real time — never simulated cycles, so
// tracing cannot perturb a simulation. Completed spans land in a bounded
// buffer (overflow is counted, not grown); instant events mark point
// occurrences such as alert transitions. The clock is injectable so tests
// get deterministic timestamps.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/runtime.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::obs {

/// One completed span. `path` is the folded call-stack of span names
/// ("evsel.sweep;evsel.collect;evsel.run"), `depth` its nesting level.
struct SpanEvent {
  std::string name;
  std::string path;
  u32 tid = 0;
  u32 depth = 0;
  u64 start_us = 0;
  u64 duration_us = 0;
};

/// A point event (Chrome "instant"), e.g. an alert transition.
struct InstantEvent {
  std::string name;
  std::string detail;
  u32 tid = 0;
  u64 timestamp_us = 0;
};

class Tracer {
 public:
  /// Completed spans and instants are each capped at `capacity`; further
  /// events are dropped and counted.
  explicit Tracer(usize capacity = 65536);

  /// Microsecond clock; tests install a manual (monotonic) one.
  using Clock = std::function<u64()>;
  void set_clock(Clock now_us);

  /// Opens a span on the calling thread's stack. Returns false (and
  /// records nothing) while obs is disabled — ScopedSpan remembers the
  /// answer so a matching end is only issued for a recorded begin.
  bool begin_span(std::string_view name);
  void end_span();
  void instant(std::string_view name, std::string detail = "");

  std::vector<SpanEvent> spans() const;
  std::vector<InstantEvent> instants() const;
  usize dropped() const;
  /// Discards all recorded events and open stacks.
  void clear();

  /// {"displayTimeUnit": "ms", "traceEvents": [...]} — complete ("X")
  /// events for spans, thread-scoped instants ("i") for point events.
  util::Json chrome_trace() const;

  /// Folded-stack table: count, total and self time per span path, widest
  /// total first.
  std::string flame_summary() const;

 private:
  struct OpenSpan {
    std::string name;
    std::string path;
    u64 start_us = 0;
  };
  struct ThreadState {
    u32 tid = 0;
    std::vector<OpenSpan> stack;
  };

  ThreadState& state_locked();

  mutable std::mutex mutex_;
  usize capacity_;
  Clock now_us_;
  std::unordered_map<std::thread::id, ThreadState> threads_;
  u32 next_tid_ = 0;
  std::vector<SpanEvent> spans_;
  std::vector<InstantEvent> instants_;
  usize dropped_ = 0;
};

/// RAII span: records on construction (if obs is enabled), closes on
/// destruction. Use through NPAT_OBS_SPAN so the disabled build compiles
/// the instrumentation away entirely.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name)
      : tracer_(&tracer), active_(tracer.begin_span(name)) {}
  ~ScopedSpan() {
    if (active_) tracer_->end_span();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  bool active_;
};

}  // namespace npat::obs
