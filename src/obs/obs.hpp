// npat::obs — self-observability for the toolkit. The paper's tools
// observe *programs*; this layer observes the toolkit itself: where an
// EvSel sweep spends its time (span tracer), how often the wire decoder
// resyncs after CRC failures (metrics registry), and when a node's
// remote-to-local load ratio crosses a danger threshold (alert engine,
// see obs/alert.hpp).
//
// Instrumented code uses the NPAT_OBS_* macros against the process-wide
// tracer()/metrics() singletons. Building with -DNPAT_OBS_COMPILED=0
// (CMake -DNPAT_OBS=OFF) compiles every macro away; obs::set_enabled(false)
// disables recording at run time (see obs/runtime.hpp).
#pragma once

#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/trace.hpp"

namespace npat::obs {

/// Process-wide tracer all instrumentation records into.
Tracer& tracer();

/// Process-wide metrics registry.
Registry& metrics();

}  // namespace npat::obs

#if NPAT_OBS_COMPILED

#define NPAT_OBS_CONCAT_IMPL(a, b) a##b
#define NPAT_OBS_CONCAT(a, b) NPAT_OBS_CONCAT_IMPL(a, b)

/// Opens an RAII span named `name` (string literal) for the current scope.
#define NPAT_OBS_SPAN(name) \
  ::npat::obs::ScopedSpan NPAT_OBS_CONCAT(npat_obs_span_, __LINE__)(::npat::obs::tracer(), (name))

/// Adds `delta` to the named counter. The registry lookup happens once per
/// call site (function-local static); the hot path is one relaxed atomic.
#define NPAT_OBS_COUNT(name, help, delta)                                       \
  do {                                                                          \
    static ::npat::obs::Counter& npat_obs_counter_ =                            \
        ::npat::obs::metrics().counter((name), (help));                         \
    npat_obs_counter_.add((delta));                                             \
  } while (0)

/// Records a point event (e.g. a state transition) in the trace.
#define NPAT_OBS_INSTANT(name, detail) ::npat::obs::tracer().instant((name), (detail))

#else  // instrumentation compiled out

#define NPAT_OBS_SPAN(name) \
  do {                      \
  } while (0)
#define NPAT_OBS_COUNT(name, help, delta) \
  do {                                    \
  } while (0)
#define NPAT_OBS_INSTANT(name, detail) \
  do {                                 \
  } while (0)

#endif  // NPAT_OBS_COMPILED
