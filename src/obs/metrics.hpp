// Metrics registry: named counters, gauges and fixed-bucket histograms the
// toolkit uses to observe *itself* (wire-decoder resyncs, EvSel runs,
// monitor sampler ticks, alert transitions). LIKWID-style always-available
// lightweight instrumentation, exported in Prometheus text exposition
// format and as util::Json.
//
// Naming scheme: npat_<subsystem>_<name>[_total], optionally with
// {label="value"} suffixes in the registered name (rendered verbatim;
// HELP/TYPE lines are emitted once per base name). Metric handles returned
// by the registry are stable for the registry's lifetime, so hot paths
// look a metric up once (function-local static reference) and then pay one
// relaxed atomic op per event — or nothing when obs is disabled.
#pragma once

#include <atomic>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/runtime.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 delta = 1) noexcept {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  u64 value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Last-written value (e.g. current alert severity, ring occupancy).
class Gauge {
 public:
  void set(double value) noexcept {
    if (enabled()) value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (ascending upper bounds; an implicit +Inf bucket
/// catches the overflow). Buckets are cumulative in the Prometheus export.
/// NaN observations are dropped — a NaN would otherwise poison `sum` for
/// the rest of the process — and tallied in nan_observations() instead.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  std::span<const double> bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket `index` (bounds().size() = +Inf bucket).
  u64 bucket_count(usize index) const noexcept {
    return counts_[index].load(std::memory_order_relaxed);
  }
  u64 count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// NaN values passed to observe(): dropped from every bucket and from
  /// `sum`/`count`, counted here so the damage is visible, not silent.
  u64 nan_observations() const noexcept { return nan_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<u64>> counts_;  // bounds_.size() + 1
  std::atomic<u64> count_{0};
  std::atomic<u64> nan_{0};
  std::atomic<double> sum_{0.0};
};

/// Escapes a Prometheus label *value*: backslash, double quote and newline
/// per the text exposition format.
std::string escape_label_value(std::string_view value);

/// Renders `base{key="value",...}` with escaped values — the registry's
/// labeled-name convention (per-probe metric series use this).
std::string labeled_name(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>> labels);

class Registry {
 public:
  /// Returns the named metric, creating it on first use. Re-registering an
  /// existing name with a different metric kind throws. Help text: the
  /// first non-empty help wins, a later empty help never erases it, and a
  /// later *conflicting* non-empty help throws — two call sites silently
  /// disagreeing about what a metric means is a bug, not a preference.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Current value of a registered counter/gauge; 0 if absent.
  u64 counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  /// Stable pointer to a registered histogram; nullptr if the name is
  /// absent or registered as another kind. Handles outlive the lookup.
  const Histogram* find_histogram(const std::string& name) const;
  usize size() const;

  /// Prometheus text exposition format, metrics sorted by name, one HELP/
  /// TYPE pair per base name (the part before any '{' label suffix).
  std::string prometheus_text() const;
  util::Json to_json() const;

  /// Zeroes every value; metric handles stay valid.
  void reset();

  /// Unregisters a metric by its exact registered name (labeled series
  /// use the full labeled_name() spelling). Returns true when an entry
  /// was removed. This is the one operation that invalidates a handle:
  /// the caller owns the discipline of dropping every cached pointer to
  /// the series first — the fleet collector retires a renamed probe's
  /// series only after re-resolving its own handles, and only when no
  /// sibling probe still publishes under the label.
  bool remove(const std::string& name);

 private:
  enum class Kind : u8 { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_of(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // ordered -> deterministic export
};

}  // namespace npat::obs
