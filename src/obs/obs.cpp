#include "obs/obs.hpp"

namespace npat::obs {

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

Registry& metrics() {
  static Registry instance;
  return instance;
}

}  // namespace npat::obs
