#include "fleet/collector.hpp"

#include <algorithm>

#include "monitor/export.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::fleet {

namespace wire = memhist::wire;

usize FleetView::hosts_ended() const noexcept {
  usize count = 0;
  for (const HostRow& host : hosts) count += host.ended ? 1 : 0;
  return count;
}

ProbeDamage FleetView::damage_total() const noexcept {
  ProbeDamage sum;
  for (const HostRow& host : hosts) {
    sum.dropped_frames += host.damage.dropped_frames;
    sum.resyncs += host.damage.resyncs;
    sum.truncated_flushes += host.damage.truncated_flushes;
    sum.unexpected_frames += host.damage.unexpected_frames;
  }
  return sum;
}

usize FleetCollector::add_probe(std::shared_ptr<util::ByteChannel> channel,
                                std::string fallback_host_id) {
  NPAT_CHECK_MSG(channel != nullptr, "fleet probe needs a channel");
  auto probe = std::make_unique<PerProbe>();
  probe->channel = std::move(channel);
  probe->state.host_id = fallback_host_id.empty() ? util::format("probe%zu", probes_.size())
                                                  : std::move(fallback_host_id);
  probes_.push_back(std::move(probe));
  NPAT_OBS_COUNT("npat_fleet_probes_total", "Probe channels registered with a FleetCollector", 1);
  return probes_.size() - 1;
}

const ProbeState& FleetCollector::probe(usize index) const {
  NPAT_CHECK_MSG(index < probes_.size(), "fleet probe index out of range");
  return probes_[index]->state;
}

bool FleetCollector::all_ended() const noexcept {
  for (const auto& probe : probes_) {
    if (!probe->state.ended) return false;
  }
  return !probes_.empty();
}

usize FleetCollector::poll() {
  NPAT_OBS_SPAN("fleet.poll");
  usize merged = 0;
  for (auto& probe : probes_) merged += poll_probe(*probe);
  samples_merged_ += merged;
  return merged;
}

usize FleetCollector::poll_probe(PerProbe& probe) {
  ProbeState& state = probe.state;
  for (;;) {
    const auto bytes = probe.channel->recv(4096);
    if (bytes.empty()) break;
    probe.decoder.feed(bytes);
  }
  // Drained and closed: a partial frame can never complete. Let the
  // decoder flush and count the truncation (same EOF handling as the
  // single-probe GuiCollector and monitor::decode_stream).
  if (probe.channel->closed()) probe.decoder.finish();

  usize merged = 0;
  while (auto message = probe.decoder.poll()) {
    if (const auto* hello = std::get_if<wire::Hello>(&*message)) {
      state.hello_received = true;
      state.version = hello->version;
      state.node_count = hello->node_count;
      // A v2 probe has no host field; it keeps the fallback name.
      if (!hello->host_id.empty()) state.host_id = hello->host_id;
    } else if (const auto* sample = std::get_if<wire::MonitorSampleMsg>(&*message)) {
      if (!state.samples.empty() && sample->nodes.size() != state.samples.front().nodes.size()) {
        // A CRC-valid frame whose shape contradicts the stream so far:
        // merging it would poison every later aggregation, so count it as
        // damage instead.
        ++state.damage.unexpected_frames;
        NPAT_OBS_COUNT("npat_fleet_unexpected_frames_total",
                       "Valid frames the fleet collector could not merge", 1);
        continue;
      }
      monitor::Sample merged_sample = monitor::from_wire(*sample);
      if (!state.origin) state.origin = merged_sample.timestamp;
      merged_sample.timestamp = merged_sample.timestamp >= *state.origin
                                    ? merged_sample.timestamp - *state.origin
                                    : 0;
      state.samples.push_back(std::move(merged_sample));
      ++merged;
      NPAT_OBS_COUNT("npat_fleet_samples_merged_total",
                     "Monitor samples merged into the fleet view", 1);
    } else if (const auto* end = std::get_if<wire::End>(&*message)) {
      state.ended = true;
      state.total_cycles = end->total_cycles;
    } else {
      // ThresholdReadings (or future types) are valid v2 frames with no
      // place in a telemetry merge — counted, not silently ignored.
      ++state.damage.unexpected_frames;
      NPAT_OBS_COUNT("npat_fleet_unexpected_frames_total",
                     "Valid frames the fleet collector could not merge", 1);
    }
  }

  // Re-publish the decoder's own tallies so per-probe damage always
  // reconciles exactly with the framing layer.
  state.damage.dropped_frames = probe.decoder.dropped_frames();
  state.damage.resyncs = probe.decoder.resyncs();
  state.damage.truncated_flushes = probe.decoder.truncated_flushes();
  return merged;
}

FleetView FleetCollector::view(usize window_samples) const {
  NPAT_OBS_SPAN("fleet.view");
  FleetView out;
  out.hosts.reserve(probes_.size());
  for (const auto& probe : probes_) {
    const ProbeState& state = probe->state;
    const usize take =
        window_samples == 0 ? state.samples.size() : std::min(state.samples.size(), window_samples);
    const std::span<const monitor::Sample> tail(state.samples.data() + state.samples.size() - take,
                                                take);
    HostRow row;
    row.host_id = state.host_id;
    row.hello_received = state.hello_received;
    row.ended = state.ended;
    row.samples_total = state.samples.size();
    row.window = monitor::aggregate(tail);
    row.damage = state.damage;

    out.span = std::max(out.span, row.window.span());
    out.samples += row.window.samples;
    const monitor::NodeStats host_total = row.window.total();
    out.total.samples += host_total.samples;
    out.total.instructions += host_total.instructions;
    out.total.cycles += host_total.cycles;
    out.total.local_dram += host_total.local_dram;
    out.total.remote_dram += host_total.remote_dram;
    out.total.remote_hitm += host_total.remote_hitm;
    out.total.imc_reads += host_total.imc_reads;
    out.total.imc_writes += host_total.imc_writes;
    out.total.qpi_flits += host_total.qpi_flits;
    out.total.resident_bytes += host_total.resident_bytes;
    out.hosts.push_back(std::move(row));
  }
  return out;
}

}  // namespace npat::fleet
