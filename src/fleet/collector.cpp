#include "fleet/collector.hpp"

#include <algorithm>

#include "introspect/flight.hpp"
#include "monitor/export.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::fleet {

namespace wire = memhist::wire;

usize FleetView::hosts_ended() const noexcept {
  usize count = 0;
  for (const HostRow& host : hosts) count += host.ended ? 1 : 0;
  return count;
}

ProbeDamage FleetView::damage_total() const noexcept {
  ProbeDamage sum;
  for (const HostRow& host : hosts) {
    sum.dropped_frames += host.damage.dropped_frames;
    sum.resyncs += host.damage.resyncs;
    sum.truncated_flushes += host.damage.truncated_flushes;
    sum.unexpected_frames += host.damage.unexpected_frames;
    sum.orphaned_task_rows += host.damage.orphaned_task_rows;
    sum.orphans_attributed += host.damage.orphans_attributed;
  }
  return sum;
}

u64 FleetView::duplicates_total() const noexcept {
  u64 sum = 0;
  for (const HostRow& host : hosts) sum += host.duplicates;
  return sum;
}

usize FleetCollector::add_probe(std::shared_ptr<util::ByteChannel> channel,
                                std::string fallback_host_id) {
  NPAT_CHECK_MSG(channel != nullptr, "fleet probe needs a channel");
  auto probe = std::make_unique<PerProbe>(std::move(channel));
  probe->liveness = resilience::LivenessTracker(config_.liveness);
  probe->state.host_id = fallback_host_id.empty() ? util::format("probe%zu", probes_.size())
                                                  : std::move(fallback_host_id);
  fronts_.push_back(&probe->front);
  probes_.push_back(std::move(probe));
  NPAT_OBS_COUNT("npat_fleet_probes_total", "Probe channels registered with a FleetCollector", 1);
  return probes_.size() - 1;
}

const ProbeState& FleetCollector::probe(usize index) const {
  NPAT_CHECK_MSG(index < probes_.size(), "fleet probe index out of range");
  return probes_[index]->state;
}

bool FleetCollector::all_ended() const noexcept {
  for (const auto& probe : probes_) {
    if (!probe->state.ended) return false;
  }
  return !probes_.empty();
}

usize FleetCollector::poll(Cycles now) {
  NPAT_OBS_SPAN("fleet.poll");
  clock_ = std::max(clock_, now);
  usize merged = 0;
  if (config_.shards <= 1 || probes_.size() <= 1) {
    // Sequential oracle: front + merge inline, per probe, in index order.
    for (auto& probe : probes_) {
      merged += apply_batch(*probe, probe->front.collect(clock_));
      finish_poll(*probe);
    }
  } else {
    // Sharded: workers run the fronts in parallel; the merge stage
    // consumes batches in probe-index order, so every observable effect
    // (state, registry, flight ring, acks) lands in oracle order.
    ensure_pool();
    pool_->begin_round(clock_, fronts_);
    for (usize index = 0; index < probes_.size(); ++index) {
      PerProbe& probe = *probes_[index];
      merged += apply_batch(probe, pool_->pop(index));
      finish_poll(probe);
    }
    if (obs::enabled()) publish_shard_gauges();
  }
  samples_merged_ += merged;
  return merged;
}

void FleetCollector::ensure_pool() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<ShardPool>(config_.shards, config_.ring_capacity);
  introspect::flight().record(
      introspect::FlightKind::kNote, clock_, "fleet",
      util::format("shard pool started: %zu decode workers", config_.shards));
}

void FleetCollector::publish_shard_gauges() {
  // How far each worker's decode ran ahead of the merge stage this round:
  // the high-water occupancy of its handoff ring (capacity = the
  // backpressure bound).
  obs::Registry& registry = obs::metrics();
  for (usize shard = 0; shard < pool_->shards(); ++shard) {
    obs::Gauge& gauge = registry.gauge(
        obs::labeled_name("npat_introspect_shard_ring_depth",
                          {{"shard", util::format("%zu", shard)}}),
        "High-water SPSC ring occupancy of a decode shard in the last poll");
    gauge.set(static_cast<double>(pool_->ring_high_water(shard)));
  }
}

void FleetCollector::reattach_probe(usize index, std::shared_ptr<util::ByteChannel> channel) {
  NPAT_CHECK_MSG(index < probes_.size(), "fleet probe index out of range");
  NPAT_CHECK_MSG(channel != nullptr, "fleet reattach needs a channel");
  PerProbe& probe = *probes_[index];
  // Fold whatever the dying connection still buffered, then retire its
  // decoder: finish_collect() flushes a frame truncated mid-disconnect
  // into the damage tally instead of leaving it pending forever. Runs
  // inline — reattach happens between polls, when the workers are parked.
  samples_merged_ += apply_batch(probe, probe.front.collect(clock_));
  finish_poll(probe);
  samples_merged_ += apply_batch(probe, probe.front.finish_collect(clock_));
  probe.front.adopt_channel(std::move(channel));
  ++probe.state.reattaches;
  republish(probe);
  NPAT_OBS_COUNT("npat_fleet_reattaches_total",
                 "Probe channels swapped under a slot after a reconnect", 1);
  NPAT_OBS_INSTANT("fleet.reattach", probe.state.host_id);
  introspect::flight().record(introspect::FlightKind::kReattach, clock_, probe.state.host_id,
                              "channel swapped under the slot");
}

usize FleetCollector::apply_batch(PerProbe& probe, ShardBatch&& batch) {
  ProbeState& state = probe.state;
  // Any CRC-valid frame proves the probe is alive, duplicates included —
  // a retransmission is still a working transport.
  if (batch.frames_decoded > 0) probe.liveness.heard(clock_);
  state.pipeline.frames += batch.frames_decoded;
  if (batch.saw_supervised) state.supervised = true;
  usize merged = 0;
  for (BatchItem& item : batch.items) {
    switch (item.kind) {
      case BatchItem::Kind::kFold:
        if (item.has_dwell) observe_dwell(probe, item.dwell);
        merged += fold(probe, item.message);
        break;
      case BatchItem::Kind::kIngest:
        observe_ingest(probe, item.ingest_latency);
        break;
      case BatchItem::Kind::kHeartbeat:
        ++state.heartbeats;
        break;
      case BatchItem::Kind::kResume:
        ++state.resumes;
        probe.ack_due = true;  // reply even when the floor is unchanged
        probe.resume_epoch = item.resume_epoch;
        break;
      case BatchItem::Kind::kUnexpected:
        ++state.damage.unexpected_frames;
        NPAT_OBS_COUNT("npat_fleet_unexpected_frames_total",
                       "Valid frames the fleet collector could not merge", 1);
        break;
    }
  }
  return merged;
}

void FleetCollector::finish_poll(PerProbe& probe) {
  maybe_ack(probe);
  republish(probe);
  const resilience::Liveness verdict = probe.liveness.evaluate(clock_);
  if (verdict != probe.state.liveness) {
    introspect::flight().record(
        introspect::FlightKind::kLivenessChange, clock_, probe.state.host_id,
        util::format("%s->%s", resilience::liveness_name(probe.state.liveness),
                     resilience::liveness_name(verdict)));
  }
  probe.state.liveness = verdict;
}

usize FleetCollector::fold(PerProbe& probe, const wire::Message& message) {
  ProbeState& state = probe.state;
  if (const auto* hello = std::get_if<wire::Hello>(&message)) {
    state.hello_received = true;
    ++state.hellos;
    state.version = hello->version;
    state.node_count = hello->node_count;
    // A v2 probe has no host field; it keeps the fallback name.
    if (!hello->host_id.empty()) state.host_id = hello->host_id;
  } else if (const auto* sample = std::get_if<wire::MonitorSampleMsg>(&message)) {
    if (!state.samples.empty() && sample->nodes.size() != state.samples.front().nodes.size()) {
      // A CRC-valid frame whose shape contradicts the stream so far:
      // merging it would poison every later aggregation, so count it as
      // damage instead.
      ++state.damage.unexpected_frames;
      NPAT_OBS_COUNT("npat_fleet_unexpected_frames_total",
                     "Valid frames the fleet collector could not merge", 1);
      return 0;
    }
    monitor::Sample merged_sample = monitor::from_wire(*sample);
    if (!state.origin) state.origin = merged_sample.timestamp;
    merged_sample.timestamp = merged_sample.timestamp >= *state.origin
                                  ? merged_sample.timestamp - *state.origin
                                  : 0;
    state.samples.push_back(std::move(merged_sample));
    NPAT_OBS_COUNT("npat_fleet_samples_merged_total",
                   "Monitor samples merged into the fleet view", 1);
    return 1;
  } else if (const auto* table = std::get_if<wire::TaskTableMsg>(&message)) {
    state.registry.merge_wire(*table);
    attribute_orphans(probe);
  } else if (const auto* tasks = std::get_if<wire::TaskSampleMsg>(&message)) {
    fold_task_sample(probe, *tasks);
  } else if (const auto* end = std::get_if<wire::End>(&message)) {
    state.ended = true;
    state.total_cycles = end->total_cycles;
  } else {
    // ThresholdReadings (or future types) are valid v2 frames with no
    // place in a telemetry merge — counted, not silently ignored.
    ++state.damage.unexpected_frames;
    NPAT_OBS_COUNT("npat_fleet_unexpected_frames_total",
                   "Valid frames the fleet collector could not merge", 1);
  }
  return 0;
}

namespace {

monitor::TaskCounters task_counters_of(const proc::TaskInfo& info,
                                       const wire::TaskSampleRow& row) {
  monitor::TaskCounters t;
  t.pid = info.pid;
  t.tid = info.tid;
  t.node = row.node;
  t.instructions = row.instructions;
  t.cycles = row.cycles;
  t.local_dram = row.local_dram;
  t.remote_dram = row.remote_dram;
  t.remote_hitm = row.remote_hitm;
  t.loads = row.loads;
  t.latency_sum = row.latency_sum;
  t.latency_loads = row.latency_loads;
  t.areas.reserve(row.areas.size());
  for (const wire::TaskAreaCounters& area : row.areas) {
    t.areas.push_back(monitor::TaskArea{area.base, area.samples});
  }
  return t;
}

void sort_tasks(std::vector<monitor::TaskCounters>& tasks) {
  std::sort(tasks.begin(), tasks.end(),
            [](const monitor::TaskCounters& a, const monitor::TaskCounters& b) {
              return std::pair{a.pid, a.tid} < std::pair{b.pid, b.tid};
            });
}

}  // namespace

void FleetCollector::fold_task_sample(PerProbe& probe, const wire::TaskSampleMsg& message) {
  ProbeState& state = probe.state;
  // Task frames ride the same probe clock as node samples, so they share
  // (and may establish) the probe's timestamp origin.
  if (!state.origin) state.origin = message.timestamp;
  const Cycles aligned =
      message.timestamp >= *state.origin ? message.timestamp - *state.origin : 0;
  monitor::TaskSample sample;
  sample.timestamp = aligned;
  sample.tasks.reserve(message.rows.size());
  for (const wire::TaskSampleRow& row : message.rows) {
    const proc::TaskInfo* info = state.registry.find(row.task_id);
    if (info == nullptr) {
      // Unknown id: the TaskTable frame naming it may simply not have
      // arrived yet (reordering, a resync that ate it, a probe announcing
      // lazily). Hold the row for late attribution instead of dropping it
      // silently — and count it in the ledger either way.
      ++state.damage.orphaned_task_rows;
      NPAT_OBS_COUNT("npat_fleet_orphaned_task_rows_total",
                     "v5 task rows that arrived before their TaskTable registration", 1);
      if (probe.orphans.size() >= kMaxOrphanRows) probe.orphans.erase(probe.orphans.begin());
      probe.orphans.push_back(PerProbe::OrphanRow{aligned, row});
      continue;
    }
    sample.tasks.push_back(task_counters_of(*info, row));
  }
  sort_tasks(sample.tasks);
  // Keep the record even when every row orphaned: the frame happened, and
  // late attribution will repopulate it at this timestamp.
  state.task_samples.push_back(std::move(sample));
  NPAT_OBS_COUNT("npat_fleet_task_samples_merged_total",
                 "Per-task telemetry samples merged into the fleet view", 1);
}

void FleetCollector::attribute_orphans(PerProbe& probe) {
  if (probe.orphans.empty()) return;
  ProbeState& state = probe.state;
  std::vector<PerProbe::OrphanRow> still_unknown;
  for (PerProbe::OrphanRow& orphan : probe.orphans) {
    const proc::TaskInfo* info = state.registry.find(orphan.row.task_id);
    if (info == nullptr) {
      still_unknown.push_back(std::move(orphan));
      continue;
    }
    // Re-insert at the sorted timestamp position so the rescued row lands
    // in the sample it was sent with (or a new record if that sample's
    // every row orphaned and the record was evicted meanwhile).
    auto it = std::lower_bound(
        state.task_samples.begin(), state.task_samples.end(), orphan.timestamp,
        [](const monitor::TaskSample& s, Cycles t) { return s.timestamp < t; });
    if (it == state.task_samples.end() || it->timestamp != orphan.timestamp) {
      it = state.task_samples.insert(it, monitor::TaskSample{orphan.timestamp, {}});
    }
    it->tasks.push_back(task_counters_of(*info, orphan.row));
    sort_tasks(it->tasks);
    ++state.damage.orphans_attributed;
    NPAT_OBS_COUNT("npat_fleet_orphans_attributed_total",
                   "Orphaned task rows attributed after late registration", 1);
  }
  probe.orphans = std::move(still_unknown);
}

void FleetCollector::maybe_ack(PerProbe& probe) {
  if (!probe.state.supervised) return;
  const resilience::DeliveryLedger& ledger = probe.front.ledger();
  u16 epoch;
  u32 floor;
  if (probe.ack_due) {
    // Handshake reply: answer for the epoch the probe announced. If data
    // under that epoch already arrived this poll the ledger has adopted
    // it and the floor is current; otherwise nothing of that incarnation
    // was ever delivered and the floor is zero.
    epoch = probe.resume_epoch;
    floor = epoch == ledger.epoch() ? ledger.floor() : 0;
  } else {
    // Steady-state ack: only when it tells the probe something new.
    epoch = ledger.epoch();
    floor = ledger.floor();
    if (epoch == probe.acked_epoch && floor <= probe.acked_floor) return;
  }
  wire::Resume ack;
  ack.role = wire::kResumeCollector;
  ack.epoch = epoch;
  ack.seq = floor;
  util::ByteChannel* channel = probe.front.channel();
  if (channel != nullptr && channel->send(wire::encode(wire::Message{ack}))) {
    // On failure ack_due stays set: the channel is dying and the probe
    // will redial, so the reply is retried on the next connection.
    probe.ack_due = false;
    probe.acked_epoch = epoch;
    probe.acked_floor = floor;
    ++probe.state.acks_sent;
    NPAT_OBS_COUNT("npat_fleet_acks_sent_total",
                   "Resume acks sent back to supervised probes", 1);
  }
}

void FleetCollector::republish(PerProbe& probe) {
  // Re-publish the front's framing tallies (decoder plus anything carried
  // over from decoders retired by reattach_probe) so per-probe damage
  // always reconciles exactly with the framing layer, and mirror the
  // ledger and liveness state into the plain-value ProbeState. Safe even
  // in sharded mode: the merge stage only reaches a probe's front after
  // popping its batch, which the worker pushed after finishing the probe.
  ProbeState& state = probe.state;
  const ProbeDamage framing = probe.front.damage();
  state.damage.dropped_frames = framing.dropped_frames;
  state.damage.resyncs = framing.resyncs;
  state.damage.truncated_flushes = framing.truncated_flushes;
  const resilience::DeliveryLedger& ledger = probe.front.ledger();
  state.epoch = ledger.epoch();
  state.seq_floor = ledger.floor();
  state.highest_seq = ledger.highest_seen();
  state.gap_backlog = ledger.gap_backlog();
  state.delivered_frames = ledger.delivered();
  state.duplicate_frames = ledger.duplicates();
  state.epoch_resets = ledger.epoch_resets();

  introspect::PipelineStats& pipeline = state.pipeline;
  pipeline.pending_depth = probe.front.pending_depth();
  pipeline.orphan_depth = probe.orphans.size();
  pipeline.frames_per_mcycle =
      clock_ > 0 ? 1e6 * static_cast<double>(pipeline.frames) / static_cast<double>(clock_) : 0.0;
  if (probe.ingest_hist != nullptr) {
    const introspect::QuantileEstimate p99 =
        introspect::histogram_quantile_estimate(*probe.ingest_hist, 0.99);
    pipeline.ingest_p99 = p99.value;
    pipeline.ingest_p99_overflow = p99.overflow;
  }
  if (obs::enabled()) {
    ensure_metrics(probe);
    probe.pending_gauge->set(static_cast<double>(pipeline.pending_depth));
    probe.orphan_gauge->set(static_cast<double>(pipeline.orphan_depth));
    probe.rate_gauge->set(pipeline.frames_per_mcycle);
    narrate_flight(probe);
  }
}

namespace {

constexpr const char* kPerProbeMetricBases[] = {
    "npat_introspect_ingest_latency_cycles", "npat_introspect_reorder_dwell_cycles",
    "npat_introspect_reorder_depth",         "npat_introspect_orphan_depth",
    "npat_introspect_frames_per_mcycle",
};

}  // namespace

void FleetCollector::ensure_metrics(PerProbe& probe) {
  if (probe.ingest_hist != nullptr && probe.metric_host == probe.state.host_id) return;
  // (Re-)resolve the per-probe labeled series. A late v3 Hello can rename
  // the host; observations already made stay under the fallback name only
  // until the rename is noticed, then the stale series are retired so a
  // Prometheus scrape never keeps reporting a dead host id.
  const std::string old_host = probe.ingest_hist != nullptr ? probe.metric_host : std::string();
  probe.metric_host = probe.state.host_id;
  obs::Registry& registry = obs::metrics();
  const auto name = [&](const char* base) {
    return obs::labeled_name(base, {{"host", probe.metric_host}});
  };
  static const std::vector<double> kLatencyBounds = {0.0,    10.0,    100.0,    1000.0,
                                                     10000.0, 100000.0, 1000000.0, 10000000.0};
  probe.ingest_hist =
      &registry.histogram(name("npat_introspect_ingest_latency_cycles"), kLatencyBounds,
                          "Probe-emit to collector-decode latency of stamped frames");
  probe.reorder_hist =
      &registry.histogram(name("npat_introspect_reorder_dwell_cycles"), kLatencyBounds,
                          "Decode to in-order delivery dwell in the reorder stage");
  probe.pending_gauge = &registry.gauge(name("npat_introspect_reorder_depth"),
                                        "Sequenced frames waiting in the reorder stage");
  probe.orphan_gauge = &registry.gauge(name("npat_introspect_orphan_depth"),
                                       "Task rows held awaiting late registration");
  probe.rate_gauge = &registry.gauge(name("npat_introspect_frames_per_mcycle"),
                                     "Decoded frames per million collector cycles");
  if (!old_host.empty() && old_host != probe.metric_host) retire_metrics(old_host);
}

void FleetCollector::retire_metrics(const std::string& host) {
  // A probe re-handshaked under a new host id: drop the old id's labeled
  // series so the export stops reporting a host that no longer exists —
  // unless a sibling probe still publishes under that label (two probes
  // may legitimately share a host id; their series are shared too).
  for (const auto& other : probes_) {
    if (other->ingest_hist != nullptr && other->metric_host == host) return;
  }
  obs::Registry& registry = obs::metrics();
  for (const char* base : kPerProbeMetricBases) {
    registry.remove(obs::labeled_name(base, {{"host", host}}));
  }
}

void FleetCollector::observe_ingest(PerProbe& probe, Cycles latency) {
  introspect::PipelineStats& pipeline = probe.state.pipeline;
  ++pipeline.stamped_frames;
  ++pipeline.ingest_observations;
  pipeline.ingest_sum += static_cast<double>(latency);
  pipeline.ingest_max = std::max(pipeline.ingest_max, latency);
  if (obs::enabled()) {
    ensure_metrics(probe);
    probe.ingest_hist->observe(static_cast<double>(latency));
  }
}

void FleetCollector::observe_dwell(PerProbe& probe, Cycles dwell) {
  introspect::PipelineStats& pipeline = probe.state.pipeline;
  ++pipeline.reorder_observations;
  pipeline.reorder_sum += static_cast<double>(dwell);
  pipeline.reorder_max = std::max(pipeline.reorder_max, dwell);
  if (obs::enabled()) {
    ensure_metrics(probe);
    probe.reorder_hist->observe(static_cast<double>(dwell));
  }
}

void FleetCollector::narrate_flight(PerProbe& probe) {
  // One flight event per poll per kind, carrying the occurrence delta, so
  // the ring totals reconcile exactly with the damage ledger without a
  // damage storm flooding the ring.
  ProbeState& state = probe.state;
  introspect::FlightRecorder& recorder = introspect::flight();
  const auto narrate = [&](usize current, usize& reported, introspect::FlightKind kind,
                           const char* detail) {
    if (current > reported) {
      recorder.record(kind, clock_, state.host_id, detail, current - reported);
      reported = current;
    }
  };
  ProbeDamage& reported = probe.flight_reported;
  narrate(state.damage.resyncs, reported.resyncs, introspect::FlightKind::kResync,
          "decoder resynchronized on frame magic");
  narrate(state.damage.dropped_frames, reported.dropped_frames,
          introspect::FlightKind::kFrameDrop, "frames dropped by the decoder");
  narrate(state.damage.truncated_flushes, reported.truncated_flushes,
          introspect::FlightKind::kTruncation, "incomplete frame flushed at end of stream");
  narrate(state.damage.unexpected_frames, reported.unexpected_frames,
          introspect::FlightKind::kUnexpectedFrame, "valid frames the collector could not merge");
  narrate(state.damage.orphaned_task_rows, reported.orphaned_task_rows,
          introspect::FlightKind::kOrphanHeld, "task rows held awaiting registration");
  narrate(state.damage.orphans_attributed, reported.orphans_attributed,
          introspect::FlightKind::kOrphanAttributed, "held rows attributed after late TaskTable");
  if (state.epoch_resets > probe.flight_epoch_resets) {
    recorder.record(introspect::FlightKind::kEpochReset, clock_, state.host_id,
                    util::format("ledger adopted epoch %u", state.epoch),
                    state.epoch_resets - probe.flight_epoch_resets);
    probe.flight_epoch_resets = state.epoch_resets;
  }
}

std::vector<introspect::HealthRow> FleetCollector::health_rows() const {
  std::vector<introspect::HealthRow> rows;
  rows.reserve(probes_.size());
  for (const auto& probe : probes_) {
    const ProbeState& state = probe->state;
    introspect::HealthRow row;
    row.host = state.host_id;
    row.supervised = state.supervised;
    row.liveness = resilience::liveness_name(state.liveness);
    row.ended = state.ended;
    row.pipeline = state.pipeline;
    row.delivered = state.delivered_frames;
    row.duplicates = state.duplicate_frames;
    row.gap_backlog = state.gap_backlog;
    row.dropped = state.damage.dropped_frames;
    row.resyncs = state.damage.resyncs;
    row.truncated = state.damage.truncated_flushes;
    row.unexpected = state.damage.unexpected_frames;
    row.orphaned = state.damage.orphaned_task_rows;
    rows.push_back(std::move(row));
  }
  return rows;
}

FleetView FleetCollector::view(usize window_samples) const {
  NPAT_OBS_SPAN("fleet.view");
  FleetView out;
  out.hosts.reserve(probes_.size());
  for (const auto& probe : probes_) {
    const ProbeState& state = probe->state;
    const usize take =
        window_samples == 0 ? state.samples.size() : std::min(state.samples.size(), window_samples);
    const std::span<const monitor::Sample> tail(state.samples.data() + state.samples.size() - take,
                                                take);
    HostRow row;
    row.host_id = state.host_id;
    row.hello_received = state.hello_received;
    row.ended = state.ended;
    row.samples_total = state.samples.size();
    row.window = monitor::aggregate(tail);
    const usize task_take = window_samples == 0
                                ? state.task_samples.size()
                                : std::min(state.task_samples.size(), window_samples);
    row.tasks = monitor::aggregate_tasks(std::span<const monitor::TaskSample>(
        state.task_samples.data() + state.task_samples.size() - task_take, task_take));
    row.damage = state.damage;
    row.supervised = state.supervised;
    row.liveness = state.liveness;
    row.duplicates = state.duplicate_frames;

    out.span = std::max(out.span, row.window.span());
    out.samples += row.window.samples;
    const monitor::NodeStats host_total = row.window.total();
    out.total.samples += host_total.samples;
    out.total.instructions += host_total.instructions;
    out.total.cycles += host_total.cycles;
    out.total.local_dram += host_total.local_dram;
    out.total.remote_dram += host_total.remote_dram;
    out.total.remote_hitm += host_total.remote_hitm;
    out.total.imc_reads += host_total.imc_reads;
    out.total.imc_writes += host_total.imc_writes;
    out.total.qpi_flits += host_total.qpi_flits;
    out.total.resident_bytes += host_total.resident_bytes;
    out.hosts.push_back(std::move(row));
  }
  return out;
}

}  // namespace npat::fleet
