// Sharded ingest for the fleet collector: the per-probe pipeline is split
// into a *front* (channel drain → wire decode → (epoch, seq) dedup →
// sequence reorder) that is safe to run on a decode-worker thread, and a
// merge stage (fold into ProbeState, metrics, flight narration, acks)
// that stays on the caller's thread. A front never touches the obs
// registry, the flight recorder or ProbeState — everything it decides is
// written down as an ordered ShardBatch of BatchItems, so the merge stage
// replays the exact effect sequence the single-threaded collector would
// have produced. With shards=1 the collector runs front + merge inline
// (the bit-for-bit oracle); with N shards a ShardPool runs N workers,
// each owning the probes whose index ≡ worker (mod N), handing batches
// back over one bounded SPSC ring per worker.
//
// Ordering invariants the split preserves:
//  - per-probe: items are emitted in the order the sequential collector
//    would have acted (epoch-reset flush, ingest observation, in-order
//    drain — all relative to the decoded frame stream);
//  - cross-probe: the merge stage consumes batches in probe-index order,
//    so flight-ring events and registry traffic interleave exactly as the
//    sequential per-probe loop would interleave them;
//  - memory: a worker pushes a probe's batch only after it is completely
//    done with that probe for the round, and the ring's release/acquire
//    pair lets the merge stage then read that probe's front (ledger,
//    damage tallies, reorder depth) and send acks on its channel without
//    locks.
//
// Backpressure: rings are bounded; a worker that outruns the merge stage
// blocks in push() (spin + yield) instead of queueing unboundedly.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "memhist/wire.hpp"
#include "resilience/ledger.hpp"
#include "util/channel.hpp"
#include "util/spsc_ring.hpp"
#include "util/types.hpp"

namespace npat::fleet {

/// Transport damage attributed to one probe's stream. The first three
/// counters mirror that probe's wire::Decoder tallies exactly;
/// `unexpected_frames` counts frames that decoded fine but carry a type
/// the fleet layer has no use for (e.g. memhist ThresholdReadings in a
/// telemetry stream) or a node count that contradicts the stream so far.
struct ProbeDamage {
  usize dropped_frames = 0;
  usize resyncs = 0;
  usize truncated_flushes = 0;
  usize unexpected_frames = 0;
  /// Per-task sample rows (v5) whose task id had no TaskTable registration
  /// when they arrived. Held — not dropped — and attributed retroactively
  /// if the registration shows up late; `orphans_attributed` counts the
  /// rescues. Neither joins total(): orphaning is an ordering hazard of a
  /// healthy transport, and keeping it out preserves the reconciliation
  /// identity total() == dropped + unexpected that v1-v4 tests pin.
  usize orphaned_task_rows = 0;
  usize orphans_attributed = 0;

  usize total() const noexcept {
    return dropped_frames + unexpected_frames;  // resyncs/truncations are subsets of drops
  }
  friend bool operator==(const ProbeDamage&, const ProbeDamage&) = default;
};

/// One deferred collector action, in the order the sequential collector
/// would have performed it.
struct BatchItem {
  enum class Kind : u8 {
    kFold,        ///< deliver `message` to fold(); dwell observed first when set
    kIngest,      ///< a stamped frame's emit→decode latency observation
    kHeartbeat,   ///< idle heartbeat: supervised + heartbeat count
    kResume,      ///< probe-role Resume: ack due for `resume_epoch`
    kUnexpected,  ///< CRC-valid frame the collector cannot use
  };

  Kind kind = Kind::kFold;
  memhist::wire::Message message;  // kFold only
  bool has_dwell = false;          // kFold delivered through the reorder stage
  Cycles dwell = 0;                // decode → in-order delivery dwell
  Cycles ingest_latency = 0;       // kIngest only, aligned-clock cycles
  u16 resume_epoch = 0;            // kResume only
};

/// Everything one front produced for one probe in one round.
struct ShardBatch {
  u64 frames_decoded = 0;  ///< CRC-valid frames (duplicates included)
  /// A sequence envelope, heartbeat or probe-role Resume was seen — the
  /// stream speaks the v4 supervision protocol (set even when every such
  /// frame deduplicated away, matching the sequential collector).
  bool saw_supervised = false;
  std::vector<BatchItem> items;
};

/// The worker-side half of one probe's pipeline: owns the channel, the
/// decoder, the delivery ledger and the reorder stage. Produces
/// ShardBatches; holds no reference to collector state, the obs registry
/// or the flight recorder, so collect() is safe off-thread as long as
/// nothing else touches this front (or its channel) concurrently.
class ProbeFront {
 public:
  explicit ProbeFront(std::shared_ptr<util::ByteChannel> channel)
      : channel_(std::move(channel)) {}

  /// One round: drain the channel, decode, dedup, reorder. `clock` is the
  /// collector's round clock (fixed for the whole poll), used for ingest
  /// latency and reorder-dwell arithmetic.
  ShardBatch collect(Cycles clock);

  /// Retires the current decoder's stream: flushes a frame truncated
  /// mid-disconnect (finish()) and processes whatever completes. Used by
  /// reattach before adopt_channel().
  ShardBatch finish_collect(Cycles clock);

  /// Swaps in a fresh channel + decoder; the retiring decoder's damage
  /// tallies are carried forward so accounting stays cumulative.
  void adopt_channel(std::shared_ptr<util::ByteChannel> channel);

  util::ByteChannel* channel() noexcept { return channel_.get(); }
  const resilience::DeliveryLedger& ledger() const noexcept { return ledger_; }
  usize pending_depth() const noexcept { return pending_.size(); }

  /// Decoder framing damage, carried tallies included (dropped/resync/
  /// truncated only — unexpected/orphan counts live merge-side).
  ProbeDamage damage() const noexcept;

 private:
  struct Pending {
    memhist::wire::Message message;
    Cycles decoded_at = 0;
  };

  ShardBatch process(Cycles clock);
  void push_ingest(ShardBatch& batch, Cycles emit_timestamp, Cycles clock);
  void drain_in_order(ShardBatch& batch, Cycles clock);
  void flush_pending(ShardBatch& batch, Cycles clock);

  std::shared_ptr<util::ByteChannel> channel_;
  memhist::wire::Decoder decoder_;
  ProbeDamage carried_;  // tallies of decoders retired by adopt_channel()
  resilience::DeliveryLedger ledger_;
  /// Reorder stage: sequenced frames admitted ahead of a gap wait here
  /// and fold only once every lower sequence has arrived, so the merged
  /// stream is the *sent* stream even when retransmissions fill gaps
  /// late. Drained in lockstep with the ledger floor; bounded by the
  /// probe's replay capacity (the gap can never be wider). `decoded_at`
  /// is the collector clock at decode, so delivery observes the frame's
  /// reorder-stage dwell.
  std::map<u32, Pending> pending_;
  u32 folded_floor_ = 0;  // highest sequence already folded (in order)
  /// introspect: emit-clock alignment — the first stamped frame defines
  /// the offset, so the first observation is latency 0 by construction.
  std::optional<i64> stamp_offset_;
};

/// N persistent decode workers. Worker w owns probes with index ≡ w
/// (mod N) and, each round, collect()s them in ascending index order into
/// its SPSC ring; the merge thread pops rings in probe-index order, which
/// matches each ring's FIFO order by construction. Workers idle between
/// rounds (condvar), so probes may freely use their channels while no
/// poll is running.
class ShardPool {
 public:
  ShardPool(usize shards, usize ring_capacity);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Publishes the round (clock + current front table) and wakes every
  /// worker. `fronts` must stay valid and untouched by the caller until
  /// every probe's batch has been popped.
  void begin_round(Cycles clock, std::span<ProbeFront* const> fronts);

  /// Pops the next batch from the ring of the worker owning `probe_index`.
  /// Must be called for indices 0..count-1 in ascending order.
  ShardBatch pop(usize probe_index);

  usize shards() const noexcept { return rings_.size(); }

  /// High-water ring occupancy a worker saw this round — how far decode
  /// ran ahead of merge. Read after every batch of the round was popped.
  usize ring_high_water(usize shard) const noexcept {
    return high_water_[shard]->load(std::memory_order_relaxed);
  }

 private:
  void worker_main(usize shard);

  std::vector<std::unique_ptr<util::SpscRing<ShardBatch>>> rings_;
  std::vector<std::unique_ptr<std::atomic<usize>>> high_water_;

  std::mutex mutex_;
  std::condition_variable round_start_;
  u64 round_seq_ = 0;
  Cycles round_clock_ = 0;
  ProbeFront* const* round_fronts_ = nullptr;
  usize round_count_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace npat::fleet
