#include "fleet/view.hpp"

#include <algorithm>

#include "util/ansi.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::fleet {

namespace {

util::Style severity_style(obs::Severity severity) {
  switch (severity) {
    case obs::Severity::kBad:
      return util::Style::kRed;
    case obs::Severity::kWarn:
      return util::Style::kYellow;
    case obs::Severity::kOk:
      break;
  }
  return util::Style::kGreen;
}

obs::Severity host_severity(usize host, double remote_ratio, const FleetViewOptions& options) {
  if (!options.host_alerts.empty()) {
    // Alert mode: every host answers with an engine verdict. A host that
    // joined after the severities were evaluated has no committed state
    // yet — a fresh AlertEngine subject is Ok until its dwell commits, so
    // report Ok rather than falling back to the raw thresholds, which
    // would flash a one-poll Bad the engine would never have committed.
    return host < options.host_alerts.size() ? options.host_alerts[host] : obs::Severity::kOk;
  }
  // Threshold mode (no engine supplied): raw remote-ratio cut-offs.
  if (remote_ratio >= options.bad_remote_ratio) return obs::Severity::kBad;
  if (remote_ratio >= options.warn_remote_ratio) return obs::Severity::kWarn;
  return obs::Severity::kOk;
}

std::string percent(double ratio) { return util::format("%5.1f%%", ratio * 100.0); }

util::Cell damage_cell(usize count) {
  return {util::format("%zu", count), count > 0 ? util::Style::kYellow : util::Style::kDim};
}

// For plain probes the state is ended/live/mute as before; a supervised
// probe's "live" is the collector's committed liveness verdict instead,
// so an npat_top --fleet operator sees a dead probe go stale -> dead and
// snap back to live when it resumes.
util::Cell state_cell(const HostRow& row) {
  if (row.ended) return {"ended", util::Style::kDim};
  if (row.supervised) {
    switch (row.liveness) {
      case resilience::Liveness::kDead:
        return {"dead", util::Style::kRed};
      case resilience::Liveness::kStale:
        return {"stale", util::Style::kYellow};
      case resilience::Liveness::kLive:
        break;
    }
    return {"live", util::Style::kGreen};
  }
  return row.hello_received ? util::Cell{"live", util::Style::kGreen}
                            : util::Cell{"mute", util::Style::kYellow};
}

void push_rate_cells(std::vector<util::Cell>& cells, const monitor::NodeStats& stats,
                     Cycles span, const FleetViewOptions& options, util::Style style) {
  const double hitm_ratio =
      stats.numa_loads() == 0
          ? 0.0
          : static_cast<double>(stats.remote_hitm) / static_cast<double>(stats.numa_loads());
  cells.push_back({percent(stats.local_ratio()), style});
  cells.push_back({percent(stats.remote_ratio()), style});
  cells.push_back({percent(hitm_ratio), style});
  cells.push_back({util::format("%4.2f", stats.ipc()), style});
  cells.push_back({util::format("%6.2f", stats.dram_gbps(span, options.frequency_ghz)), style});
  cells.push_back({util::human_bytes(stats.resident_bytes), style});
}

}  // namespace

std::string render_fleet_view(const FleetView& view, const FleetViewOptions& options) {
  std::string out;
  if (options.clear_screen && util::ansi_enabled()) out += "\x1b[H\x1b[2J";

  const ProbeDamage damage = view.damage_total();
  const u64 duplicates = view.duplicates_total();
  out += util::format(
      "%s — hosts=%zu (%zu ended)  window=%s cycles  samples=%llu  "
      "damage: drop=%zu resync=%zu trunc=%zu unexpected=%zu dup=%llu\n",
      options.title.c_str(), view.hosts.size(), view.hosts_ended(),
      util::si_scaled(static_cast<double>(view.span)).c_str(),
      static_cast<unsigned long long>(view.samples), damage.dropped_frames, damage.resyncs,
      damage.truncated_flushes, damage.unexpected_frames,
      static_cast<unsigned long long>(duplicates));

  const bool alerts = !options.host_alerts.empty();
  const bool phases = !options.host_phases.empty();
  std::vector<std::string> headers = {"Host",  "Local%",  "Remote%", "HITM%", "IPC",
                                      "DRAM GB/s", "RSS", "Samples", "Drop",  "Rsyn",
                                      "Trunc", "Unexp",   "Dup",     "State"};
  if (phases) headers.push_back("Phase");
  if (alerts) headers.push_back("Alert");
  util::Table table(std::move(headers));
  for (usize c = 1; c <= 12; ++c) table.set_align(c, util::Align::kRight);

  const Cycles span = view.span > 0 ? view.span : 1;
  for (usize host = 0; host < view.hosts.size(); ++host) {
    const HostRow& row = view.hosts[host];
    const monitor::NodeStats stats = row.window.total();
    const bool idle = stats.instructions == 0;
    const util::Style row_style = idle ? util::Style::kDim : util::Style::kNone;
    const obs::Severity severity = host_severity(host, stats.remote_ratio(), options);

    std::vector<util::Cell> cells;
    cells.push_back({row.host_id, row_style});
    push_rate_cells(cells, stats, row.window.span(span), options, row_style);
    // Remote% carries the severity colour cue like the single-host view.
    cells[2].style = idle ? row_style : severity_style(severity);
    cells.push_back({util::format("%zu", row.samples_total), row_style});
    cells.push_back(damage_cell(row.damage.dropped_frames));
    cells.push_back(damage_cell(row.damage.resyncs));
    cells.push_back(damage_cell(row.damage.truncated_flushes));
    cells.push_back(damage_cell(row.damage.unexpected_frames));
    cells.push_back(damage_cell(static_cast<usize>(row.duplicates)));
    cells.push_back(state_cell(row));
    if (phases) {
      cells.push_back({host < options.host_phases.size() ? options.host_phases[host] : "-",
                       util::Style::kCyan});
    }
    if (alerts) cells.push_back({obs::severity_name(severity), severity_style(severity)});
    table.add_styled_row(std::move(cells));
  }

  // Cross-host aggregate row.
  {
    std::vector<util::Cell> cells;
    cells.push_back({"fleet", util::Style::kBold});
    push_rate_cells(cells, view.total, span, options, util::Style::kBold);
    usize samples_total = 0;
    for (const HostRow& row : view.hosts) samples_total += row.samples_total;
    cells.push_back({util::format("%zu", samples_total), util::Style::kBold});
    cells.push_back(damage_cell(damage.dropped_frames));
    cells.push_back(damage_cell(damage.resyncs));
    cells.push_back(damage_cell(damage.truncated_flushes));
    cells.push_back(damage_cell(damage.unexpected_frames));
    cells.push_back(damage_cell(static_cast<usize>(duplicates)));
    cells.push_back({util::format("%zu/%zu", view.hosts_ended(), view.hosts.size()),
                     util::Style::kBold});
    if (phases) cells.push_back({"-", util::Style::kDim});
    if (alerts) {
      obs::Severity worst = obs::Severity::kOk;
      for (obs::Severity s : options.host_alerts) worst = std::max(worst, s);
      cells.push_back({obs::severity_name(worst), severity_style(worst)});
    }
    table.add_rule();
    table.add_styled_row(std::move(cells));
  }

  out += table.render();
  return out;
}

std::vector<obs::Severity> evaluate_host_alerts(obs::AlertEngine& engine, const FleetView& view) {
  std::vector<obs::Severity> severities;
  severities.reserve(view.hosts.size());
  for (const HostRow& row : view.hosts) {
    severities.push_back(
        engine.evaluate("remote_ratio", row.host_id, row.window.total().remote_ratio()));
  }
  return severities;
}

}  // namespace npat::fleet
