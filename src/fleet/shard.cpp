#include "fleet/shard.hpp"

#include <utility>

#include "util/check.hpp"

namespace npat::fleet {

namespace wire = memhist::wire;

ShardBatch ProbeFront::collect(Cycles clock) {
  for (;;) {
    const auto bytes = channel_->recv(4096);
    if (bytes.empty()) break;
    decoder_.feed(bytes);
  }
  // Drained and closed: a partial frame can never complete. Let the
  // decoder flush and count the truncation (same EOF handling as the
  // single-probe GuiCollector and monitor::decode_stream).
  if (channel_->closed()) decoder_.finish();
  return process(clock);
}

ShardBatch ProbeFront::finish_collect(Cycles clock) {
  decoder_.finish();
  return process(clock);
}

void ProbeFront::adopt_channel(std::shared_ptr<util::ByteChannel> channel) {
  NPAT_CHECK_MSG(channel != nullptr, "fleet reattach needs a channel");
  carried_.dropped_frames += decoder_.dropped_frames();
  carried_.resyncs += decoder_.resyncs();
  carried_.truncated_flushes += decoder_.truncated_flushes();
  channel_ = std::move(channel);
  decoder_ = wire::Decoder{};
}

ProbeDamage ProbeFront::damage() const noexcept {
  ProbeDamage damage;
  damage.dropped_frames = carried_.dropped_frames + decoder_.dropped_frames();
  damage.resyncs = carried_.resyncs + decoder_.resyncs();
  damage.truncated_flushes = carried_.truncated_flushes + decoder_.truncated_flushes();
  return damage;
}

ShardBatch ProbeFront::process(Cycles clock) {
  ShardBatch batch;
  while (auto message = decoder_.poll()) {
    ++batch.frames_decoded;
    if (const auto* envelope = std::get_if<wire::SequencedMsg>(&*message)) {
      batch.saw_supervised = true;
      const resilience::Admit admit = ledger_.admit(envelope->epoch, envelope->seq);
      if (admit == resilience::Admit::kDuplicate) {
        continue;  // ledger counted it; exactly-once means fold at most once
      }
      if (admit == resilience::Admit::kEpochReset) {
        // A new incarnation took over. Frames of the dead epoch stuck
        // behind a gap will never become contiguous; fold what we hold in
        // sequence order (best effort) before adopting the new numbering.
        flush_pending(batch, clock);
      }
      std::optional<wire::Message> inner = wire::unwrap_sequenced(*envelope);
      if (inner) {
        // An emit-stamped payload observes ingest latency here — decode
        // time — then sheds the annotation so the reorder stage and
        // fold() see the bare data frame.
        if (const auto* stamped = std::get_if<wire::StampedMsg>(&*inner)) {
          push_ingest(batch, stamped->emit_timestamp, clock);
          std::optional<wire::Message> data = wire::unwrap_stamped(*stamped);
          if (data) {
            inner = std::move(data);
          } else {
            inner.reset();
          }
        }
      }
      if (!inner) {
        // The outer CRC already vouched for these bytes, so a bad inner
        // payload is a malformed sender, not transport damage — but it is
        // still a frame this collector could not use.
        BatchItem item;
        item.kind = BatchItem::Kind::kUnexpected;
        batch.items.push_back(std::move(item));
      } else {
        // Reorder stage: even a frame that is contiguous right now goes
        // through `pending_` so delivery order to fold() is always
        // sequence order, not arrival order.
        pending_.emplace(envelope->seq, Pending{std::move(*inner), clock});
      }
      drain_in_order(batch, clock);
    } else if (const auto* stamped = std::get_if<wire::StampedMsg>(&*message)) {
      // A bare stamped frame: an unsupervised (plain memhist::Probe)
      // stream opted into emit stamping without sequence envelopes.
      push_ingest(batch, stamped->emit_timestamp, clock);
      std::optional<wire::Message> data = wire::unwrap_stamped(*stamped);
      BatchItem item;
      if (data) {
        item.kind = BatchItem::Kind::kFold;
        item.message = std::move(*data);
      } else {
        item.kind = BatchItem::Kind::kUnexpected;
      }
      batch.items.push_back(std::move(item));
    } else if (std::get_if<wire::Heartbeat>(&*message) != nullptr) {
      batch.saw_supervised = true;
      BatchItem item;
      item.kind = BatchItem::Kind::kHeartbeat;
      batch.items.push_back(std::move(item));
    } else if (const auto* resume = std::get_if<wire::Resume>(&*message)) {
      BatchItem item;
      if (resume->role == wire::kResumeProbe) {
        batch.saw_supervised = true;
        item.kind = BatchItem::Kind::kResume;
        item.resume_epoch = resume->epoch;
      } else {
        // A collector-role ack echoed back at a collector is nonsense.
        item.kind = BatchItem::Kind::kUnexpected;
      }
      batch.items.push_back(std::move(item));
    } else {
      BatchItem item;
      item.kind = BatchItem::Kind::kFold;
      item.message = std::move(*message);
      batch.items.push_back(std::move(item));
    }
  }
  return batch;
}

void ProbeFront::push_ingest(ShardBatch& batch, Cycles emit_timestamp, Cycles clock) {
  // First stamp aligns the probe's emit clock to the collector clock (the
  // same origin-alignment trick sample timestamps use), so latencies are
  // relative to the fastest hop ever seen, immune to clock skew.
  if (!stamp_offset_) {
    stamp_offset_ = static_cast<i64>(emit_timestamp) - static_cast<i64>(clock);
  }
  const i64 lag =
      static_cast<i64>(clock) - (static_cast<i64>(emit_timestamp) - *stamp_offset_);
  BatchItem item;
  item.kind = BatchItem::Kind::kIngest;
  item.ingest_latency = lag > 0 ? static_cast<Cycles>(lag) : 0;
  batch.items.push_back(std::move(item));
}

void ProbeFront::drain_in_order(ShardBatch& batch, Cycles clock) {
  // Emits the contiguous run the ledger floor just certified, in sequence
  // order. A sequence missing from `pending_` inside that run was admitted
  // but unusable (unwrap failure, already counted as unexpected) — skip it.
  while (folded_floor_ < ledger_.floor()) {
    const u32 next = folded_floor_ + 1;
    auto it = pending_.find(next);
    if (it != pending_.end()) {
      BatchItem item;
      item.kind = BatchItem::Kind::kFold;
      item.message = std::move(it->second.message);
      item.has_dwell = true;
      item.dwell = clock > it->second.decoded_at ? clock - it->second.decoded_at : 0;
      batch.items.push_back(std::move(item));
      pending_.erase(it);
    }
    folded_floor_ = next;
  }
}

void ProbeFront::flush_pending(ShardBatch& batch, Cycles clock) {
  for (auto& [seq, pending] : pending_) {
    BatchItem item;
    item.kind = BatchItem::Kind::kFold;
    item.message = std::move(pending.message);
    item.has_dwell = true;
    item.dwell = clock > pending.decoded_at ? clock - pending.decoded_at : 0;
    batch.items.push_back(std::move(item));
  }
  pending_.clear();
  folded_floor_ = 0;
}

ShardPool::ShardPool(usize shards, usize ring_capacity) {
  NPAT_CHECK_MSG(shards > 0, "shard pool needs at least one worker");
  rings_.reserve(shards);
  high_water_.reserve(shards);
  for (usize shard = 0; shard < shards; ++shard) {
    rings_.push_back(std::make_unique<util::SpscRing<ShardBatch>>(
        ring_capacity > 0 ? ring_capacity : 1));
    high_water_.push_back(std::make_unique<std::atomic<usize>>(0));
  }
  workers_.reserve(shards);
  for (usize shard = 0; shard < shards; ++shard) {
    workers_.emplace_back([this, shard] { worker_main(shard); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  round_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardPool::begin_round(Cycles clock, std::span<ProbeFront* const> fronts) {
  {
    std::lock_guard lock(mutex_);
    ++round_seq_;
    round_clock_ = clock;
    round_fronts_ = fronts.data();
    round_count_ = fronts.size();
    for (auto& hw : high_water_) hw->store(0, std::memory_order_relaxed);
  }
  round_start_.notify_all();
}

ShardBatch ShardPool::pop(usize probe_index) {
  return rings_[probe_index % rings_.size()]->pop();
}

void ShardPool::worker_main(usize shard) {
  u64 seen = 0;
  for (;;) {
    Cycles clock;
    ProbeFront* const* fronts;
    usize count;
    {
      std::unique_lock lock(mutex_);
      round_start_.wait(lock, [&] { return shutdown_ || round_seq_ > seen; });
      if (shutdown_) return;
      seen = round_seq_;
      clock = round_clock_;
      fronts = round_fronts_;
      count = round_count_;
    }
    util::SpscRing<ShardBatch>& ring = *rings_[shard];
    std::atomic<usize>& high_water = *high_water_[shard];
    for (usize index = shard; index < count; index += rings_.size()) {
      ring.push(fronts[index]->collect(clock));
      const usize depth = ring.size();
      if (depth > high_water.load(std::memory_order_relaxed)) {
        high_water.store(depth, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace npat::fleet
