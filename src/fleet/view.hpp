// Fleet-wide npat-top: one row per host (NUMA rates over the current
// window plus that probe's transport damage) and a cross-host totals row.
// Like monitor::render_view, rendering is byte-stable with ANSI styling
// off so tests can assert on output, while a terminal gets colour cues:
// remote-heavy hosts red/yellow, damaged transports yellow.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fleet/collector.hpp"
#include "obs/alert.hpp"
#include "util/types.hpp"

namespace npat::fleet {

struct FleetViewOptions {
  /// Core frequency used to scale bytes/cycle into GB/s.
  double frequency_ghz = 2.4;
  /// Remote-ratio thresholds; used directly (no hysteresis) when
  /// `host_alerts` is not supplied.
  double warn_remote_ratio = 0.2;
  double bad_remote_ratio = 0.5;
  /// Committed per-host severities from an obs::AlertEngine (see
  /// evaluate_host_alerts). When non-empty, the view renders an Alert
  /// column and *every* host reports an engine verdict: a host beyond the
  /// vector (joined after the evaluation) renders Ok — the committed
  /// state a fresh engine subject would hold — never the raw-threshold
  /// fallback, which applies only when no engine severities are supplied.
  std::vector<obs::Severity> host_alerts;
  /// Per-host live phase labels (phasen::OnlineDetector::phase_label(),
  /// indexed like FleetView::hosts). When non-empty, the view renders a
  /// Phase column; hosts beyond the vector render "-".
  std::vector<std::string> host_phases;
  /// Emit an ANSI home+clear prefix before the frame (live top-style
  /// refresh); only honoured while ANSI styling is globally enabled.
  bool clear_screen = false;
  std::string title = "npat-fleet";
};

/// Renders one frame: a summary line (hosts, window span, samples, total
/// transport damage) and the per-host table with a fleet totals row.
std::string render_fleet_view(const FleetView& view, const FleetViewOptions& options = {});

/// Feeds every host's window remote ratio through the engine's
/// "remote_ratio" rule (subjects = host ids) and returns the committed
/// severities, ready to assign to FleetViewOptions::host_alerts.
std::vector<obs::Severity> evaluate_host_alerts(obs::AlertEngine& engine, const FleetView& view);

}  // namespace npat::fleet
