// npat::fleet — multi-probe aggregation: one collector merges
// MonitorSampleMsg streams from several headless probes (one per host)
// into a fleet-wide per-node view, the way NUMAscope aggregates hardware
// metrics across a large ccNUMA system. Each connected probe channel gets
// its own wire::Decoder, so transport damage (dropped frames, resyncs,
// EOF truncations) is attributed per probe; probes identify themselves
// via the host id on the protocol-v3 Hello, and per-probe timestamps are
// aligned to a common origin so hosts with skewed clocks merge cleanly.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/shard.hpp"
#include "introspect/health.hpp"
#include "memhist/wire.hpp"
#include "monitor/aggregate.hpp"
#include "monitor/sampler.hpp"
#include "monitor/task_sampler.hpp"
#include "proc/task.hpp"
#include "resilience/ledger.hpp"
#include "resilience/liveness.hpp"
#include "util/channel.hpp"
#include "util/types.hpp"

namespace npat::fleet {

/// Everything the collector knows about one probe stream.
struct ProbeState {
  std::string host_id;  // v3 Hello, else the add_probe fallback
  u8 version = 0;       // from Hello, 0 until one arrives
  u32 node_count = 0;   // ditto
  bool hello_received = false;
  bool ended = false;          // End frame seen
  Cycles total_cycles = 0;     // from End
  /// Raw timestamp of the probe's first sample. Subtracted from every
  /// sample so unsynchronized probe clocks share origin 0.
  std::optional<Cycles> origin;
  std::vector<monitor::Sample> samples;  // aligned timestamps, stream order
  /// Per-task telemetry (protocol v5): merged TaskSample records with the
  /// same aligned timestamps, and the id -> identity registry accumulated
  /// from this probe's TaskTable frames.
  std::vector<monitor::TaskSample> task_samples;
  proc::TaskRegistry registry;
  ProbeDamage damage;

  /// Resilience accounting, re-published from this probe's DeliveryLedger
  /// and LivenessTracker each poll. All zero (and `supervised` false) for
  /// plain v1-v3 streams that never send sequence envelopes.
  bool supervised = false;
  u16 epoch = 0;            ///< probe incarnation the ledger is tracking
  u32 seq_floor = 0;        ///< highest contiguously delivered sequence
  u32 highest_seq = 0;      ///< highest sequence seen at all
  usize gap_backlog = 0;    ///< sequences delivered ahead of a gap
  u64 delivered_frames = 0; ///< sequenced frames delivered exactly once
  u64 duplicate_frames = 0; ///< retransmissions suppressed by the ledger
  u64 epoch_resets = 0;     ///< ledger resets by a newer epoch
  u64 heartbeats = 0;       ///< idle heartbeats received
  u64 hellos = 0;           ///< Hello frames received (re-handshakes included)
  u64 resumes = 0;          ///< probe-role Resume requests received
  u64 acks_sent = 0;        ///< Resume acks sent back to the probe
  usize reattaches = 0;     ///< channels swapped in by reattach_probe()
  resilience::Liveness liveness = resilience::Liveness::kLive;

  /// Pipeline self-observability (npat::introspect), republished each
  /// poll: hop latency from emit stamps, reorder dwell, stage depths,
  /// decode rate. Plain values so views never touch the obs registry.
  introspect::PipelineStats pipeline;
};

/// One host's row in the merged fleet view.
struct HostRow {
  std::string host_id;
  bool hello_received = false;
  bool ended = false;
  usize samples_total = 0;        // samples merged over the whole session
  monitor::WindowStats window;    // aggregation over the requested window
  monitor::TaskWindowStats tasks; // per-task aggregation over the same window
  ProbeDamage damage;
  bool supervised = false;        // probe speaks the v4 resilience protocol
  resilience::Liveness liveness = resilience::Liveness::kLive;
  u64 duplicates = 0;             // frames suppressed by (epoch, seq) dedup
};

/// Snapshot of the merged fleet: per-host rows plus the cross-host
/// aggregate. Rates for the aggregate divide by `span` (the longest host
/// window), which is the fleet's wall clock once origins are aligned.
struct FleetView {
  std::vector<HostRow> hosts;
  monitor::NodeStats total;  // summed over every host's window total
  Cycles span = 0;
  u64 samples = 0;  // sample records inside the window, all hosts

  usize hosts_ended() const noexcept;
  ProbeDamage damage_total() const noexcept;
  u64 duplicates_total() const noexcept;
};

/// Collector tuning. `shards == 1` (the default) keeps every poll on the
/// caller's thread — the sequential oracle; `shards >= 2` spins that many
/// persistent decode workers on first poll and fans the probe channels
/// out across them (probe index mod shards), with results merged back on
/// the caller's thread in probe-index order so all observable state is
/// bit-for-bit identical to the oracle.
struct FleetCollectorConfig {
  usize shards = 1;
  /// Bounded SPSC handoff depth per worker; a full ring blocks the worker
  /// (backpressure), it never drops or reorders batches.
  usize ring_capacity = 64;
  /// Stale/dead thresholds and dwell applied to supervised probes (the
  /// defaults suit the simulated-cycle clock of the tests).
  resilience::LivenessConfig liveness;
};

/// Merges several probe streams. The public API is cooperative like the
/// memhist GuiCollector: call poll() whenever channel data may be
/// pending. Internally the decode/dedup/reorder front half of each
/// probe's pipeline may run on a shard worker (see FleetCollectorConfig);
/// between polls the workers are parked, so probes may freely use their
/// channels. The collector itself must be polled from one thread.
class FleetCollector {
 public:
  FleetCollector() = default;
  explicit FleetCollector(const FleetCollectorConfig& config) : config_(config) {
    if (config_.shards == 0) config_.shards = 1;
  }
  /// Legacy convenience: liveness tuning only, sequential collection.
  explicit FleetCollector(const resilience::LivenessConfig& liveness_config) {
    config_.liveness = liveness_config;
  }

  /// Registers a probe channel; returns its index. `fallback_host_id`
  /// names the probe until (or unless) a v3 Hello carries its own id;
  /// empty means "probe<index>".
  usize add_probe(std::shared_ptr<util::ByteChannel> channel, std::string fallback_host_id = {});

  /// Swaps a fresh channel under an existing probe slot after the old
  /// connection died (the collector half of a supervised reconnect). The
  /// retiring decoder is drained and flushed first — a frame truncated by
  /// the disconnect is counted, not lost silently — and its damage tally
  /// is carried forward so per-probe accounting stays cumulative across
  /// any number of reconnects. Ledger, liveness and merged samples all
  /// survive: deduplication spans connections by design.
  void reattach_probe(usize index, std::shared_ptr<util::ByteChannel> channel);

  /// Drains every channel, decodes, and folds frames into the per-probe
  /// state. Returns the number of monitor samples merged by this call.
  /// `now` advances the collector clock that drives liveness (heartbeat
  /// gap) tracking for supervised probes; omitting it (legacy callers)
  /// leaves the clock parked and liveness permanently live.
  usize poll(Cycles now = 0);

  usize probe_count() const noexcept { return probes_.size(); }
  const ProbeState& probe(usize index) const;
  bool all_ended() const noexcept;
  /// Samples merged across all probes since construction.
  usize samples_merged() const noexcept { return samples_merged_; }

  /// Per-host aggregation over each host's most recent `window_samples`
  /// samples (0 = the whole session) plus the cross-host totals. Task
  /// windows take the same number of most-recent TaskSample records.
  FleetView view(usize window_samples = 0) const;

  /// Per-probe rows for the --health pane / self-metrics surface: the
  /// republished PipelineStats joined with identity and damage.
  std::vector<introspect::HealthRow> health_rows() const;

  /// Orphaned v5 rows a probe may hold awaiting late registration; beyond
  /// this, the oldest are evicted (they stay counted in the damage ledger).
  static constexpr usize kMaxOrphanRows = 4096;

  /// Monotonic collector clock (the largest `now` ever passed to poll()).
  Cycles clock() const noexcept { return clock_; }

  /// Configured shard count (1 = sequential oracle).
  usize shards() const noexcept { return config_.shards; }

 private:
  /// The merge-side half of one probe: front (worker-safe decode/dedup/
  /// reorder, see fleet/shard.hpp) plus everything that must stay on the
  /// polling thread — ProbeState, liveness, ack bookkeeping, metric
  /// handles, flight narration and the orphan-row pool.
  struct PerProbe {
    explicit PerProbe(std::shared_ptr<util::ByteChannel> channel)
        : front(std::move(channel)) {}

    ProbeFront front;
    ProbeState state;
    resilience::LivenessTracker liveness;
    bool ack_due = false;   // a Resume handshake awaits its reply
    u16 resume_epoch = 0;   // epoch the pending handshake announced
    u16 acked_epoch = 0;    // last ack actually sent
    u32 acked_floor = 0;
    /// introspect: cached per-probe labeled metric handles (re-resolved —
    /// and the old host's series retired — if a late Hello renames the
    /// host), and the damage already narrated to the flight ring so each
    /// poll records only the delta.
    std::string metric_host;
    obs::Histogram* ingest_hist = nullptr;
    obs::Histogram* reorder_hist = nullptr;
    obs::Gauge* pending_gauge = nullptr;
    obs::Gauge* orphan_gauge = nullptr;
    obs::Gauge* rate_gauge = nullptr;
    ProbeDamage flight_reported;
    u64 flight_epoch_resets = 0;
    /// v5 sample rows whose task id had no registration on arrival; held
    /// (timestamp already aligned) until a TaskTable names the id, then
    /// attributed at the sorted timestamp position. Bounded by
    /// kMaxOrphanRows, oldest first out.
    struct OrphanRow {
      Cycles timestamp = 0;
      memhist::wire::TaskSampleRow row;
    };
    std::vector<OrphanRow> orphans;
  };

  /// Replays one front batch into the probe's merge-side state, in item
  /// order — the exact effect sequence the sequential collector produces.
  usize apply_batch(PerProbe& probe, ShardBatch&& batch);
  /// Per-probe poll tail: ack, republish, liveness verdict + flight.
  void finish_poll(PerProbe& probe);
  void ensure_pool();
  void publish_shard_gauges();
  usize fold(PerProbe& probe, const memhist::wire::Message& message);
  void fold_task_sample(PerProbe& probe, const memhist::wire::TaskSampleMsg& message);
  void attribute_orphans(PerProbe& probe);
  void maybe_ack(PerProbe& probe);
  void republish(PerProbe& probe);
  void ensure_metrics(PerProbe& probe);
  void retire_metrics(const std::string& host);
  void observe_ingest(PerProbe& probe, Cycles latency);
  void observe_dwell(PerProbe& probe, Cycles dwell);
  void narrate_flight(PerProbe& probe);

  FleetCollectorConfig config_;
  Cycles clock_ = 0;
  std::vector<std::unique_ptr<PerProbe>> probes_;
  std::vector<ProbeFront*> fronts_;  // parallel to probes_, for the pool
  std::unique_ptr<ShardPool> pool_;  // lazily spun on the first sharded poll
  usize samples_merged_ = 0;
};

}  // namespace npat::fleet
