// npat::fleet — multi-probe aggregation: one collector merges
// MonitorSampleMsg streams from several headless probes (one per host)
// into a fleet-wide per-node view, the way NUMAscope aggregates hardware
// metrics across a large ccNUMA system. Each connected probe channel gets
// its own wire::Decoder, so transport damage (dropped frames, resyncs,
// EOF truncations) is attributed per probe; probes identify themselves
// via the host id on the protocol-v3 Hello, and per-probe timestamps are
// aligned to a common origin so hosts with skewed clocks merge cleanly.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "introspect/health.hpp"
#include "memhist/wire.hpp"
#include "monitor/aggregate.hpp"
#include "monitor/sampler.hpp"
#include "monitor/task_sampler.hpp"
#include "proc/task.hpp"
#include "resilience/ledger.hpp"
#include "resilience/liveness.hpp"
#include "util/channel.hpp"
#include "util/types.hpp"

namespace npat::fleet {

/// Transport damage attributed to one probe's stream. The first three
/// counters mirror that probe's wire::Decoder tallies exactly;
/// `unexpected_frames` counts frames that decoded fine but carry a type
/// the fleet layer has no use for (e.g. memhist ThresholdReadings in a
/// telemetry stream) or a node count that contradicts the stream so far.
struct ProbeDamage {
  usize dropped_frames = 0;
  usize resyncs = 0;
  usize truncated_flushes = 0;
  usize unexpected_frames = 0;
  /// Per-task sample rows (v5) whose task id had no TaskTable registration
  /// when they arrived. Held — not dropped — and attributed retroactively
  /// if the registration shows up late; `orphans_attributed` counts the
  /// rescues. Neither joins total(): orphaning is an ordering hazard of a
  /// healthy transport, and keeping it out preserves the reconciliation
  /// identity total() == dropped + unexpected that v1-v4 tests pin.
  usize orphaned_task_rows = 0;
  usize orphans_attributed = 0;

  usize total() const noexcept {
    return dropped_frames + unexpected_frames;  // resyncs/truncations are subsets of drops
  }
  friend bool operator==(const ProbeDamage&, const ProbeDamage&) = default;
};

/// Everything the collector knows about one probe stream.
struct ProbeState {
  std::string host_id;  // v3 Hello, else the add_probe fallback
  u8 version = 0;       // from Hello, 0 until one arrives
  u32 node_count = 0;   // ditto
  bool hello_received = false;
  bool ended = false;          // End frame seen
  Cycles total_cycles = 0;     // from End
  /// Raw timestamp of the probe's first sample. Subtracted from every
  /// sample so unsynchronized probe clocks share origin 0.
  std::optional<Cycles> origin;
  std::vector<monitor::Sample> samples;  // aligned timestamps, stream order
  /// Per-task telemetry (protocol v5): merged TaskSample records with the
  /// same aligned timestamps, and the id -> identity registry accumulated
  /// from this probe's TaskTable frames.
  std::vector<monitor::TaskSample> task_samples;
  proc::TaskRegistry registry;
  ProbeDamage damage;

  /// Resilience accounting, re-published from this probe's DeliveryLedger
  /// and LivenessTracker each poll. All zero (and `supervised` false) for
  /// plain v1-v3 streams that never send sequence envelopes.
  bool supervised = false;
  u16 epoch = 0;            ///< probe incarnation the ledger is tracking
  u32 seq_floor = 0;        ///< highest contiguously delivered sequence
  u32 highest_seq = 0;      ///< highest sequence seen at all
  usize gap_backlog = 0;    ///< sequences delivered ahead of a gap
  u64 delivered_frames = 0; ///< sequenced frames delivered exactly once
  u64 duplicate_frames = 0; ///< retransmissions suppressed by the ledger
  u64 epoch_resets = 0;     ///< ledger resets by a newer epoch
  u64 heartbeats = 0;       ///< idle heartbeats received
  u64 hellos = 0;           ///< Hello frames received (re-handshakes included)
  u64 resumes = 0;          ///< probe-role Resume requests received
  u64 acks_sent = 0;        ///< Resume acks sent back to the probe
  usize reattaches = 0;     ///< channels swapped in by reattach_probe()
  resilience::Liveness liveness = resilience::Liveness::kLive;

  /// Pipeline self-observability (npat::introspect), republished each
  /// poll: hop latency from emit stamps, reorder dwell, stage depths,
  /// decode rate. Plain values so views never touch the obs registry.
  introspect::PipelineStats pipeline;
};

/// One host's row in the merged fleet view.
struct HostRow {
  std::string host_id;
  bool hello_received = false;
  bool ended = false;
  usize samples_total = 0;        // samples merged over the whole session
  monitor::WindowStats window;    // aggregation over the requested window
  monitor::TaskWindowStats tasks; // per-task aggregation over the same window
  ProbeDamage damage;
  bool supervised = false;        // probe speaks the v4 resilience protocol
  resilience::Liveness liveness = resilience::Liveness::kLive;
  u64 duplicates = 0;             // frames suppressed by (epoch, seq) dedup
};

/// Snapshot of the merged fleet: per-host rows plus the cross-host
/// aggregate. Rates for the aggregate divide by `span` (the longest host
/// window), which is the fleet's wall clock once origins are aligned.
struct FleetView {
  std::vector<HostRow> hosts;
  monitor::NodeStats total;  // summed over every host's window total
  Cycles span = 0;
  u64 samples = 0;  // sample records inside the window, all hosts

  usize hosts_ended() const noexcept;
  ProbeDamage damage_total() const noexcept;
  u64 duplicates_total() const noexcept;
};

/// Merges several probe streams. Single-threaded and cooperative like the
/// memhist GuiCollector: call poll() whenever channel data may be pending.
class FleetCollector {
 public:
  FleetCollector() = default;
  /// Tunes the stale/dead thresholds and dwell applied to supervised
  /// probes (the defaults suit the simulated-cycle clock of the tests).
  explicit FleetCollector(const resilience::LivenessConfig& liveness_config)
      : liveness_config_(liveness_config) {}

  /// Registers a probe channel; returns its index. `fallback_host_id`
  /// names the probe until (or unless) a v3 Hello carries its own id;
  /// empty means "probe<index>".
  usize add_probe(std::shared_ptr<util::ByteChannel> channel, std::string fallback_host_id = {});

  /// Swaps a fresh channel under an existing probe slot after the old
  /// connection died (the collector half of a supervised reconnect). The
  /// retiring decoder is drained and flushed first — a frame truncated by
  /// the disconnect is counted, not lost silently — and its damage tally
  /// is carried forward so per-probe accounting stays cumulative across
  /// any number of reconnects. Ledger, liveness and merged samples all
  /// survive: deduplication spans connections by design.
  void reattach_probe(usize index, std::shared_ptr<util::ByteChannel> channel);

  /// Drains every channel, decodes, and folds frames into the per-probe
  /// state. Returns the number of monitor samples merged by this call.
  /// `now` advances the collector clock that drives liveness (heartbeat
  /// gap) tracking for supervised probes; omitting it (legacy callers)
  /// leaves the clock parked and liveness permanently live.
  usize poll(Cycles now = 0);

  usize probe_count() const noexcept { return probes_.size(); }
  const ProbeState& probe(usize index) const;
  bool all_ended() const noexcept;
  /// Samples merged across all probes since construction.
  usize samples_merged() const noexcept { return samples_merged_; }

  /// Per-host aggregation over each host's most recent `window_samples`
  /// samples (0 = the whole session) plus the cross-host totals. Task
  /// windows take the same number of most-recent TaskSample records.
  FleetView view(usize window_samples = 0) const;

  /// Per-probe rows for the --health pane / self-metrics surface: the
  /// republished PipelineStats joined with identity and damage.
  std::vector<introspect::HealthRow> health_rows() const;

  /// Orphaned v5 rows a probe may hold awaiting late registration; beyond
  /// this, the oldest are evicted (they stay counted in the damage ledger).
  static constexpr usize kMaxOrphanRows = 4096;

  /// Monotonic collector clock (the largest `now` ever passed to poll()).
  Cycles clock() const noexcept { return clock_; }

 private:
  struct PerProbe {
    std::shared_ptr<util::ByteChannel> channel;
    memhist::wire::Decoder decoder;
    ProbeState state;
    ProbeDamage carried;  // decoder tallies retired by reattach_probe()
    resilience::DeliveryLedger ledger;
    resilience::LivenessTracker liveness;
    bool ack_due = false;   // a Resume handshake awaits its reply
    u16 resume_epoch = 0;   // epoch the pending handshake announced
    u16 acked_epoch = 0;    // last ack actually sent
    u32 acked_floor = 0;
    /// Reorder stage: sequenced frames admitted ahead of a gap wait here
    /// and fold only once every lower sequence has arrived, so the merged
    /// stream is the *sent* stream even when retransmissions fill gaps
    /// late. Drained in lockstep with the ledger floor; bounded by the
    /// probe's replay capacity (the gap can never be wider). `decoded_at`
    /// is the collector clock at decode, so delivery observes the frame's
    /// reorder-stage dwell.
    struct Pending {
      memhist::wire::Message message;
      Cycles decoded_at = 0;
    };
    std::map<u32, Pending> pending;
    u32 folded_floor = 0;  // highest sequence already folded (in order)
    /// introspect: emit-clock alignment (first stamped frame defines the
    /// offset, so the first observation is latency 0 by construction),
    /// cached per-probe labeled metric handles (re-resolved if a late
    /// Hello renames the host), and the damage already narrated to the
    /// flight ring so each poll records only the delta.
    std::optional<i64> stamp_offset;
    std::string metric_host;
    obs::Histogram* ingest_hist = nullptr;
    obs::Histogram* reorder_hist = nullptr;
    obs::Gauge* pending_gauge = nullptr;
    obs::Gauge* orphan_gauge = nullptr;
    obs::Gauge* rate_gauge = nullptr;
    ProbeDamage flight_reported;
    u64 flight_epoch_resets = 0;
    /// v5 sample rows whose task id had no registration on arrival; held
    /// (timestamp already aligned) until a TaskTable names the id, then
    /// attributed at the sorted timestamp position. Bounded by
    /// kMaxOrphanRows, oldest first out.
    struct OrphanRow {
      Cycles timestamp = 0;
      memhist::wire::TaskSampleRow row;
    };
    std::vector<OrphanRow> orphans;
  };

  usize poll_probe(PerProbe& probe);
  usize fold_frames(PerProbe& probe);
  usize drain_in_order(PerProbe& probe);
  usize flush_pending(PerProbe& probe);
  usize fold(PerProbe& probe, const memhist::wire::Message& message);
  void fold_task_sample(PerProbe& probe, const memhist::wire::TaskSampleMsg& message);
  void attribute_orphans(PerProbe& probe);
  void maybe_ack(PerProbe& probe);
  void republish(PerProbe& probe);
  void ensure_metrics(PerProbe& probe);
  void observe_ingest(PerProbe& probe, Cycles emit_timestamp);
  void observe_dwell(PerProbe& probe, Cycles decoded_at);
  void narrate_flight(PerProbe& probe);

  resilience::LivenessConfig liveness_config_;
  Cycles clock_ = 0;
  std::vector<std::unique_ptr<PerProbe>> probes_;
  usize samples_merged_ = 0;
};

}  // namespace npat::fleet
