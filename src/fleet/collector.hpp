// npat::fleet — multi-probe aggregation: one collector merges
// MonitorSampleMsg streams from several headless probes (one per host)
// into a fleet-wide per-node view, the way NUMAscope aggregates hardware
// metrics across a large ccNUMA system. Each connected probe channel gets
// its own wire::Decoder, so transport damage (dropped frames, resyncs,
// EOF truncations) is attributed per probe; probes identify themselves
// via the host id on the protocol-v3 Hello, and per-probe timestamps are
// aligned to a common origin so hosts with skewed clocks merge cleanly.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "memhist/wire.hpp"
#include "monitor/aggregate.hpp"
#include "monitor/sampler.hpp"
#include "util/channel.hpp"
#include "util/types.hpp"

namespace npat::fleet {

/// Transport damage attributed to one probe's stream. The first three
/// counters mirror that probe's wire::Decoder tallies exactly;
/// `unexpected_frames` counts frames that decoded fine but carry a type
/// the fleet layer has no use for (e.g. memhist ThresholdReadings in a
/// telemetry stream) or a node count that contradicts the stream so far.
struct ProbeDamage {
  usize dropped_frames = 0;
  usize resyncs = 0;
  usize truncated_flushes = 0;
  usize unexpected_frames = 0;

  usize total() const noexcept {
    return dropped_frames + unexpected_frames;  // resyncs/truncations are subsets of drops
  }
  friend bool operator==(const ProbeDamage&, const ProbeDamage&) = default;
};

/// Everything the collector knows about one probe stream.
struct ProbeState {
  std::string host_id;  // v3 Hello, else the add_probe fallback
  u8 version = 0;       // from Hello, 0 until one arrives
  u32 node_count = 0;   // ditto
  bool hello_received = false;
  bool ended = false;          // End frame seen
  Cycles total_cycles = 0;     // from End
  /// Raw timestamp of the probe's first sample. Subtracted from every
  /// sample so unsynchronized probe clocks share origin 0.
  std::optional<Cycles> origin;
  std::vector<monitor::Sample> samples;  // aligned timestamps, stream order
  ProbeDamage damage;
};

/// One host's row in the merged fleet view.
struct HostRow {
  std::string host_id;
  bool hello_received = false;
  bool ended = false;
  usize samples_total = 0;        // samples merged over the whole session
  monitor::WindowStats window;    // aggregation over the requested window
  ProbeDamage damage;
};

/// Snapshot of the merged fleet: per-host rows plus the cross-host
/// aggregate. Rates for the aggregate divide by `span` (the longest host
/// window), which is the fleet's wall clock once origins are aligned.
struct FleetView {
  std::vector<HostRow> hosts;
  monitor::NodeStats total;  // summed over every host's window total
  Cycles span = 0;
  u64 samples = 0;  // sample records inside the window, all hosts

  usize hosts_ended() const noexcept;
  ProbeDamage damage_total() const noexcept;
};

/// Merges several probe streams. Single-threaded and cooperative like the
/// memhist GuiCollector: call poll() whenever channel data may be pending.
class FleetCollector {
 public:
  /// Registers a probe channel; returns its index. `fallback_host_id`
  /// names the probe until (or unless) a v3 Hello carries its own id;
  /// empty means "probe<index>".
  usize add_probe(std::shared_ptr<util::ByteChannel> channel, std::string fallback_host_id = {});

  /// Drains every channel, decodes, and folds frames into the per-probe
  /// state. Returns the number of monitor samples merged by this call.
  usize poll();

  usize probe_count() const noexcept { return probes_.size(); }
  const ProbeState& probe(usize index) const;
  bool all_ended() const noexcept;
  /// Samples merged across all probes since construction.
  usize samples_merged() const noexcept { return samples_merged_; }

  /// Per-host aggregation over each host's most recent `window_samples`
  /// samples (0 = the whole session) plus the cross-host totals.
  FleetView view(usize window_samples = 0) const;

 private:
  struct PerProbe {
    std::shared_ptr<util::ByteChannel> channel;
    memhist::wire::Decoder decoder;
    ProbeState state;
  };

  usize poll_probe(PerProbe& probe);

  std::vector<std::unique_ptr<PerProbe>> probes_;
  usize samples_merged_ = 0;
};

}  // namespace npat::fleet
