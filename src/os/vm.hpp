// Virtual memory for simulated programs: a paged address space with NUMA
// placement policies. First-touch is the Linux default the paper's
// workloads run under; explicit binding and interleaving model
// numactl/libnuma usage (the NUMA-optimized SIFT case).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"
#include "sim/topology.hpp"
#include "util/types.hpp"

namespace npat::os {

enum class PagePolicy : u8 {
  kFirstTouch,   // page lands on the node of the first core touching it
  kBind,         // all pages on a fixed node
  kInterleave,   // pages round-robin across all nodes
};

/// Parses "first-touch" | "bind" | "interleave" (the names printed by
/// page_policy_name). Hard-errors (CheckError) on anything else — the
/// advisor's apply path must never silently fall back to a default.
PagePolicy page_policy_from_name(const std::string& name);
const char* page_policy_name(PagePolicy policy);

struct Region {
  VirtAddr base = 0;
  u64 bytes = 0;
  PagePolicy policy = PagePolicy::kFirstTouch;
  sim::NodeId bind_node = 0;
  u64 interleave_cursor = 0;  // next node for interleaved placement
  u64 page_bytes = kPageBytes;  // 4 KiB, or kHugePageBytes for THP regions
};

/// 2 MiB transparent-huge-page size.
inline constexpr u64 kHugePageBytes = 2 * 1024 * 1024;

/// TLB keys distinguish page sizes: huge entries occupy the same TLB but a
/// single entry covers 512x the reach.
constexpr u64 kHugeTlbKeyBit = 1ULL << 62;
constexpr u64 tlb_key_small(VirtAddr vaddr) noexcept { return vaddr / kPageBytes; }
constexpr u64 tlb_key_huge(VirtAddr vaddr) noexcept {
  return (vaddr / kHugePageBytes) | kHugeTlbKeyBit;
}

/// A process address space. Allocation reserves virtual pages (growing the
/// procfs-visible footprint immediately); physical frames are assigned on
/// first touch according to the region's policy.
class AddressSpace {
 public:
  explicit AddressSpace(const sim::Topology& topology);

  /// Reserves a region; returns its page-aligned base address.
  VirtAddr allocate(u64 bytes, PagePolicy policy = PagePolicy::kFirstTouch,
                    sim::NodeId bind_node = 0);

  /// Reserves a region backed by 2 MiB huge pages (rounded up); one TLB
  /// entry then covers 512 small pages. Huge regions are exempt from NUMA
  /// balancing (real kernels split THPs first; we simply do not migrate).
  VirtAddr allocate_huge(u64 bytes, PagePolicy policy = PagePolicy::kFirstTouch,
                         sim::NodeId bind_node = 0);

  /// Releases the region starting at `base` (must be an allocate() result).
  /// Returns pages to the OS and drops their translations; `on_unmap` (if
  /// set) is told about each vanishing page so TLBs can be shot down.
  /// When the last region is freed the bump allocators restart, so the next
  /// allocation round is bit-identical to one in a fresh space.
  void free(VirtAddr base);

  /// numactl analogue: while set, every subsequent allocation ignores the
  /// policy the caller asked for and uses `policy` (with `bind_node` for
  /// kBind) instead. This is how an *unmodified* workload is replayed under
  /// an advised placement. Already-placed pages are unaffected.
  void set_policy_override(PagePolicy policy, sim::NodeId bind_node = 0);
  void clear_policy_override() { override_.reset(); }
  bool policy_override_active() const noexcept { return override_.has_value(); }

  /// move_pages(2) analogue: migrates every *touched* page intersecting
  /// [base, base + bytes) to `target`, firing on_unmap (TLB shootdown) and
  /// on_migrate per moved page. Untouched pages are left for first touch
  /// under the region's policy. Returns the number of page-table entries
  /// moved (a huge page counts once).
  u64 migrate(VirtAddr base, u64 bytes, sim::NodeId target);

  /// Returns the space to its just-constructed state: every mapping is
  /// dropped (with per-page on_unmap shootdowns) and the virtual/physical
  /// bump allocators restart, so a replayed run allocates bit-identical
  /// virtual addresses and physical frames to a fresh space. NUMA-balancing
  /// configuration and the policy override survive; the migration counter
  /// does not.
  void reset();

  struct Translation {
    PhysAddr paddr = 0;
    /// Key the hardware TLB caches (encodes the page size).
    u64 tlb_key = 0;
  };

  /// Translates a virtual address, assigning a physical frame on first
  /// touch. `touching_node` decides placement under kFirstTouch.
  PhysAddr translate(VirtAddr vaddr, sim::NodeId touching_node);
  /// Like translate(), additionally reporting the TLB key.
  Translation translate_ex(VirtAddr vaddr, sim::NodeId touching_node);

  /// Translation without side effects; nullopt if the page is untouched.
  std::optional<PhysAddr> peek(VirtAddr vaddr) const;

  /// Reserved bytes — what /proc/<pid>/status VmSize reports and what
  /// Phasenprüfer samples.
  u64 footprint_bytes() const noexcept { return reserved_bytes_; }
  /// Touched bytes (VmRSS analogue).
  u64 resident_bytes() const noexcept { return resident_pages_ * kPageBytes; }

  /// Resident pages per node (numastat analogue).
  std::vector<u64> pages_per_node() const;

  /// Invoked for every page whose mapping is removed or *remapped*
  /// (free() and NUMA-balancing migrations) — the TLB shootdown hook.
  std::function<void(u64 page)> on_unmap;
  /// Invoked after a NUMA-balancing migration.
  std::function<void(u64 page, sim::NodeId from, sim::NodeId to)> on_migrate;

  /// Enables automatic NUMA balancing: a page whose last `threshold`
  /// touches all came from one *remote* node is migrated to that node
  /// (a simplified Linux AutoNUMA). Off by default.
  void enable_numa_balancing(u16 threshold);
  void disable_numa_balancing() { balancing_threshold_ = 0; }
  bool numa_balancing_enabled() const noexcept { return balancing_threshold_ > 0; }
  u64 pages_migrated() const noexcept { return pages_migrated_; }

  usize region_count() const noexcept { return regions_.size(); }

 private:
  struct Frame {
    PhysAddr base = 0;
    u16 remote_streak = 0;  // consecutive touches from one remote node
    sim::NodeId last_remote = 0;
  };

  struct PolicyOverride {
    PagePolicy policy = PagePolicy::kFirstTouch;
    sim::NodeId bind_node = 0;
  };

  /// First usable virtual address (skips the null page).
  static constexpr VirtAddr kFirstVaddr = 0x10000;

  Region* region_of(VirtAddr vaddr);
  PhysAddr allocate_frame(sim::NodeId node, u64 page_bytes);
  VirtAddr allocate_region(u64 bytes, PagePolicy policy, sim::NodeId bind_node,
                           u64 page_bytes);

  const sim::Topology* topology_;
  std::map<VirtAddr, Region> regions_;  // keyed by base, ordered for lookup
  std::unordered_map<u64, Frame> page_table_;  // 4 KiB vpage -> frame
  std::unordered_map<u64, Frame> huge_table_;  // 2 MiB vpage -> frame
  std::vector<u64> next_frame_;                // per node bump allocator
  std::vector<u64> node_pages_;
  std::optional<PolicyOverride> override_;
  VirtAddr next_vaddr_ = kFirstVaddr;
  u64 reserved_bytes_ = 0;
  u64 resident_pages_ = 0;
  u16 balancing_threshold_ = 0;
  u64 pages_migrated_ = 0;
};

}  // namespace npat::os
