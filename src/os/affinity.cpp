#include "os/affinity.hpp"

#include "util/check.hpp"

namespace npat::os {

sim::CoreId core_for_thread(const sim::Topology& topology, AffinityPolicy policy, u32 index) {
  const u32 total = topology.total_cores();
  const u32 slot = index % total;
  switch (policy) {
    case AffinityPolicy::kCompact:
      return slot;
    case AffinityPolicy::kScatter: {
      const u32 node = slot % topology.nodes;
      const u32 within = slot / topology.nodes;
      return node * topology.cores_per_node + within;
    }
  }
  return 0;
}

std::vector<sim::CoreId> placement(const sim::Topology& topology, AffinityPolicy policy,
                                   u32 threads) {
  std::vector<sim::CoreId> out;
  out.reserve(threads);
  for (u32 i = 0; i < threads; ++i) out.push_back(core_for_thread(topology, policy, i));
  return out;
}

AffinityPolicy affinity_from_name(const std::string& name) {
  if (name == "compact") return AffinityPolicy::kCompact;
  if (name == "scatter") return AffinityPolicy::kScatter;
  NPAT_CHECK_MSG(false, "unknown affinity policy: " + name);
  return AffinityPolicy::kCompact;
}

const char* affinity_name(AffinityPolicy policy) {
  return policy == AffinityPolicy::kCompact ? "compact" : "scatter";
}

}  // namespace npat::os
