// procfs-style process introspection. Phasenprüfer "uses the memory
// footprint (reserved memory, obtained through procfs)" — this module is
// that interface: a sampler that records (time, footprint) pairs while a
// program runs, at a configurable rate (default 10 Hz of simulated time).
#pragma once

#include <functional>
#include <vector>

#include "os/vm.hpp"
#include "util/types.hpp"

namespace npat::os {

struct FootprintSample {
  Cycles timestamp = 0;
  u64 reserved_bytes = 0;
  u64 resident_bytes = 0;
};

class FootprintRecorder {
 public:
  explicit FootprintRecorder(const AddressSpace& space) : space_(&space) {}

  /// Sampler callback to register with the runner.
  void sample(Cycles now) {
    samples_.push_back(
        FootprintSample{now, space_->footprint_bytes(), space_->resident_bytes()});
  }

  const std::vector<FootprintSample>& samples() const noexcept { return samples_; }
  std::vector<double> times() const;
  std::vector<double> reserved() const;
  void clear() { samples_.clear(); }

 private:
  const AddressSpace* space_;
  std::vector<FootprintSample> samples_;
};

/// Converts a sampling frequency in Hz of *simulated* time into a cycle
/// interval for a machine running at `frequency_ghz`.
Cycles cycles_per_sample(double frequency_ghz, double sample_hz);

}  // namespace npat::os
