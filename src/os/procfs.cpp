#include "os/procfs.hpp"

#include <cmath>

#include "util/check.hpp"

namespace npat::os {

std::vector<double> FootprintRecorder::times() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(static_cast<double>(s.timestamp));
  return out;
}

std::vector<double> FootprintRecorder::reserved() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(static_cast<double>(s.reserved_bytes));
  return out;
}

Cycles cycles_per_sample(double frequency_ghz, double sample_hz) {
  NPAT_CHECK_MSG(frequency_ghz > 0.0 && sample_hz > 0.0, "rates must be positive");
  return static_cast<Cycles>(std::llround(frequency_ghz * 1e9 / sample_hz));
}

}  // namespace npat::os
