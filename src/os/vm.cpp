#include "os/vm.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace npat::os {

namespace {
constexpr u64 kSmallPagesPerHuge = kHugePageBytes / kPageBytes;
}

PagePolicy page_policy_from_name(const std::string& name) {
  if (name == "first-touch") return PagePolicy::kFirstTouch;
  if (name == "bind") return PagePolicy::kBind;
  if (name == "interleave") return PagePolicy::kInterleave;
  NPAT_CHECK_MSG(false, "unknown page policy: " + name +
                            " (expected first-touch | bind | interleave)");
  return PagePolicy::kFirstTouch;
}

const char* page_policy_name(PagePolicy policy) {
  switch (policy) {
    case PagePolicy::kFirstTouch: return "first-touch";
    case PagePolicy::kBind: return "bind";
    case PagePolicy::kInterleave: return "interleave";
  }
  return "first-touch";
}

AddressSpace::AddressSpace(const sim::Topology& topology)
    : topology_(&topology),
      next_frame_(topology.nodes, 0),
      node_pages_(topology.nodes, 0) {}

VirtAddr AddressSpace::allocate_region(u64 bytes, PagePolicy policy,
                                       sim::NodeId bind_node, u64 page_bytes) {
  NPAT_CHECK_MSG(bytes > 0, "cannot allocate zero bytes");
  NPAT_CHECK_MSG(bind_node < topology_->nodes, "bind node out of range");
  if (override_) {
    policy = override_->policy;
    bind_node = override_->bind_node;
  }

  const u64 aligned = (bytes + page_bytes - 1) / page_bytes * page_bytes;
  // Align the base itself to the page size (huge regions must start on a
  // huge-page boundary).
  next_vaddr_ = (next_vaddr_ + page_bytes - 1) / page_bytes * page_bytes;

  Region region;
  region.base = next_vaddr_;
  region.bytes = aligned;
  region.policy = policy;
  region.bind_node = bind_node;
  region.page_bytes = page_bytes;
  next_vaddr_ += aligned + page_bytes;  // guard page between regions
  reserved_bytes_ += aligned;
  const VirtAddr base = region.base;
  regions_.emplace(base, std::move(region));
  return base;
}

VirtAddr AddressSpace::allocate(u64 bytes, PagePolicy policy, sim::NodeId bind_node) {
  return allocate_region(bytes, policy, bind_node, kPageBytes);
}

VirtAddr AddressSpace::allocate_huge(u64 bytes, PagePolicy policy, sim::NodeId bind_node) {
  return allocate_region(bytes, policy, bind_node, kHugePageBytes);
}

Region* AddressSpace::region_of(VirtAddr vaddr) {
  auto it = regions_.upper_bound(vaddr);
  if (it == regions_.begin()) return nullptr;
  --it;
  Region& region = it->second;
  if (vaddr >= region.base && vaddr < region.base + region.bytes) return &region;
  return nullptr;
}

void AddressSpace::free(VirtAddr base) {
  const auto it = regions_.find(base);
  NPAT_CHECK_MSG(it != regions_.end(), "free() of unknown region base");
  const Region& region = it->second;
  const bool huge = region.page_bytes == kHugePageBytes;
  auto& table = huge ? huge_table_ : page_table_;
  const u64 page_units = huge ? kSmallPagesPerHuge : 1;

  const u64 first_page = region.base / region.page_bytes;
  const u64 last_page = (region.base + region.bytes - 1) / region.page_bytes;
  for (u64 page = first_page; page <= last_page; ++page) {
    const auto entry = table.find(page);
    if (entry == table.end()) continue;
    const sim::NodeId node = sim::node_of_paddr(entry->second.base);
    NPAT_CHECK(node_pages_[node] >= page_units);
    node_pages_[node] -= page_units;
    resident_pages_ -= page_units;
    table.erase(entry);
    if (on_unmap) {
      on_unmap(huge ? ((page * kHugePageBytes) / kHugePageBytes) | kHugeTlbKeyBit : page);
    }
  }
  reserved_bytes_ -= region.bytes;
  regions_.erase(it);
  if (regions_.empty()) {
    // Empty space: restart the bump allocators so the next allocation round
    // reuses the same virtual addresses and physical frames a fresh space
    // would hand out — a replayed run must be bit-identical to a first run.
    next_vaddr_ = kFirstVaddr;
    std::fill(next_frame_.begin(), next_frame_.end(), 0);
  }
}

void AddressSpace::set_policy_override(PagePolicy policy, sim::NodeId bind_node) {
  NPAT_CHECK_MSG(policy != PagePolicy::kBind || bind_node < topology_->nodes,
                 "override bind node out of range");
  override_ = PolicyOverride{policy, bind_node};
}

u64 AddressSpace::migrate(VirtAddr base, u64 bytes, sim::NodeId target) {
  NPAT_CHECK_MSG(target < topology_->nodes, "migration target node out of range");
  NPAT_CHECK_MSG(bytes > 0, "cannot migrate an empty range");
  u64 moved = 0;
  const auto move_entry = [&](Frame& frame, u64 unmap_key, u64 page_bytes) {
    const sim::NodeId home = sim::node_of_paddr(frame.base);
    if (home == target) return;
    const u64 page_units = page_bytes / kPageBytes;
    NPAT_CHECK(node_pages_[home] >= page_units);
    node_pages_[home] -= page_units;
    node_pages_[target] += page_units;
    frame.base = allocate_frame(target, page_bytes);
    frame.remote_streak = 0;
    ++pages_migrated_;
    ++moved;
    if (on_unmap) on_unmap(unmap_key);  // TLB shootdown
    if (on_migrate) on_migrate(unmap_key, home, target);
  };
  for (u64 page = base / kPageBytes; page <= (base + bytes - 1) / kPageBytes; ++page) {
    const auto entry = page_table_.find(page);
    if (entry != page_table_.end()) move_entry(entry->second, page, kPageBytes);
  }
  for (u64 hpage = base / kHugePageBytes; hpage <= (base + bytes - 1) / kHugePageBytes;
       ++hpage) {
    const auto entry = huge_table_.find(hpage);
    if (entry != huge_table_.end()) {
      move_entry(entry->second, hpage | kHugeTlbKeyBit, kHugePageBytes);
    }
  }
  return moved;
}

void AddressSpace::reset() {
  if (on_unmap) {
    for (const auto& [page, frame] : page_table_) on_unmap(page);
    for (const auto& [hpage, frame] : huge_table_) on_unmap(hpage | kHugeTlbKeyBit);
  }
  regions_.clear();
  page_table_.clear();
  huge_table_.clear();
  std::fill(next_frame_.begin(), next_frame_.end(), 0);
  std::fill(node_pages_.begin(), node_pages_.end(), 0);
  next_vaddr_ = kFirstVaddr;
  reserved_bytes_ = 0;
  resident_pages_ = 0;
  pages_migrated_ = 0;
}

void AddressSpace::enable_numa_balancing(u16 threshold) {
  NPAT_CHECK_MSG(threshold > 0, "balancing threshold must be positive");
  balancing_threshold_ = threshold;
}

PhysAddr AddressSpace::allocate_frame(sim::NodeId node, u64 page_bytes) {
  NPAT_CHECK_MSG(node < topology_->nodes, "placement node out of range");
  // Frames are carved in huge-page units so huge frames stay aligned.
  const u64 units = (page_bytes + kPageBytes - 1) / kPageBytes;
  const u64 frame_index = next_frame_[node];
  next_frame_[node] += units;
  return sim::make_paddr(node, frame_index * kPageBytes);
}

AddressSpace::Translation AddressSpace::translate_ex(VirtAddr vaddr,
                                                     sim::NodeId touching_node) {
  // Fast path 1: small-page mapping.
  {
    const u64 page = vaddr / kPageBytes;
    const auto entry = page_table_.find(page);
    if (entry != page_table_.end()) {
      Frame& frame = entry->second;
      if (balancing_threshold_ > 0) {
        const sim::NodeId home = sim::node_of_paddr(frame.base);
        if (touching_node == home) {
          frame.remote_streak = 0;
        } else {
          // Count consecutive touches from one remote node; a mixed stream
          // restarts the streak (migrating ping-ponged pages is harmful).
          if (frame.remote_streak > 0 && frame.last_remote == touching_node) {
            ++frame.remote_streak;
          } else {
            frame.remote_streak = 1;
            frame.last_remote = touching_node;
          }
          if (frame.remote_streak >= balancing_threshold_) {
            --node_pages_[home];
            ++node_pages_[touching_node];
            frame.base = allocate_frame(touching_node, kPageBytes);
            frame.remote_streak = 0;
            ++pages_migrated_;
            if (on_unmap) on_unmap(page);  // TLB shootdown
            if (on_migrate) on_migrate(page, home, touching_node);
          }
        }
      }
      return Translation{frame.base + vaddr % kPageBytes, tlb_key_small(vaddr)};
    }
  }
  // Fast path 2: huge-page mapping (exempt from balancing).
  {
    const u64 hpage = vaddr / kHugePageBytes;
    const auto entry = huge_table_.find(hpage);
    if (entry != huge_table_.end()) {
      return Translation{entry->second.base + vaddr % kHugePageBytes,
                         tlb_key_huge(vaddr)};
    }
  }

  // Slow path: first touch.
  Region* region = region_of(vaddr);
  NPAT_CHECK_MSG(region != nullptr, "access to unmapped virtual address");

  sim::NodeId node = touching_node;
  switch (region->policy) {
    case PagePolicy::kFirstTouch:
      break;
    case PagePolicy::kBind:
      node = region->bind_node;
      break;
    case PagePolicy::kInterleave:
      node = static_cast<sim::NodeId>(region->interleave_cursor % topology_->nodes);
      ++region->interleave_cursor;
      break;
  }

  const bool huge = region->page_bytes == kHugePageBytes;
  const PhysAddr frame = allocate_frame(node, region->page_bytes);
  const u64 page_units = huge ? kSmallPagesPerHuge : 1;
  if (huge) {
    huge_table_.emplace(vaddr / kHugePageBytes, Frame{frame, 0, 0});
  } else {
    page_table_.emplace(vaddr / kPageBytes, Frame{frame, 0, 0});
  }
  node_pages_[node] += page_units;
  resident_pages_ += page_units;
  return Translation{frame + vaddr % region->page_bytes,
                     huge ? tlb_key_huge(vaddr) : tlb_key_small(vaddr)};
}

PhysAddr AddressSpace::translate(VirtAddr vaddr, sim::NodeId touching_node) {
  return translate_ex(vaddr, touching_node).paddr;
}

std::optional<PhysAddr> AddressSpace::peek(VirtAddr vaddr) const {
  const auto small = page_table_.find(vaddr / kPageBytes);
  if (small != page_table_.end()) return small->second.base + vaddr % kPageBytes;
  const auto huge = huge_table_.find(vaddr / kHugePageBytes);
  if (huge != huge_table_.end()) return huge->second.base + vaddr % kHugePageBytes;
  return std::nullopt;
}

std::vector<u64> AddressSpace::pages_per_node() const { return node_pages_; }

}  // namespace npat::os
