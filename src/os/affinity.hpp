// Thread-to-core placement policies (sched_setaffinity analogue). Compact
// fills one socket before spilling to the next; scatter round-robins
// across sockets — the two placements whose cost difference NUMA models
// must capture.
#pragma once

#include <string>
#include <vector>

#include "sim/topology.hpp"
#include "util/types.hpp"

namespace npat::os {

enum class AffinityPolicy : u8 {
  kCompact,  // thread i -> core i (fills node 0 first)
  kScatter,  // spread threads round-robin over nodes
};

/// Core for logical thread `index` under `policy`. Threads beyond the core
/// count wrap around (oversubscription shares cores).
sim::CoreId core_for_thread(const sim::Topology& topology, AffinityPolicy policy, u32 index);

/// Full placement for `threads` logical threads.
std::vector<sim::CoreId> placement(const sim::Topology& topology, AffinityPolicy policy,
                                   u32 threads);

AffinityPolicy affinity_from_name(const std::string& name);  // "compact" | "scatter"
const char* affinity_name(AffinityPolicy policy);

}  // namespace npat::os
