// A browser-like end-user application with a pronounced ramp-up phase:
// it allocates and initializes many regions (footprint grows linearly at
// the maximal allocation rate), then settles into a computation phase with
// an almost flat footprint — the exact two-phase structure Phasenprüfer
// detects from the procfs memory footprint (paper Fig. 11, Google Chrome
// start-up).
#pragma once

#include "trace/runner.hpp"

namespace npat::workloads {

struct RampupParams {
  u32 regions = 48;                 // allocations during ramp-up
  usize region_bytes = 128 * 1024;  // per allocation
  u32 compute_rounds = 24;          // computation-phase sweeps
  /// Fraction of the data each compute round touches.
  double working_set_fraction = 0.25;
  /// Small allocations sprinkled into the compute phase (DOM churn etc.),
  /// keeping the footprint slope small but nonzero.
  usize churn_bytes = 8 * 1024;
};

/// Single-threaded; phase_mark(1) is the ground-truth ramp-up/computation
/// transition used by the phase-detection tests.
trace::Program rampup_app_program(const RampupParams& params);

}  // namespace npat::workloads
