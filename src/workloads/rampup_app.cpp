#include "workloads/rampup_app.hpp"

#include <vector>

#include "util/check.hpp"

namespace npat::workloads {

namespace {

trace::SimTask rampup_body(trace::ThreadContext& ctx, RampupParams params) {
  std::vector<VirtAddr> regions;
  regions.reserve(params.regions);

  // --- ramp-up: I/O-ish allocation + initialization ---
  for (u32 r = 0; r < params.regions; ++r) {
    const VirtAddr region = ctx.alloc(params.region_bytes);
    regions.push_back(region);
    const usize lines = params.region_bytes / kCacheLineBytes;
    for (usize i = 0; i < lines; ++i) {
      co_await ctx.store(region + i * kCacheLineBytes);
      co_await ctx.compute(3);  // parse/decode cost
      co_await ctx.branch(0xB007 + r, ctx.rng().chance(0.7));
    }
  }
  ctx.phase_mark(1);  // ground-truth phase transition

  // --- computation: repeated processing of a working subset ---
  const usize lines_per_region = params.region_bytes / kCacheLineBytes;
  const usize touched = static_cast<usize>(static_cast<double>(lines_per_region) *
                                           params.working_set_fraction);
  for (u32 round = 0; round < params.compute_rounds; ++round) {
    for (const VirtAddr region : regions) {
      for (usize i = 0; i < touched; ++i) {
        co_await ctx.load(region + (i % lines_per_region) * kCacheLineBytes);
        co_await ctx.compute(12);
        co_await ctx.branch(0xC0DE, ctx.rng().chance(0.5));
      }
    }
    // Light allocation churn keeps the computation-phase slope gentle but
    // realistic (short-lived DOM/JS objects).
    if (params.churn_bytes > 0 && round % 4 == 1) {
      const VirtAddr scratch = ctx.alloc(params.churn_bytes);
      for (usize i = 0; i < params.churn_bytes / kCacheLineBytes; ++i) {
        co_await ctx.store(scratch + i * kCacheLineBytes);
      }
    }
  }
  ctx.phase_mark(2);
}

}  // namespace

trace::Program rampup_app_program(const RampupParams& params) {
  NPAT_CHECK_MSG(params.regions >= 1, "need at least one ramp-up allocation");
  NPAT_CHECK_MSG(params.region_bytes >= kCacheLineBytes, "regions must hold a line");
  return trace::Program::single(
             [params](trace::ThreadContext& ctx) { return rampup_body(ctx, params); })
      .name_process(1, "rampup");
}

}  // namespace npat::workloads
