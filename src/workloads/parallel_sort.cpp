#include "workloads/parallel_sort.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "util/check.hpp"
#include "util/random.hpp"

namespace npat::workloads {

namespace {

struct SharedPlan {
  VirtAddr data = 0;     // the uint array (allocated and filled by thread 0)
  VirtAddr scratch = 0;  // merge destination, same size
  usize elements = 0;
};

constexpr u64 kCompareBranchSite = 0x50B7ULL;

/// One merge pass over [begin, end): reads the two halves in the
/// alternating pattern a merge produces and writes the output run.
trace::SubTask merge_run(trace::ThreadContext& ctx, const SharedPlan& plan, usize begin,
                         usize mid, usize end, u64 compare_cost) {
  auto src = [&](usize i) { return plan.data + i * sizeof(u32); };
  auto dst = [&](usize i) { return plan.scratch + i * sizeof(u32); };
  usize left = begin;
  usize right = mid;
  for (usize out = begin; out < end; ++out) {
    const bool take_left =
        left < mid && (right >= end || ctx.rng().chance(0.5));  // data-dependent
    co_await ctx.branch(kCompareBranchSite, take_left);
    co_await ctx.compute(compare_cost);
    if (take_left) {
      co_await ctx.load(src(left++));
    } else {
      co_await ctx.load(src(right++));
    }
    co_await ctx.store(dst(out));
  }
  // Copy back (the parallel-mode sort's final placement pass).
  for (usize i = begin; i < end; ++i) {
    co_await ctx.load(dst(i));
    co_await ctx.store(src(i));
  }
}

trace::SimTask sort_body(trace::ThreadContext& ctx, ParallelSortParams params,
                         std::shared_ptr<SharedPlan> plan) {
  const u32 threads = ctx.thread_count();
  const usize chunk = params.elements / threads;

  ctx.set_source_tag(kSortTagFill);
  if (ctx.index() == 0) {
    // Listing 3's sequential fill: the BSD LCG writes every element from
    // the main thread, so first-touch places the whole array on its node.
    plan->elements = params.elements;
    plan->data = ctx.alloc(params.elements * sizeof(u32));
    plan->scratch = ctx.alloc(params.elements * sizeof(u32));
    util::BsdLcg lcg(1337);
    for (usize i = 0; i < params.elements; ++i) {
      (void)lcg();  // the multiply–add ignoring overflows
      co_await ctx.compute(2);
      co_await ctx.store(plan->data + i * sizeof(u32));
    }
    ctx.phase_mark(1);
  }
  co_await ctx.barrier(0);

  ctx.set_source_tag(kSortTagLocalSort);
  // Local phase: each thread merge-sorts its chunk (log2(chunk) passes of
  // sequential read + comparison branch + write).
  const usize begin = ctx.index() * chunk;
  const usize end = ctx.index() + 1 == threads ? params.elements : begin + chunk;
  for (usize width = 1; width < end - begin; width *= 2) {
    for (usize lo = begin; lo + width < end; lo += 2 * width) {
      const usize mid = lo + width;
      const usize hi = std::min(lo + 2 * width, end);
      co_await merge_run(ctx, *plan, lo, mid, hi, params.compare_cost);
    }
  }
  co_await ctx.barrier(1);

  ctx.set_source_tag(kSortTagMergeTree);
  // Merge tree: at level l, threads whose index is a multiple of 2^(l+1)
  // merge their run with their neighbour's; everyone re-synchronizes per
  // level (the parallel-mode balanced merge).
  const u32 levels = threads > 1 ? static_cast<u32>(std::bit_width(threads - 1)) : 0;
  for (u32 level = 0; level < levels; ++level) {
    const usize width = chunk << level;
    const u32 stride = 2u << level;
    if (ctx.index() % stride == 0) {
      const usize lo = ctx.index() * chunk;
      const usize mid = std::min(lo + width, params.elements);
      const usize hi = std::min(lo + 2 * width, params.elements);
      if (mid < hi) co_await merge_run(ctx, *plan, lo, mid, hi, params.compare_cost);
    }
    co_await ctx.barrier(2 + level);
  }

  if (ctx.index() == 0) ctx.phase_mark(2);
}

}  // namespace

trace::Program parallel_sort_program(const ParallelSortParams& params) {
  NPAT_CHECK_MSG(params.threads >= 1, "need at least one thread");
  NPAT_CHECK_MSG(params.elements >= params.threads * 2, "array too small for thread count");
  auto plan = std::make_shared<SharedPlan>();
  return trace::Program::homogeneous(
             params.threads,
             [params, plan](trace::ThreadContext& ctx) { return sort_body(ctx, params, plan); })
      .name_process(1, "parallel_sort");
}

}  // namespace npat::workloads
