#include "workloads/cache_scan.hpp"

#include "util/check.hpp"

namespace npat::workloads {

namespace {

trace::SimTask cache_scan_body(trace::ThreadContext& ctx, CacheScanParams params) {
  const usize n = params.size;
  const VirtAddr array = ctx.alloc(n * n * sizeof(float));
  auto element = [&](usize y, usize x) { return array + (y * n + x) * sizeof(float); };

  // Fill phase: "fill array with random values" — sequential stores with
  // a pinch of data-dependent compute so instruction counts vary slightly
  // between runs, like real program noise.
  ctx.set_source_tag(kTagFill);
  if (params.fill_phase) {
    for (usize y = 0; y < n; ++y) {
      for (usize x = 0; x < n; ++x) {
        co_await ctx.store(element(y, x));
        co_await ctx.compute(2);
      }
      co_await ctx.compute(ctx.rng().below(8));
    }
  }
  ctx.phase_mark(1);

  // Sum phase: the traversal order is the whole experiment.
  ctx.set_source_tag(kTagSum);
  constexpr u64 kParityBranchSite = 0xCA5CADEULL;
  if (params.variant == ScanVariant::kUnitStride) {
    // Listing 1: y outer, x inner -> addresses advance by 4 bytes.
    for (usize y = 0; y < n; ++y) {
      for (usize x = 0; x < n; ++x) {
        co_await ctx.load(element(y, x));
        co_await ctx.branch(kParityBranchSite, y % 2 == 0);
        co_await ctx.compute(params.loop_overhead_instructions);
      }
    }
  } else {
    // Listing 2: x outer, y inner -> addresses advance by a whole row
    // (size * 4 bytes, a full page for size = 1024).
    for (usize x = 0; x < n; ++x) {
      for (usize y = 0; y < n; ++y) {
        co_await ctx.load(element(y, x));
        co_await ctx.branch(kParityBranchSite, x % 2 == 0);
        co_await ctx.compute(params.loop_overhead_instructions);
      }
    }
  }
  ctx.phase_mark(2);

  // std::cout << altsum — a handful of trailing instructions.
  co_await ctx.compute(64);
}

}  // namespace

trace::Program cache_scan_program(const CacheScanParams& params) {
  NPAT_CHECK_MSG(params.size >= 8, "array too small to be meaningful");
  return trace::Program::single(
      [params](trace::ThreadContext& ctx) { return cache_scan_body(ctx, params); });
}

}  // namespace npat::workloads
