// The paper's parallel-sort micro-benchmark (Listing 3): an array of uints
// is filled with the BSD linear congruential engine and sorted with the GNU
// libstdc++ parallel-mode std::sort. We reproduce the *memory and branch
// behaviour* of that computation: a sequential LCG fill (first-touch places
// the whole array on the filling thread's node, as the original code does),
// per-thread local merge sorts, and a barrier-synchronized pairwise merge
// tree. Comparison branches follow the pseudo-random data, so they
// mispredict like real sorting of LCG data.
//
// Fig. 9 sweeps the thread count and regresses events against it.
#pragma once

#include "trace/runner.hpp"

namespace npat::workloads {

struct ParallelSortParams {
  usize elements = 1 << 18;  // uints (paper: 1 Mi elements / 4 MiB)
  u32 threads = 4;
  /// Instructions charged per comparison beyond the branch itself.
  u64 compare_cost = 2;
};

/// Source-region tags emitted via ThreadContext::set_source_tag.
inline constexpr u32 kSortTagFill = 1;
inline constexpr u32 kSortTagLocalSort = 2;
inline constexpr u32 kSortTagMergeTree = 3;

trace::Program parallel_sort_program(const ParallelSortParams& params);

}  // namespace npat::workloads
