#include "workloads/mlc_remote.hpp"

#include "util/check.hpp"

namespace npat::workloads {

namespace {

trace::SimTask mlc_body(trace::ThreadContext& ctx, MlcParams params) {
  const VirtAddr buffer =
      ctx.alloc(params.buffer_bytes, os::PagePolicy::kBind, params.target_node);
  const usize lines = params.buffer_bytes / kCacheLineBytes;

  // mlc initializes its chase buffer first (sequential stores, charged to
  // the target node via the bind policy).
  for (usize i = 0; i < lines; ++i) {
    co_await ctx.store(buffer + i * kCacheLineBytes);
  }
  ctx.phase_mark(1);

  // Dependent chase: a pseudo-random walk with line granularity. Using the
  // thread RNG reproduces the *pattern* of a pointer-chased permutation
  // (no spatial locality, no learnable stride).
  for (u64 step = 0; step < params.chase_steps; ++step) {
    const u64 line = ctx.rng().below(lines);
    co_await ctx.load(buffer + line * kCacheLineBytes);
    if (params.think_instructions > 0) co_await ctx.compute(params.think_instructions);
  }
  ctx.phase_mark(2);
}

}  // namespace

trace::Program mlc_program(const MlcParams& params) {
  NPAT_CHECK_MSG(params.buffer_bytes >= kPageBytes, "buffer must cover at least a page");
  NPAT_CHECK_MSG(params.chase_steps > 0, "need at least one chase step");
  return trace::Program::single(
             [params](trace::ThreadContext& ctx) { return mlc_body(ctx, params); })
      .name_process(1, "mlc");
}

MlcParams mlc_local(usize buffer_bytes) {
  MlcParams params;
  params.buffer_bytes = buffer_bytes;
  params.target_node = 0;
  return params;
}

MlcParams mlc_remote(const sim::Topology& topology, usize buffer_bytes) {
  MlcParams params;
  params.buffer_bytes = buffer_bytes;
  // Farthest node from node 0 (where core 0 lives).
  u32 best_hops = 0;
  for (sim::NodeId node = 0; node < topology.nodes; ++node) {
    const u32 h = topology.hops(0, node);
    if (h > best_hops) {
      best_hops = h;
      params.target_node = node;
    }
  }
  NPAT_CHECK_MSG(best_hops > 0 || topology.nodes == 1,
                 "topology has no remote node to target");
  return params;
}

}  // namespace npat::workloads
