// Generic HPC kernels used by examples, tests and topology experiments:
// STREAM-style triad, blocked matrix multiplication, and a GUPS-style
// random-access kernel. All are thread-count and placement parameterized.
#pragma once

#include "trace/runner.hpp"

namespace npat::workloads {

struct StreamParams {
  u32 threads = 4;
  usize elements_per_thread = 1 << 16;  // doubles per array per thread
  u32 iterations = 4;
  /// kFirstTouch gives each thread local arrays; kBind node 0 recreates the
  /// classic "all memory on the master's node" mistake.
  os::PagePolicy placement = os::PagePolicy::kFirstTouch;
};

/// a[i] = b[i] + s * c[i], the bandwidth-bound STREAM triad.
trace::Program stream_triad_program(const StreamParams& params);

struct MatmulParams {
  usize n = 96;         // square matrices n x n of doubles
  usize block = 16;     // cache-blocking tile
  u32 threads = 1;      // row-band parallelism
};

/// Blocked dense matmul C = A*B (the recurring example of NUMA cost-model
/// papers; see §II-D).
trace::Program matmul_program(const MatmulParams& params);

struct GupsParams {
  u32 threads = 2;
  usize table_bytes = 8 * 1024 * 1024;
  u64 updates_per_thread = 100000;
  os::PagePolicy placement = os::PagePolicy::kInterleave;
};

/// Random read-modify-write updates over a big shared table.
trace::Program gups_program(const GupsParams& params);

}  // namespace npat::workloads
