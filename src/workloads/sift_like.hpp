// NUMA-optimized SIFT-like workload. The paper's Fig. 10a measures a
// Scale-Invariant Feature Transform implementation that "acts almost
// entirely on local memory": each thread owns an image tile allocated on
// its own node and runs repeated convolution (Gaussian blur) sweeps over
// it. The latency histogram should peak at L2, L3 and *local* DRAM, with
// essentially no remote component.
#pragma once

#include "trace/runner.hpp"

namespace npat::workloads {

struct SiftLikeParams {
  u32 threads = 4;
  usize tile_bytes = 2 * 1024 * 1024;  // per-thread image tile
  u32 octaves = 3;                     // blur sweeps per tile
  u32 window = 5;                      // convolution taps per output pixel
  /// When false, all tiles are allocated on node 0 (the non-optimized
  /// variant, for contrast experiments).
  bool numa_optimized = true;
};

trace::Program sift_like_program(const SiftLikeParams& params);

}  // namespace npat::workloads
