// Intel Memory Latency Checker analogue. The paper uses mlc both to verify
// Memhist's latency peaks and (Fig. 10b) to *induce* remote memory
// accesses. This workload performs a dependent random pointer chase over a
// buffer bound to a chosen node — every load misses all caches and defeats
// the prefetchers, exposing raw DRAM + interconnect latency.
#pragma once

#include "trace/runner.hpp"

namespace npat::workloads {

struct MlcParams {
  usize buffer_bytes = 32 * 1024 * 1024;  // far beyond LLC capacity
  u64 chase_steps = 400000;
  /// Node the buffer is bound to. The chasing thread runs on core 0 (node
  /// 0), so binding to another node produces pure remote latencies.
  sim::NodeId target_node = 0;
  /// Compute instructions between dependent loads (0 = pure latency).
  u64 think_instructions = 0;
};

trace::Program mlc_program(const MlcParams& params);

/// Convenience: parameters for a fully local chase on node 0.
MlcParams mlc_local(usize buffer_bytes = 32 * 1024 * 1024);
/// Parameters targeting the farthest node of the given topology.
MlcParams mlc_remote(const sim::Topology& topology, usize buffer_bytes = 32 * 1024 * 1024);

}  // namespace npat::workloads
