// The paper's cache-miss micro-benchmark (Listings 1 and 2): a size×size
// float array is filled and then summed with alternating signs, traversed
// either with unit stride (variant A — "hitting cache lines fairly often")
// or with a row-length stride (variant B — "causing many more cache
// misses"). Fig. 8 compares the two with EvSel.
#pragma once

#include "trace/runner.hpp"

namespace npat::workloads {

enum class ScanVariant : u8 {
  kUnitStride,  // Listing 1: inner loop walks adjacent elements
  kRowStride,   // Listing 2: inner loop jumps a whole row per access
};

struct CacheScanParams {
  usize size = 1024;  // array is size x size floats (the paper's 1024)
  ScanVariant variant = ScanVariant::kUnitStride;
  /// Instructions of loop overhead charged per element.
  u64 loop_overhead_instructions = 2;
  /// Run the "fill array with random values" phase. The paper's listings
  /// only carry it as a comment; disabling it measures the sum loop alone,
  /// which is how Fig. 8's ratios come out cleanest.
  bool fill_phase = true;
};

/// Source-region tags emitted via ThreadContext::set_source_tag.
inline constexpr u32 kTagFill = 1;
inline constexpr u32 kTagSum = 2;

/// Single-threaded program implementing the listing.
trace::Program cache_scan_program(const CacheScanParams& params);

}  // namespace npat::workloads
