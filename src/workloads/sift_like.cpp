#include "workloads/sift_like.hpp"

#include "util/check.hpp"

namespace npat::workloads {

namespace {

trace::SimTask sift_body(trace::ThreadContext& ctx, SiftLikeParams params) {
  // Tile placement: the NUMA-optimized variant first-touches locally; the
  // naive variant binds everything to node 0 (like an unparallelized load
  // phase would).
  const VirtAddr tile = params.numa_optimized
                            ? ctx.alloc(params.tile_bytes)
                            : ctx.alloc(params.tile_bytes, os::PagePolicy::kBind, 0);
  const usize pixels = params.tile_bytes / sizeof(float);

  // Load the image: sequential first-touch writes.
  for (usize i = 0; i < pixels; ++i) {
    co_await ctx.store(tile + i * sizeof(float));
    if ((i & 63) == 0) co_await ctx.compute(8);  // decode cost per line
  }
  co_await ctx.barrier(0);
  ctx.phase_mark(1);

  // Octave sweeps: separable convolution — each output pixel reads a
  // small neighbourhood (excellent locality) and writes once. Row blur
  // reads adjacent pixels; "column" taps jump a pseudo-row apart, pushing
  // some traffic past L1 into L2/L3/local DRAM.
  const usize row = 1024;  // pseudo image width in pixels
  for (u32 octave = 0; octave < params.octaves; ++octave) {
    for (usize i = 0; i < pixels; ++i) {
      const VirtAddr out = tile + i * sizeof(float);
      for (u32 tap = 0; tap < params.window; ++tap) {
        const usize offset = (i + tap * row) % pixels;
        co_await ctx.load(tile + offset * sizeof(float));
      }
      co_await ctx.compute(params.window * 2);
      co_await ctx.store(out);
      co_await ctx.branch(0x51F7 + octave, (i & 1) == 0);
    }
    co_await ctx.barrier(1 + octave);
  }
  ctx.phase_mark(2);
}

}  // namespace

trace::Program sift_like_program(const SiftLikeParams& params) {
  NPAT_CHECK_MSG(params.threads >= 1, "need at least one thread");
  NPAT_CHECK_MSG(params.tile_bytes >= kPageBytes, "tile must cover at least a page");
  NPAT_CHECK_MSG(params.window >= 1, "window must be at least 1");
  return trace::Program::homogeneous(params.threads, [params](trace::ThreadContext& ctx) {
    return sift_body(ctx, params);
  });
}

}  // namespace npat::workloads
