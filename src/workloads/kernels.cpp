#include "workloads/kernels.hpp"

#include <memory>

#include "util/check.hpp"

namespace npat::workloads {

namespace {

trace::SimTask stream_body(trace::ThreadContext& ctx, StreamParams params) {
  const usize bytes = params.elements_per_thread * sizeof(double);
  const VirtAddr a = ctx.alloc(bytes, params.placement, 0);
  const VirtAddr b = ctx.alloc(bytes, params.placement, 0);
  const VirtAddr c = ctx.alloc(bytes, params.placement, 0);

  // First touch initializes placement.
  for (usize i = 0; i < params.elements_per_thread; ++i) {
    co_await ctx.store(b + i * sizeof(double));
    co_await ctx.store(c + i * sizeof(double));
  }
  co_await ctx.barrier(0);

  for (u32 iter = 0; iter < params.iterations; ++iter) {
    for (usize i = 0; i < params.elements_per_thread; ++i) {
      co_await ctx.load(b + i * sizeof(double));
      co_await ctx.load(c + i * sizeof(double));
      co_await ctx.compute(2);  // fused multiply-add + index math
      co_await ctx.store(a + i * sizeof(double));
    }
    co_await ctx.barrier(1 + iter);
  }
}

struct MatmulShared {
  VirtAddr a = 0;
  VirtAddr b = 0;
  VirtAddr c = 0;
};

trace::SimTask matmul_body(trace::ThreadContext& ctx, MatmulParams params,
                           std::shared_ptr<MatmulShared> shared) {
  const usize n = params.n;
  const usize bytes = n * n * sizeof(double);
  if (ctx.index() == 0) {
    shared->a = ctx.alloc(bytes);
    shared->b = ctx.alloc(bytes);
    shared->c = ctx.alloc(bytes);
    for (usize i = 0; i < n * n; ++i) {
      co_await ctx.store(shared->a + i * sizeof(double));
      co_await ctx.store(shared->b + i * sizeof(double));
    }
  }
  co_await ctx.barrier(0);

  auto at = [n](VirtAddr base, usize r, usize col) {
    return base + (r * n + col) * sizeof(double);
  };

  // Row bands per thread, blocked i-k-j loop order.
  const usize rows_per_thread = (n + ctx.thread_count() - 1) / ctx.thread_count();
  const usize row_begin = ctx.index() * rows_per_thread;
  const usize row_end = std::min(n, row_begin + rows_per_thread);
  const usize block = params.block;

  for (usize ii = row_begin; ii < row_end; ii += block) {
    for (usize kk = 0; kk < n; kk += block) {
      for (usize jj = 0; jj < n; jj += block) {
        const usize i_hi = std::min(ii + block, row_end);
        const usize k_hi = std::min(kk + block, n);
        const usize j_hi = std::min(jj + block, n);
        for (usize i = ii; i < i_hi; ++i) {
          for (usize k = kk; k < k_hi; ++k) {
            co_await ctx.load(at(shared->a, i, k));
            for (usize j = jj; j < j_hi; ++j) {
              co_await ctx.load(at(shared->b, k, j));
              co_await ctx.compute(2);
              co_await ctx.store(at(shared->c, i, j));
            }
          }
        }
      }
    }
  }
  co_await ctx.barrier(1);
}

trace::SimTask gups_body(trace::ThreadContext& ctx, GupsParams params,
                         std::shared_ptr<VirtAddr> table) {
  const usize lines = params.table_bytes / kCacheLineBytes;
  if (ctx.index() == 0) {
    *table = ctx.alloc(params.table_bytes, params.placement, 0);
    for (usize i = 0; i < lines; ++i) co_await ctx.store(*table + i * kCacheLineBytes);
  }
  co_await ctx.barrier(0);

  for (u64 u = 0; u < params.updates_per_thread; ++u) {
    const u64 line = ctx.rng().below(lines);
    const VirtAddr addr = *table + line * kCacheLineBytes;
    co_await ctx.load(addr);
    co_await ctx.compute(1);  // xor update
    co_await ctx.store(addr);
  }
  co_await ctx.barrier(1);
}

}  // namespace

trace::Program stream_triad_program(const StreamParams& params) {
  NPAT_CHECK_MSG(params.threads >= 1, "need at least one thread");
  return trace::Program::homogeneous(params.threads, [params](trace::ThreadContext& ctx) {
    return stream_body(ctx, params);
  }).name_process(1, "stream");
}

trace::Program matmul_program(const MatmulParams& params) {
  NPAT_CHECK_MSG(params.n >= params.block && params.block >= 1, "invalid blocking");
  NPAT_CHECK_MSG(params.threads >= 1, "need at least one thread");
  auto shared = std::make_shared<MatmulShared>();
  return trace::Program::homogeneous(params.threads,
                                     [params, shared](trace::ThreadContext& ctx) {
                                       return matmul_body(ctx, params, shared);
                                     })
      .name_process(1, "matmul");
}

trace::Program gups_program(const GupsParams& params) {
  NPAT_CHECK_MSG(params.threads >= 1, "need at least one thread");
  NPAT_CHECK_MSG(params.table_bytes >= kPageBytes, "table must cover a page");
  auto table = std::make_shared<VirtAddr>(0);
  return trace::Program::homogeneous(params.threads,
                                     [params, table](trace::ThreadContext& ctx) {
                                       return gups_body(ctx, params, table);
                                     })
      .name_process(1, "gups");
}

}  // namespace npat::workloads
