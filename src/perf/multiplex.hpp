// Event multiplexing ("event cycling"): measure more events than the PMU
// has registers by rotating groups during a *single* run and scaling each
// count by its enabled/running ratio. The paper argues EvSel's repeated
// identically-configured runs "might yield better results when many
// counters are measured" — bench/ablation_event_cycling quantifies the
// trade-off using this implementation.
#pragma once

#include <vector>

#include "perf/session.hpp"
#include "trace/runner.hpp"

namespace npat::perf {

class MultiplexedSession {
 public:
  /// Rotates through the register-sized groups of `events` every
  /// `rotation_interval` cycles. Registers its rotation hook with `runner`;
  /// the session must outlive the run.
  MultiplexedSession(sim::Machine& machine, trace::Runner& runner,
                     std::vector<sim::Event> events, Cycles rotation_interval);

  void start();
  /// Scaled estimates: count / (running/enabled). Events never scheduled
  /// (enabled window shorter than one rotation) report value 0, estimated.
  std::vector<EventValue> stop();

  usize group_count() const noexcept { return groups_.size(); }
  /// Rotations that occurred so far (for tests).
  u64 rotations() const noexcept { return rotations_; }

 private:
  void rotate(Cycles now);
  void accumulate_current(Cycles now);

  struct Accumulation {
    double counted = 0.0;
    Cycles running = 0;  // cycles this event's group was armed
  };

  sim::Machine* machine_;
  std::vector<std::vector<sim::Event>> groups_;
  std::vector<Accumulation> per_event_;  // indexed by position in flat order
  std::vector<std::pair<sim::Event, usize>> flat_;  // event -> accumulator idx
  usize current_group_ = 0;
  sim::CounterBlock group_baseline_;
  Cycles group_started_ = 0;
  Cycles session_started_ = 0;
  Cycles last_seen_ = 0;
  u64 rotations_ = 0;
  bool running_ = false;
};

}  // namespace npat::perf
