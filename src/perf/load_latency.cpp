#include "perf/load_latency.hpp"

#include "util/check.hpp"

namespace npat::perf {

LoadLatencySession::LoadLatencySession(sim::Machine& machine) : machine_(&machine) {}

void LoadLatencySession::arm(Cycles threshold, u32 sample_period,
                             std::optional<sim::DataSource> source_filter) {
  NPAT_CHECK_MSG(!armed_, "a load-latency event is already armed (only one allowed)");
  threshold_ = threshold;
  armed_at_ = machine_->max_clock();
  baseline_.clear();
  baseline_.reserve(machine_->cores());
  for (u32 core = 0; core < machine_->cores(); ++core) {
    machine_->pmu(core).arm_pebs(sim::PebsConfig{threshold, sample_period, source_filter});
    baseline_.push_back(machine_->core_counters(core)[sim::Event::kLoadLatencyAbove]);
  }
  armed_ = true;
}

LoadLatencyReading LoadLatencySession::disarm() {
  NPAT_CHECK_MSG(armed_, "no load-latency event armed");
  LoadLatencyReading reading;
  reading.threshold = threshold_;
  reading.enabled_cycles = machine_->max_clock() - armed_at_;
  for (u32 core = 0; core < machine_->cores(); ++core) {
    auto& pmu = machine_->pmu(core);
    reading.loads_at_or_above +=
        machine_->core_counters(core)[sim::Event::kLoadLatencyAbove] - baseline_[core];
    auto samples = pmu.take_samples();
    reading.samples.insert(reading.samples.end(), samples.begin(), samples.end());
    pmu.disarm_pebs();
  }
  armed_ = false;
  return reading;
}

}  // namespace npat::perf
