// PEBS load-latency access — Memhist's measurement primitive.
//
// Hardware restriction (faithfully modelled): only a single load-latency
// threshold can be armed at a time, and it counts loads *at or above* the
// threshold. Getting a count for a latency interval therefore requires two
// threshold measurements and a subtraction; covering a whole latency range
// requires time-cycling thresholds (Memhist does this at 100 Hz).
#pragma once

#include <vector>

#include "sim/machine.hpp"
#include "sim/pmu.hpp"

namespace npat::perf {

struct LoadLatencyReading {
  Cycles threshold = 0;
  u64 loads_at_or_above = 0;
  Cycles enabled_cycles = 0;
  std::vector<sim::PebsRecord> samples;
};

class LoadLatencySession {
 public:
  explicit LoadLatencySession(sim::Machine& machine);

  /// Arms the given threshold on every core (replacing any previous one).
  /// `sample_period`: every Nth qualifying load yields a full PEBS record.
  /// `source_filter` restricts to loads served from one data source.
  void arm(Cycles threshold, u32 sample_period = 64,
           std::optional<sim::DataSource> source_filter = std::nullopt);

  /// Disarms and returns the accumulated reading for the armed window.
  LoadLatencyReading disarm();

  bool armed() const noexcept { return armed_; }
  Cycles threshold() const noexcept { return threshold_; }

 private:
  sim::Machine* machine_;
  bool armed_ = false;
  Cycles threshold_ = 0;
  Cycles armed_at_ = 0;
  std::vector<u64> baseline_;  // per core kLoadLatencyAbove at arm time
};

}  // namespace npat::perf
