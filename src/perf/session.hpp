// Counting sessions — the perf_event_open counting-mode analogue.
//
// The PMU exposes a limited number of programmable registers per core (and
// per uncore box). A CountingSession arms at most one register's worth of
// events per register; opening more than the hardware allows fails, exactly
// the constraint that forces EvSel to measure "batches of registers
// sequentially" over repeated program runs instead of event cycling.
#pragma once

#include <vector>

#include "sim/events.hpp"
#include "sim/machine.hpp"
#include "util/types.hpp"

namespace npat::perf {

inline constexpr usize kProgrammableCoreRegisters = 4;
inline constexpr usize kProgrammableUncoreRegisters = 4;

struct EventValue {
  sim::Event event = sim::Event::kCycles;
  double value = 0.0;
  /// True when the value was extrapolated from a partial enable window
  /// (multiplexing); exact counts are false.
  bool estimated = false;
};

/// Partitions `events` into groups that each fit the register constraints.
/// Fixed-counter events ride along with the first group for free.
std::vector<std::vector<sim::Event>> plan_event_groups(
    const std::vector<sim::Event>& events,
    usize core_registers = kProgrammableCoreRegisters,
    usize uncore_registers = kProgrammableUncoreRegisters);

/// Cores a session is attached to; empty = system-wide (every core and
/// every uncore box) — perf's "measured on the entire system or on
/// specific CPU cores" (§II-F).
using CpuSet = std::vector<sim::CoreId>;

/// Counting of one armed group via start/stop snapshots.
class CountingSession {
 public:
  /// Throws CheckError if `armed` exceeds the register constraints.
  /// `cpus` restricts core-scope events to those cores; uncore events are
  /// restricted to the sockets covered by `cpus`.
  CountingSession(sim::Machine& machine, std::vector<sim::Event> armed,
                  CpuSet cpus = {});

  void start();
  /// Returns exact deltas for the armed events since start().
  std::vector<EventValue> stop();

  const std::vector<sim::Event>& armed() const noexcept { return armed_; }

 private:
  sim::CounterBlock system_totals() const;

  sim::Machine* machine_;
  std::vector<sim::Event> armed_;
  CpuSet cpus_;
  sim::CounterBlock baseline_;
  bool running_ = false;
};

/// Validates a group against the register constraints (used by both the
/// session constructor and the planner); throws CheckError on violation.
void check_group_fits(const std::vector<sim::Event>& group, usize core_registers,
                      usize uncore_registers);

/// Per-task counter profile — the numatop row: who ran, where, and with
/// what memory behaviour. Counters are sums over every core's domain for
/// the task; `node` is the NUMA node that executed most of its cycles.
struct TaskProfile {
  u32 pid = 0;
  u32 tid = 0;
  sim::NodeId node = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 local_dram = 0;
  u64 remote_dram = 0;
  u64 remote_hitm = 0;
  u64 loads = 0;
  u64 latency_sum = 0;
  u64 latency_loads = 0;

  /// Remote memory accesses (numatop's RMA): remote DRAM + remote HITM.
  u64 rma() const noexcept { return remote_dram + remote_hitm; }
  /// Local memory accesses (numatop's LMA).
  u64 lma() const noexcept { return local_dram; }
  double rma_lma_ratio() const noexcept {
    return lma() > 0 ? static_cast<double>(rma()) / static_cast<double>(lma()) : 0.0;
  }
  double cpi() const noexcept {
    return instructions > 0 ? static_cast<double>(cycles) / static_cast<double>(instructions)
                            : 0.0;
  }
  double avg_load_latency() const noexcept {
    return latency_loads > 0
               ? static_cast<double>(latency_sum) / static_cast<double>(latency_loads)
               : 0.0;
  }
};

/// Reads the machine's per-task domains (flushing in-flight slices first)
/// and merges them across cores into one profile per (pid, tid), sorted by
/// (pid, tid). The per-task sibling of CountingSession's system totals.
std::vector<TaskProfile> read_task_profiles(sim::Machine& machine);

/// Per-task counting via start/stop snapshots — perf_event_open with a
/// pid argument instead of a cpu list. stop() returns only tasks that ran
/// between the snapshots (plus tasks first seen since start()).
class TaskCountingSession {
 public:
  explicit TaskCountingSession(sim::Machine& machine) : machine_(&machine) {}

  void start();
  std::vector<TaskProfile> stop();

 private:
  sim::Machine* machine_;
  std::vector<TaskProfile> baseline_;
  bool running_ = false;
};

}  // namespace npat::perf
