// Counting sessions — the perf_event_open counting-mode analogue.
//
// The PMU exposes a limited number of programmable registers per core (and
// per uncore box). A CountingSession arms at most one register's worth of
// events per register; opening more than the hardware allows fails, exactly
// the constraint that forces EvSel to measure "batches of registers
// sequentially" over repeated program runs instead of event cycling.
#pragma once

#include <vector>

#include "sim/events.hpp"
#include "sim/machine.hpp"
#include "util/types.hpp"

namespace npat::perf {

inline constexpr usize kProgrammableCoreRegisters = 4;
inline constexpr usize kProgrammableUncoreRegisters = 4;

struct EventValue {
  sim::Event event = sim::Event::kCycles;
  double value = 0.0;
  /// True when the value was extrapolated from a partial enable window
  /// (multiplexing); exact counts are false.
  bool estimated = false;
};

/// Partitions `events` into groups that each fit the register constraints.
/// Fixed-counter events ride along with the first group for free.
std::vector<std::vector<sim::Event>> plan_event_groups(
    const std::vector<sim::Event>& events,
    usize core_registers = kProgrammableCoreRegisters,
    usize uncore_registers = kProgrammableUncoreRegisters);

/// Cores a session is attached to; empty = system-wide (every core and
/// every uncore box) — perf's "measured on the entire system or on
/// specific CPU cores" (§II-F).
using CpuSet = std::vector<sim::CoreId>;

/// Counting of one armed group via start/stop snapshots.
class CountingSession {
 public:
  /// Throws CheckError if `armed` exceeds the register constraints.
  /// `cpus` restricts core-scope events to those cores; uncore events are
  /// restricted to the sockets covered by `cpus`.
  CountingSession(sim::Machine& machine, std::vector<sim::Event> armed,
                  CpuSet cpus = {});

  void start();
  /// Returns exact deltas for the armed events since start().
  std::vector<EventValue> stop();

  const std::vector<sim::Event>& armed() const noexcept { return armed_; }

 private:
  sim::CounterBlock system_totals() const;

  sim::Machine* machine_;
  std::vector<sim::Event> armed_;
  CpuSet cpus_;
  sim::CounterBlock baseline_;
  bool running_ = false;
};

/// Validates a group against the register constraints (used by both the
/// session constructor and the planner); throws CheckError on violation.
void check_group_fits(const std::vector<sim::Event>& group, usize core_registers,
                      usize uncore_registers);

}  // namespace npat::perf
