#include "perf/registry.hpp"

#include "util/json.hpp"

namespace npat::perf {

std::vector<sim::Event> available_events() {
  std::vector<sim::Event> out;
  out.reserve(sim::kEventCount);
  for (const auto& info : sim::all_events()) out.push_back(info.event);
  return out;
}

std::vector<sim::Event> events_with_scope(sim::EventScope scope) {
  std::vector<sim::Event> out;
  for (const auto& info : sim::all_events()) {
    if (info.scope == scope) out.push_back(info.event);
  }
  return out;
}

std::vector<sim::Event> events_in_category(std::string_view category) {
  std::vector<sim::Event> out;
  for (const auto& info : sim::all_events()) {
    if (info.category == category) out.push_back(info.event);
  }
  return out;
}

bool is_fixed(sim::Event event) {
  return sim::event_info(event).scope == sim::EventScope::kFixed;
}

bool is_uncore(sim::Event event) {
  return sim::event_info(event).scope == sim::EventScope::kUncore;
}

void write_event_file(const std::string& path) {
  util::write_file(path, sim::events_to_json().dump(2));
}

std::vector<sim::Event> load_event_file(const std::string& path) {
  const auto doc = util::Json::parse(util::read_file(path));
  std::vector<sim::Event> out;
  for (const auto& info : sim::events_from_json(doc)) out.push_back(info.event);
  return out;
}

}  // namespace npat::perf
