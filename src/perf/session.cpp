#include "perf/session.hpp"

#include "perf/registry.hpp"
#include "util/check.hpp"

namespace npat::perf {

void check_group_fits(const std::vector<sim::Event>& group, usize core_registers,
                      usize uncore_registers) {
  usize core_used = 0;
  usize uncore_used = 0;
  for (sim::Event event : group) {
    if (is_fixed(event)) continue;
    if (is_uncore(event)) {
      ++uncore_used;
    } else {
      ++core_used;
    }
  }
  NPAT_CHECK_MSG(core_used <= core_registers,
                 "not enough programmable core counter registers for this group");
  NPAT_CHECK_MSG(uncore_used <= uncore_registers,
                 "not enough programmable uncore counter registers for this group");
}

std::vector<std::vector<sim::Event>> plan_event_groups(const std::vector<sim::Event>& events,
                                                       usize core_registers,
                                                       usize uncore_registers) {
  NPAT_CHECK_MSG(core_registers > 0 && uncore_registers > 0,
                 "register capacities must be positive");
  std::vector<std::vector<sim::Event>> groups;
  std::vector<sim::Event> fixed;
  std::vector<sim::Event> core;
  std::vector<sim::Event> uncore;
  for (sim::Event event : events) {
    if (is_fixed(event)) {
      fixed.push_back(event);
    } else if (is_uncore(event)) {
      uncore.push_back(event);
    } else {
      core.push_back(event);
    }
  }

  usize core_index = 0;
  usize uncore_index = 0;
  while (core_index < core.size() || uncore_index < uncore.size() || !fixed.empty()) {
    std::vector<sim::Event> group;
    // Fixed counters are free; attach them to the first group.
    group.insert(group.end(), fixed.begin(), fixed.end());
    fixed.clear();
    for (usize r = 0; r < core_registers && core_index < core.size(); ++r) {
      group.push_back(core[core_index++]);
    }
    for (usize r = 0; r < uncore_registers && uncore_index < uncore.size(); ++r) {
      group.push_back(uncore[uncore_index++]);
    }
    if (group.empty()) break;
    groups.push_back(std::move(group));
  }
  return groups;
}

CountingSession::CountingSession(sim::Machine& machine, std::vector<sim::Event> armed,
                                 CpuSet cpus)
    : machine_(&machine), armed_(std::move(armed)), cpus_(std::move(cpus)) {
  NPAT_CHECK_MSG(!armed_.empty(), "counting session needs at least one event");
  check_group_fits(armed_, kProgrammableCoreRegisters, kProgrammableUncoreRegisters);
  for (const sim::CoreId core : cpus_) {
    NPAT_CHECK_MSG(core < machine_->cores(), "cpu set contains an invalid core");
  }
}

sim::CounterBlock CountingSession::system_totals() const {
  if (cpus_.empty()) return machine_->aggregate_counters();
  sim::CounterBlock total;
  std::vector<bool> node_seen(machine_->nodes(), false);
  for (const sim::CoreId core : cpus_) {
    total += machine_->core_counters(core);
    const sim::NodeId node = machine_->topology().node_of_core(core);
    if (!node_seen[node]) {
      node_seen[node] = true;
      total += machine_->uncore_counters(node);
    }
  }
  return total;
}

void CountingSession::start() {
  NPAT_CHECK_MSG(!running_, "session already started");
  baseline_ = system_totals();
  running_ = true;
}

std::vector<EventValue> CountingSession::stop() {
  NPAT_CHECK_MSG(running_, "session not started");
  running_ = false;
  const sim::CounterBlock now = system_totals();
  std::vector<EventValue> out;
  out.reserve(armed_.size());
  for (sim::Event event : armed_) {
    const u64 delta = now[event] - baseline_[event];
    out.push_back(EventValue{event, static_cast<double>(delta), false});
  }
  return out;
}

}  // namespace npat::perf
