#include "perf/session.hpp"

#include <algorithm>
#include <map>

#include "perf/registry.hpp"
#include "util/check.hpp"

namespace npat::perf {

void check_group_fits(const std::vector<sim::Event>& group, usize core_registers,
                      usize uncore_registers) {
  usize core_used = 0;
  usize uncore_used = 0;
  for (sim::Event event : group) {
    if (is_fixed(event)) continue;
    if (is_uncore(event)) {
      ++uncore_used;
    } else {
      ++core_used;
    }
  }
  NPAT_CHECK_MSG(core_used <= core_registers,
                 "not enough programmable core counter registers for this group");
  NPAT_CHECK_MSG(uncore_used <= uncore_registers,
                 "not enough programmable uncore counter registers for this group");
}

std::vector<std::vector<sim::Event>> plan_event_groups(const std::vector<sim::Event>& events,
                                                       usize core_registers,
                                                       usize uncore_registers) {
  NPAT_CHECK_MSG(core_registers > 0 && uncore_registers > 0,
                 "register capacities must be positive");
  std::vector<std::vector<sim::Event>> groups;
  std::vector<sim::Event> fixed;
  std::vector<sim::Event> core;
  std::vector<sim::Event> uncore;
  for (sim::Event event : events) {
    if (is_fixed(event)) {
      fixed.push_back(event);
    } else if (is_uncore(event)) {
      uncore.push_back(event);
    } else {
      core.push_back(event);
    }
  }

  usize core_index = 0;
  usize uncore_index = 0;
  while (core_index < core.size() || uncore_index < uncore.size() || !fixed.empty()) {
    std::vector<sim::Event> group;
    // Fixed counters are free; attach them to the first group.
    group.insert(group.end(), fixed.begin(), fixed.end());
    fixed.clear();
    for (usize r = 0; r < core_registers && core_index < core.size(); ++r) {
      group.push_back(core[core_index++]);
    }
    for (usize r = 0; r < uncore_registers && uncore_index < uncore.size(); ++r) {
      group.push_back(uncore[uncore_index++]);
    }
    if (group.empty()) break;
    groups.push_back(std::move(group));
  }
  return groups;
}

CountingSession::CountingSession(sim::Machine& machine, std::vector<sim::Event> armed,
                                 CpuSet cpus)
    : machine_(&machine), armed_(std::move(armed)), cpus_(std::move(cpus)) {
  NPAT_CHECK_MSG(!armed_.empty(), "counting session needs at least one event");
  check_group_fits(armed_, kProgrammableCoreRegisters, kProgrammableUncoreRegisters);
  for (const sim::CoreId core : cpus_) {
    NPAT_CHECK_MSG(core < machine_->cores(), "cpu set contains an invalid core");
  }
}

sim::CounterBlock CountingSession::system_totals() const {
  if (cpus_.empty()) return machine_->aggregate_counters();
  sim::CounterBlock total;
  std::vector<bool> node_seen(machine_->nodes(), false);
  for (const sim::CoreId core : cpus_) {
    total += machine_->core_counters(core);
    const sim::NodeId node = machine_->topology().node_of_core(core);
    if (!node_seen[node]) {
      node_seen[node] = true;
      total += machine_->uncore_counters(node);
    }
  }
  return total;
}

void CountingSession::start() {
  NPAT_CHECK_MSG(!running_, "session already started");
  baseline_ = system_totals();
  running_ = true;
}

std::vector<EventValue> CountingSession::stop() {
  NPAT_CHECK_MSG(running_, "session not started");
  running_ = false;
  const sim::CounterBlock now = system_totals();
  std::vector<EventValue> out;
  out.reserve(armed_.size());
  for (sim::Event event : armed_) {
    const u64 delta = now[event] - baseline_[event];
    out.push_back(EventValue{event, static_cast<double>(delta), false});
  }
  return out;
}

std::vector<TaskProfile> read_task_profiles(sim::Machine& machine) {
  machine.flush_task_accounting();
  std::map<sim::TaskKey, TaskProfile> merged;
  std::map<sim::TaskKey, std::vector<u64>> node_cycles;
  for (u32 core = 0; core < machine.cores(); ++core) {
    const sim::NodeId node = machine.topology().node_of_core(core);
    for (const auto& [key, domain] : machine.pmu(core).task_domains()) {
      TaskProfile& profile = merged[key];
      profile.pid = key.pid;
      profile.tid = key.tid;
      profile.instructions += domain.counters[sim::Event::kInstructions];
      profile.cycles += domain.counters[sim::Event::kCycles];
      profile.local_dram += domain.counters[sim::Event::kMemLoadLocalDram];
      profile.remote_dram += domain.counters[sim::Event::kMemLoadRemoteDram];
      profile.remote_hitm += domain.counters[sim::Event::kMemLoadRemoteHitm];
      profile.loads += domain.counters[sim::Event::kLoadsRetired];
      profile.latency_sum += domain.latency_sum;
      profile.latency_loads += domain.latency_loads;
      auto& cycles_by_node = node_cycles[key];
      cycles_by_node.resize(machine.nodes());
      cycles_by_node[node] += domain.counters[sim::Event::kCycles];
    }
  }
  std::vector<TaskProfile> out;
  out.reserve(merged.size());
  for (auto& [key, profile] : merged) {
    const auto& cycles_by_node = node_cycles[key];
    const auto dominant = std::max_element(cycles_by_node.begin(), cycles_by_node.end());
    profile.node = static_cast<sim::NodeId>(dominant - cycles_by_node.begin());
    out.push_back(profile);
  }
  return out;  // std::map iteration => sorted by (pid, tid)
}

void TaskCountingSession::start() {
  NPAT_CHECK_MSG(!running_, "session already started");
  baseline_ = read_task_profiles(*machine_);
  running_ = true;
}

std::vector<TaskProfile> TaskCountingSession::stop() {
  NPAT_CHECK_MSG(running_, "session not started");
  running_ = false;
  std::map<std::pair<u32, u32>, TaskProfile> base;
  for (const TaskProfile& profile : baseline_) base[{profile.pid, profile.tid}] = profile;
  std::vector<TaskProfile> out;
  for (TaskProfile profile : read_task_profiles(*machine_)) {
    const auto it = base.find({profile.pid, profile.tid});
    if (it != base.end()) {
      const TaskProfile& b = it->second;
      profile.instructions -= b.instructions;
      profile.cycles -= b.cycles;
      profile.local_dram -= b.local_dram;
      profile.remote_dram -= b.remote_dram;
      profile.remote_hitm -= b.remote_hitm;
      profile.loads -= b.loads;
      profile.latency_sum -= b.latency_sum;
      profile.latency_loads -= b.latency_loads;
    }
    if (profile.cycles > 0 || profile.instructions > 0 || profile.loads > 0) {
      out.push_back(profile);
    }
  }
  return out;
}

}  // namespace npat::perf
