// Platform event discovery — the perf-list analogue EvSel builds on. The
// registry can be exported to and re-imported from the Intel-style JSON
// event file the paper describes ("event codes available on the platform
// are read from a JSON file that provides descriptions for the events").
#pragma once

#include <string>
#include <vector>

#include "sim/events.hpp"

namespace npat::perf {

/// All events the platform exposes, optionally filtered.
std::vector<sim::Event> available_events();
std::vector<sim::Event> events_with_scope(sim::EventScope scope);
std::vector<sim::Event> events_in_category(std::string_view category);

/// Fixed-counter events (measurable without consuming a programmable
/// register).
bool is_fixed(sim::Event event);
bool is_uncore(sim::Event event);

/// Writes the platform event file; EvSel reads it back at startup.
void write_event_file(const std::string& path);
/// Loads an event file; events unknown to this platform are skipped.
std::vector<sim::Event> load_event_file(const std::string& path);

}  // namespace npat::perf
