#include "perf/multiplex.hpp"

#include "util/check.hpp"

namespace npat::perf {

MultiplexedSession::MultiplexedSession(sim::Machine& machine, trace::Runner& runner,
                                       std::vector<sim::Event> events,
                                       Cycles rotation_interval)
    : machine_(&machine), groups_(plan_event_groups(events)) {
  NPAT_CHECK_MSG(!groups_.empty(), "multiplexed session needs at least one event");
  NPAT_CHECK_MSG(rotation_interval > 0, "rotation interval must be positive");
  for (usize g = 0; g < groups_.size(); ++g) {
    for (sim::Event event : groups_[g]) {
      flat_.emplace_back(event, per_event_.size());
      per_event_.push_back(Accumulation{});
    }
  }
  runner.add_sampler(rotation_interval, [this](Cycles now) { rotate(now); });
}

void MultiplexedSession::start() {
  NPAT_CHECK_MSG(!running_, "session already started");
  running_ = true;
  current_group_ = 0;
  rotations_ = 0;
  for (auto& acc : per_event_) acc = Accumulation{};
  group_baseline_ = machine_->aggregate_counters();
  session_started_ = machine_->max_clock();
  group_started_ = session_started_;
  last_seen_ = session_started_;
}

void MultiplexedSession::accumulate_current(Cycles now) {
  const sim::CounterBlock totals = machine_->aggregate_counters();
  const Cycles window = now > group_started_ ? now - group_started_ : 0;
  // Find the flat accumulator range of the current group.
  usize flat_index = 0;
  for (usize g = 0; g < current_group_; ++g) flat_index += groups_[g].size();
  for (usize i = 0; i < groups_[current_group_].size(); ++i) {
    const sim::Event event = groups_[current_group_][i];
    auto& acc = per_event_[flat_[flat_index + i].second];
    acc.counted += static_cast<double>(totals[event] - group_baseline_[event]);
    acc.running += window;
  }
  group_baseline_ = totals;
  group_started_ = now;
}

void MultiplexedSession::rotate(Cycles now) {
  if (!running_) return;
  accumulate_current(now);
  current_group_ = (current_group_ + 1) % groups_.size();
  ++rotations_;
  last_seen_ = now;
}

std::vector<EventValue> MultiplexedSession::stop() {
  NPAT_CHECK_MSG(running_, "session not started");
  const Cycles now = machine_->max_clock();
  accumulate_current(now);
  running_ = false;

  const Cycles enabled = now > session_started_ ? now - session_started_ : 1;
  std::vector<EventValue> out;
  out.reserve(flat_.size());
  for (const auto& [event, index] : flat_) {
    const auto& acc = per_event_[index];
    EventValue value;
    value.event = event;
    // perf's scaling rule: estimate = counted * enabled / running.
    value.value = acc.running > 0
                      ? acc.counted * static_cast<double>(enabled) /
                            static_cast<double>(acc.running)
                      : 0.0;
    value.estimated = acc.running < enabled;
    out.push_back(value);
  }
  return out;
}

}  // namespace npat::perf
