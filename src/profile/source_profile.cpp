#include "profile/source_profile.hpp"

#include <algorithm>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::profile {

void SourceProfile::register_region(u32 tag, std::string name) {
  names_[tag] = std::move(name);
}

void SourceProfile::attach(trace::Runner& runner) {
  runner.set_tag_sink(
      [this](u32 tag, const sim::CounterBlock& delta) { record(tag, delta); });
}

void SourceProfile::record(u32 tag, const sim::CounterBlock& delta) {
  totals_[tag] += delta;
}

u64 SourceProfile::count(u32 tag, sim::Event event) const {
  const auto it = totals_.find(tag);
  return it == totals_.end() ? 0 : it->second[event];
}

double SourceProfile::share(u32 tag, sim::Event event) const {
  u64 total = 0;
  for (const auto& [t, block] : totals_) total += block[event];
  if (total == 0) return 0.0;
  return static_cast<double>(count(tag, event)) / static_cast<double>(total);
}

std::vector<u32> SourceProfile::tags() const {
  std::vector<u32> out;
  for (const auto& [tag, block] : totals_) out.push_back(tag);
  return out;
}

const std::string& SourceProfile::region_name(u32 tag) const {
  static const std::string kUntagged = "(untagged)";
  const auto it = names_.find(tag);
  if (it != names_.end()) return it->second;
  if (tag == kUntaggedRegion) return kUntagged;
  static thread_local std::string fallback;
  fallback = "region-" + std::to_string(tag);
  return fallback;
}

std::string SourceProfile::report(const std::vector<sim::Event>& columns,
                                  sim::Event sort_by) const {
  std::vector<u32> ordered = tags();
  std::stable_sort(ordered.begin(), ordered.end(), [&](u32 a, u32 b) {
    return count(a, sort_by) > count(b, sort_by);
  });

  std::vector<std::string> headers = {"region",
                                      std::string(sim::event_name(sort_by)) + " %"};
  for (const sim::Event event : columns) {
    headers.push_back(std::string(sim::event_name(event)));
  }
  util::Table table(headers);
  table.set_title("source-region attribution (sorted by " +
                  std::string(sim::event_name(sort_by)) + ")");
  for (usize c = 1; c < headers.size(); ++c) table.set_align(c, util::Align::kRight);

  for (const u32 tag : ordered) {
    std::vector<std::string> row = {region_name(tag),
                                    util::format("%.1f %%", share(tag, sort_by) * 100)};
    for (const sim::Event event : columns) {
      row.push_back(util::si_scaled(static_cast<double>(count(tag, event))));
    }
    table.add_row(row);
  }
  return table.render();
}

util::Json SourceProfile::to_json() const {
  util::JsonArray regions;
  for (const auto& [tag, block] : totals_) {
    util::JsonObject region;
    region["tag"] = static_cast<u64>(tag);
    region["name"] = region_name(tag);
    util::JsonObject counters;
    for (const auto& info : sim::all_events()) {
      if (block[info.event] > 0) counters[std::string(info.name)] = block[info.event];
    }
    region["counters"] = std::move(counters);
    regions.emplace_back(std::move(region));
  }
  util::JsonObject doc;
  doc["regions"] = std::move(regions);
  return util::Json(std::move(doc));
}

void SourceProfile::clear() { totals_.clear(); }

}  // namespace npat::profile
