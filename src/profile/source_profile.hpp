// Counter→code-location attribution — the paper's outlook: "the mapping
// from events to lines of code was merely covered in this paper, yet this
// information is important to developers when searching for performance
// bottlenecks in their applications."
//
// Workload bodies mark code regions with ThreadContext::set_source_tag();
// the runner delivers per-region counter deltas to a SourceProfile, which
// aggregates them into a perf-report-style hotspot table. Attribution is
// exact (counter snapshots at region boundaries), not sampled.
//
// Limitation: deltas are per *core*; if several simulated threads share a
// core (oversubscription), their regions overlap in the core's counters.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/events.hpp"
#include "trace/runner.hpp"

namespace npat::profile {

inline constexpr u32 kUntaggedRegion = 0;

class SourceProfile {
 public:
  /// Names a region tag (e.g. tag 1 -> "fill", tag 2 -> "merge").
  void register_region(u32 tag, std::string name);

  /// Binds this profile to a runner (installs the tag sink). The profile
  /// must outlive the run.
  void attach(trace::Runner& runner);

  /// Accumulates one region delta (also the raw tag-sink entry point).
  void record(u32 tag, const sim::CounterBlock& delta);

  // --- queries ---
  u64 count(u32 tag, sim::Event event) const;
  /// Fraction of the profile's total for `event` attributed to `tag`.
  double share(u32 tag, sim::Event event) const;
  std::vector<u32> tags() const;
  const std::string& region_name(u32 tag) const;
  usize regions_recorded() const { return totals_.size(); }

  /// Hotspot table ordered by `sort_by` (descending), one row per region,
  /// with the given event columns.
  std::string report(const std::vector<sim::Event>& columns = {
                         sim::Event::kCycles, sim::Event::kInstructions,
                         sim::Event::kL1dMiss, sim::Event::kL3Miss,
                         sim::Event::kMemLoadRemoteDram},
                     sim::Event sort_by = sim::Event::kCycles) const;

  util::Json to_json() const;
  void clear();

 private:
  std::map<u32, sim::CounterBlock> totals_;
  std::map<u32, std::string> names_;
};

}  // namespace npat::profile
