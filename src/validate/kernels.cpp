#include "validate/kernels.hpp"

#include <cmath>
#include <memory>

#include "sim/pmu.hpp"
#include "util/check.hpp"

namespace npat::validate {

namespace {

using sim::Event;
using trace::Program;
using trace::SimTask;
using trace::ThreadContext;

// Kernel sizing. Working sets are chosen so the analytics hold on every
// preset: all presets share the 32 KiB / 8-way L1 and 256 KiB / 8-way L2,
// and the smallest L3 (dual_socket_small, 4 MiB) still fully holds the
// 1 MiB chase footprint.
constexpr u64 kAluInstructions = 1'000'000;
constexpr u64 kBranchCount = 4096;
constexpr u64 kBranchSite = 0xb7a9c5;
constexpr u64 kAtomicCount = 512;
constexpr u64 kL1Lines = 256;    // 16 KiB: half the L1
constexpr u32 kL1Passes = 4;     // read passes after the fill pass
constexpr u64 kSpillLines = 1024;  // 64 KiB of stores: twice the L1
constexpr u64 kL2Lines = 2048;   // 128 KiB: half the L2, 4x the L1
constexpr u32 kL2Passes = 3;
constexpr u64 kChaseLines = 16384;  // 1 MiB: 4x the L2, inside every L3
constexpr u32 kChasePasses = 2;     // passes after the fill pass
constexpr u64 kChaseStride = 17;    // coprime with kChaseLines; > 8 lines,
                                    // so only the LLC streamer may engage
constexpr u64 kRemoteLines = 4096;  // 256 KiB touched once on node 1
constexpr u64 kHitmLines = 256;     // fits the producer L1 with headroom
constexpr u64 kTlbPages = 128;      // 2x the DTLB, inside the STLB
constexpr u32 kTlbPasses = 2;
constexpr u64 kPebsLines = 256;
constexpr u32 kPebsPasses = 2;
constexpr Cycles kPebsThreshold = 80;  // between L1-hit (~4) and DRAM (~190)
constexpr u64 kSwMigrations = 7;

void disable_prefetcher(sim::MachineConfig& config) { config.prefetcher.degree = 0; }

double atomic_cycles(const sim::MachineConfig& c) {
  return static_cast<double>(c.atomic_latency);
}
double walk_lo(const sim::MachineConfig& c, u64 walks) {
  return static_cast<double>(walks * c.tlb.walk_latency);
}
double walk_hi(const sim::MachineConfig& c, u64 walks) {
  return static_cast<double>(walks * (c.tlb.walk_latency + 7));
}

std::vector<Expectation> zero_memory_events() {
  std::vector<Expectation> out;
  for (Event e : {Event::kL1dAccess, Event::kL1dHit, Event::kL1dMiss, Event::kL1dEviction,
                  Event::kL1dLocks, Event::kL2Access, Event::kL2Hit, Event::kL2Miss,
                  Event::kL2Eviction, Event::kL2PrefetchRequests, Event::kL3Access,
                  Event::kL3Hit, Event::kL3Miss, Event::kL3PrefetchRequests,
                  Event::kFillBufferAllocations, Event::kFillBufferRejects,
                  Event::kDtlbAccess, Event::kDtlbMiss, Event::kStlbHit, Event::kPageWalks,
                  Event::kPageWalkCycles, Event::kLoadsRetired, Event::kStoresRetired,
                  Event::kMemLoadL1Hit, Event::kMemLoadL2Hit, Event::kMemLoadL3Hit,
                  Event::kMemLoadLocalDram, Event::kMemLoadRemoteDram,
                  Event::kMemLoadRemoteHitm, Event::kLoadLatencyAbove, Event::kAtomicOps,
                  Event::kLockCycles, Event::kUncLlcLookups, Event::kUncLlcMisses,
                  Event::kUncImcReads, Event::kUncImcWrites, Event::kUncQpiTxFlits,
                  Event::kUncSnoopsReceived, Event::kUncHitmResponses}) {
    out.push_back(Expectation::exact(e, 0));
  }
  return out;
}

// --- kernel bodies (free coroutines; parameters are copied into the frame,
// so the wrapping lambdas may return immediately) ---

SimTask alu_body(ThreadContext& ctx) { co_await ctx.compute(kAluInstructions); }

SimTask branch_body(ThreadContext& ctx) {
  // Pseudo-random taken pattern (fixed LCG): regular patterns — including
  // plain alternation — fit inside the gshare history and would be
  // *learned*, collapsing the misprediction band to zero.
  u64 x = 0x9e3779b97f4a7c15ULL;
  for (u64 i = 0; i < kBranchCount; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    co_await ctx.branch(kBranchSite, ((x >> 33) & 1) != 0);
  }
}

SimTask atomic_body(ThreadContext& ctx) {
  const VirtAddr base = ctx.alloc(kCacheLineBytes);
  for (u64 i = 0; i < kAtomicCount; ++i) co_await ctx.atomic(base);
}

SimTask sweep_loads_body(ThreadContext& ctx, u64 lines, u32 extra_passes) {
  const VirtAddr base = ctx.alloc(lines * kCacheLineBytes);
  for (u32 pass = 0; pass < extra_passes + 1; ++pass) {
    for (u64 i = 0; i < lines; ++i) co_await ctx.load(base + i * kCacheLineBytes);
  }
}

SimTask sweep_stores_body(ThreadContext& ctx, u64 lines) {
  const VirtAddr base = ctx.alloc(lines * kCacheLineBytes);
  for (u64 i = 0; i < lines; ++i) co_await ctx.store(base + i * kCacheLineBytes);
}

SimTask chase_body(ThreadContext& ctx, u64 lines, u64 stride, u32 extra_passes) {
  // Pointer-chase permutation i -> (i * stride) mod lines (stride coprime
  // with lines). The simulator models costs, not data, so the chase is the
  // address sequence itself: exactly `lines` loads per pass, each line
  // visited exactly once.
  const VirtAddr base = ctx.alloc(lines * kCacheLineBytes);
  for (u32 pass = 0; pass < extra_passes + 1; ++pass) {
    u64 line = 0;
    for (u64 i = 0; i < lines; ++i) {
      co_await ctx.load(base + line * kCacheLineBytes);
      line = (line + stride) % lines;
    }
  }
}

SimTask remote_body(ThreadContext& ctx) {
  const VirtAddr base =
      ctx.alloc(kRemoteLines * kCacheLineBytes, os::PagePolicy::kBind, /*bind_node=*/1);
  for (u64 i = 0; i < kRemoteLines; ++i) co_await ctx.load(base + i * kCacheLineBytes);
}

struct HitmShared {
  VirtAddr base = 0;
};

SimTask hitm_producer_body(ThreadContext& ctx, std::shared_ptr<HitmShared> shared) {
  shared->base = ctx.alloc(kHitmLines * kCacheLineBytes);
  for (u64 i = 0; i < kHitmLines; ++i) {
    co_await ctx.store(shared->base + i * kCacheLineBytes);
  }
  co_await ctx.barrier(1);
}

SimTask hitm_consumer_body(ThreadContext& ctx, std::shared_ptr<HitmShared> shared) {
  co_await ctx.barrier(1);
  for (u64 i = 0; i < kHitmLines; ++i) {
    co_await ctx.load(shared->base + i * kCacheLineBytes);
  }
}

SimTask tlb_body(ThreadContext& ctx) {
  const VirtAddr base = ctx.alloc(kTlbPages * kPageBytes);
  for (u32 pass = 0; pass < kTlbPasses + 1; ++pass) {
    for (u64 p = 0; p < kTlbPages; ++p) co_await ctx.load(base + p * kPageBytes);
  }
}

SimTask sw_body(ThreadContext& ctx) { co_await ctx.compute(10); }

std::vector<KernelSpec> build_suite() {
  std::vector<KernelSpec> suite;

  // --- alu: pure computation, analytically exact cycle/instruction/energy
  // counts and an exact zero for every memory-path event ---
  {
    KernelSpec k;
    k.name = "alu";
    k.description = "1M ALU instructions, no memory: exact cycles/energy, zero elsewhere";
    k.make_program = [] { return Program::single(alu_body); };
    k.expects = [](const sim::MachineConfig& c) {
      const double instr = static_cast<double>(kAluInstructions);
      const double cycles = static_cast<double>(
          std::max<Cycles>(1, static_cast<Cycles>(std::llround(instr / c.base_ipc))));
      const double microjoules = static_cast<double>(static_cast<u64>(
          std::llround(instr * c.energy_pj_per_instruction / 1e6)));
      auto out = zero_memory_events();
      out.push_back(Expectation::exact(Event::kCycles, cycles));
      out.push_back(Expectation::exact(Event::kRefCycles, cycles));
      out.push_back(Expectation::exact(Event::kInstructions, instr));
      out.push_back(Expectation::exact(Event::kUopsIssued, instr));
      out.push_back(Expectation::exact(Event::kUopsRetired, instr));
      out.push_back(Expectation::exact(Event::kStallCyclesTotal, 0));
      out.push_back(Expectation::exact(Event::kStallCyclesMem, 0));
      out.push_back(Expectation::exact(Event::kBranches, 0));
      out.push_back(Expectation::exact(Event::kBranchMisses, 0));
      out.push_back(Expectation::exact(Event::kSpeculativeJumpsRetired, 0));
      out.push_back(Expectation::exact(Event::kSwPageMigrations, 0));
      out.push_back(Expectation::exact(Event::kUncEnergyMicroJoules, microjoules));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- branch_weather: exact branch counts, banded prediction events ---
  {
    KernelSpec k;
    k.name = "branch_weather";
    k.description = "4k branches with an LCG taken pattern: exact retirement, banded misses";
    k.make_program = [] { return Program::single(branch_body); };
    k.expects = [](const sim::MachineConfig& c) {
      const double n = static_cast<double>(kBranchCount);
      const double penalty = static_cast<double>(c.branch.misprediction_penalty);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kBranches, n));
      out.push_back(Expectation::exact(Event::kInstructions, n));
      out.push_back(Expectation::exact(Event::kUopsRetired, n));
      // gshare on an LCG pattern sits near 50 % mispredictions; anything
      // outside [1/8, 7/8] means the predictor or the counter broke.
      out.push_back(Expectation::band(Event::kBranchMisses, n / 8, n * 7 / 8));
      out.push_back(Expectation::band(Event::kSpeculativeJumpsRetired, 1, n));
      // Each mispredict issues 4 squashed uops and stalls `penalty` cycles.
      out.push_back(Expectation::band(Event::kUopsIssued, n, n + 4 * n));
      out.push_back(Expectation::band(Event::kCycles, n, n * (1 + penalty)));
      out.push_back(Expectation::exact(Event::kL1dAccess, 0));
      out.push_back(Expectation::exact(Event::kLoadsRetired, 0));
      out.push_back(Expectation::exact(Event::kDtlbAccess, 0));
      out.push_back(Expectation::exact(Event::kAtomicOps, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- atomic_ticket: K locked RMWs on one line ---
  {
    KernelSpec k;
    k.name = "atomic_ticket";
    k.description = "512 locked RMWs on one line: exact atomic/lock-cycle counts";
    k.make_program = [] { return Program::single(atomic_body); };
    k.expects = [](const sim::MachineConfig& c) {
      const double n = static_cast<double>(kAtomicCount);
      const double lock = atomic_cycles(c);
      // The single page walk stalls floor(walk/2) with walk in
      // [walk_latency, walk_latency + 7].
      const double stall_lo = std::floor(static_cast<double>(c.tlb.walk_latency) / 2);
      const double stall_hi = std::floor(static_cast<double>(c.tlb.walk_latency + 7) / 2);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kAtomicOps, n));
      out.push_back(Expectation::exact(Event::kLockCycles, n * lock));
      out.push_back(Expectation::exact(Event::kL1dLocks, n + 1));
      out.push_back(Expectation::exact(Event::kStoresRetired, n));
      out.push_back(Expectation::exact(Event::kLoadsRetired, 0));
      out.push_back(Expectation::exact(Event::kInstructions, n));
      out.push_back(Expectation::exact(Event::kDtlbAccess, n));
      out.push_back(Expectation::exact(Event::kDtlbMiss, 1));
      out.push_back(Expectation::exact(Event::kPageWalks, 1));
      out.push_back(Expectation::exact(Event::kStlbHit, 0));
      out.push_back(Expectation::band(Event::kPageWalkCycles, walk_lo(c, 1), walk_hi(c, 1)));
      out.push_back(Expectation::exact(Event::kL1dAccess, n));
      out.push_back(Expectation::exact(Event::kL1dHit, n - 1));
      out.push_back(Expectation::exact(Event::kL1dMiss, 1));
      out.push_back(Expectation::exact(Event::kL2Access, 1));
      out.push_back(Expectation::exact(Event::kL2Miss, 1));
      out.push_back(Expectation::exact(Event::kL3Access, 1));
      out.push_back(Expectation::exact(Event::kL3Miss, 1));
      out.push_back(Expectation::exact(Event::kUncLlcLookups, 1));
      out.push_back(Expectation::exact(Event::kUncLlcMisses, 1));
      out.push_back(Expectation::exact(Event::kUncImcWrites, 1));
      out.push_back(Expectation::exact(Event::kUncImcReads, 0));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, 1));
      out.push_back(Expectation::exact(Event::kFillBufferRejects, 0));
      out.push_back(Expectation::band(Event::kStallCyclesMem, n * lock + stall_lo,
                                      n * lock + stall_hi));
      out.push_back(Expectation::band(Event::kStallCyclesTotal, n * lock + stall_lo,
                                      n * lock + stall_hi));
      out.push_back(Expectation::band(Event::kCycles, n * (lock + 1) + stall_lo,
                                      n * (lock + 1) + stall_hi));
      out.push_back(Expectation::exact(Event::kMemLoadL1Hit, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- l1_resident: working set at half the L1, exact hit/miss split ---
  {
    KernelSpec k;
    k.name = "l1_resident";
    k.description = "16 KiB load loop: exact L1 hit/miss split and DRAM fill counts";
    k.prepare = disable_prefetcher;
    k.make_program = [] {
      return Program::single(
          [](ThreadContext& ctx) { return sweep_loads_body(ctx, kL1Lines, kL1Passes); });
    };
    k.expects = [](const sim::MachineConfig& c) {
      const double ws = static_cast<double>(kL1Lines);
      const double total = ws * (kL1Passes + 1);
      const double pages = static_cast<double>(kL1Lines * kCacheLineBytes / kPageBytes);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kLoadsRetired, total));
      out.push_back(Expectation::exact(Event::kStoresRetired, 0));
      out.push_back(Expectation::exact(Event::kL1dAccess, total));
      out.push_back(Expectation::exact(Event::kL1dHit, total - ws));
      out.push_back(Expectation::exact(Event::kMemLoadL1Hit, total - ws));
      out.push_back(Expectation::exact(Event::kL1dMiss, ws));
      out.push_back(Expectation::exact(Event::kL1dEviction, 0));
      out.push_back(Expectation::exact(Event::kL2Access, ws));
      out.push_back(Expectation::exact(Event::kL2Hit, 0));
      out.push_back(Expectation::exact(Event::kL2Miss, ws));
      out.push_back(Expectation::exact(Event::kL2Eviction, 0));
      out.push_back(Expectation::exact(Event::kL3Access, ws));
      out.push_back(Expectation::exact(Event::kL3Hit, 0));
      out.push_back(Expectation::exact(Event::kL3Miss, ws));
      out.push_back(Expectation::exact(Event::kUncLlcLookups, ws));
      out.push_back(Expectation::exact(Event::kUncLlcMisses, ws));
      out.push_back(Expectation::exact(Event::kUncImcReads, ws));
      out.push_back(Expectation::exact(Event::kUncImcWrites, 0));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, ws));
      out.push_back(Expectation::exact(Event::kMemLoadRemoteDram, 0));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, ws));
      out.push_back(Expectation::exact(Event::kDtlbAccess, total));
      out.push_back(Expectation::exact(Event::kDtlbMiss, pages));
      out.push_back(Expectation::exact(Event::kPageWalks, pages));
      out.push_back(Expectation::exact(Event::kStlbHit, 0));
      out.push_back(Expectation::band(Event::kPageWalkCycles, walk_lo(c, kL1Lines * 64 / 4096),
                                      walk_hi(c, kL1Lines * 64 / 4096)));
      out.push_back(Expectation::exact(Event::kL2PrefetchRequests, 0));
      out.push_back(Expectation::exact(Event::kL3PrefetchRequests, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- store_spill: streaming stores at twice the L1, exact dirty
  // evictions (the only path that increments l1d eviction) ---
  {
    KernelSpec k;
    k.name = "store_spill";
    k.description = "64 KiB store stream: exact dirty-eviction and IMC-write counts";
    k.prepare = disable_prefetcher;
    k.make_program = [] {
      return Program::single([](ThreadContext& ctx) { return sweep_stores_body(ctx, kSpillLines); });
    };
    k.expects = [](const sim::MachineConfig& c) {
      const double ws = static_cast<double>(kSpillLines);
      const double l1_lines = static_cast<double>(c.l1.lines());
      const double pages = static_cast<double>(kSpillLines * kCacheLineBytes / kPageBytes);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kStoresRetired, ws));
      out.push_back(Expectation::exact(Event::kLoadsRetired, 0));
      out.push_back(Expectation::exact(Event::kL1dAccess, ws));
      out.push_back(Expectation::exact(Event::kL1dHit, 0));
      out.push_back(Expectation::exact(Event::kL1dMiss, ws));
      // Every line is stored exactly once, so every capacity eviction is a
      // dirty eviction: fills minus the L1's capacity.
      out.push_back(Expectation::exact(Event::kL1dEviction, ws - l1_lines));
      out.push_back(Expectation::exact(Event::kL2Access, ws));
      out.push_back(Expectation::exact(Event::kL2Miss, ws));
      out.push_back(Expectation::exact(Event::kL2Eviction, 0));
      out.push_back(Expectation::exact(Event::kL3Miss, ws));
      out.push_back(Expectation::exact(Event::kUncImcWrites, ws));
      out.push_back(Expectation::exact(Event::kUncImcReads, 0));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, 0));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, ws));
      out.push_back(Expectation::exact(Event::kDtlbMiss, pages));
      out.push_back(Expectation::exact(Event::kPageWalks, pages));
      out.push_back(Expectation::exact(Event::kDtlbAccess, ws));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- stream_l2_exact: working set at half the L2, prefetcher off ---
  {
    KernelSpec k;
    k.name = "stream_l2_exact";
    k.description = "128 KiB load stream, prefetcher off: exact L2 hit split";
    k.prepare = disable_prefetcher;
    k.make_program = [] {
      return Program::single(
          [](ThreadContext& ctx) { return sweep_loads_body(ctx, kL2Lines, kL2Passes); });
    };
    k.expects = [](const sim::MachineConfig&) {
      const double ws = static_cast<double>(kL2Lines);
      const double total = ws * (kL2Passes + 1);
      const double hits = ws * kL2Passes;
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kLoadsRetired, total));
      out.push_back(Expectation::exact(Event::kL1dAccess, total));
      // 2048 lines streamed through a 512-line L1: every access misses L1.
      out.push_back(Expectation::exact(Event::kL1dHit, 0));
      out.push_back(Expectation::exact(Event::kL1dMiss, total));
      out.push_back(Expectation::exact(Event::kL2Access, total));
      out.push_back(Expectation::exact(Event::kL2Hit, hits));
      out.push_back(Expectation::exact(Event::kMemLoadL2Hit, hits));
      out.push_back(Expectation::exact(Event::kL2Miss, ws));
      out.push_back(Expectation::exact(Event::kL2Eviction, 0));
      out.push_back(Expectation::exact(Event::kL3Access, ws));
      out.push_back(Expectation::exact(Event::kL3Miss, ws));
      out.push_back(Expectation::exact(Event::kUncImcReads, ws));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, ws));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, total));
      out.push_back(Expectation::exact(Event::kL2PrefetchRequests, 0));
      out.push_back(Expectation::exact(Event::kL3PrefetchRequests, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- stream_l2_prefetch: same stream with the prefetcher on; the
  // demand-side L1 counts stay exact, prefetch counts get bands ---
  {
    KernelSpec k;
    k.name = "stream_l2_prefetch";
    k.description = "128 KiB load stream, prefetcher on: banded L2 prefetch activity";
    k.make_program = [] {
      return Program::single(
          [](ThreadContext& ctx) { return sweep_loads_body(ctx, kL2Lines, kL2Passes); });
    };
    k.expects = [](const sim::MachineConfig& c) {
      const double ws = static_cast<double>(kL2Lines);
      const double total = ws * (kL2Passes + 1);
      const double hits = ws * kL2Passes;
      const double degree = static_cast<double>(c.prefetcher.degree);
      std::vector<Expectation> out;
      // Prefetches fill L2/L3 only; the L1 demand stream is untouched.
      out.push_back(Expectation::exact(Event::kLoadsRetired, total));
      out.push_back(Expectation::exact(Event::kL1dAccess, total));
      out.push_back(Expectation::exact(Event::kL1dHit, 0));
      out.push_back(Expectation::exact(Event::kL1dMiss, total));
      out.push_back(Expectation::exact(Event::kMemLoadL1Hit, 0));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, total));
      // A stride-1 stream triggers the L2 prefetcher on (nearly) every L1
      // miss after the confirmation window, `degree` lines per trigger.
      out.push_back(Expectation::band(Event::kL2PrefetchRequests, ws / 2, degree * total));
      out.push_back(Expectation::exact(Event::kL3PrefetchRequests, 0));
      // Demand hits in the later passes are guaranteed; the first pass may
      // add prefetch-hit noise on top.
      out.push_back(Expectation::band(Event::kL2Hit, hits, total + degree * total));
      out.push_back(Expectation::band(Event::kMemLoadL2Hit, hits, total));
      // Every distinct line is read from DRAM exactly once, plus a small
      // end-of-stream overshoot of in-flight prefetches.
      out.push_back(Expectation::band(Event::kUncImcReads, ws,
                                      ws + degree * (kL2Passes + 1) * 8));
      out.push_back(Expectation::exact(Event::kUncImcWrites, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- chase_l3_exact: 1 MiB pointer chase, prefetcher off: exact counts
  // through the whole hierarchy down to local DRAM ---
  {
    KernelSpec k;
    k.name = "chase_l3_exact";
    k.description = "1 MiB pointer chase, prefetcher off: exact full-hierarchy counts";
    k.prepare = disable_prefetcher;
    k.make_program = [] {
      return Program::single([](ThreadContext& ctx) {
        return chase_body(ctx, kChaseLines, kChaseStride, kChasePasses);
      });
    };
    k.expects = [](const sim::MachineConfig& c) {
      const double ws = static_cast<double>(kChaseLines);
      const double total = ws * (kChasePasses + 1);
      const double pages = static_cast<double>(kChaseLines * kCacheLineBytes / kPageBytes);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kLoadsRetired, total));
      out.push_back(Expectation::exact(Event::kL1dAccess, total));
      out.push_back(Expectation::exact(Event::kL1dHit, 0));
      out.push_back(Expectation::exact(Event::kL1dMiss, total));
      out.push_back(Expectation::exact(Event::kL1dEviction, 0));
      out.push_back(Expectation::exact(Event::kL2Access, total));
      out.push_back(Expectation::exact(Event::kL2Hit, 0));
      out.push_back(Expectation::exact(Event::kL2Miss, total));
      // Every L2 fill past the cold capacity evicts (clean) lines.
      out.push_back(Expectation::exact(Event::kL2Eviction,
                                       total - static_cast<double>(c.l2.lines())));
      out.push_back(Expectation::exact(Event::kL3Access, total));
      out.push_back(Expectation::exact(Event::kL3Hit, ws * kChasePasses));
      out.push_back(Expectation::exact(Event::kMemLoadL3Hit, ws * kChasePasses));
      out.push_back(Expectation::exact(Event::kL3Miss, ws));
      out.push_back(Expectation::exact(Event::kUncLlcLookups, total));
      out.push_back(Expectation::exact(Event::kUncLlcMisses, ws));
      out.push_back(Expectation::exact(Event::kUncImcReads, ws));
      out.push_back(Expectation::exact(Event::kUncImcWrites, 0));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, ws));
      out.push_back(Expectation::exact(Event::kMemLoadRemoteDram, 0));
      out.push_back(Expectation::exact(Event::kUncQpiTxFlits, 0));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, total));
      out.push_back(Expectation::band(Event::kFillBufferRejects, 0, total * 8));
      out.push_back(Expectation::exact(Event::kPageWalks, pages));
      out.push_back(Expectation::exact(Event::kDtlbAccess, total));
      out.push_back(Expectation::band(Event::kDtlbMiss, pages, total));
      out.push_back(Expectation::band(Event::kStlbHit, 0, total - pages));
      out.push_back(Expectation::band(Event::kPageWalkCycles, walk_lo(c, 256), walk_hi(c, 256)));
      out.push_back(Expectation::exact(Event::kL2PrefetchRequests, 0));
      out.push_back(Expectation::exact(Event::kL3PrefetchRequests, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- chase_l3_prefetch: same chase with the prefetcher on; the stride-17
  // stream may only engage the LLC streamer (> 8 lines), so L1/L2 demand
  // exactness survives and only L3-side events widen to bands ---
  {
    KernelSpec k;
    k.name = "chase_l3_prefetch";
    k.description = "1 MiB stride-17 chase, prefetcher on: banded LLC streamer activity";
    k.make_program = [] {
      return Program::single([](ThreadContext& ctx) {
        return chase_body(ctx, kChaseLines, kChaseStride, kChasePasses);
      });
    };
    k.expects = [](const sim::MachineConfig& c) {
      const double ws = static_cast<double>(kChaseLines);
      const double total = ws * (kChasePasses + 1);
      const double degree = static_cast<double>(c.prefetcher.degree);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kLoadsRetired, total));
      out.push_back(Expectation::exact(Event::kL1dMiss, total));
      out.push_back(Expectation::exact(Event::kL2Access, total));
      out.push_back(Expectation::exact(Event::kL2Miss, total));
      out.push_back(Expectation::exact(Event::kL2PrefetchRequests, 0));
      out.push_back(Expectation::band(Event::kL3PrefetchRequests, ws / 2, degree * total));
      out.push_back(Expectation::band(Event::kL3Hit, ws * kChasePasses, total + degree * total));
      out.push_back(Expectation::band(Event::kUncImcReads, ws,
                                      ws + degree * (kChasePasses + 1) * 8));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, total));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- chase_remote: cold touch of node-1-bound memory from node 0 ---
  {
    KernelSpec k;
    k.name = "chase_remote";
    k.description = "256 KiB cold touch of node-1 memory from node 0: exact remote counts";
    k.min_nodes = 2;
    k.prepare = disable_prefetcher;
    k.make_program = [] { return Program::single(remote_body); };
    k.expects = [](const sim::MachineConfig& c) {
      const double ws = static_cast<double>(kRemoteLines);
      const double hops = static_cast<double>(c.topology.hops(0, 1));
      const double pages = static_cast<double>(kRemoteLines * kCacheLineBytes / kPageBytes);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kLoadsRetired, ws));
      out.push_back(Expectation::exact(Event::kL1dMiss, ws));
      out.push_back(Expectation::exact(Event::kL2Miss, ws));
      out.push_back(Expectation::exact(Event::kL3Miss, ws));
      out.push_back(Expectation::exact(Event::kUncLlcMisses, ws));
      out.push_back(Expectation::exact(Event::kMemLoadRemoteDram, ws));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, 0));
      out.push_back(Expectation::exact(Event::kMemLoadRemoteHitm, 0));
      out.push_back(Expectation::exact(Event::kUncImcReads, ws));
      out.push_back(Expectation::exact(Event::kUncQpiTxFlits, ws * hops));
      out.push_back(Expectation::exact(Event::kUncSnoopsReceived, 0));
      out.push_back(Expectation::exact(Event::kUncHitmResponses, 0));
      out.push_back(Expectation::exact(Event::kFillBufferAllocations, ws));
      out.push_back(Expectation::exact(Event::kPageWalks, pages));
      out.push_back(Expectation::exact(Event::kDtlbMiss, pages));
      out.push_back(Expectation::exact(Event::kStlbHit, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- hitm_pair: producer dirties lines on node 0, consumer on node 1
  // loads them — every load must be a remote-HITM forward ---
  {
    KernelSpec k;
    k.name = "hitm_pair";
    k.description = "producer/consumer pair: exact remote-HITM forward count";
    k.min_nodes = 2;
    k.affinity = os::AffinityPolicy::kScatter;
    k.prepare = disable_prefetcher;  // L2 prefetch fills bypass the
                                     // directory and would hide the HITMs
    k.make_program = [] {
      auto shared = std::make_shared<HitmShared>();
      Program p;
      p.threads.push_back(
          [shared](ThreadContext& ctx) { return hitm_producer_body(ctx, shared); });
      p.threads.push_back(
          [shared](ThreadContext& ctx) { return hitm_consumer_body(ctx, shared); });
      return p;
    };
    k.expects = [](const sim::MachineConfig&) {
      const double n = static_cast<double>(kHitmLines);
      const double buffer_pages =
          static_cast<double>(kHitmLines * kCacheLineBytes / kPageBytes);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kMemLoadRemoteHitm, n));
      out.push_back(Expectation::exact(Event::kLoadsRetired, n));
      // Producer stores plus one barrier-ticket RMW per thread.
      out.push_back(Expectation::exact(Event::kStoresRetired, n + 2));
      out.push_back(Expectation::exact(Event::kAtomicOps, 2));
      // The HITM loads dominate; the barrier ticket line adds a handful of
      // extra snoops/forwards as it bounces between the nodes.
      out.push_back(Expectation::band(Event::kUncHitmResponses, n, n + 4));
      out.push_back(Expectation::band(Event::kUncSnoopsReceived, n, n + 8));
      // Forwards are served cache-to-cache: the producer's cold store
      // misses and the first barrier ticket miss are the only DRAM writes,
      // and nothing reads DRAM at all.
      out.push_back(Expectation::exact(Event::kUncImcWrites, n + 1));
      out.push_back(Expectation::exact(Event::kUncImcReads, 0));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, 0));
      out.push_back(Expectation::exact(Event::kMemLoadRemoteDram, 0));
      // Buffer pages are walked once per core, the ticket page once each.
      out.push_back(Expectation::exact(Event::kPageWalks, 2 * buffer_pages + 2));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- tlb_stride: page-stride loads through twice the DTLB ---
  {
    KernelSpec k;
    k.name = "tlb_stride";
    k.description = "128-page stride loop: exact DTLB/STLB/page-walk split";
    k.prepare = disable_prefetcher;
    k.make_program = [] { return Program::single(tlb_body); };
    k.expects = [](const sim::MachineConfig& c) {
      const double p = static_cast<double>(kTlbPages);
      const double total = p * (kTlbPasses + 1);
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kDtlbAccess, total));
      // 128 pages cycled through a 64-entry DTLB: every access misses the
      // DTLB; the STLB holds all 128, so walks happen exactly once a page.
      out.push_back(Expectation::exact(Event::kDtlbMiss, total));
      out.push_back(Expectation::exact(Event::kStlbHit, total - p));
      out.push_back(Expectation::exact(Event::kPageWalks, p));
      out.push_back(Expectation::band(Event::kPageWalkCycles, walk_lo(c, kTlbPages),
                                      walk_hi(c, kTlbPages)));
      out.push_back(Expectation::exact(Event::kL1dLocks, p));
      out.push_back(Expectation::exact(Event::kLoadsRetired, total));
      // Page-stride lines all land in L1 set 0 / eight L2 sets: both levels
      // thrash on every pass, while the L3 holds the whole footprint.
      out.push_back(Expectation::exact(Event::kL1dMiss, total));
      out.push_back(Expectation::exact(Event::kL2Miss, total));
      out.push_back(Expectation::exact(Event::kL3Miss, p));
      out.push_back(Expectation::exact(Event::kL3Hit, total - p));
      out.push_back(Expectation::exact(Event::kMemLoadL3Hit, total - p));
      out.push_back(Expectation::exact(Event::kUncImcReads, p));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, p));
      out.push_back(Expectation::exact(Event::kMemLoadL1Hit, 0));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- pebs_tail: cold DRAM fills above an armed latency threshold ---
  {
    KernelSpec k;
    k.name = "pebs_tail";
    k.description = "PEBS threshold between L1 and DRAM latency: exact qualifying loads";
    k.prepare = disable_prefetcher;
    k.arm = [](sim::Machine& machine) {
      sim::PebsConfig pebs;
      pebs.latency_threshold = kPebsThreshold;
      pebs.sample_period = 64;
      machine.pmu(0).arm_pebs(pebs);
    };
    k.make_program = [] {
      return Program::single(
          [](ThreadContext& ctx) { return sweep_loads_body(ctx, kPebsLines, kPebsPasses); });
    };
    k.expects = [](const sim::MachineConfig&) {
      const double ws = static_cast<double>(kPebsLines);
      const double total = ws * (kPebsPasses + 1);
      std::vector<Expectation> out;
      // Exactly the cold DRAM fills qualify: DRAM latency (~190, minus
      // jitter) stays above the threshold, L1 hits (~4) far below it.
      out.push_back(Expectation::exact(Event::kLoadLatencyAbove, ws));
      out.push_back(Expectation::exact(Event::kLoadsRetired, total));
      out.push_back(Expectation::exact(Event::kMemLoadL1Hit, total - ws));
      out.push_back(Expectation::exact(Event::kMemLoadLocalDram, ws));
      return out;
    };
    suite.push_back(std::move(k));
  }

  // --- sw_inject: OS software-event path (no PMU register involved) ---
  {
    KernelSpec k;
    k.name = "sw_inject";
    k.description = "software-event injection: exact free-running OS counter";
    k.make_program = [] { return Program::single(sw_body); };
    k.post = [](sim::Machine& machine) {
      machine.count_software_event(Event::kSwPageMigrations, kSwMigrations);
    };
    k.expects = [](const sim::MachineConfig& c) {
      std::vector<Expectation> out;
      out.push_back(Expectation::exact(Event::kSwPageMigrations,
                                       static_cast<double>(kSwMigrations)));
      out.push_back(Expectation::exact(Event::kInstructions, 10));
      out.push_back(Expectation::exact(
          Event::kCycles,
          static_cast<double>(std::max<Cycles>(
              1, static_cast<Cycles>(std::llround(10.0 / c.base_ipc))))));
      return out;
    };
    suite.push_back(std::move(k));
  }

  return suite;
}

}  // namespace

const std::vector<KernelSpec>& kernel_suite() {
  static const std::vector<KernelSpec> suite = build_suite();
  return suite;
}

const KernelSpec& kernel_by_name(const std::string& name) {
  for (const KernelSpec& k : kernel_suite()) {
    if (k.name == name) return k;
  }
  NPAT_CHECK_MSG(false, "unknown validation kernel: " + name);
  return kernel_suite().front();
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const KernelSpec& k : kernel_suite()) names.push_back(k.name);
  return names;
}

}  // namespace npat::validate
