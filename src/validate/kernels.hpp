// Refutation microkernels: workloads whose hardware event counts are known
// analytically from the machine's documented semantics, so a measured count
// either confirms the counter or refutes it. Each kernel declares the
// expectations it can defend:
//
//   lo == hi  — analytically *exact* count (streaming loads over a known
//               number of cachelines, pointer chases with exact load counts,
//               working sets sized to a cache level for exact hit/miss
//               splits, cross-node touch loops with exact remote counts)
//   lo <  hi  — analytic tolerance band (events with modelled randomness,
//               e.g. page-walk latency jitter or branch predictor state)
//
// Events a kernel cannot defend are simply omitted — the committed golden
// counts (harness.hpp) still pin their exact simulated values, so drift is
// caught by the sim-boundary gate even where no closed form exists.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "os/affinity.hpp"
#include "sim/machine.hpp"
#include "trace/runner.hpp"
#include "util/types.hpp"

namespace npat::validate {

/// Inclusive expected-count band for one event; exact when lo == hi.
struct Expectation {
  sim::Event event = sim::Event::kCycles;
  double lo = 0.0;
  double hi = 0.0;

  static Expectation exact(sim::Event event, double count) {
    return {event, count, count};
  }
  static Expectation band(sim::Event event, double lo, double hi) {
    return {event, lo, hi};
  }
  bool is_exact() const noexcept { return lo == hi; }
};

/// One refutation kernel: a program plus the analytic expectations that
/// hold for it on a given machine configuration.
struct KernelSpec {
  std::string name;
  std::string description;
  /// Kernels needing cross-node traffic skip machines with fewer nodes.
  u32 min_nodes = 1;
  os::AffinityPolicy affinity = os::AffinityPolicy::kCompact;
  /// Adjusts the machine config before construction (e.g. disabling the
  /// prefetcher for kernels whose analytics need a quiet hierarchy).
  /// Must only touch the fields it needs — the harness relies on the rest
  /// of the config (including any counter mutation) passing through.
  std::function<void(sim::MachineConfig&)> prepare;
  /// Runs against the freshly built machine before the program (e.g. PEBS
  /// arming); optional.
  std::function<void(sim::Machine&)> arm;
  /// Runs after the program completes, before counters are read (e.g.
  /// injecting software events); optional.
  std::function<void(sim::Machine&)> post;
  /// Builds a fresh program (fresh shared state) for one run.
  std::function<trace::Program()> make_program;
  /// Expectations for this kernel on `config` (topology-dependent counts
  /// like interconnect flits consult it).
  std::function<std::vector<Expectation>(const sim::MachineConfig&)> expects;
};

/// The full refutation suite, in a fixed documented order. Together the
/// kernels cover every event in the registry with at least one check.
const std::vector<KernelSpec>& kernel_suite();

/// Suite entry by name; throws util::CheckError on unknown names.
const KernelSpec& kernel_by_name(const std::string& name);
std::vector<std::string> kernel_names();

}  // namespace npat::validate
