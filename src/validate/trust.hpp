// Trust tiers for hardware event counters, following Röhl et al.'s event
// validation discipline and CounterPoint's refutation methodology: an event
// is only as trustworthy as the known-truth kernels it survived. The
// validation harness (validate/harness.hpp) runs microkernels with
// analytically exact expected counts and distills the outcome into a
// TrustReport every downstream consumer can consult:
//
//   exact    — matched an analytically exact expectation on every kernel
//   bounded  — inside every analytic tolerance band, but only band-checked
//   suspect  — outside a band, within the refutation factor (drifting)
//   refuted  — off by more than the refutation factor on some kernel
//
// This header is deliberately dependency-light (sim + util only) so that
// evsel, advisor and the monitor views can annotate their outputs with
// tiers without depending on the harness that produced them.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "sim/events.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::validate {

/// Ordered by increasing distrust; `worse` picks the higher ordinal.
enum class TrustTier : u8 {
  kExact = 0,
  kBounded,
  kSuspect,
  kRefuted,
  /// No kernel in the suite produced an expectation for the event (or no
  /// suite ran at all). Consumers treat unvalidated like bounded — trust
  /// by default, but visibly so.
  kUnvalidated,
};

const char* tier_name(TrustTier tier);
/// Parses a tier_name(); throws util::CheckError naming the input on
/// unknown tiers (report files must never round-trip silently wrong).
TrustTier tier_from_name(const std::string& name);

constexpr TrustTier worse(TrustTier a, TrustTier b) noexcept {
  return static_cast<u8>(a) >= static_cast<u8>(b) ? a : b;
}

/// True for tiers the consumers degrade on (suspect / refuted).
constexpr bool below_bounded(TrustTier tier) noexcept {
  return tier == TrustTier::kSuspect || tier == TrustTier::kRefuted;
}

/// One event's verdict with the deciding evidence: the kernel whose check
/// drove the tier, and the measured/expected ratio observed there.
struct EventTrust {
  sim::Event event = sim::Event::kCycles;
  TrustTier tier = TrustTier::kUnvalidated;
  std::string kernel;          ///< deciding kernel (worst surviving check)
  double observed_ratio = 1.0; ///< measured / expected of the deciding check
  double measured = 0.0;
  double expected = 0.0;       ///< band midpoint for bounded checks
  u32 checks = 0;              ///< expectations evaluated across the suite
};

/// Persistent per-event trust table. `record` merges evidence: the worst
/// tier wins and keeps its kernel/ratio as the citation; check counts sum.
class TrustReport {
 public:
  /// Human description of the validated machine (preset/model name).
  std::string machine;
  /// Kernels whose checks fed the report (skipped ones excluded).
  std::vector<std::string> kernels;

  void record(const EventTrust& evidence);

  TrustTier tier(sim::Event event) const;
  /// Deciding evidence; nullptr when the event was never checked.
  const EventTrust* evidence(sim::Event event) const;
  /// All recorded rows in registry order.
  std::vector<EventTrust> rows() const;

  usize count(TrustTier tier) const;
  /// Registry events with at least one check (any tier).
  usize validated_events() const;
  /// True when every registry event is exact or bounded — the acceptance
  /// bar for an unperturbed simulator.
  bool all_trusted() const;
  std::vector<sim::Event> events_at_or_below(TrustTier tier) const;

  util::Json to_json() const;
  /// Hard-errors (util::CheckError / util::JsonError) on unknown events
  /// or tiers — a trust report must never load approximately.
  static TrustReport from_json(const util::Json& doc);

 private:
  std::array<std::optional<EventTrust>, sim::kEventCount> rows_{};
};

/// Tier table for terminal panes (npat_top --trust, npat_validate).
/// `include_exact` folds fully-exact rows into a summary line when false.
std::string render_trust_table(const TrustReport& report, bool include_exact = true);

/// Process-global report consulted by evsel::Collector/compare and the
/// advisor when no report is passed explicitly (graceful degradation is
/// opt-in per process: nothing degrades until a harness run publishes).
/// Not thread-safe: publish before spawning measurement threads.
void set_active_trust_report(std::optional<TrustReport> report);
const TrustReport* active_trust_report();

}  // namespace npat::validate
