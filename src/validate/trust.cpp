#include "validate/trust.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::validate {

namespace {

constexpr const char* kTierNames[] = {"exact", "bounded", "suspect", "refuted",
                                      "unvalidated"};

usize index_of(sim::Event event) { return static_cast<usize>(event); }

}  // namespace

const char* tier_name(TrustTier tier) {
  const auto i = static_cast<usize>(tier);
  NPAT_CHECK_MSG(i < std::size(kTierNames), "trust tier out of range");
  return kTierNames[i];
}

TrustTier tier_from_name(const std::string& name) {
  for (usize i = 0; i < std::size(kTierNames); ++i) {
    if (name == kTierNames[i]) return static_cast<TrustTier>(i);
  }
  NPAT_CHECK_MSG(false, "unknown trust tier: " + name);
  return TrustTier::kUnvalidated;
}

void TrustReport::record(const EventTrust& evidence) {
  auto& slot = rows_[index_of(evidence.event)];
  if (!slot) {
    slot = evidence;
    return;
  }
  slot->checks += evidence.checks;
  // The worst tier owns the citation; ties keep the first witness so a
  // re-run cites the same kernel deterministically.
  if (static_cast<u8>(evidence.tier) > static_cast<u8>(slot->tier)) {
    slot->tier = evidence.tier;
    slot->kernel = evidence.kernel;
    slot->observed_ratio = evidence.observed_ratio;
    slot->measured = evidence.measured;
    slot->expected = evidence.expected;
  }
}

TrustTier TrustReport::tier(sim::Event event) const {
  const auto& slot = rows_[index_of(event)];
  return slot ? slot->tier : TrustTier::kUnvalidated;
}

const EventTrust* TrustReport::evidence(sim::Event event) const {
  const auto& slot = rows_[index_of(event)];
  return slot ? &*slot : nullptr;
}

std::vector<EventTrust> TrustReport::rows() const {
  std::vector<EventTrust> out;
  for (const auto& info : sim::all_events()) {
    const auto& slot = rows_[index_of(info.event)];
    if (slot) out.push_back(*slot);
  }
  return out;
}

usize TrustReport::count(TrustTier tier) const {
  usize n = 0;
  for (const auto& slot : rows_) {
    if (slot && slot->tier == tier) ++n;
  }
  return n;
}

usize TrustReport::validated_events() const {
  usize n = 0;
  for (const auto& slot : rows_) {
    if (slot) ++n;
  }
  return n;
}

bool TrustReport::all_trusted() const {
  for (const auto& info : sim::all_events()) {
    const TrustTier t = tier(info.event);
    if (t != TrustTier::kExact && t != TrustTier::kBounded) return false;
  }
  return true;
}

std::vector<sim::Event> TrustReport::events_at_or_below(TrustTier tier) const {
  std::vector<sim::Event> out;
  for (const auto& info : sim::all_events()) {
    const TrustTier t = this->tier(info.event);
    if (t != TrustTier::kUnvalidated && static_cast<u8>(t) >= static_cast<u8>(tier)) {
      out.push_back(info.event);
    }
  }
  return out;
}

util::Json TrustReport::to_json() const {
  util::JsonObject doc;
  doc["machine"] = machine;
  util::JsonArray kernel_names;
  for (const auto& k : kernels) kernel_names.emplace_back(k);
  doc["kernels"] = std::move(kernel_names);
  util::JsonObject events;
  for (const EventTrust& row : rows()) {
    util::JsonObject r;
    r["tier"] = std::string(tier_name(row.tier));
    r["kernel"] = row.kernel;
    r["observed_ratio"] = row.observed_ratio;
    r["measured"] = row.measured;
    r["expected"] = row.expected;
    r["checks"] = static_cast<double>(row.checks);
    events[std::string(sim::event_name(row.event))] = std::move(r);
  }
  doc["events"] = std::move(events);
  return util::Json(std::move(doc));
}

TrustReport TrustReport::from_json(const util::Json& doc) {
  TrustReport report;
  report.machine = doc.get_string("machine");
  if (const util::Json* kernels = doc.find("kernels")) {
    for (const auto& k : kernels->as_array()) report.kernels.push_back(k.as_string());
  }
  if (const util::Json* events = doc.find("events")) {
    for (const auto& [name, row] : events->as_object()) {
      const auto event = sim::event_by_name(name);
      NPAT_CHECK_MSG(event.has_value(), "trust report names unknown event: " + name);
      EventTrust trust;
      trust.event = *event;
      trust.tier = tier_from_name(row.get_string("tier"));
      trust.kernel = row.get_string("kernel");
      trust.observed_ratio = row.at("observed_ratio").as_number();
      trust.measured = row.at("measured").as_number();
      trust.expected = row.at("expected").as_number();
      trust.checks = static_cast<u32>(row.at("checks").as_number());
      report.rows_[index_of(trust.event)] = trust;
    }
  }
  return report;
}

std::string render_trust_table(const TrustReport& report, bool include_exact) {
  util::Table table({"event", "tier", "checks", "deciding kernel", "measured/expected"});
  std::string title = "counter trust (" +
                      (report.machine.empty() ? std::string("unnamed machine")
                                              : report.machine) +
                      ")";
  title += util::format(": %zu exact, %zu bounded, %zu suspect, %zu refuted",
                        report.count(TrustTier::kExact), report.count(TrustTier::kBounded),
                        report.count(TrustTier::kSuspect), report.count(TrustTier::kRefuted));
  table.set_title(std::move(title));
  table.set_align(2, util::Align::kRight);
  table.set_align(4, util::Align::kRight);

  usize folded_exact = 0;
  for (const EventTrust& row : report.rows()) {
    if (!include_exact && row.tier == TrustTier::kExact) {
      ++folded_exact;
      continue;
    }
    util::Style style = util::Style::kNone;
    if (row.tier == TrustTier::kRefuted) style = util::Style::kRed;
    if (row.tier == TrustTier::kSuspect) style = util::Style::kYellow;
    if (row.tier == TrustTier::kExact) style = util::Style::kDim;
    std::vector<util::Cell> cells;
    cells.push_back({std::string(sim::event_name(row.event)), style});
    cells.push_back({tier_name(row.tier), style});
    cells.push_back({std::to_string(row.checks), style});
    cells.push_back({row.kernel, style});
    cells.push_back({util::format("%.6f", row.observed_ratio), style});
    table.add_styled_row(std::move(cells));
  }
  if (folded_exact > 0) {
    table.add_styled_row({{util::format("(%zu exact events folded)", folded_exact),
                           util::Style::kDim},
                          {"", util::Style::kNone},
                          {"", util::Style::kNone},
                          {"", util::Style::kNone},
                          {"", util::Style::kNone}});
  }
  return table.render();
}

namespace {
std::optional<TrustReport>& active_slot() {
  static std::optional<TrustReport> slot;
  return slot;
}
}  // namespace

void set_active_trust_report(std::optional<TrustReport> report) {
  active_slot() = std::move(report);
}

const TrustReport* active_trust_report() {
  return active_slot() ? &*active_slot() : nullptr;
}

}  // namespace npat::validate
