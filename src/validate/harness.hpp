// The validation harness: runs the refutation kernel suite against a
// machine configuration, classifies every measured count against its
// analytic expectation, and distills the outcome into a TrustReport.
//
// The same run doubles as the sim-boundary refutation gate: the full
// counter deltas of every kernel are compared against committed golden
// counts, so a sim change that shifts *any* counter — including ones no
// closed-form expectation covers — fails the `validate_sim` test instead
// of silently repricing every result downstream.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "util/json.hpp"
#include "util/types.hpp"
#include "validate/kernels.hpp"
#include "validate/trust.hpp"

namespace npat::validate {

struct SuiteOptions {
  /// Recorded as TrustReport::machine (preset name, model string, ...).
  std::string machine_name;
  /// Restrict to these kernels (empty = the full suite). Unknown names
  /// hard-error via kernel_by_name.
  std::vector<std::string> only;
  /// A measured count outside its band by at least this factor is
  /// `refuted`; anything closer (but still outside) is `suspect`.
  double refute_factor = 2.0;
  u64 runner_seed = 0x5eedULL;
};

/// One expectation evaluated against a measured count.
struct CheckOutcome {
  sim::Event event = sim::Event::kCycles;
  double measured = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  TrustTier tier = TrustTier::kUnvalidated;
  /// measured / band midpoint (measured itself when the midpoint is 0).
  double ratio = 1.0;

  bool passed() const noexcept {
    return tier == TrustTier::kExact || tier == TrustTier::kBounded;
  }
};

/// Classifies one measured count against [lo, hi]: in-band is exact
/// (lo == hi) or bounded; out-of-band is refuted when off by at least
/// `refute_factor` from the violated bound, suspect otherwise.
CheckOutcome classify_check(sim::Event event, double measured, double lo, double hi,
                            double refute_factor = 2.0);

struct KernelRun {
  std::string name;
  bool skipped = false;
  std::string skip_reason;
  std::vector<CheckOutcome> checks;
  /// Full aggregate counter delta of the run (golden-gate evidence).
  sim::CounterBlock counters;

  usize failed_checks() const noexcept;
};

struct SuiteResult {
  TrustReport report;
  std::vector<KernelRun> runs;

  usize checks_run() const noexcept;
  usize checks_failed() const noexcept;
};

/// Runs the (filtered) kernel suite against fresh machines built from
/// `base` and returns per-kernel outcomes plus the merged TrustReport.
SuiteResult run_suite(const sim::MachineConfig& base, const SuiteOptions& options = {});

/// Per-kernel summary table (checks per tier, skip reasons).
std::string render_suite(const SuiteResult& result);

// --- golden refutation gate ---

/// Committed golden format: {"machine": ..., "kernels": {name:
/// {"skipped": bool, "counters": {event: count, ...}}}} with zero counts
/// omitted. Counter values are exact — the simulator is deterministic for
/// a fixed seed, so any drift is a semantic change, not noise.
util::Json golden_from_result(const SuiteResult& result);

struct GoldenMismatch {
  std::string kernel;
  sim::Event event = sim::Event::kCycles;
  u64 measured = 0;
  u64 expected = 0;
};

/// Compares a fresh run against committed golden counts. Structural
/// differences (kernel sets or skip status) hard-error with CheckError;
/// counter drift is returned for reporting.
std::vector<GoldenMismatch> diff_golden(const SuiteResult& result, const util::Json& golden);

std::string render_golden_mismatches(const std::vector<GoldenMismatch>& mismatches);

}  // namespace npat::validate
