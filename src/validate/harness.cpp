#include "validate/harness.hpp"

#include <algorithm>
#include <cmath>

#include "os/vm.hpp"
#include "trace/runner.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::validate {

namespace {

bool wanted(const SuiteOptions& options, const std::string& name) {
  if (options.only.empty()) return true;
  return std::find(options.only.begin(), options.only.end(), name) != options.only.end();
}

}  // namespace

CheckOutcome classify_check(sim::Event event, double measured, double lo, double hi,
                            double refute_factor) {
  CheckOutcome outcome;
  outcome.event = event;
  outcome.measured = measured;
  outcome.lo = lo;
  outcome.hi = hi;
  const double midpoint = (lo + hi) / 2;
  outcome.ratio = midpoint > 0 ? measured / midpoint : measured;

  if (measured >= lo && measured <= hi) {
    outcome.tier = lo == hi ? TrustTier::kExact : TrustTier::kBounded;
    return outcome;
  }
  // Distance from the violated bound, floored at half a count so that a
  // nonzero measurement against an exact-zero expectation still refutes.
  const double over = measured > hi ? measured / std::max(hi, 0.5)
                                    : lo / std::max(measured, 0.5);
  outcome.tier =
      over >= refute_factor - 1e-9 ? TrustTier::kRefuted : TrustTier::kSuspect;
  return outcome;
}

usize KernelRun::failed_checks() const noexcept {
  usize n = 0;
  for (const CheckOutcome& c : checks) {
    if (!c.passed()) ++n;
  }
  return n;
}

usize SuiteResult::checks_run() const noexcept {
  usize n = 0;
  for (const KernelRun& run : runs) n += run.checks.size();
  return n;
}

usize SuiteResult::checks_failed() const noexcept {
  usize n = 0;
  for (const KernelRun& run : runs) n += run.failed_checks();
  return n;
}

SuiteResult run_suite(const sim::MachineConfig& base, const SuiteOptions& options) {
  // Resolve explicit kernel selections first so typos hard-error instead
  // of silently validating nothing.
  for (const std::string& name : options.only) kernel_by_name(name);

  SuiteResult result;
  result.report.machine = options.machine_name;

  for (const KernelSpec& spec : kernel_suite()) {
    if (!wanted(options, spec.name)) continue;

    KernelRun run;
    run.name = spec.name;
    if (base.topology.nodes < spec.min_nodes) {
      run.skipped = true;
      run.skip_reason = util::format("needs %u nodes, machine has %u", spec.min_nodes,
                                     base.topology.nodes);
      result.runs.push_back(std::move(run));
      continue;
    }

    sim::MachineConfig config = base;
    if (spec.prepare) spec.prepare(config);

    sim::Machine machine(config);
    os::AddressSpace space(config.topology);
    trace::RunnerConfig runner_config;
    runner_config.affinity = spec.affinity;
    runner_config.seed = options.runner_seed;
    trace::Runner runner(machine, space, runner_config);

    if (spec.arm) spec.arm(machine);
    runner.run(spec.make_program());
    if (spec.post) spec.post(machine);

    run.counters = machine.aggregate_counters();
    for (const Expectation& expect : spec.expects(config)) {
      const double measured = static_cast<double>(run.counters[expect.event]);
      CheckOutcome outcome = classify_check(expect.event, measured, expect.lo, expect.hi,
                                            options.refute_factor);
      EventTrust trust;
      trust.event = outcome.event;
      trust.tier = outcome.tier;
      trust.kernel = spec.name;
      trust.observed_ratio = outcome.ratio;
      trust.measured = outcome.measured;
      trust.expected = (expect.lo + expect.hi) / 2;
      trust.checks = 1;
      result.report.record(trust);
      run.checks.push_back(outcome);
    }
    result.report.kernels.push_back(spec.name);
    result.runs.push_back(std::move(run));
  }
  return result;
}

std::string render_suite(const SuiteResult& result) {
  util::Table table({"kernel", "checks", "exact", "bounded", "suspect", "refuted", "note"});
  table.set_title(util::format("refutation kernels: %zu checks, %zu failed",
                               result.checks_run(), result.checks_failed()));
  for (u32 column = 1; column <= 5; ++column) table.set_align(column, util::Align::kRight);

  for (const KernelRun& run : result.runs) {
    if (run.skipped) {
      table.add_styled_row({{run.name, util::Style::kDim},
                            {"-", util::Style::kDim},
                            {"-", util::Style::kDim},
                            {"-", util::Style::kDim},
                            {"-", util::Style::kDim},
                            {"-", util::Style::kDim},
                            {"skipped: " + run.skip_reason, util::Style::kDim}});
      continue;
    }
    usize per_tier[4] = {0, 0, 0, 0};
    for (const CheckOutcome& check : run.checks) {
      ++per_tier[static_cast<usize>(check.tier)];
    }
    const bool failing = per_tier[2] + per_tier[3] > 0;
    const util::Style style = failing ? util::Style::kRed : util::Style::kNone;
    table.add_styled_row({{run.name, style},
                          {std::to_string(run.checks.size()), style},
                          {std::to_string(per_tier[0]), style},
                          {std::to_string(per_tier[1]), style},
                          {std::to_string(per_tier[2]), style},
                          {std::to_string(per_tier[3]), style},
                          {failing ? "FAIL" : "ok", style}});
  }
  return table.render();
}

util::Json golden_from_result(const SuiteResult& result) {
  util::JsonObject doc;
  doc["machine"] = result.report.machine;
  util::JsonObject kernels;
  for (const KernelRun& run : result.runs) {
    util::JsonObject entry;
    entry["skipped"] = run.skipped;
    util::JsonObject counters;
    if (!run.skipped) {
      for (const auto& info : sim::all_events()) {
        const u64 value = run.counters[info.event];
        if (value != 0) counters[std::string(info.name)] = static_cast<double>(value);
      }
    }
    entry["counters"] = std::move(counters);
    kernels[run.name] = std::move(entry);
  }
  doc["kernels"] = std::move(kernels);
  return util::Json(std::move(doc));
}

std::vector<GoldenMismatch> diff_golden(const SuiteResult& result, const util::Json& golden) {
  const util::Json* kernels = golden.find("kernels");
  NPAT_CHECK_MSG(kernels != nullptr, "golden file has no 'kernels' object");
  NPAT_CHECK_MSG(kernels->as_object().size() == result.runs.size(),
                 "golden file covers a different kernel set than this run");

  std::vector<GoldenMismatch> mismatches;
  for (const KernelRun& run : result.runs) {
    const util::Json* entry = kernels->find(run.name);
    NPAT_CHECK_MSG(entry != nullptr, "golden file is missing kernel: " + run.name);
    const bool golden_skipped = entry->get_bool("skipped");
    NPAT_CHECK_MSG(golden_skipped == run.skipped,
                   "golden skip status differs for kernel: " + run.name);
    if (run.skipped) continue;

    const util::Json* counters = entry->find("counters");
    NPAT_CHECK_MSG(counters != nullptr,
                   "golden file has no counters for kernel: " + run.name);
    for (const auto& [name, value] : counters->as_object()) {
      NPAT_CHECK_MSG(sim::event_by_name(name).has_value(),
                     "golden file names unknown event: " + name);
      (void)value;
    }
    for (const auto& info : sim::all_events()) {
      const u64 measured = run.counters[info.event];
      const util::Json* cell = counters->find(std::string(info.name));
      const u64 expected = cell ? static_cast<u64>(cell->as_number()) : 0;
      if (measured != expected) {
        mismatches.push_back({run.name, info.event, measured, expected});
      }
    }
  }
  return mismatches;
}

std::string render_golden_mismatches(const std::vector<GoldenMismatch>& mismatches) {
  if (mismatches.empty()) return "golden counts match\n";
  util::Table table({"kernel", "event", "measured", "golden"});
  table.set_title(util::format("golden drift: %zu counters moved", mismatches.size()));
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);
  for (const GoldenMismatch& m : mismatches) {
    table.add_styled_row({{m.kernel, util::Style::kRed},
                          {std::string(sim::event_name(m.event)), util::Style::kRed},
                          {std::to_string(m.measured), util::Style::kRed},
                          {std::to_string(m.expected), util::Style::kRed}});
  }
  return table.render();
}

}  // namespace npat::validate
