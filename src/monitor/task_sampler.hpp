// Per-task telemetry sampling — the numatop half of the monitor. Where
// Sampler emits per-node counter deltas, TaskSampler rides the same
// trace::Runner hook and emits per-(pid, tid) deltas read from the
// machine's per-task PMU domains (sim::CorePmu::task_domains), so the
// live view can answer *which task* is generating remote traffic, not
// just which node is suffering it.
#pragma once

#include <map>
#include <vector>

#include "monitor/ring.hpp"
#include "sim/machine.hpp"
#include "trace/runner.hpp"
#include "util/types.hpp"

namespace npat::monitor {

/// One hot memory area of a task: `base` is the area's base virtual
/// address (1 MiB granularity) and `samples` the cumulative sampled-load
/// count (a snapshot, like resident_bytes — not a delta).
struct TaskArea {
  u64 base = 0;
  u64 samples = 0;

  friend bool operator==(const TaskArea&, const TaskArea&) = default;
};

/// Per-task counter deltas over one sampling period. `node` is the NUMA
/// node that executed most of the task's cycles this period.
struct TaskCounters {
  u32 pid = 0;
  u32 tid = 0;
  u32 node = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 local_dram = 0;
  u64 remote_dram = 0;
  u64 remote_hitm = 0;
  u64 loads = 0;
  u64 latency_sum = 0;    // over all retired loads of the task
  u64 latency_loads = 0;  // loads contributing to latency_sum
  /// Top hot areas by cumulative sampled loads (snapshot).
  std::vector<TaskArea> areas;

  friend bool operator==(const TaskCounters&, const TaskCounters&) = default;
};

/// One timestamped per-task telemetry record; rows sorted by (pid, tid).
struct TaskSample {
  Cycles timestamp = 0;
  std::vector<TaskCounters> tasks;

  friend bool operator==(const TaskSample&, const TaskSample&) = default;
};

struct TaskSamplerConfig {
  /// Base sampling period in simulated cycles (matches SamplerConfig so
  /// node and task streams share timestamps).
  Cycles period = 100000;
  usize ring_capacity = 4096;
  /// Hot areas reported per task per sample (top-N by sampled loads).
  usize max_areas = 8;
};

class TaskSampler {
 public:
  /// Baselines the machine's current per-task domains; deltas start here.
  /// The runner driving the workload must have task accounting enabled
  /// (RunnerConfig::task_accounting) or every sample will be empty.
  explicit TaskSampler(sim::Machine& machine, TaskSamplerConfig config = {});

  /// Registers the periodic hook with `runner`; the sampler must outlive
  /// the run.
  void attach(trace::Runner& runner);

  /// Takes one sample immediately (flushes in-flight task slices first).
  void sample(Cycles now);

  Ring<TaskSample>& ring() noexcept { return ring_; }
  const Ring<TaskSample>& ring() const noexcept { return ring_; }
  const TaskSamplerConfig& config() const noexcept { return config_; }
  u64 samples_taken() const noexcept { return ring_.pushed(); }

 private:
  /// Cumulative per-task totals merged across cores, plus the per-node
  /// cycle split needed to call the period's dominant node.
  struct TaskTotals {
    u64 instructions = 0;
    u64 cycles = 0;
    u64 local_dram = 0;
    u64 remote_dram = 0;
    u64 remote_hitm = 0;
    u64 loads = 0;
    u64 latency_sum = 0;
    u64 latency_loads = 0;
    std::vector<u64> node_cycles;
    std::map<u64, u64> areas;  // area base -> cumulative sampled loads
  };

  std::map<sim::TaskKey, TaskTotals> totals() const;

  sim::Machine* machine_;
  TaskSamplerConfig config_;
  Ring<TaskSample> ring_;
  std::map<sim::TaskKey, TaskTotals> previous_;
};

}  // namespace npat::monitor
