// Export paths for monitor samples: CSV and JSON for external plotting
// (one row/object per sample and node), and streaming over the
// memhist::wire framing so a headless probe can ship live telemetry to a
// remote viewer on the same CRC-protected, resynchronizing transport the
// Memhist GUI already uses (protocol version 2's MonitorSampleMsg).
#pragma once

#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "memhist/wire.hpp"
#include "monitor/sampler.hpp"
#include "monitor/task_sampler.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::monitor {

/// One row per (sample, node); columns are stable for plotting scripts.
std::string to_csv(std::span<const Sample> samples);

/// {"samples": [{"timestamp": .., "footprint_bytes": .., "nodes": [..]}]}
util::Json to_json(std::span<const Sample> samples);

// --- wire bridging ---------------------------------------------------------

memhist::wire::MonitorSampleMsg to_wire(const Sample& sample);
Sample from_wire(const memhist::wire::MonitorSampleMsg& message);

/// Encodes a complete monitoring session: Hello (version 2, node count
/// from the first sample), one frame per sample, End with the last
/// timestamp. An empty span yields Hello + End only.
std::vector<u8> encode_stream(std::span<const Sample> samples);

struct DecodedStream {
  std::vector<Sample> samples;
  u32 node_count = 0;       // from Hello, 0 if the Hello frame was lost
  u8 version = 0;           // ditto
  bool ended = false;       // End frame seen
  Cycles total_cycles = 0;  // from End
  usize dropped_frames = 0;
};

/// Decodes whatever intact monitor frames a (possibly damaged) byte stream
/// contains; non-monitor frames are tolerated and summarized.
DecodedStream decode_stream(const std::vector<u8>& bytes);

// --- per-task export -------------------------------------------------------

/// Display names for a (pid, tid) row; tasks without an entry export with
/// empty name columns.
struct TaskNames {
  std::string process_name;
  std::string thread_name;
};
using TaskNameTable = std::map<std::pair<u32, u32>, TaskNames>;

/// One row per (sample, task); stable column order for plotting scripts.
/// Task names pass through the CSV writer's RFC-4180 escaping.
std::string to_csv_tasks(std::span<const TaskSample> samples, const TaskNameTable& names = {});

/// {"task_samples": [{"timestamp": .., "tasks": [{.., "areas": [..]}]}]}
util::Json to_json_tasks(std::span<const TaskSample> samples, const TaskNameTable& names = {});

/// Converts one task sample for the wire; `task_ids` maps (pid, tid) to
/// the stream-local id announced in the TaskTable frame. Tasks without an
/// id are skipped (register them first).
memhist::wire::TaskSampleMsg to_wire_tasks(const TaskSample& sample,
                                           const std::map<std::pair<u32, u32>, u32>& task_ids);

/// Inverse of to_wire_tasks: resolves rows against `identities` (task id
/// -> (pid, tid)); rows with unknown ids are dropped here — stateful
/// consumers (fleet::FleetCollector) hold them for late registration
/// instead of using this helper.
TaskSample from_wire_tasks(const memhist::wire::TaskSampleMsg& message,
                           const std::map<u32, std::pair<u32, u32>>& identities);

/// Encodes a complete per-task monitoring session: Hello (protocol v5),
/// one TaskTable frame registering every task appearing in `samples` or
/// `names`, one TaskSample frame per sample, End with the last timestamp.
std::vector<u8> encode_task_stream(std::span<const TaskSample> samples,
                                   const TaskNameTable& names = {});

struct DecodedTaskStream {
  std::vector<TaskSample> samples;
  TaskNameTable names;
  u8 version = 0;
  bool ended = false;
  usize dropped_frames = 0;
  /// Sample rows referencing a task id never registered by a TaskTable.
  usize unknown_task_rows = 0;
};

/// Decodes a per-task stream produced by encode_task_stream (or any v5
/// probe); tolerates damage and interleaved non-task frames.
DecodedTaskStream decode_task_stream(const std::vector<u8>& bytes);

}  // namespace npat::monitor
