// Export paths for monitor samples: CSV and JSON for external plotting
// (one row/object per sample and node), and streaming over the
// memhist::wire framing so a headless probe can ship live telemetry to a
// remote viewer on the same CRC-protected, resynchronizing transport the
// Memhist GUI already uses (protocol version 2's MonitorSampleMsg).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "memhist/wire.hpp"
#include "monitor/sampler.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::monitor {

/// One row per (sample, node); columns are stable for plotting scripts.
std::string to_csv(std::span<const Sample> samples);

/// {"samples": [{"timestamp": .., "footprint_bytes": .., "nodes": [..]}]}
util::Json to_json(std::span<const Sample> samples);

// --- wire bridging ---------------------------------------------------------

memhist::wire::MonitorSampleMsg to_wire(const Sample& sample);
Sample from_wire(const memhist::wire::MonitorSampleMsg& message);

/// Encodes a complete monitoring session: Hello (version 2, node count
/// from the first sample), one frame per sample, End with the last
/// timestamp. An empty span yields Hello + End only.
std::vector<u8> encode_stream(std::span<const Sample> samples);

struct DecodedStream {
  std::vector<Sample> samples;
  u32 node_count = 0;       // from Hello, 0 if the Hello frame was lost
  u8 version = 0;           // ditto
  bool ended = false;       // End frame seen
  Cycles total_cycles = 0;  // from End
  usize dropped_frames = 0;
};

/// Decodes whatever intact monitor frames a (possibly damaged) byte stream
/// contains; non-monitor frames are tolerated and summarized.
DecodedStream decode_stream(const std::vector<u8>& bytes);

}  // namespace npat::monitor
