// Windowed per-node aggregation over monitor samples, and multi-resolution
// downsampling for bounded-memory long captures.
//
// A window of consecutive samples collapses into per-node rates — local
// vs. remote access ratio, IPC, DRAM bytes per cycle, interconnect flits —
// which is what the live view renders and what alert thresholds would
// evaluate. The TieredHistory keeps three zoom levels (1×/10×/100× the
// base period by default), each in a fixed-capacity ring, so an arbitrarily
// long capture costs constant memory while recent history stays at full
// resolution.
#pragma once

#include <span>
#include <vector>

#include "monitor/ring.hpp"
#include "monitor/sampler.hpp"
#include "monitor/task_sampler.hpp"
#include "util/types.hpp"

namespace npat::monitor {

/// Per-node totals over a window, with derived rates.
struct NodeStats {
  u64 samples = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 local_dram = 0;
  u64 remote_dram = 0;
  u64 remote_hitm = 0;
  u64 imc_reads = 0;
  u64 imc_writes = 0;
  u64 qpi_flits = 0;
  u64 resident_bytes = 0;  // last snapshot in the window

  /// Loads served by DRAM or a remote cache (the NUMA-relevant universe).
  u64 numa_loads() const noexcept { return local_dram + remote_dram + remote_hitm; }
  /// Fraction of NUMA-relevant loads served locally (1.0 when idle).
  double local_ratio() const noexcept;
  /// Fraction served by a remote node (DRAM or HITM forward).
  double remote_ratio() const noexcept;
  double ipc() const noexcept;
  /// Memory-controller traffic in bytes per cycle (lines × 64 / cycles of
  /// the window's wall clock, passed in by the caller).
  double dram_bytes_per_cycle(Cycles window_cycles) const noexcept;
  /// Same traffic in GB/s for a core frequency in GHz.
  double dram_gbps(Cycles window_cycles, double frequency_ghz) const noexcept;
};

/// One aggregated window.
struct WindowStats {
  Cycles start = 0;  // timestamp of the first sample in the window
  Cycles end = 0;    // timestamp of the last
  u64 samples = 0;
  u64 footprint_bytes = 0;  // last snapshot
  std::vector<NodeStats> nodes;

  /// Wall-clock span covered. Timestamps mark period *ends*, so a single
  /// sample still spans one period if the caller provides it.
  Cycles span(Cycles fallback_period = 0) const noexcept {
    return end > start ? end - start : fallback_period;
  }
  /// Sum over nodes (system-wide totals).
  NodeStats total() const;
};

/// Collapses consecutive samples into one window. Samples must share the
/// node count (they do when produced by one Sampler).
WindowStats aggregate(std::span<const Sample> samples);

/// Merges consecutive samples into one coarser sample (deltas sum,
/// snapshots and the timestamp take the last value).
Sample merge_samples(std::span<const Sample> samples);

/// Per-task totals over a window, with the derived numatop columns.
struct TaskStats {
  u32 pid = 0;
  u32 tid = 0;
  /// Node carrying the most of the task's cycles over the window.
  u32 node = 0;
  u64 samples = 0;  // window rows contributing to this task
  u64 instructions = 0;
  u64 cycles = 0;
  u64 local_dram = 0;
  u64 remote_dram = 0;
  u64 remote_hitm = 0;
  u64 loads = 0;
  u64 latency_sum = 0;
  u64 latency_loads = 0;
  /// Last hot-area snapshot seen in the window.
  std::vector<TaskArea> areas;

  /// Remote memory accesses (numatop's RMA column).
  u64 rma() const noexcept { return remote_dram + remote_hitm; }
  /// Local memory accesses (numatop's LMA column).
  u64 lma() const noexcept { return local_dram; }
  double rma_lma_ratio() const noexcept;
  /// Fraction of NUMA-relevant loads served remotely.
  double remote_ratio() const noexcept;
  double cpi() const noexcept;
  double avg_load_latency() const noexcept;
};

/// One aggregated per-task window.
struct TaskWindowStats {
  Cycles start = 0;
  Cycles end = 0;
  u64 samples = 0;  // TaskSample records in the window
  std::vector<TaskStats> tasks;  // sorted by (pid, tid)

  const TaskStats* find(u32 pid, u32 tid) const noexcept;
};

/// Collapses consecutive per-task samples into one window; tasks are
/// matched by (pid, tid) across samples (rows may appear or vanish as
/// tasks start and exit).
TaskWindowStats aggregate_tasks(std::span<const TaskSample> samples);

/// Merges consecutive task samples into one coarser sample (deltas sum,
/// area snapshots and the timestamp take the last value).
TaskSample merge_task_samples(std::span<const TaskSample> samples);

struct TierConfig {
  usize tiers = 3;
  /// Downsampling factor between adjacent tiers.
  usize factor = 10;
  /// Samples retained per tier.
  usize capacity = 512;
};

class TieredHistory {
 public:
  explicit TieredHistory(TierConfig config = {});

  /// Feeds one base-period sample; coarser tiers fill automatically.
  void add(const Sample& sample);

  usize tiers() const noexcept { return rings_.size(); }
  const Ring<Sample>& tier(usize t) const { return rings_.at(t); }
  /// Period multiplier of tier t relative to the base period (factor^t).
  u64 scale(usize t) const;
  const TierConfig& config() const noexcept { return config_; }

 private:
  struct Pending {
    Sample accumulator;
    usize count = 0;
  };

  void feed(usize t, const Sample& sample);
  static void accumulate(Sample& into, const Sample& sample);

  TierConfig config_;
  std::vector<Ring<Sample>> rings_;
  std::vector<Pending> pending_;
};

}  // namespace npat::monitor
