#include "monitor/aggregate.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace npat::monitor {

double NodeStats::local_ratio() const noexcept {
  const u64 loads = numa_loads();
  return loads == 0 ? 1.0 : static_cast<double>(local_dram) / static_cast<double>(loads);
}

double NodeStats::remote_ratio() const noexcept {
  const u64 loads = numa_loads();
  return loads == 0 ? 0.0
                    : static_cast<double>(remote_dram + remote_hitm) / static_cast<double>(loads);
}

double NodeStats::ipc() const noexcept {
  return cycles == 0 ? 0.0 : static_cast<double>(instructions) / static_cast<double>(cycles);
}

double NodeStats::dram_bytes_per_cycle(Cycles window_cycles) const noexcept {
  if (window_cycles == 0) return 0.0;
  return static_cast<double>((imc_reads + imc_writes) * kCacheLineBytes) /
         static_cast<double>(window_cycles);
}

double NodeStats::dram_gbps(Cycles window_cycles, double frequency_ghz) const noexcept {
  // bytes/cycle × cycles/ns = bytes/ns = GB/s.
  return dram_bytes_per_cycle(window_cycles) * frequency_ghz;
}

NodeStats WindowStats::total() const {
  NodeStats sum;
  for (const NodeStats& node : nodes) {
    sum.samples = std::max(sum.samples, node.samples);
    sum.instructions += node.instructions;
    sum.cycles += node.cycles;
    sum.local_dram += node.local_dram;
    sum.remote_dram += node.remote_dram;
    sum.remote_hitm += node.remote_hitm;
    sum.imc_reads += node.imc_reads;
    sum.imc_writes += node.imc_writes;
    sum.qpi_flits += node.qpi_flits;
    sum.resident_bytes += node.resident_bytes;
  }
  return sum;
}

WindowStats aggregate(std::span<const Sample> samples) {
  NPAT_OBS_SPAN("monitor.aggregate");
  NPAT_OBS_COUNT("npat_monitor_windows_total", "Aggregation windows computed", 1);
  WindowStats window;
  if (samples.empty()) return window;

  window.start = samples.front().timestamp;
  window.end = samples.back().timestamp;
  window.samples = samples.size();
  window.footprint_bytes = samples.back().footprint_bytes;
  window.nodes.resize(samples.front().nodes.size());

  for (const Sample& sample : samples) {
    NPAT_CHECK_MSG(sample.nodes.size() == window.nodes.size(),
                   "samples in a window must share the node count");
    for (usize node = 0; node < sample.nodes.size(); ++node) {
      const NodeSample& in = sample.nodes[node];
      NodeStats& out = window.nodes[node];
      ++out.samples;
      out.instructions += in.instructions;
      out.cycles += in.cycles;
      out.local_dram += in.local_dram;
      out.remote_dram += in.remote_dram;
      out.remote_hitm += in.remote_hitm;
      out.imc_reads += in.imc_reads;
      out.imc_writes += in.imc_writes;
      out.qpi_flits += in.qpi_flits;
      out.resident_bytes = in.resident_bytes;  // keep the last snapshot
    }
  }
  return window;
}

Sample merge_samples(std::span<const Sample> samples) {
  NPAT_CHECK_MSG(!samples.empty(), "cannot merge zero samples");
  Sample merged = samples.front();
  for (const Sample& sample : samples.subspan(1)) {
    NPAT_CHECK_MSG(sample.nodes.size() == merged.nodes.size(),
                   "merged samples must share the node count");
    merged.timestamp = sample.timestamp;
    merged.footprint_bytes = sample.footprint_bytes;
    for (usize node = 0; node < sample.nodes.size(); ++node) {
      const NodeSample& in = sample.nodes[node];
      NodeSample& out = merged.nodes[node];
      out.instructions += in.instructions;
      out.cycles += in.cycles;
      out.local_dram += in.local_dram;
      out.remote_dram += in.remote_dram;
      out.remote_hitm += in.remote_hitm;
      out.imc_reads += in.imc_reads;
      out.imc_writes += in.imc_writes;
      out.qpi_flits += in.qpi_flits;
      out.resident_bytes = in.resident_bytes;
    }
  }
  return merged;
}

double TaskStats::rma_lma_ratio() const noexcept {
  return lma() == 0 ? 0.0 : static_cast<double>(rma()) / static_cast<double>(lma());
}

double TaskStats::remote_ratio() const noexcept {
  const u64 numa_loads = local_dram + remote_dram + remote_hitm;
  return numa_loads == 0 ? 0.0 : static_cast<double>(rma()) / static_cast<double>(numa_loads);
}

double TaskStats::cpi() const noexcept {
  return instructions == 0 ? 0.0
                           : static_cast<double>(cycles) / static_cast<double>(instructions);
}

double TaskStats::avg_load_latency() const noexcept {
  return latency_loads == 0
             ? 0.0
             : static_cast<double>(latency_sum) / static_cast<double>(latency_loads);
}

const TaskStats* TaskWindowStats::find(u32 pid, u32 tid) const noexcept {
  for (const TaskStats& task : tasks) {
    if (task.pid == pid && task.tid == tid) return &task;
  }
  return nullptr;
}

TaskWindowStats aggregate_tasks(std::span<const TaskSample> samples) {
  NPAT_OBS_SPAN("monitor.aggregate_tasks");
  NPAT_OBS_COUNT("npat_monitor_task_windows_total", "Per-task aggregation windows computed", 1);
  TaskWindowStats window;
  if (samples.empty()) return window;

  window.start = samples.front().timestamp;
  window.end = samples.back().timestamp;
  window.samples = samples.size();

  // (pid, tid) -> index into window.tasks; per-task per-node cycle tally
  // for the window-dominant node.
  std::map<std::pair<u32, u32>, usize> index;
  std::vector<std::map<u32, u64>> node_cycles;
  for (const TaskSample& sample : samples) {
    for (const TaskCounters& row : sample.tasks) {
      const auto [it, inserted] = index.try_emplace({row.pid, row.tid}, window.tasks.size());
      if (inserted) {
        window.tasks.emplace_back();
        node_cycles.emplace_back();
        window.tasks.back().pid = row.pid;
        window.tasks.back().tid = row.tid;
      }
      TaskStats& out = window.tasks[it->second];
      ++out.samples;
      out.instructions += row.instructions;
      out.cycles += row.cycles;
      out.local_dram += row.local_dram;
      out.remote_dram += row.remote_dram;
      out.remote_hitm += row.remote_hitm;
      out.loads += row.loads;
      out.latency_sum += row.latency_sum;
      out.latency_loads += row.latency_loads;
      if (!row.areas.empty()) out.areas = row.areas;  // keep the last snapshot
      node_cycles[it->second][row.node] += row.cycles;
    }
  }
  for (usize i = 0; i < window.tasks.size(); ++i) {
    u64 best = 0;
    for (const auto& [node, cycles] : node_cycles[i]) {
      if (cycles > best) {
        best = cycles;
        window.tasks[i].node = node;
      }
    }
  }
  std::sort(window.tasks.begin(), window.tasks.end(), [](const TaskStats& a, const TaskStats& b) {
    return std::pair{a.pid, a.tid} < std::pair{b.pid, b.tid};
  });
  return window;
}

TaskSample merge_task_samples(std::span<const TaskSample> samples) {
  NPAT_CHECK_MSG(!samples.empty(), "cannot merge zero task samples");
  TaskSample merged = samples.front();
  std::map<std::pair<u32, u32>, usize> index;
  for (usize i = 0; i < merged.tasks.size(); ++i) {
    index[{merged.tasks[i].pid, merged.tasks[i].tid}] = i;
  }
  for (const TaskSample& sample : samples.subspan(1)) {
    merged.timestamp = sample.timestamp;
    for (const TaskCounters& row : sample.tasks) {
      const auto [it, inserted] = index.try_emplace({row.pid, row.tid}, merged.tasks.size());
      if (inserted) {
        merged.tasks.push_back(row);
        continue;
      }
      TaskCounters& out = merged.tasks[it->second];
      out.instructions += row.instructions;
      out.cycles += row.cycles;
      out.local_dram += row.local_dram;
      out.remote_dram += row.remote_dram;
      out.remote_hitm += row.remote_hitm;
      out.loads += row.loads;
      out.latency_sum += row.latency_sum;
      out.latency_loads += row.latency_loads;
      if (row.cycles > 0) out.node = row.node;  // follow the task's latest placement
      if (!row.areas.empty()) out.areas = row.areas;
    }
  }
  std::sort(merged.tasks.begin(), merged.tasks.end(),
            [](const TaskCounters& a, const TaskCounters& b) {
              return std::pair{a.pid, a.tid} < std::pair{b.pid, b.tid};
            });
  return merged;
}

TieredHistory::TieredHistory(TierConfig config) : config_(config) {
  NPAT_CHECK_MSG(config_.tiers >= 1, "need at least one tier");
  NPAT_CHECK_MSG(config_.factor >= 2, "downsampling factor must be >= 2");
  for (usize t = 0; t < config_.tiers; ++t) rings_.emplace_back(config_.capacity);
  pending_.resize(config_.tiers);
}

u64 TieredHistory::scale(usize t) const {
  NPAT_CHECK_MSG(t < rings_.size(), "tier out of range");
  u64 s = 1;
  for (usize i = 0; i < t; ++i) s *= config_.factor;
  return s;
}

void TieredHistory::accumulate(Sample& into, const Sample& sample) {
  const Sample pair[2] = {std::move(into), sample};
  into = merge_samples(pair);
}

void TieredHistory::feed(usize t, const Sample& sample) {
  rings_[t].push(sample);
  if (t + 1 >= rings_.size()) return;

  Pending& pending = pending_[t];
  if (pending.count == 0) {
    pending.accumulator = sample;
  } else {
    accumulate(pending.accumulator, sample);
  }
  if (++pending.count == config_.factor) {
    const Sample merged = std::move(pending.accumulator);
    pending = Pending{};
    feed(t + 1, merged);
  }
}

void TieredHistory::add(const Sample& sample) { feed(0, sample); }

}  // namespace npat::monitor
