#include "monitor/sampler.hpp"

#include "obs/obs.hpp"

namespace npat::monitor {

Sampler::Sampler(sim::Machine& machine, const os::AddressSpace& space, SamplerConfig config)
    : machine_(&machine),
      space_(&space),
      config_(config),
      ring_(config.ring_capacity) {
  NPAT_CHECK_MSG(config_.period > 0, "sampling period must be positive");
  NPAT_CHECK_MSG(config_.monitor_core < machine_->cores(), "monitor core out of range");
  previous_ = totals();
}

void Sampler::attach(trace::Runner& runner) {
  runner.add_sampler(config_.period, [this](Cycles now) { sample(now); });
}

std::vector<NodeSample> Sampler::totals() const {
  const sim::Topology& topology = machine_->topology();
  const std::vector<u64> node_pages = space_->pages_per_node();
  std::vector<NodeSample> nodes(topology.nodes);
  for (sim::NodeId node = 0; node < topology.nodes; ++node) {
    NodeSample& out = nodes[node];
    for (u32 i = 0; i < topology.cores_per_node; ++i) {
      const sim::CounterBlock& core = machine_->core_counters(topology.first_core(node) + i);
      out.instructions += core[sim::Event::kInstructions];
      out.cycles += core[sim::Event::kCycles];
      out.local_dram += core[sim::Event::kMemLoadLocalDram];
      out.remote_dram += core[sim::Event::kMemLoadRemoteDram];
      out.remote_hitm += core[sim::Event::kMemLoadRemoteHitm];
    }
    const sim::CounterBlock uncore = machine_->uncore_counters(node);
    out.imc_reads = uncore[sim::Event::kUncImcReads];
    out.imc_writes = uncore[sim::Event::kUncImcWrites];
    out.qpi_flits = uncore[sim::Event::kUncQpiTxFlits];
    out.resident_bytes = node < node_pages.size() ? node_pages[node] * kPageBytes : 0;
  }
  return nodes;
}

void Sampler::sample(Cycles now) {
  NPAT_OBS_COUNT("npat_monitor_samples_total", "Telemetry samples captured by the monitor", 1);
  std::vector<NodeSample> current = totals();

  Sample record;
  record.timestamp = now;
  record.footprint_bytes = space_->footprint_bytes();
  record.nodes.resize(current.size());
  for (usize node = 0; node < current.size(); ++node) {
    const NodeSample& cur = current[node];
    const NodeSample& prev = previous_[node];
    NodeSample& out = record.nodes[node];
    out.instructions = cur.instructions - prev.instructions;
    out.cycles = cur.cycles - prev.cycles;
    out.local_dram = cur.local_dram - prev.local_dram;
    out.remote_dram = cur.remote_dram - prev.remote_dram;
    out.remote_hitm = cur.remote_hitm - prev.remote_hitm;
    out.imc_reads = cur.imc_reads - prev.imc_reads;
    out.imc_writes = cur.imc_writes - prev.imc_writes;
    out.qpi_flits = cur.qpi_flits - prev.qpi_flits;
    out.resident_bytes = cur.resident_bytes;  // snapshot, not delta
  }
  previous_ = std::move(current);
  ring_.push(std::move(record));

  // The agent's own counter reads perturb the machine *after* the snapshot,
  // exactly like a real monitoring process stealing cycles from one core.
  if (config_.read_cost_cycles > 0) {
    machine_->advance(config_.monitor_core, config_.read_cost_cycles);
  }
}

}  // namespace npat::monitor
