#include "monitor/task_sampler.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace npat::monitor {

TaskSampler::TaskSampler(sim::Machine& machine, TaskSamplerConfig config)
    : machine_(&machine), config_(config), ring_(config.ring_capacity) {
  NPAT_CHECK_MSG(config_.period > 0, "sampling period must be positive");
  previous_ = totals();
}

void TaskSampler::attach(trace::Runner& runner) {
  runner.add_sampler(config_.period, [this](Cycles now) { sample(now); });
}

std::map<sim::TaskKey, TaskSampler::TaskTotals> TaskSampler::totals() const {
  machine_->flush_task_accounting();
  const sim::Topology& topology = machine_->topology();
  std::map<sim::TaskKey, TaskTotals> merged;
  for (u32 core = 0; core < machine_->cores(); ++core) {
    const sim::NodeId node = topology.node_of_core(core);
    for (const auto& [key, domain] : machine_->pmu(core).task_domains()) {
      TaskTotals& totals = merged[key];
      totals.instructions += domain.counters[sim::Event::kInstructions];
      totals.cycles += domain.counters[sim::Event::kCycles];
      totals.local_dram += domain.counters[sim::Event::kMemLoadLocalDram];
      totals.remote_dram += domain.counters[sim::Event::kMemLoadRemoteDram];
      totals.remote_hitm += domain.counters[sim::Event::kMemLoadRemoteHitm];
      totals.loads += domain.counters[sim::Event::kLoadsRetired];
      totals.latency_sum += domain.latency_sum;
      totals.latency_loads += domain.latency_loads;
      totals.node_cycles.resize(topology.nodes);
      totals.node_cycles[node] += domain.counters[sim::Event::kCycles];
      for (const auto& [area, samples] : domain.areas) {
        totals.areas[area << sim::kTaskAreaShift] += samples;
      }
    }
  }
  return merged;
}

void TaskSampler::sample(Cycles now) {
  NPAT_OBS_COUNT("npat_monitor_task_samples_total",
                 "Per-task telemetry samples captured by the monitor", 1);
  std::map<sim::TaskKey, TaskTotals> current = totals();

  TaskSample record;
  record.timestamp = now;
  record.tasks.reserve(current.size());
  for (const auto& [key, cur] : current) {
    const auto prev_it = previous_.find(key);
    static const TaskTotals kZero;
    const TaskTotals& prev = prev_it != previous_.end() ? prev_it->second : kZero;

    TaskCounters row;
    row.pid = key.pid;
    row.tid = key.tid;
    row.instructions = cur.instructions - prev.instructions;
    row.cycles = cur.cycles - prev.cycles;
    row.local_dram = cur.local_dram - prev.local_dram;
    row.remote_dram = cur.remote_dram - prev.remote_dram;
    row.remote_hitm = cur.remote_hitm - prev.remote_hitm;
    row.loads = cur.loads - prev.loads;
    row.latency_sum = cur.latency_sum - prev.latency_sum;
    row.latency_loads = cur.latency_loads - prev.latency_loads;

    // Dominant node of *this period*: argmax over the per-node cycle
    // delta, so a migrating task moves rows as it moves sockets.
    u64 best_cycles = 0;
    for (usize node = 0; node < cur.node_cycles.size(); ++node) {
      const u64 prev_cycles =
          node < prev.node_cycles.size() ? prev.node_cycles[node] : 0;
      const u64 delta = cur.node_cycles[node] - prev_cycles;
      if (delta > best_cycles) {
        best_cycles = delta;
        row.node = static_cast<u32>(node);
      }
    }

    // Hot areas ship as a cumulative top-N snapshot, ordered by sampled
    // loads (descending) then base address for determinism.
    std::vector<TaskArea> areas;
    areas.reserve(cur.areas.size());
    for (const auto& [base, samples] : cur.areas) areas.push_back(TaskArea{base, samples});
    std::sort(areas.begin(), areas.end(), [](const TaskArea& a, const TaskArea& b) {
      return a.samples != b.samples ? a.samples > b.samples : a.base < b.base;
    });
    if (areas.size() > config_.max_areas) areas.resize(config_.max_areas);
    row.areas = std::move(areas);

    record.tasks.push_back(std::move(row));
  }
  previous_ = std::move(current);
  ring_.push(std::move(record));
}

}  // namespace npat::monitor
