// Periodic telemetry samplers, the front end of the continuous-monitoring
// subsystem. Where the paper's tools (EvSel, Memhist, Phasenprüfer) assess
// a *complete* run after the fact, the sampler rides the trace::Runner's
// time-based sampler hook and emits timestamped per-node counter deltas —
// retired-load NUMA breakdown from the core PMUs, memory-controller and
// interconnect traffic from the uncore blocks, and the procfs-visible
// footprint — into a lossy Ring while the workload runs (numatop/NUMAscope
// style).
//
// Observation is free by default; `read_cost_cycles` optionally models an
// on-box monitoring agent by charging simulated cycles to one core per
// sample, which is what bench/extension_monitor_overhead quantifies.
#pragma once

#include <vector>

#include "monitor/ring.hpp"
#include "os/vm.hpp"
#include "sim/machine.hpp"
#include "trace/runner.hpp"
#include "util/types.hpp"

namespace npat::monitor {

/// Per-node counter deltas over one sampling period. `resident_bytes` is a
/// snapshot (numastat-style), everything else is a delta.
struct NodeSample {
  u64 instructions = 0;
  u64 cycles = 0;
  u64 local_dram = 0;   // retired loads served from the node-local DRAM
  u64 remote_dram = 0;  // retired loads served from a remote node's DRAM
  u64 remote_hitm = 0;  // retired loads forwarded dirty from a remote cache
  u64 imc_reads = 0;    // memory-controller line reads at this node
  u64 imc_writes = 0;   // memory-controller line writes at this node
  u64 qpi_flits = 0;    // interconnect flits sent by this node
  u64 resident_bytes = 0;

  friend bool operator==(const NodeSample&, const NodeSample&) = default;
};

/// One timestamped telemetry record.
struct Sample {
  Cycles timestamp = 0;
  u64 footprint_bytes = 0;  // VmSize snapshot
  std::vector<NodeSample> nodes;

  friend bool operator==(const Sample&, const Sample&) = default;
};

struct SamplerConfig {
  /// Base sampling period in simulated cycles (~24 kHz of simulated time at
  /// 2.4 GHz — dense enough for per-window aggregation, sparse enough that
  /// a modeled agent stays well under 5 % overhead).
  Cycles period = 100000;
  usize ring_capacity = 4096;
  /// Simulated cycles charged to `monitor_core` per sample, modeling an
  /// on-box agent reading the counters. 0 = pure (non-perturbing)
  /// observation.
  Cycles read_cost_cycles = 0;
  sim::CoreId monitor_core = 0;
};

class Sampler {
 public:
  /// Baselines the machine's current counter totals; deltas start here.
  Sampler(sim::Machine& machine, const os::AddressSpace& space, SamplerConfig config = {});

  /// Registers the periodic hook with `runner`; the sampler must outlive
  /// the run. May be attached to several consecutive runs.
  void attach(trace::Runner& runner);

  /// Takes one sample immediately (the attached hook calls this; callers
  /// use it to flush the tail of a run past the last periodic tick).
  void sample(Cycles now);

  Ring<Sample>& ring() noexcept { return ring_; }
  const Ring<Sample>& ring() const noexcept { return ring_; }
  const SamplerConfig& config() const noexcept { return config_; }
  u64 samples_taken() const noexcept { return ring_.pushed(); }

 private:
  /// Cumulative per-node totals as of now (what deltas subtract against).
  std::vector<NodeSample> totals() const;

  sim::Machine* machine_;
  const os::AddressSpace* space_;
  SamplerConfig config_;
  Ring<Sample> ring_;
  std::vector<NodeSample> previous_;
};

}  // namespace npat::monitor
