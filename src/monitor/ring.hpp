// Fixed-capacity ring buffer with overwrite-oldest semantics, the capture
// path of the continuous-monitoring subsystem. The sampler (producer) must
// never block or allocate on the hot path, so when the reader falls behind
// a burst the ring overwrites the oldest unread sample and counts the loss
// instead of stalling the workload — NUMAscope-style lossy telemetry where
// gaps are explicit rather than silent.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace npat::monitor {

template <typename T>
class Ring {
 public:
  explicit Ring(usize capacity) : slots_(capacity) {
    NPAT_CHECK_MSG(capacity > 0, "ring capacity must be positive");
  }

  usize capacity() const noexcept { return slots_.size(); }
  /// Unread elements currently held.
  usize size() const noexcept { return static_cast<usize>(head_ - tail_); }
  bool empty() const noexcept { return head_ == tail_; }
  bool full() const noexcept { return size() == capacity(); }

  /// Elements ever pushed (monotonic).
  u64 pushed() const noexcept { return head_; }
  /// Elements lost to overwrite-oldest (monotonic).
  u64 dropped() const noexcept { return dropped_; }

  /// Appends `value`; never fails. Returns false iff the ring was full and
  /// the oldest unread element was overwritten (and counted as dropped).
  bool push(T value) {
    const bool overwrote = full();
    if (overwrote) {
      ++tail_;
      ++dropped_;
    }
    slots_[static_cast<usize>(head_ % capacity())] = std::move(value);
    ++head_;
    return !overwrote;
  }

  /// Removes and returns the oldest unread element; nullopt when empty.
  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T value = std::move(slots_[static_cast<usize>(tail_ % capacity())]);
    ++tail_;
    return value;
  }

  /// Removes up to `max` oldest elements in FIFO order.
  std::vector<T> drain(usize max = static_cast<usize>(-1)) {
    std::vector<T> out;
    out.reserve(std::min(max, size()));
    while (out.size() < max) {
      auto value = pop();
      if (!value) break;
      out.push_back(std::move(*value));
    }
    return out;
  }

  /// The i-th oldest unread element (0 = next pop), without consuming.
  const T& peek(usize i) const {
    NPAT_CHECK_MSG(i < size(), "ring peek out of range");
    return slots_[static_cast<usize>((tail_ + i) % capacity())];
  }

  void clear() noexcept {
    tail_ = head_;
  }

 private:
  std::vector<T> slots_;
  // Monotonic positions; size/index derive from their difference, so
  // wraparound of the buffer never needs index juggling.
  u64 head_ = 0;
  u64 tail_ = 0;
  u64 dropped_ = 0;
};

}  // namespace npat::monitor
