#include "monitor/export.hpp"

#include "util/csv.hpp"

namespace npat::monitor {

std::string to_csv(std::span<const Sample> samples) {
  util::CsvWriter csv({"timestamp", "footprint_bytes", "node", "instructions", "cycles",
                       "local_dram", "remote_dram", "remote_hitm", "imc_reads", "imc_writes",
                       "qpi_flits", "resident_bytes"});
  for (const Sample& sample : samples) {
    for (usize node = 0; node < sample.nodes.size(); ++node) {
      const NodeSample& n = sample.nodes[node];
      csv.add_row({std::to_string(sample.timestamp), std::to_string(sample.footprint_bytes),
                   std::to_string(node), std::to_string(n.instructions),
                   std::to_string(n.cycles), std::to_string(n.local_dram),
                   std::to_string(n.remote_dram), std::to_string(n.remote_hitm),
                   std::to_string(n.imc_reads), std::to_string(n.imc_writes),
                   std::to_string(n.qpi_flits), std::to_string(n.resident_bytes)});
    }
  }
  return csv.str();
}

util::Json to_json(std::span<const Sample> samples) {
  util::JsonArray list;
  for (const Sample& sample : samples) {
    util::JsonArray nodes;
    for (const NodeSample& n : sample.nodes) {
      util::JsonObject node;
      node["instructions"] = n.instructions;
      node["cycles"] = n.cycles;
      node["local_dram"] = n.local_dram;
      node["remote_dram"] = n.remote_dram;
      node["remote_hitm"] = n.remote_hitm;
      node["imc_reads"] = n.imc_reads;
      node["imc_writes"] = n.imc_writes;
      node["qpi_flits"] = n.qpi_flits;
      node["resident_bytes"] = n.resident_bytes;
      nodes.push_back(std::move(node));
    }
    util::JsonObject record;
    record["timestamp"] = sample.timestamp;
    record["footprint_bytes"] = sample.footprint_bytes;
    record["nodes"] = std::move(nodes);
    list.push_back(std::move(record));
  }
  util::JsonObject doc;
  doc["samples"] = std::move(list);
  return doc;
}

memhist::wire::MonitorSampleMsg to_wire(const Sample& sample) {
  memhist::wire::MonitorSampleMsg message;
  message.timestamp = sample.timestamp;
  message.footprint_bytes = sample.footprint_bytes;
  message.nodes.reserve(sample.nodes.size());
  for (const NodeSample& n : sample.nodes) {
    message.nodes.push_back({n.instructions, n.cycles, n.local_dram, n.remote_dram,
                             n.remote_hitm, n.imc_reads, n.imc_writes, n.qpi_flits,
                             n.resident_bytes});
  }
  return message;
}

Sample from_wire(const memhist::wire::MonitorSampleMsg& message) {
  Sample sample;
  sample.timestamp = message.timestamp;
  sample.footprint_bytes = message.footprint_bytes;
  sample.nodes.reserve(message.nodes.size());
  for (const memhist::wire::MonitorNodeCounters& n : message.nodes) {
    sample.nodes.push_back({n.instructions, n.cycles, n.local_dram, n.remote_dram,
                            n.remote_hitm, n.imc_reads, n.imc_writes, n.qpi_flits,
                            n.resident_bytes});
  }
  return sample;
}

std::vector<u8> encode_stream(std::span<const Sample> samples) {
  namespace wire = memhist::wire;
  std::vector<u8> out;
  const u32 node_count =
      samples.empty() ? 0 : static_cast<u32>(samples.front().nodes.size());
  const auto append = [&out](const std::vector<u8>& frame) {
    out.insert(out.end(), frame.begin(), frame.end());
  };
  append(wire::encode(wire::Hello{wire::kProtocolVersion, node_count}));
  for (const Sample& sample : samples) append(wire::encode(to_wire(sample)));
  append(wire::encode(wire::End{samples.empty() ? 0 : samples.back().timestamp}));
  return out;
}

DecodedStream decode_stream(const std::vector<u8>& bytes) {
  namespace wire = memhist::wire;
  wire::Decoder decoder;
  decoder.feed(bytes);
  decoder.finish();

  DecodedStream out;
  while (auto message = decoder.poll()) {
    if (const auto* hello = std::get_if<wire::Hello>(&*message)) {
      out.node_count = hello->node_count;
      out.version = hello->version;
    } else if (const auto* sample = std::get_if<wire::MonitorSampleMsg>(&*message)) {
      out.samples.push_back(from_wire(*sample));
    } else if (const auto* end = std::get_if<wire::End>(&*message)) {
      out.ended = true;
      out.total_cycles = end->total_cycles;
    }
  }
  out.dropped_frames = decoder.dropped_frames();
  return out;
}

std::string to_csv_tasks(std::span<const TaskSample> samples, const TaskNameTable& names) {
  util::CsvWriter csv({"timestamp", "pid", "tid", "process", "thread", "node", "instructions",
                       "cycles", "local_dram", "remote_dram", "remote_hitm", "loads",
                       "latency_sum", "latency_loads"});
  for (const TaskSample& sample : samples) {
    for (const TaskCounters& t : sample.tasks) {
      const auto named = names.find({t.pid, t.tid});
      const TaskNames& n = named != names.end() ? named->second : TaskNames{};
      csv.add_row({std::to_string(sample.timestamp), std::to_string(t.pid),
                   std::to_string(t.tid), n.process_name, n.thread_name,
                   std::to_string(t.node), std::to_string(t.instructions),
                   std::to_string(t.cycles), std::to_string(t.local_dram),
                   std::to_string(t.remote_dram), std::to_string(t.remote_hitm),
                   std::to_string(t.loads), std::to_string(t.latency_sum),
                   std::to_string(t.latency_loads)});
    }
  }
  return csv.str();
}

util::Json to_json_tasks(std::span<const TaskSample> samples, const TaskNameTable& names) {
  util::JsonArray list;
  for (const TaskSample& sample : samples) {
    util::JsonArray tasks;
    for (const TaskCounters& t : sample.tasks) {
      util::JsonObject task;
      const auto named = names.find({t.pid, t.tid});
      task["pid"] = static_cast<u64>(t.pid);
      task["tid"] = static_cast<u64>(t.tid);
      task["process"] = named != names.end() ? named->second.process_name : "";
      task["thread"] = named != names.end() ? named->second.thread_name : "";
      task["node"] = static_cast<u64>(t.node);
      task["instructions"] = t.instructions;
      task["cycles"] = t.cycles;
      task["local_dram"] = t.local_dram;
      task["remote_dram"] = t.remote_dram;
      task["remote_hitm"] = t.remote_hitm;
      task["loads"] = t.loads;
      task["latency_sum"] = t.latency_sum;
      task["latency_loads"] = t.latency_loads;
      util::JsonArray areas;
      for (const TaskArea& area : t.areas) {
        util::JsonObject a;
        a["base"] = area.base;
        a["samples"] = area.samples;
        areas.push_back(std::move(a));
      }
      task["areas"] = std::move(areas);
      tasks.push_back(std::move(task));
    }
    util::JsonObject record;
    record["timestamp"] = sample.timestamp;
    record["tasks"] = std::move(tasks);
    list.push_back(std::move(record));
  }
  util::JsonObject doc;
  doc["task_samples"] = std::move(list);
  return doc;
}

memhist::wire::TaskSampleMsg to_wire_tasks(const TaskSample& sample,
                                           const std::map<std::pair<u32, u32>, u32>& task_ids) {
  memhist::wire::TaskSampleMsg message;
  message.timestamp = sample.timestamp;
  message.rows.reserve(sample.tasks.size());
  for (const TaskCounters& t : sample.tasks) {
    const auto it = task_ids.find({t.pid, t.tid});
    if (it == task_ids.end()) continue;  // unregistered: caller must announce first
    memhist::wire::TaskSampleRow row;
    row.task_id = it->second;
    row.node = t.node;
    row.instructions = t.instructions;
    row.cycles = t.cycles;
    row.local_dram = t.local_dram;
    row.remote_dram = t.remote_dram;
    row.remote_hitm = t.remote_hitm;
    row.loads = t.loads;
    row.latency_sum = t.latency_sum;
    row.latency_loads = t.latency_loads;
    row.areas.reserve(t.areas.size());
    for (const TaskArea& area : t.areas) {
      row.areas.push_back(memhist::wire::TaskAreaCounters{area.base, area.samples});
    }
    message.rows.push_back(std::move(row));
  }
  return message;
}

TaskSample from_wire_tasks(const memhist::wire::TaskSampleMsg& message,
                           const std::map<u32, std::pair<u32, u32>>& identities) {
  TaskSample sample;
  sample.timestamp = message.timestamp;
  sample.tasks.reserve(message.rows.size());
  for (const memhist::wire::TaskSampleRow& row : message.rows) {
    const auto it = identities.find(row.task_id);
    if (it == identities.end()) continue;
    TaskCounters t;
    t.pid = it->second.first;
    t.tid = it->second.second;
    t.node = row.node;
    t.instructions = row.instructions;
    t.cycles = row.cycles;
    t.local_dram = row.local_dram;
    t.remote_dram = row.remote_dram;
    t.remote_hitm = row.remote_hitm;
    t.loads = row.loads;
    t.latency_sum = row.latency_sum;
    t.latency_loads = row.latency_loads;
    t.areas.reserve(row.areas.size());
    for (const memhist::wire::TaskAreaCounters& area : row.areas) {
      t.areas.push_back(TaskArea{area.base, area.samples});
    }
    sample.tasks.push_back(std::move(t));
  }
  return sample;
}

std::vector<u8> encode_task_stream(std::span<const TaskSample> samples,
                                   const TaskNameTable& names) {
  namespace wire = memhist::wire;
  // Register every task seen anywhere in the stream (or named by the
  // caller), with ids assigned in (pid, tid) order for determinism.
  std::map<std::pair<u32, u32>, u32> task_ids;
  for (const auto& [key, value] : names) task_ids.emplace(key, 0);
  for (const TaskSample& sample : samples) {
    for (const TaskCounters& t : sample.tasks) task_ids.emplace(std::pair{t.pid, t.tid}, 0);
  }
  u32 next_id = 1;
  for (auto& [key, id] : task_ids) id = next_id++;

  wire::TaskTableMsg table;
  table.entries.reserve(task_ids.size());
  for (const auto& [key, id] : task_ids) {
    wire::TaskTableEntry entry;
    entry.task_id = id;
    entry.pid = key.first;
    entry.tid = key.second;
    const auto named = names.find(key);
    if (named != names.end()) {
      entry.process_name = named->second.process_name;
      entry.thread_name = named->second.thread_name;
    }
    table.entries.push_back(std::move(entry));
  }

  std::vector<u8> out;
  const auto append = [&out](const std::vector<u8>& frame) {
    out.insert(out.end(), frame.begin(), frame.end());
  };
  append(wire::encode(wire::Hello{wire::kProtocolVersion, 0, {}}));
  append(wire::encode(table));
  for (const TaskSample& sample : samples) append(wire::encode(to_wire_tasks(sample, task_ids)));
  append(wire::encode(wire::End{samples.empty() ? 0 : samples.back().timestamp}));
  return out;
}

DecodedTaskStream decode_task_stream(const std::vector<u8>& bytes) {
  namespace wire = memhist::wire;
  wire::Decoder decoder;
  decoder.feed(bytes);
  decoder.finish();

  DecodedTaskStream out;
  std::map<u32, std::pair<u32, u32>> identities;
  while (auto message = decoder.poll()) {
    if (const auto* hello = std::get_if<wire::Hello>(&*message)) {
      out.version = hello->version;
    } else if (const auto* table = std::get_if<wire::TaskTableMsg>(&*message)) {
      for (const wire::TaskTableEntry& entry : table->entries) {
        identities[entry.task_id] = {entry.pid, entry.tid};
        out.names[{entry.pid, entry.tid}] = TaskNames{entry.process_name, entry.thread_name};
      }
    } else if (const auto* sample = std::get_if<wire::TaskSampleMsg>(&*message)) {
      TaskSample decoded = from_wire_tasks(*sample, identities);
      out.unknown_task_rows += sample->rows.size() - decoded.tasks.size();
      out.samples.push_back(std::move(decoded));
    } else if (std::get_if<wire::End>(&*message) != nullptr) {
      out.ended = true;
    }
  }
  out.dropped_frames = decoder.dropped_frames();
  return out;
}

}  // namespace npat::monitor
