#include "monitor/export.hpp"

#include "util/csv.hpp"

namespace npat::monitor {

std::string to_csv(std::span<const Sample> samples) {
  util::CsvWriter csv({"timestamp", "footprint_bytes", "node", "instructions", "cycles",
                       "local_dram", "remote_dram", "remote_hitm", "imc_reads", "imc_writes",
                       "qpi_flits", "resident_bytes"});
  for (const Sample& sample : samples) {
    for (usize node = 0; node < sample.nodes.size(); ++node) {
      const NodeSample& n = sample.nodes[node];
      csv.add_row({std::to_string(sample.timestamp), std::to_string(sample.footprint_bytes),
                   std::to_string(node), std::to_string(n.instructions),
                   std::to_string(n.cycles), std::to_string(n.local_dram),
                   std::to_string(n.remote_dram), std::to_string(n.remote_hitm),
                   std::to_string(n.imc_reads), std::to_string(n.imc_writes),
                   std::to_string(n.qpi_flits), std::to_string(n.resident_bytes)});
    }
  }
  return csv.str();
}

util::Json to_json(std::span<const Sample> samples) {
  util::JsonArray list;
  for (const Sample& sample : samples) {
    util::JsonArray nodes;
    for (const NodeSample& n : sample.nodes) {
      util::JsonObject node;
      node["instructions"] = n.instructions;
      node["cycles"] = n.cycles;
      node["local_dram"] = n.local_dram;
      node["remote_dram"] = n.remote_dram;
      node["remote_hitm"] = n.remote_hitm;
      node["imc_reads"] = n.imc_reads;
      node["imc_writes"] = n.imc_writes;
      node["qpi_flits"] = n.qpi_flits;
      node["resident_bytes"] = n.resident_bytes;
      nodes.push_back(std::move(node));
    }
    util::JsonObject record;
    record["timestamp"] = sample.timestamp;
    record["footprint_bytes"] = sample.footprint_bytes;
    record["nodes"] = std::move(nodes);
    list.push_back(std::move(record));
  }
  util::JsonObject doc;
  doc["samples"] = std::move(list);
  return doc;
}

memhist::wire::MonitorSampleMsg to_wire(const Sample& sample) {
  memhist::wire::MonitorSampleMsg message;
  message.timestamp = sample.timestamp;
  message.footprint_bytes = sample.footprint_bytes;
  message.nodes.reserve(sample.nodes.size());
  for (const NodeSample& n : sample.nodes) {
    message.nodes.push_back({n.instructions, n.cycles, n.local_dram, n.remote_dram,
                             n.remote_hitm, n.imc_reads, n.imc_writes, n.qpi_flits,
                             n.resident_bytes});
  }
  return message;
}

Sample from_wire(const memhist::wire::MonitorSampleMsg& message) {
  Sample sample;
  sample.timestamp = message.timestamp;
  sample.footprint_bytes = message.footprint_bytes;
  sample.nodes.reserve(message.nodes.size());
  for (const memhist::wire::MonitorNodeCounters& n : message.nodes) {
    sample.nodes.push_back({n.instructions, n.cycles, n.local_dram, n.remote_dram,
                            n.remote_hitm, n.imc_reads, n.imc_writes, n.qpi_flits,
                            n.resident_bytes});
  }
  return sample;
}

std::vector<u8> encode_stream(std::span<const Sample> samples) {
  namespace wire = memhist::wire;
  std::vector<u8> out;
  const u32 node_count =
      samples.empty() ? 0 : static_cast<u32>(samples.front().nodes.size());
  const auto append = [&out](const std::vector<u8>& frame) {
    out.insert(out.end(), frame.begin(), frame.end());
  };
  append(wire::encode(wire::Hello{wire::kProtocolVersion, node_count}));
  for (const Sample& sample : samples) append(wire::encode(to_wire(sample)));
  append(wire::encode(wire::End{samples.empty() ? 0 : samples.back().timestamp}));
  return out;
}

DecodedStream decode_stream(const std::vector<u8>& bytes) {
  namespace wire = memhist::wire;
  wire::Decoder decoder;
  decoder.feed(bytes);
  decoder.finish();

  DecodedStream out;
  while (auto message = decoder.poll()) {
    if (const auto* hello = std::get_if<wire::Hello>(&*message)) {
      out.node_count = hello->node_count;
      out.version = hello->version;
    } else if (const auto* sample = std::get_if<wire::MonitorSampleMsg>(&*message)) {
      out.samples.push_back(from_wire(*sample));
    } else if (const auto* end = std::get_if<wire::End>(&*message)) {
      out.ended = true;
      out.total_cycles = end->total_cycles;
    }
  }
  out.dropped_frames = decoder.dropped_frames();
  return out;
}

}  // namespace npat::monitor
