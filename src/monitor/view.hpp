// numatop-style live view: a per-node table of the current window's NUMA
// rates (local/remote access ratio, IPC, DRAM bandwidth, interconnect
// traffic, RSS) plus an ASCII sparkline of each node's remote-access ratio
// over recent windows. Rendering is byte-stable with ANSI styling off (the
// util::ansi global), so tests can assert on output while a terminal gets
// colour cues: remote-heavy nodes red, idle nodes dim.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "monitor/aggregate.hpp"
#include "obs/alert.hpp"
#include "util/types.hpp"

namespace npat::monitor {

struct ViewOptions {
  /// Core frequency used to scale bytes/cycle into GB/s.
  double frequency_ghz = 2.4;
  /// Width of the remote-ratio history sparkline; 0 hides the column.
  usize spark_width = 20;
  /// Remote-ratio thresholds seeding obs::remote_ratio_rule; also used
  /// directly (no hysteresis) when `node_alerts` is not supplied.
  double warn_remote_ratio = 0.2;
  double bad_remote_ratio = 0.5;
  /// Committed per-node severities from an obs::AlertEngine (see
  /// evaluate_node_alerts). When sized, the view renders an Alert column
  /// and styles Remote% from these instead of the raw thresholds.
  std::vector<obs::Severity> node_alerts;
  /// Host-wide live phase from a phasen::OnlineDetector (phase_label()).
  /// When non-empty, the view renders a Phase column; empty hides it.
  std::string phase_label;
  /// Emit an ANSI home+clear prefix before the frame (live top-style
  /// refresh); only honoured while ANSI styling is globally enabled.
  bool clear_screen = false;
  std::string title = "npat-top";
};

/// Maps values in [0, 1] onto an ASCII intensity ramp, one glyph per
/// element; values are clamped.
std::string sparkline(std::span<const double> values, usize width);

/// Renders one frame: a summary line (time, window span, footprint, sample
/// and drop counts) and the per-node table. `history` supplies the
/// sparkline series (older windows first, `window` typically last).
std::string render_view(const WindowStats& window, std::span<const WindowStats> history,
                        const ViewOptions& options = {});

/// Convenience overload without history (no sparkline column).
std::string render_view(const WindowStats& window, const ViewOptions& options = {});

/// Feeds one aggregation window's per-node remote ratios through the
/// engine's "remote_ratio" rule (subjects "node0", "node1", …) and returns
/// the committed severities, ready to assign to ViewOptions::node_alerts.
std::vector<obs::Severity> evaluate_node_alerts(obs::AlertEngine& engine,
                                                const WindowStats& window);

}  // namespace npat::monitor
