// numatop-style live view: a per-node table of the current window's NUMA
// rates (local/remote access ratio, IPC, DRAM bandwidth, interconnect
// traffic, RSS) plus an ASCII sparkline of each node's remote-access ratio
// over recent windows. Rendering is byte-stable with ANSI styling off (the
// util::ansi global), so tests can assert on output while a terminal gets
// colour cues: remote-heavy nodes red, idle nodes dim.
#pragma once

#include <span>
#include <string>

#include "monitor/aggregate.hpp"
#include "util/types.hpp"

namespace npat::monitor {

struct ViewOptions {
  /// Core frequency used to scale bytes/cycle into GB/s.
  double frequency_ghz = 2.4;
  /// Width of the remote-ratio history sparkline; 0 hides the column.
  usize spark_width = 20;
  /// Remote-ratio thresholds for the colour cues.
  double warn_remote_ratio = 0.2;
  double bad_remote_ratio = 0.5;
  /// Emit an ANSI home+clear prefix before the frame (live top-style
  /// refresh); only honoured while ANSI styling is globally enabled.
  bool clear_screen = false;
  std::string title = "npat-top";
};

/// Maps values in [0, 1] onto an ASCII intensity ramp, one glyph per
/// element; values are clamped.
std::string sparkline(std::span<const double> values, usize width);

/// Renders one frame: a summary line (time, window span, footprint, sample
/// and drop counts) and the per-node table. `history` supplies the
/// sparkline series (older windows first, `window` typically last).
std::string render_view(const WindowStats& window, std::span<const WindowStats> history,
                        const ViewOptions& options = {});

/// Convenience overload without history (no sparkline column).
std::string render_view(const WindowStats& window, const ViewOptions& options = {});

}  // namespace npat::monitor
