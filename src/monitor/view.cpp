#include "monitor/view.hpp"

#include <algorithm>

#include "util/ansi.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::monitor {

namespace {

// 10-level intensity ramp; index = clamp(value) scaled.
constexpr std::string_view kRamp = " .:-=+*#%@";

util::Style severity_style(obs::Severity severity) {
  switch (severity) {
    case obs::Severity::kBad:
      return util::Style::kRed;
    case obs::Severity::kWarn:
      return util::Style::kYellow;
    case obs::Severity::kOk:
      break;
  }
  return util::Style::kGreen;
}

/// Per-node severity: the alert engine's committed state when supplied,
/// otherwise the raw thresholds (no hysteresis).
obs::Severity node_severity(usize node, double remote_ratio, const ViewOptions& options) {
  if (node < options.node_alerts.size()) return options.node_alerts[node];
  if (remote_ratio >= options.bad_remote_ratio) return obs::Severity::kBad;
  if (remote_ratio >= options.warn_remote_ratio) return obs::Severity::kWarn;
  return obs::Severity::kOk;
}

std::string percent(double ratio) { return util::format("%5.1f%%", ratio * 100.0); }

}  // namespace

std::string sparkline(std::span<const double> values, usize width) {
  if (width == 0 || values.empty()) return "";
  // Keep the most recent `width` values.
  const usize take = std::min(values.size(), width);
  std::string out;
  out.reserve(take);
  for (usize i = values.size() - take; i < values.size(); ++i) {
    const double clamped = std::clamp(values[i], 0.0, 1.0);
    const usize level =
        std::min(kRamp.size() - 1, static_cast<usize>(clamped * static_cast<double>(kRamp.size())));
    out.push_back(kRamp[level]);
  }
  return out;
}

std::string render_view(const WindowStats& window, std::span<const WindowStats> history,
                        const ViewOptions& options) {
  std::string out;
  if (options.clear_screen && util::ansi_enabled()) out += "\x1b[H\x1b[2J";

  const NodeStats total = window.total();
  out += util::format(
      "%s — t=%s cycles  window=%s cycles  footprint=%s  samples=%llu\n",
      options.title.c_str(), util::si_scaled(static_cast<double>(window.end)).c_str(),
      util::si_scaled(static_cast<double>(window.span())).c_str(),
      util::human_bytes(window.footprint_bytes).c_str(),
      static_cast<unsigned long long>(window.samples));

  const bool spark = options.spark_width > 0 && !history.empty();
  const bool alerts = !options.node_alerts.empty();
  const bool phase = !options.phase_label.empty();
  std::vector<std::string> headers = {"Node", "Local%", "Remote%", "HITM%",
                                      "IPC",  "DRAM GB/s", "QPI fl/kc", "RSS"};
  if (alerts) headers.push_back("Alert");
  if (phase) headers.push_back("Phase");
  if (spark) headers.push_back("remote% trend");
  util::Table table(std::move(headers));
  for (usize c = 1; c <= 7; ++c) table.set_align(c, util::Align::kRight);

  const Cycles span = window.span(1);
  for (usize node = 0; node < window.nodes.size(); ++node) {
    const NodeStats& stats = window.nodes[node];
    const double hitm_ratio =
        stats.numa_loads() == 0
            ? 0.0
            : static_cast<double>(stats.remote_hitm) / static_cast<double>(stats.numa_loads());
    const bool idle = stats.instructions == 0;
    const util::Style row_style = idle ? util::Style::kDim : util::Style::kNone;

    const obs::Severity severity = node_severity(node, stats.remote_ratio(), options);
    std::vector<util::Cell> cells;
    cells.push_back({util::format("%zu", node), row_style});
    cells.push_back({percent(stats.local_ratio()), row_style});
    cells.push_back(
        {percent(stats.remote_ratio()), idle ? row_style : severity_style(severity)});
    cells.push_back({percent(hitm_ratio), row_style});
    cells.push_back({util::format("%4.2f", stats.ipc()), row_style});
    cells.push_back({util::format("%6.2f", stats.dram_gbps(span, options.frequency_ghz)),
                     row_style});
    cells.push_back(
        {util::format("%6.1f",
                      static_cast<double>(stats.qpi_flits) * 1000.0 / static_cast<double>(span)),
         row_style});
    cells.push_back({util::human_bytes(stats.resident_bytes), row_style});
    if (alerts) cells.push_back({obs::severity_name(severity), severity_style(severity)});
    // The phase is host-wide (one footprint series feeds the detector), so
    // every node row carries the same label.
    if (phase) cells.push_back({options.phase_label, util::Style::kCyan});

    if (spark) {
      std::vector<double> series;
      series.reserve(history.size());
      for (const WindowStats& past : history) {
        series.push_back(node < past.nodes.size() ? past.nodes[node].remote_ratio() : 0.0);
      }
      cells.push_back({sparkline(series, options.spark_width), util::Style::kCyan});
    }
    table.add_styled_row(std::move(cells));
  }

  // System-wide totals row.
  {
    std::vector<util::Cell> cells;
    const double hitm_ratio =
        total.numa_loads() == 0
            ? 0.0
            : static_cast<double>(total.remote_hitm) / static_cast<double>(total.numa_loads());
    cells.push_back({"all", util::Style::kBold});
    cells.push_back({percent(total.local_ratio()), util::Style::kBold});
    cells.push_back({percent(total.remote_ratio()), util::Style::kBold});
    cells.push_back({percent(hitm_ratio), util::Style::kBold});
    cells.push_back({util::format("%4.2f", total.ipc()), util::Style::kBold});
    cells.push_back(
        {util::format("%6.2f", total.dram_gbps(span, options.frequency_ghz)), util::Style::kBold});
    cells.push_back(
        {util::format("%6.1f",
                      static_cast<double>(total.qpi_flits) * 1000.0 / static_cast<double>(span)),
         util::Style::kBold});
    cells.push_back({util::human_bytes(total.resident_bytes), util::Style::kBold});
    if (alerts) {
      // Worst committed severity across nodes.
      obs::Severity worst = obs::Severity::kOk;
      for (obs::Severity s : options.node_alerts) worst = std::max(worst, s);
      cells.push_back({obs::severity_name(worst), severity_style(worst)});
    }
    if (phase) cells.push_back({options.phase_label, util::Style::kBold});
    if (spark) cells.push_back({"", util::Style::kNone});
    table.add_rule();
    table.add_styled_row(std::move(cells));
  }

  out += table.render();
  return out;
}

std::string render_view(const WindowStats& window, const ViewOptions& options) {
  return render_view(window, std::span<const WindowStats>{}, options);
}

std::vector<obs::Severity> evaluate_node_alerts(obs::AlertEngine& engine,
                                                const WindowStats& window) {
  std::vector<obs::Severity> severities;
  severities.reserve(window.nodes.size());
  for (usize node = 0; node < window.nodes.size(); ++node) {
    severities.push_back(engine.evaluate("remote_ratio", util::format("node%zu", node),
                                         window.nodes[node].remote_ratio()));
  }
  return severities;
}

}  // namespace npat::monitor
