// Terminal rendering of EvSel results, reproducing the GUI's visual cues
// (Fig. 5): every event listed with its description, zero counters grayed
// out, significance icons with the reached confidence, color-coded
// correlations. Plus JSON/CSV export.
#pragma once

#include <string>

#include "evsel/compare.hpp"
#include "evsel/regress.hpp"

namespace npat::evsel {

struct ReportOptions {
  double alpha = 0.05;
  /// Show every event, not only significant ones.
  bool include_all_events = false;
  /// Include the long event descriptions column.
  bool show_descriptions = true;
  /// Cap on rendered rows (0 = unlimited).
  usize max_rows = 0;
};

/// Comparison table: event, means, delta, significance icon + confidence.
std::string render_comparison(const Comparison& comparison, const ReportOptions& options = {});

/// Correlation table: event, fit type, fitted function, R (Fig. 9 layout).
std::string render_correlations(const SweepResult& result, double min_abs_r = 0.5,
                                const ReportOptions& options = {});

/// Plain listing of one measurement (event, mean, stddev, description) —
/// the "all available events on the CPU are listed" pane.
std::string render_measurement(const Measurement& measurement,
                               const ReportOptions& options = {});

util::Json comparison_to_json(const Comparison& comparison);
util::Json sweep_to_json(const SweepResult& result);

/// CSV with one row per (event, repetition) pair of a sweep.
std::string sweep_to_csv(const SweepResult& result);

}  // namespace npat::evsel
