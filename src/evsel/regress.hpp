// Parameter regressions (EvSel Fig. 9): a program parameter (e.g. thread
// count) is swept; for every event, linear / quadratic / exponential models
// are fitted against the parameter and the best fit with its R is reported.
#pragma once

#include <string>
#include <vector>

#include "evsel/collector.hpp"
#include "evsel/measurement.hpp"
#include "stats/regression.hpp"

namespace npat::evsel {

struct CorrelationRow {
  sim::Event event = sim::Event::kCycles;
  stats::Fit best;                 // best-R² model
  std::vector<stats::Fit> all;     // every converged model family
  usize points = 0;                // (parameter, value) pairs fitted
};

struct SweepResult {
  std::string parameter_name;
  std::vector<Measurement> measurements;  // one per swept value
  std::vector<CorrelationRow> correlations;  // registry order

  const CorrelationRow* correlation(sim::Event event) const;
  /// Correlations with |r| >= threshold, strongest first. Constant events
  /// never appear (no meaningful fit exists).
  std::vector<CorrelationRow> strongest(double min_abs_r = 0.0) const;
};

/// Builds a program for one swept parameter value.
using SweepFactory = std::function<trace::Program(double parameter_value)>;

/// Measures `factory` at each value and regresses every collected event
/// against the parameter (each repetition is its own data point).
SweepResult sweep(Collector& collector, const std::string& parameter_name,
                  const std::vector<double>& values, const SweepFactory& factory,
                  const CollectOptions& options = {});

/// Regression-only entry point for pre-collected measurements, each of
/// which must carry `parameter_name` in its parameters().
SweepResult correlate(const std::string& parameter_name,
                      std::vector<Measurement> measurements);

}  // namespace npat::evsel
