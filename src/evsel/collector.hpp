// EvSel's measurement engine. Two strategies:
//
//  * kBatchedRuns (EvSel's design, §IV-A.1): all requested events are
//    partitioned into register-sized groups; the *whole program* is re-run
//    once per group, per repetition. No event cycling; every value is an
//    exact whole-run count.
//  * kMultiplexed (the alternative EvSel argues against): one run per
//    repetition with in-run group rotation and enabled/running scaling.
//
// bench/ablation_event_cycling compares their accuracy head-to-head.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "evsel/measurement.hpp"
#include "sim/machine.hpp"
#include "trace/runner.hpp"

namespace npat::evsel {

enum class CollectionStrategy : u8 { kBatchedRuns, kMultiplexed };

struct CollectOptions {
  u32 repetitions = 5;
  /// Events to measure; empty = every event the platform exposes.
  std::vector<sim::Event> events;
  CollectionStrategy strategy = CollectionStrategy::kBatchedRuns;
  /// Group rotation period for kMultiplexed.
  Cycles rotation_interval = 500000;
  /// Base seed; every (repetition, group) run gets a distinct derived seed,
  /// honestly modelling that separate runs are never bit-identical.
  u64 seed = 2017;
  os::AffinityPolicy affinity = os::AffinityPolicy::kCompact;
  /// numactl-style placement override for the measured program: when set,
  /// every allocation the program makes uses this page policy (with
  /// `override_bind_node` for kBind) regardless of what the workload asked
  /// for — the advisor's apply-and-rerun path measures an *unmodified*
  /// workload under an advised placement this way.
  std::optional<os::PagePolicy> page_policy_override;
  sim::NodeId override_bind_node = 0;
  /// Robustness screen (0 disables; needs >= 3 repetitions): a run whose
  /// count for any armed event deviates from the cross-repetition median
  /// by more than `quarantine_mad_k * 1.4826 * MAD` (plus a tiny epsilon
  /// for perfectly repeatable counters) is quarantined — thrown out and
  /// re-measured with a fresh seed, so one scheduler hiccup or page-cache
  /// cold start does not poison the t-test inputs.
  double quarantine_mad_k = 0.0;
  /// Total re-measured replacement runs allowed per measure() call. A run
  /// whose replacement is still an outlier when the budget runs dry keeps
  /// the last value; Measurement::quarantined_runs() flags the degraded
  /// confidence either way.
  u32 retry_budget = 3;
};

/// Builds a fresh program for one run. Called once per (repetition, group).
using ProgramFactory = std::function<trace::Program()>;

class Collector {
 public:
  /// The collector owns a machine built from `config` and reuses it
  /// (reset) across runs.
  explicit Collector(sim::MachineConfig config);

  /// Measures `factory`'s program under `options`; `label` names the
  /// resulting measurement.
  Measurement measure(const std::string& label, const ProgramFactory& factory,
                      const CollectOptions& options = {});

  /// Total program runs executed so far (the cost of batching).
  u64 runs_executed() const noexcept { return runs_executed_; }

  sim::Machine& machine() noexcept { return machine_; }

 private:
  void run_once(const ProgramFactory& factory, u64 seed, const CollectOptions& options,
                const std::function<void(trace::Runner&)>& before,
                const std::function<void(trace::Runner&)>& after);

  sim::MachineConfig config_;
  sim::Machine machine_;
  u64 runs_executed_ = 0;
};

}  // namespace npat::evsel
