#include "evsel/imbalance.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::evsel {

double ImbalanceReport::imbalance(u64 NodeLoad::* metric) const {
  NPAT_CHECK_MSG(!nodes.empty(), "empty imbalance report");
  u64 max_value = 0;
  u64 total = 0;
  for (const auto& node : nodes) {
    max_value = std::max(max_value, node.*metric);
    total += node.*metric;
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(nodes.size());
  return static_cast<double>(max_value) / mean;
}

sim::NodeId ImbalanceReport::hottest_node() const {
  NPAT_CHECK_MSG(!nodes.empty(), "empty imbalance report");
  sim::NodeId best = 0;
  u64 best_traffic = 0;
  for (const auto& node : nodes) {
    const u64 traffic = node.dram_reads + node.dram_writes;
    if (traffic > best_traffic) {
      best_traffic = traffic;
      best = node.node;
    }
  }
  return best;
}

bool ImbalanceReport::imbalanced(double factor) const {
  return imbalance(&NodeLoad::dram_reads) > factor ||
         imbalance(&NodeLoad::dram_writes) > factor ||
         imbalance(&NodeLoad::llc_misses) > factor;
}

std::string ImbalanceReport::render() const {
  util::Table table({"node", "DRAM reads", "DRAM writes", "LLC misses", "QPI flits",
                     "snoops", "energy (µJ)"});
  table.set_title("per-node load (uncore indicators)");
  for (usize c = 1; c < 7; ++c) table.set_align(c, util::Align::kRight);
  for (const auto& node : nodes) {
    table.add_row({std::to_string(node.node),
                   util::si_scaled(static_cast<double>(node.dram_reads)),
                   util::si_scaled(static_cast<double>(node.dram_writes)),
                   util::si_scaled(static_cast<double>(node.llc_misses)),
                   util::si_scaled(static_cast<double>(node.qpi_tx_flits)),
                   util::si_scaled(static_cast<double>(node.snoops_received)),
                   util::si_scaled(static_cast<double>(node.energy_uj))});
  }
  std::string out = table.render();
  out += util::format(
      "imbalance factors (max/mean): reads %.2f, writes %.2f, LLC misses %.2f%s\n",
      imbalance(&NodeLoad::dram_reads), imbalance(&NodeLoad::dram_writes),
      imbalance(&NodeLoad::llc_misses),
      imbalanced() ? "  ← IMBALANCED" : "  (balanced)");
  return out;
}

ImbalanceReport node_imbalance(const sim::Machine& machine) {
  ImbalanceReport report;
  for (sim::NodeId node = 0; node < machine.nodes(); ++node) {
    const auto uncore = machine.uncore_counters(node);
    NodeLoad load;
    load.node = node;
    load.dram_reads = uncore[sim::Event::kUncImcReads];
    load.dram_writes = uncore[sim::Event::kUncImcWrites];
    load.llc_misses = uncore[sim::Event::kUncLlcMisses];
    load.qpi_tx_flits = uncore[sim::Event::kUncQpiTxFlits];
    load.snoops_received = uncore[sim::Event::kUncSnoopsReceived];
    load.energy_uj = uncore[sim::Event::kUncEnergyMicroJoules];
    report.nodes.push_back(load);
  }
  return report;
}

}  // namespace npat::evsel
