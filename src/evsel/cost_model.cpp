#include "evsel/cost_model.hpp"

#include <cmath>

#include "linalg/solve.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::evsel {

std::optional<CostModel> CostModel::train(const std::vector<Measurement>& training,
                                          const CostModelOptions& options) {
  if (training.size() < 2) return std::nullopt;

  // Candidate features: explicitly given, or every event recorded in the
  // first measurement minus the cost itself.
  std::vector<sim::Event> candidates = options.indicators;
  if (candidates.empty()) {
    for (const sim::Event event : training.front().recorded_events()) {
      if (event != options.cost) candidates.push_back(event);
    }
  } else {
    // Explicitly requested indicators must exist in every training
    // measurement — mean() would otherwise quietly return 0.0 and the fit
    // would absorb a fabricated column.
    for (const sim::Event event : candidates) {
      for (const auto& m : training) {
        NPAT_CHECK_MSG(m.has(event),
                       std::string("cost model indicator never measured in '") + m.label() +
                           "': " + std::string(sim::event_name(event)));
      }
    }
  }
  for (const auto& m : training) {
    NPAT_CHECK_MSG(m.has(options.cost),
                   std::string("cost event never measured in '") + m.label() +
                       "': " + std::string(sim::event_name(options.cost)));
  }

  CostModel model;
  model.cost_ = options.cost;

  // Build per-feature mean columns and drop near-constant features.
  std::vector<sim::Event> kept;
  std::vector<std::vector<double>> columns;
  for (const sim::Event event : candidates) {
    std::vector<double> column;
    column.reserve(training.size());
    for (const auto& m : training) column.push_back(m.mean(event));
    const double mean = stats::mean(column);
    const double sd = stats::stddev(column);
    const double cv = mean != 0.0 ? sd / std::fabs(mean) : (sd > 0.0 ? 1.0 : 0.0);
    if (cv < options.min_coefficient_of_variation) {
      model.dropped_.push_back(event);
      continue;
    }
    kept.push_back(event);
    columns.push_back(std::move(column));
  }
  if (kept.empty()) return std::nullopt;

  const usize n = training.size();
  const usize p = kept.size() + (options.intercept ? 1 : 0);
  if (n < p + 1) return std::nullopt;

  linalg::Matrix design(n, p);
  linalg::Vector cost(n);
  for (usize i = 0; i < n; ++i) {
    usize col = 0;
    if (options.intercept) design(i, col++) = 1.0;
    for (usize f = 0; f < kept.size(); ++f) design(i, col++) = columns[f][i];
    cost[i] = training[i].mean(options.cost);
  }

  const auto solution = linalg::least_squares(design, cost);
  if (!solution) return std::nullopt;

  usize col = 0;
  if (options.intercept) model.intercept_ = solution->beta[col++];
  for (const sim::Event event : kept) {
    model.features_.push_back(Feature{event, solution->beta[col++]});
  }

  std::vector<double> predicted(n);
  for (usize i = 0; i < n; ++i) {
    double value = model.intercept_;
    usize f = 0;
    for (const sim::Event event : kept) {
      (void)event;
      value += model.features_[f].weight * design(i, options.intercept ? f + 1 : f);
      ++f;
    }
    predicted[i] = value;
  }
  model.r_squared_ = stats::r_squared(cost, predicted).value_or(0.0);
  return model;
}

double CostModel::predict(const Measurement& measurement) const {
  double value = intercept_;
  for (const auto& feature : features_) {
    NPAT_CHECK_MSG(measurement.has(feature.event),
                   std::string("cost model feature missing from measurement '") +
                       measurement.label() + "': " +
                       std::string(sim::event_name(feature.event)));
    value += feature.weight * measurement.mean(feature.event);
  }
  return value;
}

double CostModel::predict(
    const std::vector<std::pair<sim::Event, double>>& indicators) const {
  double value = intercept_;
  for (const auto& feature : features_) {
    for (const auto& [event, count] : indicators) {
      if (event == feature.event) value += feature.weight * count;
    }
  }
  return value;
}

std::string CostModel::describe() const {
  util::Table table({"indicator", "weight (cost/event)"});
  table.set_title("indicator-to-cost model for " +
                  std::string(sim::event_name(cost_)) +
                  util::format(" (training R² = %.4f)", r_squared_));
  table.set_align(1, util::Align::kRight);
  table.add_row({"(intercept)", util::compact_double(intercept_, 4)});
  for (const auto& feature : features_) {
    table.add_row({std::string(sim::event_name(feature.event)),
                   util::compact_double(feature.weight, 6)});
  }
  std::string out = table.render();
  if (!dropped_.empty()) {
    out += "dropped near-constant indicators:";
    for (const sim::Event event : dropped_) {
      out += " " + std::string(sim::event_name(event));
    }
    out += "\n";
  }
  return out;
}

}  // namespace npat::evsel
