// Catalogue of historical models of parallel computation (paper §II,
// Fig. 2): the three eras — shared bus, cluster/message passing, and
// hierarchical memory — plus the NUMA-specific models of §II-D. Rendered
// by bench/fig2_model_timeline as the timeline figure.
#pragma once

#include <span>
#include <string>
#include <string_view>

namespace npat::evsel {

enum class ModelEra : int {
  kSharedBus,
  kClusterMessagePassing,
  kHierarchicalMemory,
  kNuma,
};

struct ModelEntry {
  std::string_view name;
  int year;
  ModelEra era;
  std::string_view note;
};

std::span<const ModelEntry> model_catalog();
std::string_view era_name(ModelEra era);

/// ASCII timeline grouped by era, ordered by year (Fig. 2 layout).
std::string render_model_timeline();

}  // namespace npat::evsel
