#include "evsel/collector.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "perf/multiplex.hpp"
#include "perf/registry.hpp"
#include "perf/session.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "validate/trust.hpp"

namespace npat::evsel {

namespace {

/// One event's robust acceptance band across repetitions.
struct Band {
  sim::Event event = sim::Event::kCycles;
  double center = 0.0;
  double tolerance = 0.0;
};

double event_value(const std::vector<perf::EventValue>& values, sim::Event event,
                   bool* found = nullptr) {
  for (const auto& value : values) {
    if (value.event == event) {
      if (found != nullptr) *found = true;
      return value.value;
    }
  }
  if (found != nullptr) *found = false;
  return 0.0;
}

/// Builds the per-event MAD bands over one run column (`runs[rep]` holds
/// the values of repetition `rep` for a fixed group). Events missing from
/// any repetition are skipped — no band, no quarantine.
std::vector<Band> quarantine_bands(const std::vector<std::vector<perf::EventValue>>& runs,
                                   const std::vector<sim::Event>& events, double mad_k) {
  std::vector<Band> bands;
  for (const sim::Event event : events) {
    std::vector<double> samples;
    samples.reserve(runs.size());
    bool complete = true;
    for (const auto& run : runs) {
      bool found = false;
      const double value = event_value(run, event, &found);
      if (!found) {
        complete = false;
        break;
      }
      samples.push_back(value);
    }
    if (!complete || samples.size() < 3) continue;
    const double center = stats::median(samples);
    // 1.4826 * MAD estimates sigma under normality; the epsilon keeps the
    // band non-degenerate when a counter is perfectly repeatable.
    const double tolerance =
        mad_k * 1.4826 * stats::mad(samples) + 1e-6 * (1.0 + std::fabs(center));
    bands.push_back({event, center, tolerance});
  }
  return bands;
}

bool run_is_outlier(const std::vector<perf::EventValue>& run, const std::vector<Band>& bands) {
  for (const Band& band : bands) {
    bool found = false;
    const double value = event_value(run, band.event, &found);
    if (found && std::fabs(value - band.center) > band.tolerance) return true;
  }
  return false;
}

}  // namespace

Collector::Collector(sim::MachineConfig config)
    : config_(std::move(config)), machine_(config_) {}

void Collector::run_once(const ProgramFactory& factory, u64 seed,
                         const CollectOptions& options,
                         const std::function<void(trace::Runner&)>& before,
                         const std::function<void(trace::Runner&)>& after) {
  NPAT_OBS_SPAN("evsel.run");
  NPAT_OBS_COUNT("npat_evsel_runs_total", "Simulated program runs executed by EvSel", 1);
  machine_.reset();
  os::AddressSpace space(machine_.topology());
  if (options.page_policy_override) {
    space.set_policy_override(*options.page_policy_override, options.override_bind_node);
  }
  trace::RunnerConfig runner_config;
  runner_config.seed = seed;
  runner_config.affinity = options.affinity;
  trace::Runner runner(machine_, space, runner_config);
  if (before) before(runner);
  runner.run(factory());
  if (after) after(runner);
  ++runs_executed_;
}

Measurement Collector::measure(const std::string& label, const ProgramFactory& factory,
                               const CollectOptions& options) {
  NPAT_OBS_SPAN("evsel.collect");
  NPAT_CHECK_MSG(options.repetitions >= 1, "need at least one repetition");
  const std::vector<sim::Event> events =
      options.events.empty() ? perf::available_events() : options.events;

  Measurement measurement(label);

  const bool screen = options.quarantine_mad_k > 0.0 && options.repetitions >= 3;
  u32 retry_budget = screen ? options.retry_budget : 0;
  u64 retry_serial = 0;
  usize quarantined = 0;
  usize retry_exhausted = 0;
  const auto quarantine = [&](std::vector<std::vector<perf::EventValue>>& runs,
                              const std::vector<sim::Event>& armed,
                              const std::function<void(u32 rep, u64 seed)>& rerun) {
    if (!screen) return;
    // The bands are frozen before any replacement so a re-measured run is
    // judged against the same consensus its predecessor failed.
    const std::vector<Band> bands = quarantine_bands(runs, armed, options.quarantine_mad_k);
    for (u32 rep = 0; rep < runs.size() && retry_budget > 0; ++rep) {
      while (retry_budget > 0 && run_is_outlier(runs[rep], bands)) {
        --retry_budget;
        ++quarantined;
        NPAT_OBS_COUNT("npat_evsel_quarantined_runs_total",
                       "Outlier runs quarantined and re-measured by the MAD screen", 1);
        rerun(rep, options.seed ^ (0x9E3779B97F4A7C15ULL * ++retry_serial));
      }
    }
    // With the budget dry, outliers that remain (flagged but never
    // re-measured, or re-measured into another outlier) enter the sample
    // set untreated; count them so reports can flag the degraded inputs.
    if (retry_budget == 0) {
      for (const auto& run : runs) {
        if (run_is_outlier(run, bands)) ++retry_exhausted;
      }
    }
  };

  if (options.strategy == CollectionStrategy::kBatchedRuns) {
    const auto groups = perf::plan_event_groups(events);
    // One column of runs per group: run_values[g][rep].
    std::vector<std::vector<std::vector<perf::EventValue>>> run_values(
        groups.size(), std::vector<std::vector<perf::EventValue>>(options.repetitions));
    const auto run_group = [&](usize g, u32 rep, u64 seed) {
      // Arm only this group's registers; re-run the whole program.
      perf::CountingSession session(machine_, groups[g]);
      run_once(
          factory, seed, options,
          [&](trace::Runner&) { session.start(); },
          [&](trace::Runner&) { run_values[g][rep] = session.stop(); });
    };
    for (u32 rep = 0; rep < options.repetitions; ++rep) {
      for (usize g = 0; g < groups.size(); ++g) {
        run_group(g, rep, options.seed + 0x1000003ULL * rep + 0x10001ULL * g);
      }
    }
    for (usize g = 0; g < groups.size(); ++g) {
      quarantine(run_values[g], groups[g],
                 [&](u32 rep, u64 seed) { run_group(g, rep, seed); });
    }
    for (u32 rep = 0; rep < options.repetitions; ++rep) {
      for (usize g = 0; g < groups.size(); ++g) measurement.add_values(run_values[g][rep]);
    }
  } else {
    std::vector<std::vector<perf::EventValue>> rep_values(options.repetitions);
    const auto run_rep = [&](u32 rep, u64 seed) {
      NPAT_OBS_SPAN("evsel.run");
      NPAT_OBS_COUNT("npat_evsel_runs_total", "Simulated program runs executed by EvSel", 1);
      machine_.reset();
      os::AddressSpace space(machine_.topology());
      if (options.page_policy_override) {
        space.set_policy_override(*options.page_policy_override, options.override_bind_node);
      }
      trace::RunnerConfig runner_config;
      runner_config.seed = seed;
      runner_config.affinity = options.affinity;
      trace::Runner runner(machine_, space, runner_config);
      perf::MultiplexedSession session(machine_, runner, events, options.rotation_interval);
      session.start();
      runner.run(factory());
      rep_values[rep] = session.stop();
      ++runs_executed_;
    };
    for (u32 rep = 0; rep < options.repetitions; ++rep) {
      run_rep(rep, options.seed + 0x1000003ULL * rep);
    }
    quarantine(rep_values, events, run_rep);
    for (u32 rep = 0; rep < options.repetitions; ++rep) measurement.add_values(rep_values[rep]);
  }
  measurement.note_quarantined(quarantined);
  measurement.note_retry_exhausted(retry_exhausted);
  if (const validate::TrustReport* trust = validate::active_trust_report()) {
    measurement.annotate_trust(*trust);
  }
  return measurement;
}

}  // namespace npat::evsel
