#include "evsel/collector.hpp"

#include "obs/obs.hpp"
#include "perf/multiplex.hpp"
#include "perf/registry.hpp"
#include "perf/session.hpp"
#include "util/check.hpp"

namespace npat::evsel {

Collector::Collector(sim::MachineConfig config)
    : config_(std::move(config)), machine_(config_) {}

void Collector::run_once(const ProgramFactory& factory, u64 seed,
                         os::AffinityPolicy affinity,
                         const std::function<void(trace::Runner&)>& before,
                         const std::function<void(trace::Runner&)>& after) {
  NPAT_OBS_SPAN("evsel.run");
  NPAT_OBS_COUNT("npat_evsel_runs_total", "Simulated program runs executed by EvSel", 1);
  machine_.reset();
  os::AddressSpace space(machine_.topology());
  trace::RunnerConfig runner_config;
  runner_config.seed = seed;
  runner_config.affinity = affinity;
  trace::Runner runner(machine_, space, runner_config);
  if (before) before(runner);
  runner.run(factory());
  if (after) after(runner);
  ++runs_executed_;
}

Measurement Collector::measure(const std::string& label, const ProgramFactory& factory,
                               const CollectOptions& options) {
  NPAT_OBS_SPAN("evsel.collect");
  NPAT_CHECK_MSG(options.repetitions >= 1, "need at least one repetition");
  const std::vector<sim::Event> events =
      options.events.empty() ? perf::available_events() : options.events;

  Measurement measurement(label);

  if (options.strategy == CollectionStrategy::kBatchedRuns) {
    const auto groups = perf::plan_event_groups(events);
    for (u32 rep = 0; rep < options.repetitions; ++rep) {
      for (usize g = 0; g < groups.size(); ++g) {
        // Arm only this group's registers; re-run the whole program.
        perf::CountingSession session(machine_, groups[g]);
        const u64 seed = options.seed + 0x1000003ULL * rep + 0x10001ULL * g;
        run_once(
            factory, seed, options.affinity,
            [&](trace::Runner&) { session.start(); },
            [&](trace::Runner&) { measurement.add_values(session.stop()); });
      }
    }
  } else {
    for (u32 rep = 0; rep < options.repetitions; ++rep) {
      NPAT_OBS_SPAN("evsel.run");
      NPAT_OBS_COUNT("npat_evsel_runs_total", "Simulated program runs executed by EvSel", 1);
      const u64 seed = options.seed + 0x1000003ULL * rep;
      machine_.reset();
      os::AddressSpace space(machine_.topology());
      trace::RunnerConfig runner_config;
      runner_config.seed = seed;
      runner_config.affinity = options.affinity;
      trace::Runner runner(machine_, space, runner_config);
      perf::MultiplexedSession session(machine_, runner, events, options.rotation_interval);
      session.start();
      runner.run(factory());
      measurement.add_values(session.stop());
      ++runs_executed_;
    }
  }
  return measurement;
}

}  // namespace npat::evsel
