// The second step of the paper's two-step strategy (§III-B): the
// indicator-to-cost analysis. A cost model is trained on measurements
// (indicator counters → observed cost, e.g. cycles) via multi-feature
// least squares, and then predicts costs for *new* indicator vectors —
// including vectors extrapolated across workload sizes or transferred
// from another machine, the two use cases the strategy motivates.
//
// Feature selection follows the paper's guidance: indicators that do not
// significantly change across the training set "should be considered for
// removal" (near-constant features are dropped before fitting), and the
// model reports per-feature weights so redundant indicators are visible.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "evsel/measurement.hpp"
#include "sim/events.hpp"

namespace npat::evsel {

struct CostModelOptions {
  /// The cost to predict (execution time by default; the paper also names
  /// wattage as a cost-relevant indicator class).
  sim::Event cost = sim::Event::kCycles;
  /// Candidate indicator events; empty = every recorded non-cost event.
  std::vector<sim::Event> indicators;
  /// Features whose coefficient of variation across the training set is
  /// below this are near-constant and dropped (§III-B.1).
  double min_coefficient_of_variation = 0.01;
  /// Fit an intercept term (fixed costs).
  bool intercept = true;
};

class CostModel {
 public:
  struct Feature {
    sim::Event event;
    double weight = 0.0;  // cost units per event occurrence
  };

  /// Trains on >= features+2 measurements, each holding the cost event and
  /// the indicator events. Returns nullopt when the system is degenerate
  /// (too few samples, rank-deficient features). Throws CheckError, naming
  /// the event, when a requested indicator or the cost event was never
  /// measured in some training measurement — silently substituting zeros
  /// would fit a model to fabricated data.
  static std::optional<CostModel> train(const std::vector<Measurement>& training,
                                        const CostModelOptions& options = {});

  /// Predicted cost for a measurement's mean indicator vector. Throws
  /// CheckError, naming the event, when the measurement lacks one of the
  /// model's features.
  double predict(const Measurement& measurement) const;
  /// Predicted cost from raw per-event values.
  double predict(const std::vector<std::pair<sim::Event, double>>& indicators) const;

  /// R² of the model on its training set.
  double training_r_squared() const noexcept { return r_squared_; }
  double intercept() const noexcept { return intercept_; }
  const std::vector<Feature>& features() const noexcept { return features_; }
  sim::Event cost_event() const noexcept { return cost_; }
  /// Indicators dropped as near-constant (reported, per the paper).
  const std::vector<sim::Event>& dropped() const noexcept { return dropped_; }

  /// Human-readable weight table.
  std::string describe() const;

 private:
  sim::Event cost_ = sim::Event::kCycles;
  std::vector<Feature> features_;
  std::vector<sim::Event> dropped_;
  double intercept_ = 0.0;
  double r_squared_ = 0.0;
};

}  // namespace npat::evsel
