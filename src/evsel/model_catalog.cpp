#include "evsel/model_catalog.hpp"

#include <algorithm>
#include <vector>

#include "util/strings.hpp"

namespace npat::evsel {

namespace {

// clang-format off
constexpr ModelEntry kModels[] = {
    // Era 1: shared bus.
    {"PRAM", 1978, ModelEra::kSharedBus, "unit-cost lockstep shared memory"},
    {"CRCW PRAM", 1988, ModelEra::kSharedBus, "concurrent read/concurrent write refinement"},
    {"APRAM", 1989, ModelEra::kSharedBus, "asynchronous PRAM"},
    {"Asynchronous PRAM", 1989, ModelEra::kSharedBus, "zero-cost synchronization steps"},
    {"XPRAM", 1993, ModelEra::kSharedBus, "bulk-synchronous PRAM simulation"},
    {"YPRAM", 1992, ModelEra::kSharedBus, "hierarchical PRAM subunits"},
    {"HPRAM", 1992, ModelEra::kSharedBus, "hierarchical PRAM with inefficiency factors"},
    {"LPRAM", 1990, ModelEra::kSharedBus, "latency-aware PRAM"},
    {"BPRAM", 1990, ModelEra::kSharedBus, "bandwidth-aware PRAM"},
    {"QSM", 1997, ModelEra::kSharedBus, "queued shared memory (bus congestion)"},
    {"QRQW PRAM", 1994, ModelEra::kSharedBus, "queued read/queued write"},
    {"PRAM(m)", 1996, ModelEra::kSharedBus, "bounded shared-memory bandwidth"},

    // Era 2: cluster / message passing.
    {"BSP", 1989, ModelEra::kClusterMessagePassing, "supersteps + global barriers"},
    {"Postal", 1992, ModelEra::kClusterMessagePassing, "message latency as postal delay"},
    {"LogP", 1993, ModelEra::kClusterMessagePassing, "latency/overhead/gap/processors"},
    {"LogGP", 1995, ModelEra::kClusterMessagePassing, "LogP + long-message bandwidth"},
    {"LogPC", 1998, ModelEra::kClusterMessagePassing, "LogP + network contention"},
    {"CLUMPS", 1997, ModelEra::kClusterMessagePassing, "clusters of SMPs"},
    {"BDM", 1996, ModelEra::kClusterMessagePassing, "block distributed memory"},
    {"BSPRAM", 1998, ModelEra::kClusterMessagePassing, "BSP fused with PRAM memory refinements"},

    // Era 3: hierarchical memory.
    {"HMM", 1987, ModelEra::kHierarchicalMemory, "hierarchical memory model"},
    {"UPMH", 1994, ModelEra::kHierarchicalMemory, "uniform memory hierarchy"},
    {"DRAM(h,k)", 1997, ModelEra::kHierarchicalMemory, "multi-level cache cost functions"},
    {"Memory LogP", 2003, ModelEra::kHierarchicalMemory, "cache layers as message passing"},
    {"NHBL", 2000, ModelEra::kHierarchicalMemory, "non-uniform hierarchical blocks"},
    {"HPM", 2002, ModelEra::kHierarchicalMemory, "hierarchical performance model"},
    {"MBRAM", 2003, ModelEra::kHierarchicalMemory, "memory-bounded RAM"},
    {"LognP", 2003, ModelEra::kHierarchicalMemory, "hierarchical LogP generalization"},

    // NUMA-specific models (§II-D).
    {"kappaNUMA", 2001, ModelEra::kNuma, "BSP tree hierarchy of SMP nodes"},
    {"Braithwaite", 2011, ModelEra::kNuma, "measured interconnect equivalence classes"},
    {"PRAM-NUMA", 2010, ModelEra::kNuma, "low-TLP workloads mapped onto PRAM"},
    {"TMM", 2014, ModelEra::kNuma, "threaded many-core latency hiding"},
    {"Tudor", 2011, ModelEra::kNuma, "event-counter speedup model for UMA/NUMA"},
    {"Cho", 2016, ModelEra::kNuma, "online scalability prediction (OpenMP/OpenCL)"},
};
// clang-format on

}  // namespace

std::span<const ModelEntry> model_catalog() { return kModels; }

std::string_view era_name(ModelEra era) {
  switch (era) {
    case ModelEra::kSharedBus: return "Shared bus";
    case ModelEra::kClusterMessagePassing: return "Cluster / message passing";
    case ModelEra::kHierarchicalMemory: return "Hierarchical memory";
    case ModelEra::kNuma: return "NUMA models";
  }
  return "?";
}

std::string render_model_timeline() {
  std::string out = "Historic models of parallel computation (paper Fig. 2)\n";
  for (const ModelEra era : {ModelEra::kSharedBus, ModelEra::kClusterMessagePassing,
                             ModelEra::kHierarchicalMemory, ModelEra::kNuma}) {
    out += "\n== " + std::string(era_name(era)) + " ==\n";
    std::vector<ModelEntry> entries;
    for (const auto& entry : kModels) {
      if (entry.era == era) entries.push_back(entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const ModelEntry& a, const ModelEntry& b) { return a.year < b.year; });
    for (const auto& entry : entries) {
      out += util::format("  %d  %-18s %s\n", entry.year, std::string(entry.name).c_str(),
                          std::string(entry.note).c_str());
    }
  }
  return out;
}

}  // namespace npat::evsel
