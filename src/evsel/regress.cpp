#include "evsel/regress.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::evsel {

const CorrelationRow* SweepResult::correlation(sim::Event event) const {
  for (const auto& row : correlations) {
    if (row.event == event) return &row;
  }
  return nullptr;
}

std::vector<CorrelationRow> SweepResult::strongest(double min_abs_r) const {
  std::vector<CorrelationRow> out;
  for (const auto& row : correlations) {
    if (std::fabs(row.best.r) >= min_abs_r) out.push_back(row);
  }
  std::stable_sort(out.begin(), out.end(), [](const CorrelationRow& a, const CorrelationRow& b) {
    return std::fabs(a.best.r) > std::fabs(b.best.r);
  });
  return out;
}

SweepResult correlate(const std::string& parameter_name,
                      std::vector<Measurement> measurements) {
  NPAT_OBS_SPAN("evsel.regress");
  NPAT_CHECK_MSG(measurements.size() >= 3, "a sweep needs at least three parameter values");
  SweepResult result;
  result.parameter_name = parameter_name;
  result.measurements = std::move(measurements);

  for (const auto& info : sim::all_events()) {
    std::vector<double> x;
    std::vector<double> y;
    for (const auto& m : result.measurements) {
      const double value = m.parameter(parameter_name);
      for (double sample : m.samples(info.event)) {
        x.push_back(value);
        y.push_back(sample);
      }
    }
    if (x.size() < 4) continue;

    CorrelationRow row;
    row.event = info.event;
    row.points = x.size();
    row.all = stats::fit_all(x, y);
    if (row.all.empty()) continue;  // constant response
    row.best = row.all.front();
    result.correlations.push_back(std::move(row));
  }
  return result;
}

SweepResult sweep(Collector& collector, const std::string& parameter_name,
                  const std::vector<double>& values, const SweepFactory& factory,
                  const CollectOptions& options) {
  NPAT_OBS_SPAN("evsel.sweep");
  NPAT_CHECK_MSG(values.size() >= 3, "a sweep needs at least three parameter values");
  std::vector<Measurement> measurements;
  measurements.reserve(values.size());
  for (double value : values) {
    const std::string label =
        parameter_name + "=" + util::compact_double(value);
    Measurement m = collector.measure(
        label, [&factory, value] { return factory(value); }, options);
    m.set_parameter(parameter_name, value);
    measurements.push_back(std::move(m));
  }
  return correlate(parameter_name, std::move(measurements));
}

}  // namespace npat::evsel
