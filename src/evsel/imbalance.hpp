// NUMA imbalance detection — the capability the paper attributes to perf's
// system-wide mode (§II-F: "perf enables detecting imbalanced workloads
// among NUMA nodes"). Per-node uncore indicators are collected and an
// imbalance factor (max/mean) is derived per indicator; a factor of 1
// means perfectly balanced, N means one node carries everything.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace npat::evsel {

struct NodeLoad {
  sim::NodeId node = 0;
  u64 dram_reads = 0;
  u64 dram_writes = 0;
  u64 llc_misses = 0;
  u64 qpi_tx_flits = 0;
  u64 snoops_received = 0;
  u64 energy_uj = 0;
};

struct ImbalanceReport {
  std::vector<NodeLoad> nodes;

  /// max/mean of a per-node metric; 1.0 = balanced. Returns 1.0 when the
  /// metric is zero everywhere.
  double imbalance(u64 NodeLoad::* metric) const;
  /// The hottest node by DRAM traffic.
  sim::NodeId hottest_node() const;
  /// True if any traffic metric exceeds the threshold factor.
  bool imbalanced(double factor = 1.5) const;

  std::string render() const;
};

/// Snapshot of the machine's current per-node uncore state.
ImbalanceReport node_imbalance(const sim::Machine& machine);

}  // namespace npat::evsel
