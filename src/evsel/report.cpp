#include "evsel/report.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "stats/descriptive.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::evsel {

namespace {

using util::Style;

std::string confidence_text(double confidence) {
  if (confidence >= 0.9995) return ">99.9 %";
  return util::format("%.1f %%", confidence * 100.0);
}

/// Icon cues from the EvSel GUI: significant increase, significant
/// decrease, or no significant change.
util::Cell significance_cell(const ComparisonRow& row, double alpha) {
  if (row.trust_quarantined) return {"⊘ quarantined", Style::kRed};
  if (row.zero_in_both) return {"0", Style::kDim};
  if (!row.significant(alpha)) return {"·", Style::kNone};
  const bool increase = row.test.mean_delta > 0;
  return {std::string(increase ? "▲ " : "▼ ") + confidence_text(row.test.confidence),
          increase ? Style::kRed : Style::kGreen};
}

util::Cell trust_cell(validate::TrustTier tier) {
  Style style = Style::kNone;
  if (tier == validate::TrustTier::kRefuted) style = Style::kRed;
  if (tier == validate::TrustTier::kSuspect) style = Style::kYellow;
  if (tier == validate::TrustTier::kExact) style = Style::kDim;
  return {validate::tier_name(tier), style};
}

std::string delta_text(const ComparisonRow& row) {
  if (row.test.mean_a == 0.0 && row.test.mean_b != 0.0) return "new";
  if (row.test.mean_a == 0.0) return "—";
  const double ratio = row.test.relative_delta;
  if (std::fabs(ratio) >= 99.5) {
    return util::format("x%.0f", ratio + 1.0);
  }
  return util::percent_delta(ratio);
}

}  // namespace

std::string render_comparison(const Comparison& comparison, const ReportOptions& options) {
  NPAT_OBS_SPAN("evsel.report");
  bool show_trust = false;
  for (const auto& row : comparison.rows) {
    if (row.trust != validate::TrustTier::kUnvalidated) show_trust = true;
  }
  std::vector<std::string> headers = {"event", comparison.label_a, comparison.label_b,
                                      "Δ", "significance"};
  if (show_trust) headers.push_back("trust");
  if (options.show_descriptions) headers.push_back("description");
  util::Table table(headers);
  std::string title = "EvSel comparison: " + comparison.label_a + " vs " + comparison.label_b;
  if (comparison.quarantined_a + comparison.quarantined_b > 0) {
    title += util::format(" (quarantined runs: %zu vs %zu)", comparison.quarantined_a,
                          comparison.quarantined_b);
  }
  if (comparison.retry_exhausted_a + comparison.retry_exhausted_b > 0) {
    title += util::format(" (retry budget exhausted, outliers kept: %zu vs %zu)",
                          comparison.retry_exhausted_a, comparison.retry_exhausted_b);
  }
  if (comparison.refuted_quarantined > 0) {
    title += util::format(" [%zu refuted event%s excluded from testing]",
                          comparison.refuted_quarantined,
                          comparison.refuted_quarantined == 1 ? "" : "s");
  }
  table.set_title(std::move(title));
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);

  usize rendered = 0;
  for (const auto& row : comparison.rows) {
    // Quarantined rows always render — hiding them would make a trust
    // quarantine look like "no significant change".
    if (!options.include_all_events && !row.significant(options.alpha) &&
        !row.trust_quarantined) {
      continue;
    }
    if (options.max_rows > 0 && rendered >= options.max_rows) break;
    ++rendered;

    const auto& info = sim::event_info(row.event);
    const Style row_style = row.zero_in_both ? Style::kDim : Style::kNone;
    std::vector<util::Cell> cells;
    cells.push_back({std::string(info.name), row_style});
    cells.push_back({util::si_scaled(row.test.mean_a), row_style});
    cells.push_back({util::si_scaled(row.test.mean_b), row_style});
    cells.push_back({delta_text(row), row_style});
    cells.push_back(significance_cell(row, options.alpha));
    if (show_trust) cells.push_back(trust_cell(row.trust));
    if (options.show_descriptions) {
      std::string desc(info.description);
      if (desc.size() > 56) desc = desc.substr(0, 53) + "...";
      cells.push_back({desc, Style::kDim});
    }
    table.add_styled_row(std::move(cells));
  }
  if (rendered == 0) {
    std::vector<util::Cell> cells(headers.size(), util::Cell{"", Style::kNone});
    cells[0] = {"(no significant differences)", Style::kDim};
    table.add_styled_row(std::move(cells));
  }
  return table.render();
}

std::string render_correlations(const SweepResult& result, double min_abs_r,
                                const ReportOptions& options) {
  std::vector<std::string> headers = {"event", "fit", "function", "R"};
  if (options.show_descriptions) headers.push_back("description");
  util::Table table(headers);
  table.set_title("EvSel correlations against '" + result.parameter_name + "'");
  table.set_align(3, util::Align::kRight);

  usize rendered = 0;
  for (const auto& row : result.strongest(min_abs_r)) {
    if (options.max_rows > 0 && rendered >= options.max_rows) break;
    ++rendered;
    const auto& info = sim::event_info(row.event);
    const Style color = std::fabs(row.best.r) >= 0.95
                            ? (row.best.r > 0 ? Style::kRed : Style::kBlue)
                            : Style::kNone;
    std::vector<util::Cell> cells;
    cells.push_back({std::string(info.name), Style::kNone});
    cells.push_back({stats::fit_kind_name(row.best.kind), Style::kNone});
    cells.push_back({row.best.formula(3), Style::kNone});
    cells.push_back({util::format("%+.4f", row.best.r), color});
    if (options.show_descriptions) {
      std::string desc(info.description);
      if (desc.size() > 48) desc = desc.substr(0, 45) + "...";
      cells.push_back({desc, Style::kDim});
    }
    table.add_styled_row(std::move(cells));
  }
  if (rendered == 0) {
    std::vector<util::Cell> cells(headers.size(), util::Cell{"", Style::kNone});
    cells[0] = {"(no correlations above threshold)", Style::kDim};
    table.add_styled_row(std::move(cells));
  }
  return table.render();
}

std::string render_measurement(const Measurement& measurement, const ReportOptions& options) {
  std::vector<std::string> headers = {"event", "mean", "stddev", "reps"};
  if (measurement.has_trust_annotations()) headers.push_back("trust");
  if (options.show_descriptions) headers.push_back("description");
  util::Table table(headers);
  std::string title = "EvSel measurement: " + measurement.label();
  if (measurement.quarantined_runs() > 0) {
    title += util::format(" (%zu quarantined runs)", measurement.quarantined_runs());
  }
  if (measurement.retry_exhausted_runs() > 0) {
    title += util::format(" (retry budget exhausted, %zu outlier runs kept)",
                          measurement.retry_exhausted_runs());
  }
  table.set_title(std::move(title));
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);

  usize rendered = 0;
  for (const sim::Event event : measurement.recorded_events()) {
    if (options.max_rows > 0 && rendered >= options.max_rows) break;
    ++rendered;
    const auto& info = sim::event_info(event);
    const auto& samples = measurement.samples(event);
    const Style style = measurement.all_zero(event) ? Style::kDim : Style::kNone;
    std::vector<util::Cell> cells;
    cells.push_back({std::string(info.name), style});
    cells.push_back({util::si_scaled(measurement.mean(event)), style});
    cells.push_back({util::si_scaled(stats::stddev(samples)), style});
    cells.push_back({std::to_string(samples.size()), style});
    if (measurement.has_trust_annotations()) cells.push_back(trust_cell(measurement.trust(event)));
    if (options.show_descriptions) {
      std::string desc(info.description);
      if (desc.size() > 56) desc = desc.substr(0, 53) + "...";
      cells.push_back({desc, Style::kDim});
    }
    table.add_styled_row(std::move(cells));
  }
  return table.render();
}

util::Json comparison_to_json(const Comparison& comparison) {
  util::JsonObject doc;
  doc["a"] = comparison.label_a;
  doc["b"] = comparison.label_b;
  doc["quarantined_a"] = static_cast<double>(comparison.quarantined_a);
  doc["quarantined_b"] = static_cast<double>(comparison.quarantined_b);
  doc["retry_exhausted_a"] = static_cast<double>(comparison.retry_exhausted_a);
  doc["retry_exhausted_b"] = static_cast<double>(comparison.retry_exhausted_b);
  doc["refuted_quarantined"] = static_cast<double>(comparison.refuted_quarantined);
  util::JsonArray rows;
  for (const auto& row : comparison.rows) {
    util::JsonObject r;
    r["event"] = std::string(sim::event_name(row.event));
    r["mean_a"] = row.test.mean_a;
    r["mean_b"] = row.test.mean_b;
    r["repetitions_a"] = static_cast<double>(row.repetitions_a);
    r["repetitions_b"] = static_cast<double>(row.repetitions_b);
    r["relative_delta"] = row.test.relative_delta;
    r["t"] = row.test.t;
    r["df"] = row.test.df;
    r["p"] = row.test.p_two_tailed;
    r["p_adjusted"] = row.adjusted_p;
    r["confidence"] = row.test.confidence;
    if (row.trust != validate::TrustTier::kUnvalidated) {
      r["trust"] = std::string(validate::tier_name(row.trust));
    }
    if (row.trust_quarantined) r["trust_quarantined"] = true;
    rows.emplace_back(std::move(r));
  }
  doc["rows"] = std::move(rows);
  return util::Json(std::move(doc));
}

util::Json sweep_to_json(const SweepResult& result) {
  util::JsonObject doc;
  doc["parameter"] = result.parameter_name;
  util::JsonArray rows;
  for (const auto& row : result.correlations) {
    util::JsonObject r;
    r["event"] = std::string(sim::event_name(row.event));
    r["fit"] = stats::fit_kind_name(row.best.kind);
    r["formula"] = row.best.formula();
    r["r"] = row.best.r;
    r["r_squared"] = row.best.r_squared;
    r["points"] = static_cast<u64>(row.points);
    rows.emplace_back(std::move(r));
  }
  doc["correlations"] = std::move(rows);
  return util::Json(std::move(doc));
}

std::string sweep_to_csv(const SweepResult& result) {
  util::CsvWriter csv({result.parameter_name, "event", "repetition", "value"});
  for (const auto& m : result.measurements) {
    const double param = m.parameter(result.parameter_name);
    for (const sim::Event event : m.recorded_events()) {
      const auto& samples = m.samples(event);
      for (usize rep = 0; rep < samples.size(); ++rep) {
        csv.add_row({util::compact_double(param), std::string(sim::event_name(event)),
                     std::to_string(rep), util::compact_double(samples[rep], 9)});
      }
    }
  }
  return csv.str();
}

}  // namespace npat::evsel
