// Lazily evaluated processing chain — the paper's §IV-A.1: "a chain of
// lazily evaluated C++11 functors (lambdas) and functions is applied in
// order to filter and aggregate the raw data. This architecture does not
// pre-aggregate or reject values and thus aims for extensibility."
//
// Pipeline<T> wraps a pull-based generator; combinators build new lazy
// pipelines without touching the source data until a terminal operation
// (collect / reduce / count / for_each) runs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace npat::evsel {

template <typename T>
class Pipeline {
 public:
  using Generator = std::function<std::optional<T>()>;

  explicit Pipeline(Generator next) : next_(std::move(next)) {}

  /// Lazily wraps a container (copies it into the closure; the pipeline
  /// can outlive the source).
  static Pipeline from(std::vector<T> items) {
    auto index = std::make_shared<usize>(0);
    auto data = std::make_shared<std::vector<T>>(std::move(items));
    return Pipeline([index, data]() -> std::optional<T> {
      if (*index >= data->size()) return std::nullopt;
      return (*data)[(*index)++];
    });
  }

  /// Keeps elements satisfying `predicate`.
  Pipeline filter(std::function<bool(const T&)> predicate) && {
    Generator source = std::move(next_);
    return Pipeline([source = std::move(source),
                     predicate = std::move(predicate)]() -> std::optional<T> {
      for (;;) {
        auto item = source();
        if (!item) return std::nullopt;
        if (predicate(*item)) return item;
      }
    });
  }

  /// Transforms elements.
  template <typename U>
  Pipeline<U> map(std::function<U(const T&)> fn) && {
    Generator source = std::move(next_);
    return Pipeline<U>([source = std::move(source), fn = std::move(fn)]() -> std::optional<U> {
      auto item = source();
      if (!item) return std::nullopt;
      return fn(*item);
    });
  }

  /// Passes through at most `n` elements.
  Pipeline take(usize n) && {
    Generator source = std::move(next_);
    auto remaining = std::make_shared<usize>(n);
    return Pipeline([source = std::move(source), remaining]() -> std::optional<T> {
      if (*remaining == 0) return std::nullopt;
      auto item = source();
      if (item) --*remaining;
      return item;
    });
  }

  // --- terminal operations (these finally pull the data through) ---

  std::vector<T> collect() && {
    std::vector<T> out;
    while (auto item = next_()) out.push_back(std::move(*item));
    return out;
  }

  template <typename Acc>
  Acc reduce(Acc init, std::function<Acc(Acc, const T&)> fn) && {
    while (auto item = next_()) init = fn(std::move(init), *item);
    return init;
  }

  usize count() && {
    usize n = 0;
    while (next_()) ++n;
    return n;
  }

  void for_each(std::function<void(const T&)> fn) && {
    while (auto item = next_()) fn(*item);
  }

 private:
  Generator next_;
};

}  // namespace npat::evsel
