// A Measurement is EvSel's unit of data: one program configuration,
// measured over several identically-configured repetitions, with (ideally)
// every platform event recorded per repetition.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perf/session.hpp"
#include "sim/events.hpp"
#include "util/json.hpp"
#include "util/types.hpp"
#include "validate/trust.hpp"

namespace npat::evsel {

class Measurement {
 public:
  Measurement() = default;
  explicit Measurement(std::string label) : label_(std::move(label)) {}

  const std::string& label() const noexcept { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Named input parameters of the run (e.g. {"threads", 8}); regressions
  /// correlate these with the events.
  void set_parameter(const std::string& name, double value) { parameters_[name] = value; }
  double parameter(const std::string& name) const;
  const std::map<std::string, double>& parameters() const noexcept { return parameters_; }

  /// Appends the values of one repetition (possibly a partial event set —
  /// batched collection adds one group at a time).
  void add_values(const std::vector<perf::EventValue>& values);
  void add_value(sim::Event event, double value);

  bool has(sim::Event event) const;
  /// Per-repetition samples for an event (empty if never measured).
  const std::vector<double>& samples(sim::Event event) const;
  double mean(sim::Event event) const;
  usize repetitions(sim::Event event) const { return samples(event).size(); }

  /// Events with at least one recorded sample, in registry order.
  std::vector<sim::Event> recorded_events() const;

  /// True if every recorded sample of the event is zero (EvSel grays those
  /// rows out).
  bool all_zero(sim::Event event) const;

  /// Runs thrown out by the collector's MAD screen and re-measured (see
  /// CollectOptions::quarantine_mad_k). Zero means every repetition passed
  /// on the first try; anything higher is a degraded-confidence signal
  /// reported next to the repetition counts feeding the t-tests.
  void note_quarantined(usize runs) { quarantined_runs_ += runs; }
  usize quarantined_runs() const noexcept { return quarantined_runs_; }

  /// Outlier runs the MAD screen flagged but could not re-measure because
  /// the collector's retry budget ran dry. These runs stay in the sample
  /// set, so a nonzero count means the t-test inputs still contain known
  /// outliers — a stronger degradation signal than a quarantine that was
  /// successfully re-measured.
  void note_retry_exhausted(usize runs) { retry_exhausted_runs_ += runs; }
  usize retry_exhausted_runs() const noexcept { return retry_exhausted_runs_; }

  /// Copies per-event trust tiers from a validation run (see
  /// validate::TrustReport). Only events this measurement recorded are
  /// annotated; unlisted events stay kUnvalidated.
  void annotate_trust(const validate::TrustReport& report);
  validate::TrustTier trust(sim::Event event) const;
  bool has_trust_annotations() const noexcept { return !trust_.empty(); }

  util::Json to_json() const;
  static Measurement from_json(const util::Json& doc);

 private:
  std::string label_;
  std::map<std::string, double> parameters_;
  std::map<sim::Event, std::vector<double>> values_;
  std::map<sim::Event, validate::TrustTier> trust_;
  usize quarantined_runs_ = 0;
  usize retry_exhausted_runs_ = 0;
};

}  // namespace npat::evsel
