// Run comparison (EvSel Fig. 5/8): for every event measured in two
// configurations, a Welch t-test (Bessel-corrected sample variances)
// decides whether the counter changed significantly; the relative delta
// and confidence are reported, with multiple-comparisons-adjusted p-values
// because dozens of counters are screened at once (§III-B.1).
#pragma once

#include <string>
#include <vector>

#include "evsel/measurement.hpp"
#include "stats/ttest.hpp"

namespace npat::evsel {

struct ComparisonRow {
  sim::Event event = sim::Event::kCycles;
  stats::TTestResult test;
  double adjusted_p = 1.0;  // Holm–Bonferroni family-wise adjusted
  bool zero_in_both = false;
  usize repetitions_a = 0;
  usize repetitions_b = 0;

  bool significant(double alpha = 0.05) const {
    return !zero_in_both && !test.degenerate && adjusted_p < alpha;
  }
};

struct Comparison {
  std::string label_a;
  std::string label_b;
  /// Runs each side quarantined and re-measured by the collector's MAD
  /// screen — reported next to the repetition counts so a reader can tell
  /// a clean 5-rep sample from one that needed outlier surgery.
  usize quarantined_a = 0;
  usize quarantined_b = 0;
  std::vector<ComparisonRow> rows;  // registry order

  const ComparisonRow& row(sim::Event event) const;
  /// Rows significant at `alpha` (after adjustment), largest |relative
  /// delta| first.
  std::vector<ComparisonRow> significant_rows(double alpha = 0.05) const;
};

struct CompareOptions {
  stats::TTestKind test = stats::TTestKind::kWelch;
  /// Apply Holm–Bonferroni across all compared events.
  bool adjust_for_multiple_comparisons = true;
};

/// Compares every event present in both measurements (>= 2 reps each side).
Comparison compare(const Measurement& a, const Measurement& b,
                   const CompareOptions& options = {});

}  // namespace npat::evsel
