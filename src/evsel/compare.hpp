// Run comparison (EvSel Fig. 5/8): for every event measured in two
// configurations, a Welch t-test (Bessel-corrected sample variances)
// decides whether the counter changed significantly; the relative delta
// and confidence are reported, with multiple-comparisons-adjusted p-values
// because dozens of counters are screened at once (§III-B.1).
#pragma once

#include <string>
#include <vector>

#include "evsel/measurement.hpp"
#include "stats/ttest.hpp"
#include "validate/trust.hpp"

namespace npat::evsel {

struct ComparisonRow {
  sim::Event event = sim::Event::kCycles;
  stats::TTestResult test;
  double adjusted_p = 1.0;  // Holm–Bonferroni family-wise adjusted
  bool zero_in_both = false;
  usize repetitions_a = 0;
  usize repetitions_b = 0;
  /// Worst trust tier across both sides (and the active TrustReport, if
  /// any). kUnvalidated means no validation evidence was available.
  validate::TrustTier trust = validate::TrustTier::kUnvalidated;
  /// Refuted events stay in the row list (so the reader sees they were
  /// measured) but are quarantined: no t-test runs, no Holm slot is spent
  /// on them, and significant() is always false.
  bool trust_quarantined = false;

  bool significant(double alpha = 0.05) const {
    return !zero_in_both && !trust_quarantined && !test.degenerate && adjusted_p < alpha;
  }
};

struct Comparison {
  std::string label_a;
  std::string label_b;
  /// Runs each side quarantined and re-measured by the collector's MAD
  /// screen — reported next to the repetition counts so a reader can tell
  /// a clean 5-rep sample from one that needed outlier surgery.
  usize quarantined_a = 0;
  usize quarantined_b = 0;
  /// Outlier runs left untreated when the MAD screen's retry budget ran
  /// dry (see Measurement::retry_exhausted_runs).
  usize retry_exhausted_a = 0;
  usize retry_exhausted_b = 0;
  /// Rows excluded from the Welch/Holm family because their event is
  /// refuted by the trust harness; they remain in `rows` for display.
  usize refuted_quarantined = 0;
  std::vector<ComparisonRow> rows;  // registry order

  const ComparisonRow& row(sim::Event event) const;
  /// Rows significant at `alpha` (after adjustment), largest |relative
  /// delta| first.
  std::vector<ComparisonRow> significant_rows(double alpha = 0.05) const;
};

struct CompareOptions {
  stats::TTestKind test = stats::TTestKind::kWelch;
  /// Apply Holm–Bonferroni across all compared events.
  bool adjust_for_multiple_comparisons = true;
  /// Trust report consulted per event; nullptr falls back to the
  /// process-wide validate::active_trust_report() and then to whatever
  /// annotations the measurements carry.
  const validate::TrustReport* trust = nullptr;
};

/// Compares every event present in both measurements (>= 2 reps each side).
Comparison compare(const Measurement& a, const Measurement& b,
                   const CompareOptions& options = {});

}  // namespace npat::evsel
