#include "evsel/compare.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "stats/multiple_comparisons.hpp"
#include "util/check.hpp"

namespace npat::evsel {

namespace {

/// Merges trust evidence from two sources: absent evidence (kUnvalidated)
/// never outranks a real tier, otherwise the worse tier wins. This differs
/// from validate::worse(), where kUnvalidated is the highest ordinal.
validate::TrustTier merge_trust(validate::TrustTier a, validate::TrustTier b) {
  if (a == validate::TrustTier::kUnvalidated) return b;
  if (b == validate::TrustTier::kUnvalidated) return a;
  return validate::worse(a, b);
}

}  // namespace

const ComparisonRow& Comparison::row(sim::Event event) const {
  for (const auto& r : rows) {
    if (r.event == event) return r;
  }
  NPAT_CHECK_MSG(false, "event not present in comparison");
  static const ComparisonRow kUnreachable{};
  return kUnreachable;
}

std::vector<ComparisonRow> Comparison::significant_rows(double alpha) const {
  std::vector<ComparisonRow> out;
  for (const auto& r : rows) {
    if (r.significant(alpha)) out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(), [](const ComparisonRow& x, const ComparisonRow& y) {
    return std::fabs(x.test.relative_delta) > std::fabs(y.test.relative_delta);
  });
  return out;
}

Comparison compare(const Measurement& a, const Measurement& b, const CompareOptions& options) {
  NPAT_OBS_SPAN("evsel.compare");
  Comparison out;
  out.label_a = a.label();
  out.label_b = b.label();
  out.quarantined_a = a.quarantined_runs();
  out.quarantined_b = b.quarantined_runs();
  out.retry_exhausted_a = a.retry_exhausted_runs();
  out.retry_exhausted_b = b.retry_exhausted_runs();

  const validate::TrustReport* report =
      options.trust != nullptr ? options.trust : validate::active_trust_report();

  for (const auto& info : sim::all_events()) {
    const auto& samples_a = a.samples(info.event);
    const auto& samples_b = b.samples(info.event);
    if (samples_a.size() < 2 || samples_b.size() < 2) continue;

    ComparisonRow row;
    row.event = info.event;
    row.repetitions_a = samples_a.size();
    row.repetitions_b = samples_b.size();
    row.zero_in_both = a.all_zero(info.event) && b.all_zero(info.event);
    row.trust = merge_trust(a.trust(info.event), b.trust(info.event));
    if (report != nullptr) row.trust = merge_trust(row.trust, report->tier(info.event));
    if (row.trust == validate::TrustTier::kRefuted) {
      // A refuted counter's samples are known-wrong; running a t-test on
      // them would manufacture significance from broken hardware. Keep the
      // row so the quarantine is visible, but never spend a Holm slot on it.
      row.trust_quarantined = true;
      row.test.degenerate = true;
      ++out.refuted_quarantined;
    } else {
      row.test = stats::t_test(samples_a, samples_b, options.test);
      row.adjusted_p = row.test.p_two_tailed;
    }
    out.rows.push_back(row);
  }

  if (options.adjust_for_multiple_comparisons) {
    std::vector<usize> tested;
    std::vector<double> p_values;
    for (usize i = 0; i < out.rows.size(); ++i) {
      if (out.rows[i].trust_quarantined) continue;
      tested.push_back(i);
      p_values.push_back(out.rows[i].test.p_two_tailed);
    }
    // All-refuted comparisons degrade to a counted no-op: nothing to adjust.
    if (!p_values.empty()) {
      const auto adjusted = stats::holm_adjust(p_values);
      for (usize i = 0; i < tested.size(); ++i) out.rows[tested[i]].adjusted_p = adjusted[i];
    }
  }
  return out;
}

}  // namespace npat::evsel
