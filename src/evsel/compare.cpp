#include "evsel/compare.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "stats/multiple_comparisons.hpp"
#include "util/check.hpp"

namespace npat::evsel {

const ComparisonRow& Comparison::row(sim::Event event) const {
  for (const auto& r : rows) {
    if (r.event == event) return r;
  }
  NPAT_CHECK_MSG(false, "event not present in comparison");
  static const ComparisonRow kUnreachable{};
  return kUnreachable;
}

std::vector<ComparisonRow> Comparison::significant_rows(double alpha) const {
  std::vector<ComparisonRow> out;
  for (const auto& r : rows) {
    if (r.significant(alpha)) out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(), [](const ComparisonRow& x, const ComparisonRow& y) {
    return std::fabs(x.test.relative_delta) > std::fabs(y.test.relative_delta);
  });
  return out;
}

Comparison compare(const Measurement& a, const Measurement& b, const CompareOptions& options) {
  NPAT_OBS_SPAN("evsel.compare");
  Comparison out;
  out.label_a = a.label();
  out.label_b = b.label();
  out.quarantined_a = a.quarantined_runs();
  out.quarantined_b = b.quarantined_runs();

  for (const auto& info : sim::all_events()) {
    const auto& samples_a = a.samples(info.event);
    const auto& samples_b = b.samples(info.event);
    if (samples_a.size() < 2 || samples_b.size() < 2) continue;

    ComparisonRow row;
    row.event = info.event;
    row.repetitions_a = samples_a.size();
    row.repetitions_b = samples_b.size();
    row.zero_in_both = a.all_zero(info.event) && b.all_zero(info.event);
    row.test = stats::t_test(samples_a, samples_b, options.test);
    row.adjusted_p = row.test.p_two_tailed;
    out.rows.push_back(row);
  }

  if (options.adjust_for_multiple_comparisons && !out.rows.empty()) {
    std::vector<double> p_values;
    p_values.reserve(out.rows.size());
    for (const auto& row : out.rows) p_values.push_back(row.test.p_two_tailed);
    const auto adjusted = stats::holm_adjust(p_values);
    for (usize i = 0; i < out.rows.size(); ++i) out.rows[i].adjusted_p = adjusted[i];
  }
  return out;
}

}  // namespace npat::evsel
