#include "evsel/measurement.hpp"

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace npat::evsel {

double Measurement::parameter(const std::string& name) const {
  const auto it = parameters_.find(name);
  NPAT_CHECK_MSG(it != parameters_.end(), "unknown measurement parameter: " + name);
  return it->second;
}

void Measurement::add_values(const std::vector<perf::EventValue>& values) {
  for (const auto& value : values) values_[value.event].push_back(value.value);
}

void Measurement::add_value(sim::Event event, double value) {
  values_[event].push_back(value);
}

bool Measurement::has(sim::Event event) const { return values_.count(event) > 0; }

const std::vector<double>& Measurement::samples(sim::Event event) const {
  static const std::vector<double> kEmpty;
  const auto it = values_.find(event);
  return it == values_.end() ? kEmpty : it->second;
}

double Measurement::mean(sim::Event event) const {
  const auto& s = samples(event);
  return s.empty() ? 0.0 : stats::mean(s);
}

std::vector<sim::Event> Measurement::recorded_events() const {
  std::vector<sim::Event> out;
  for (const auto& info : sim::all_events()) {
    if (has(info.event)) out.push_back(info.event);
  }
  return out;
}

bool Measurement::all_zero(sim::Event event) const {
  const auto& s = samples(event);
  if (s.empty()) return true;
  for (double v : s) {
    if (v != 0.0) return false;
  }
  return true;
}

void Measurement::annotate_trust(const validate::TrustReport& report) {
  for (const sim::Event event : recorded_events()) {
    const validate::TrustTier tier = report.tier(event);
    if (tier != validate::TrustTier::kUnvalidated) trust_[event] = tier;
  }
}

validate::TrustTier Measurement::trust(sim::Event event) const {
  const auto it = trust_.find(event);
  return it == trust_.end() ? validate::TrustTier::kUnvalidated : it->second;
}

util::Json Measurement::to_json() const {
  util::JsonObject doc;
  doc["label"] = label_;
  if (quarantined_runs_ > 0) doc["quarantined_runs"] = static_cast<double>(quarantined_runs_);
  if (retry_exhausted_runs_ > 0) {
    doc["retry_exhausted_runs"] = static_cast<double>(retry_exhausted_runs_);
  }
  if (!trust_.empty()) {
    util::JsonObject trust;
    for (const auto& [event, tier] : trust_) {
      trust[std::string(sim::event_name(event))] = std::string(validate::tier_name(tier));
    }
    doc["trust"] = std::move(trust);
  }
  util::JsonObject params;
  for (const auto& [name, value] : parameters_) params[name] = value;
  doc["parameters"] = std::move(params);
  util::JsonObject events;
  for (const auto& [event, samples] : values_) {
    util::JsonArray arr;
    for (double v : samples) arr.emplace_back(v);
    events[std::string(sim::event_name(event))] = std::move(arr);
  }
  doc["events"] = std::move(events);
  return util::Json(std::move(doc));
}

Measurement Measurement::from_json(const util::Json& doc) {
  Measurement m(doc.get_string("label"));
  if (const util::Json* quarantined = doc.find("quarantined_runs")) {
    m.quarantined_runs_ = static_cast<usize>(quarantined->as_number());
  }
  if (const util::Json* exhausted = doc.find("retry_exhausted_runs")) {
    m.retry_exhausted_runs_ = static_cast<usize>(exhausted->as_number());
  }
  if (const util::Json* trust = doc.find("trust")) {
    for (const auto& [name, tier] : trust->as_object()) {
      const auto event = sim::event_by_name(name);
      if (!event) continue;  // event unknown on this platform
      m.trust_[*event] = validate::tier_from_name(tier.as_string());
    }
  }
  if (const util::Json* params = doc.find("parameters")) {
    for (const auto& [name, value] : params->as_object()) {
      m.set_parameter(name, value.as_number());
    }
  }
  if (const util::Json* events = doc.find("events")) {
    for (const auto& [name, arr] : events->as_object()) {
      const auto event = sim::event_by_name(name);
      if (!event) continue;  // event unknown on this platform
      for (const auto& v : arr.as_array()) m.add_value(*event, v.as_number());
    }
  }
  return m;
}

}  // namespace npat::evsel
