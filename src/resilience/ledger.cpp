#include "resilience/ledger.hpp"

#include "obs/obs.hpp"

namespace npat::resilience {

Admit DeliveryLedger::admit(u16 epoch, u32 seq) {
  bool reset = false;
  if (!started_ || epoch > epoch_) {
    reset = started_;
    started_ = true;
    epoch_ = epoch;
    floor_ = 0;
    highest_seen_ = 0;
    ahead_.clear();
    if (reset) {
      ++epoch_resets_;
      NPAT_OBS_COUNT("npat_resilience_epoch_resets_total",
                     "Delivery ledgers reset by a newer probe epoch", 1);
    }
  } else if (epoch < epoch_) {
    // A frame from a dead incarnation (late retransmission racing a probe
    // restart): its numbering means nothing now, suppress it.
    ++duplicates_;
    NPAT_OBS_COUNT("npat_resilience_duplicates_suppressed_total",
                   "Frames suppressed by (epoch, seq) deduplication", 1);
    return Admit::kDuplicate;
  }

  if (seq > highest_seen_) highest_seen_ = seq;
  if (seq <= floor_ || ahead_.count(seq) > 0) {
    ++duplicates_;
    NPAT_OBS_COUNT("npat_resilience_duplicates_suppressed_total",
                   "Frames suppressed by (epoch, seq) deduplication", 1);
    return Admit::kDuplicate;
  }

  ahead_.insert(seq);
  while (!ahead_.empty() && *ahead_.begin() == floor_ + 1) {
    ++floor_;
    ahead_.erase(ahead_.begin());
  }
  ++delivered_;
  NPAT_OBS_COUNT("npat_resilience_frames_delivered_total",
                 "Sequenced frames delivered exactly once", 1);
  return reset ? Admit::kEpochReset : Admit::kDelivered;
}

}  // namespace npat::resilience
