// Collector-side liveness for supervised probes: live → stale → dead,
// driven by the gap since the probe was last heard (any valid frame
// counts — data proves liveness; explicit Heartbeats only flow when a
// probe is otherwise idle). Transitions pass through an AlertEngine-style
// dwell: a *different* target state must persist for `dwell` consecutive
// evaluations before the committed state changes, so one late poll never
// declares a probe dead and one lucky frame never resurrects it.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace npat::resilience {

enum class Liveness : u8 { kLive = 0, kStale = 1, kDead = 2 };

const char* liveness_name(Liveness state) noexcept;

struct LivenessConfig {
  /// Gap (in collector-clock cycles) after which a silent probe is stale.
  Cycles stale_after = 200000;
  /// Gap after which a stale probe is presumed dead.
  Cycles dead_after = 1000000;
  /// Consecutive evaluations a new target state must persist before the
  /// committed state transitions (1 = immediate).
  usize dwell = 2;
};

struct LivenessTransition {
  Liveness from = Liveness::kLive;
  Liveness to = Liveness::kLive;
  Cycles at = 0;   ///< collector clock at commit time
  Cycles gap = 0;  ///< silence that committed the transition
};

class LivenessTracker {
 public:
  LivenessTracker() = default;
  explicit LivenessTracker(const LivenessConfig& config) : config_(config) {}

  /// Any valid frame from the probe refreshes the clock.
  void heard(Cycles now) noexcept;

  /// Re-evaluates the committed state against `now`; called once per
  /// collector poll. Returns the committed (post-dwell) state.
  Liveness evaluate(Cycles now);

  Liveness state() const noexcept { return committed_; }
  Cycles last_heard() const noexcept { return last_heard_; }
  bool ever_heard() const noexcept { return ever_heard_; }
  const std::vector<LivenessTransition>& transitions() const noexcept { return transitions_; }

 private:
  LivenessConfig config_;
  bool ever_heard_ = false;
  Cycles last_heard_ = 0;
  Liveness committed_ = Liveness::kLive;
  Liveness candidate_ = Liveness::kLive;
  usize streak_ = 0;
  std::vector<LivenessTransition> transitions_;
};

}  // namespace npat::resilience
