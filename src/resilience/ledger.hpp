// Exactly-once delivery accounting for supervised probe streams. A probe
// stamps every data frame with (epoch, seq) — the epoch names one probe
// incarnation, sequences count its frames from 1 — and may retransmit
// after a reconnect anything the collector never acknowledged. The ledger
// is the collector-side dual: it admits each (epoch, seq) at most once,
// tracks the highest *contiguously* delivered sequence (the resume/ack
// floor), and keeps a sparse set of sequences delivered ahead of a gap so
// a frame lost mid-connection can still be delivered exactly once when a
// later resume replays it.
#pragma once

#include <set>

#include "util/types.hpp"

namespace npat::resilience {

enum class Admit : u8 {
  kDelivered,   ///< first delivery; fold the frame into the session
  kDuplicate,   ///< retransmission of something already delivered; suppress
  kEpochReset,  ///< first frame of a newer epoch; prior state discarded, frame delivered
};

class DeliveryLedger {
 public:
  /// Classifies one (epoch, seq). Sequences are 1-based; a newer epoch
  /// resets the ledger (a restarted probe has no memory of the old
  /// numbering), a stale epoch's frames are suppressed as duplicates.
  Admit admit(u16 epoch, u32 seq);

  u16 epoch() const noexcept { return epoch_; }
  /// Highest sequence delivered with no gaps below it — the ack floor: a
  /// probe may safely forget everything <= floor().
  u32 floor() const noexcept { return floor_; }
  /// Highest sequence seen at all (gaps included).
  u32 highest_seen() const noexcept { return highest_seen_; }
  /// Sequences delivered ahead of a gap (loss suspected below them).
  usize gap_backlog() const noexcept { return ahead_.size(); }

  u64 delivered() const noexcept { return delivered_; }
  u64 duplicates() const noexcept { return duplicates_; }
  u64 epoch_resets() const noexcept { return epoch_resets_; }

 private:
  bool started_ = false;
  u16 epoch_ = 0;
  u32 floor_ = 0;
  u32 highest_seen_ = 0;
  std::set<u32> ahead_;
  u64 delivered_ = 0;
  u64 duplicates_ = 0;
  u64 epoch_resets_ = 0;
};

}  // namespace npat::resilience
