// SupervisedProbe: the resilient evolution of memhist::Probe. Every data
// frame is stamped with (epoch, seq) and kept in a bounded replay buffer
// until the collector acknowledges it; when the channel dies the probe
// redials through exponential backoff with jitter, replays the Resume
// handshake (Hello + Resume{probe, epoch, next_seq}), and — once the
// collector answers with the sequence it delivered contiguously —
// retransmits only the frames the collector never saw. Explicit
// Heartbeats flow only while the probe is otherwise idle: data frames
// themselves prove liveness, which keeps the steady-state wire overhead
// to the 7-byte sequence envelope.
//
// The probe is cooperative and clockless like the rest of the transport:
// callers thread a monotonically non-decreasing `now` (simulated cycles)
// through pump()/send_*(), and backoff, heartbeat and resume deadlines
// are measured on that clock.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "memhist/builder.hpp"
#include "memhist/wire.hpp"
#include "obs/metrics.hpp"
#include "util/channel.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace npat::resilience {

namespace wire = memhist::wire;

/// Produces a fresh connected channel to the collector (like dialing a
/// TCP socket), or nullptr when the connection attempt fails.
using DialFn = std::function<std::shared_ptr<util::ByteChannel>()>;

enum class LinkState : u8 {
  kConnected,       ///< resume handshake complete; frames flow
  kAwaitingResume,  ///< dialed and hello sent; waiting for the collector's floor
  kBackoff,         ///< link down; next dial attempt scheduled
};

const char* link_state_name(LinkState state) noexcept;

struct BackoffConfig {
  Cycles initial = 2000;    ///< delay before the first retry
  Cycles max = 256000;      ///< exponential growth is capped here
  double multiplier = 2.0;  ///< growth per consecutive failure
  /// Jitter fraction: each delay is drawn uniformly from
  /// [delay * (1 - jitter), delay] so a fleet of probes that died
  /// together does not redial in lockstep.
  double jitter = 0.5;
};

struct SupervisedProbeConfig {
  std::string host_id;
  u32 node_count = 0;
  /// Names this probe incarnation; a restarted probe must pick a higher
  /// epoch so the collector's ledger does not swallow its fresh sequences.
  u16 epoch = 1;
  /// Unacked frames retained for retransmission; overflow evicts the
  /// oldest (counted — bounded memory beats silent unbounded growth).
  usize replay_capacity = 1024;
  /// Idle gap (no accepted send) after which a Heartbeat is emitted.
  Cycles heartbeat_interval = 100000;
  /// How long to wait for the collector's Resume reply before tearing the
  /// connection down and redialing.
  Cycles resume_timeout = 200000;
  BackoffConfig backoff;
  u64 seed = 42;
  /// Every `stamp_interval`-th data frame carries an emit-timestamp
  /// annotation (StampedMsg, protocol v6) so the collector can attribute
  /// per-hop pipeline latency; 0 disables stamping. Sampling — not every
  /// frame — keeps the wire cost bounded: at the default 4, the 9-byte
  /// annotation adds ~1.3% to a two-node dual-preset telemetry stream
  /// (gated <= 2% by bench/ablation_introspect_overhead).
  usize stamp_interval = 4;
};

class SupervisedProbe {
 public:
  SupervisedProbe(SupervisedProbeConfig config, DialFn dial);

  /// Drives the state machine: detects a dead channel, redials when the
  /// backoff expires, drains collector acks (pruning the replay buffer
  /// and completing the resume handshake), and emits idle heartbeats.
  void pump(Cycles now);

  /// Data senders: stamp, buffer, and transmit when connected. While the
  /// link is down (or resuming) frames are buffered and flow after the
  /// handshake, in sequence order.
  void send_sample(const wire::MonitorSampleMsg& sample, Cycles now);
  void send_reading(const memhist::ThresholdReading& reading, Cycles now);
  void send_task_table(const wire::TaskTableMsg& table, Cycles now);
  void send_task_sample(const wire::TaskSampleMsg& sample, Cycles now);
  void send_end(Cycles total_cycles, Cycles now);

  LinkState link() const noexcept { return state_; }
  u16 epoch() const noexcept { return config_.epoch; }
  /// Highest sequence assigned so far (sequences start at 1).
  u32 last_seq() const noexcept { return last_seq_; }
  /// Highest contiguous sequence the collector has acknowledged.
  u32 acked_floor() const noexcept { return acked_floor_; }
  /// True once every assigned sequence has been acknowledged.
  bool fully_acked() const noexcept { return acked_floor_ >= last_seq_; }
  usize replay_depth() const noexcept { return replay_.size(); }

  /// Sequenced data frames the channel accepted, retransmissions included.
  usize data_transmissions() const noexcept { return data_transmissions_; }
  /// Hello/Resume/Heartbeat frames the channel accepted.
  usize control_transmissions() const noexcept { return control_transmissions_; }
  usize retransmissions() const noexcept { return retransmissions_; }
  usize heartbeats_sent() const noexcept { return heartbeats_sent_; }
  /// Sends rejected by a dead channel (these bytes never hit the wire).
  usize send_failures() const noexcept { return send_failures_; }
  usize dial_attempts() const noexcept { return dial_attempts_; }
  usize dial_failures() const noexcept { return dial_failures_; }
  /// Successful resume handshakes after the first connection.
  usize reconnects() const noexcept { return reconnects_; }
  /// Unacked frames evicted by a full replay buffer (permanent loss).
  usize evictions() const noexcept { return evictions_; }
  usize acks_received() const noexcept { return acks_received_; }
  /// Data frames that carried an emit-timestamp annotation.
  usize stamped_frames() const noexcept { return stamped_frames_; }

 private:
  struct Buffered {
    u32 seq = 0;
    std::vector<u8> frame;  // fully encoded sequence-envelope frame
  };

  void dial(Cycles now);
  void lose_link(Cycles now);
  void schedule_backoff(Cycles now);
  Cycles backoff_delay();
  void drain_acks(Cycles now);
  void complete_resume(Cycles now);
  void prune_acked();
  void enqueue_and_send(const wire::Message& inner, Cycles now);
  bool wire_send(const std::vector<u8>& frame, bool data, Cycles now);
  void publish_replay_depth();

  SupervisedProbeConfig config_;
  DialFn dial_;
  util::Xoshiro256ss rng_;

  std::shared_ptr<util::ByteChannel> channel_;
  wire::Decoder ack_decoder_;
  LinkState state_ = LinkState::kBackoff;
  Cycles next_attempt_ = 0;  // first pump() dials immediately
  Cycles resume_deadline_ = 0;
  Cycles last_wire_activity_ = 0;
  usize failure_streak_ = 0;
  bool connected_once_ = false;

  u32 last_seq_ = 0;
  u32 acked_floor_ = 0;
  std::deque<Buffered> replay_;

  usize data_transmissions_ = 0;
  usize control_transmissions_ = 0;
  usize retransmissions_ = 0;
  usize heartbeats_sent_ = 0;
  usize send_failures_ = 0;
  usize dial_attempts_ = 0;
  usize dial_failures_ = 0;
  usize reconnects_ = 0;
  usize evictions_ = 0;
  usize acks_received_ = 0;
  usize stamped_frames_ = 0;
  obs::Gauge* replay_gauge_ = nullptr;  // npat_introspect_replay_depth{host=…}
};

}  // namespace npat::resilience
