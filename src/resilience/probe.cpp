#include "resilience/probe.hpp"

#include <algorithm>
#include <utility>

#include "introspect/flight.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::resilience {

namespace {

constexpr usize kRecvChunk = 4096;

}  // namespace

const char* link_state_name(LinkState state) noexcept {
  switch (state) {
    case LinkState::kConnected:
      return "connected";
    case LinkState::kAwaitingResume:
      return "resuming";
    case LinkState::kBackoff:
      break;
  }
  return "backoff";
}

SupervisedProbe::SupervisedProbe(SupervisedProbeConfig config, DialFn dial)
    : config_(std::move(config)), dial_(std::move(dial)), rng_(config_.seed) {
  NPAT_CHECK_MSG(dial_ != nullptr, "SupervisedProbe needs a dial function");
  NPAT_CHECK_MSG(config_.replay_capacity > 0, "replay capacity must be positive");
  NPAT_CHECK_MSG(config_.backoff.multiplier >= 1.0, "backoff must not shrink");
  NPAT_CHECK_MSG(config_.backoff.jitter >= 0.0 && config_.backoff.jitter <= 1.0,
                 "jitter is a fraction of the delay");
}

void SupervisedProbe::pump(Cycles now) {
  // A channel that died since the last pump (peer closed, injector cut the
  // stream) is only discovered here; tear it down before anything else.
  if (state_ != LinkState::kBackoff && (!channel_ || channel_->closed())) {
    lose_link(now);
  }
  if (state_ == LinkState::kBackoff && now >= next_attempt_) {
    dial(now);
  }
  if (state_ != LinkState::kBackoff) {
    drain_acks(now);
  }
  if (state_ == LinkState::kAwaitingResume && now >= resume_deadline_) {
    // The collector never answered the handshake; assume the dial landed on
    // a dead socket and go around again.
    lose_link(now);
  }
  if (state_ == LinkState::kConnected &&
      now - last_wire_activity_ >= config_.heartbeat_interval) {
    wire::Heartbeat beat;
    beat.epoch = config_.epoch;
    beat.seq = last_seq_;
    beat.timestamp = now;
    if (wire_send(wire::encode(wire::Message{beat}), /*data=*/false, now)) {
      ++heartbeats_sent_;
      NPAT_OBS_COUNT("npat_resilience_heartbeats_sent_total",
                     "Idle heartbeats emitted by supervised probes", 1);
    } else {
      lose_link(now);
    }
  }
}

void SupervisedProbe::send_sample(const wire::MonitorSampleMsg& sample, Cycles now) {
  enqueue_and_send(wire::Message{sample}, now);
}

void SupervisedProbe::send_reading(const memhist::ThresholdReading& reading, Cycles now) {
  enqueue_and_send(wire::Message{wire::ReadingMsg{reading}}, now);
}

void SupervisedProbe::send_task_table(const wire::TaskTableMsg& table, Cycles now) {
  enqueue_and_send(wire::Message{table}, now);
}

void SupervisedProbe::send_task_sample(const wire::TaskSampleMsg& sample, Cycles now) {
  enqueue_and_send(wire::Message{sample}, now);
}

void SupervisedProbe::send_end(Cycles total_cycles, Cycles now) {
  enqueue_and_send(wire::Message{wire::End{total_cycles}}, now);
}

void SupervisedProbe::enqueue_and_send(const wire::Message& inner, Cycles now) {
  const u32 seq = ++last_seq_;
  // Sampled emit stamping: every Nth data frame is annotated with the
  // probe's send clock before the sequence envelope goes on (nesting
  // Sequenced(Stamped(data))), so the collector can measure per-hop
  // latency without paying 9 bytes on every frame. The stamp rides the
  // replay buffer too: a retransmission keeps its original emit time, so
  // the measured latency honestly includes the outage.
  std::vector<u8> frame;
  if (config_.stamp_interval > 0 && (seq - 1) % config_.stamp_interval == 0) {
    ++stamped_frames_;
    frame = wire::encode(wire::Message{
        wire::wrap_sequenced(config_.epoch, seq, wire::Message{wire::wrap_stamped(now, inner)})});
  } else {
    frame = wire::encode(wire::Message{wire::wrap_sequenced(config_.epoch, seq, inner)});
  }
  if (replay_.size() >= config_.replay_capacity) {
    // The oldest unacked frame is gone for good; the collector's ledger
    // will report the hole. Bounded memory beats silent unbounded growth.
    replay_.pop_front();
    ++evictions_;
    NPAT_OBS_COUNT("npat_resilience_replay_evictions_total",
                   "Unacked frames evicted from full replay buffers", 1);
    introspect::flight().record(introspect::FlightKind::kReplayEviction, now, config_.host_id,
                                "unacked frame evicted from a full replay buffer");
  }
  replay_.push_back(Buffered{seq, frame});
  publish_replay_depth();
  // While resuming, fresh frames stay buffered: retransmissions of the gap
  // must hit the wire first so the collector's floor advances in order.
  if (state_ == LinkState::kConnected) {
    if (!wire_send(frame, /*data=*/true, now)) lose_link(now);
  }
}

void SupervisedProbe::dial(Cycles now) {
  ++dial_attempts_;
  NPAT_OBS_COUNT("npat_resilience_dial_attempts_total",
                 "Connection attempts by supervised probes", 1);
  std::shared_ptr<util::ByteChannel> fresh = dial_ ? dial_() : nullptr;
  if (!fresh || fresh->closed()) {
    ++dial_failures_;
    NPAT_OBS_COUNT("npat_resilience_dial_failures_total",
                   "Connection attempts that failed outright", 1);
    schedule_backoff(now);
    return;
  }
  channel_ = std::move(fresh);
  ack_decoder_ = wire::Decoder{};  // acks are framed per connection
  wire::Hello hello;
  hello.node_count = config_.node_count;
  hello.host_id = config_.host_id;
  wire::Resume resume;
  resume.role = wire::kResumeProbe;
  resume.epoch = config_.epoch;
  resume.seq = last_seq_ + 1;  // next fresh sequence this probe will assign
  if (!wire_send(wire::encode(wire::Message{hello}), /*data=*/false, now) ||
      !wire_send(wire::encode(wire::Message{resume}), /*data=*/false, now)) {
    lose_link(now);
    return;
  }
  state_ = LinkState::kAwaitingResume;
  resume_deadline_ = now + config_.resume_timeout;
  introspect::flight().record(
      introspect::FlightKind::kDial, now, config_.host_id,
      util::format("epoch=%u next_seq=%u", static_cast<unsigned>(config_.epoch),
                   static_cast<unsigned>(last_seq_ + 1)));
  NPAT_OBS_INSTANT("resilience.dial",
                   util::format("host=%s epoch=%u next_seq=%u", config_.host_id.c_str(),
                                static_cast<unsigned>(config_.epoch),
                                static_cast<unsigned>(last_seq_ + 1)));
}

void SupervisedProbe::drain_acks(Cycles now) {
  if (!channel_) return;
  for (;;) {
    std::vector<u8> bytes = channel_->recv(kRecvChunk);
    if (bytes.empty()) break;
    ack_decoder_.feed(bytes);
  }
  while (std::optional<wire::Message> message = ack_decoder_.poll()) {
    const wire::Resume* ack = std::get_if<wire::Resume>(&*message);
    if (ack == nullptr || ack->role != wire::kResumeCollector) continue;
    if (ack->epoch != config_.epoch) continue;  // stale incarnation's ack
    ++acks_received_;
    if (ack->seq > acked_floor_) acked_floor_ = ack->seq;
    prune_acked();
    if (state_ == LinkState::kAwaitingResume) complete_resume(now);
  }
}

void SupervisedProbe::complete_resume(Cycles now) {
  // The collector told us its contiguous floor; everything above it that we
  // still hold goes back on the wire, oldest first, followed (implicitly,
  // in the buffer order) by frames queued while the link was down.
  for (const Buffered& entry : replay_) {
    if (entry.seq <= acked_floor_) continue;
    if (!wire_send(entry.frame, /*data=*/true, now)) {
      lose_link(now);
      return;
    }
    ++retransmissions_;
    NPAT_OBS_COUNT("npat_resilience_retransmissions_total",
                   "Replay-buffer frames retransmitted after a resume", 1);
  }
  state_ = LinkState::kConnected;
  failure_streak_ = 0;
  if (connected_once_) {
    ++reconnects_;
    NPAT_OBS_COUNT("npat_resilience_reconnects_total",
                   "Resume handshakes completed after a link loss", 1);
    introspect::flight().record(
        introspect::FlightKind::kReconnect, now, config_.host_id,
        util::format("floor=%u replayed=%zu", static_cast<unsigned>(acked_floor_),
                     replay_.size()));
  }
  connected_once_ = true;
  NPAT_OBS_INSTANT("resilience.resume",
                   util::format("host=%s floor=%u replayed=%zu", config_.host_id.c_str(),
                                static_cast<unsigned>(acked_floor_), replay_.size()));
}

void SupervisedProbe::prune_acked() {
  while (!replay_.empty() && replay_.front().seq <= acked_floor_) {
    replay_.pop_front();
  }
  publish_replay_depth();
}

void SupervisedProbe::publish_replay_depth() {
  if (!obs::enabled()) return;
  if (replay_gauge_ == nullptr) {
    replay_gauge_ = &obs::metrics().gauge(
        obs::labeled_name("npat_introspect_replay_depth", {{"host", config_.host_id}}),
        "Unacked frames held in a supervised probe's replay buffer");
  }
  replay_gauge_->set(static_cast<double>(replay_.size()));
}

void SupervisedProbe::lose_link(Cycles now) {
  if (channel_) channel_.reset();
  schedule_backoff(now);
}

void SupervisedProbe::schedule_backoff(Cycles now) {
  state_ = LinkState::kBackoff;
  next_attempt_ = now + backoff_delay();
  if (failure_streak_ < 32) ++failure_streak_;
  NPAT_OBS_COUNT("npat_resilience_backoffs_total",
                 "Link losses that scheduled a backoff delay", 1);
}

Cycles SupervisedProbe::backoff_delay() {
  double delay = static_cast<double>(config_.backoff.initial);
  for (usize i = 0; i + 1 < failure_streak_; ++i) {
    delay *= config_.backoff.multiplier;
    if (delay >= static_cast<double>(config_.backoff.max)) break;
  }
  delay = std::min(delay, static_cast<double>(config_.backoff.max));
  delay *= 1.0 - config_.backoff.jitter * rng_.uniform();
  return std::max<Cycles>(1, static_cast<Cycles>(delay));
}

bool SupervisedProbe::wire_send(const std::vector<u8>& frame, bool data, Cycles now) {
  const bool ok = channel_ != nullptr && channel_->send(frame);
  if (ok) {
    if (data) {
      ++data_transmissions_;
    } else {
      ++control_transmissions_;
    }
    last_wire_activity_ = now;
  } else {
    ++send_failures_;
  }
  return ok;
}

}  // namespace npat::resilience
