#include "resilience/liveness.hpp"

#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace npat::resilience {

const char* liveness_name(Liveness state) noexcept {
  switch (state) {
    case Liveness::kStale:
      return "stale";
    case Liveness::kDead:
      return "dead";
    case Liveness::kLive:
      break;
  }
  return "live";
}

void LivenessTracker::heard(Cycles now) noexcept {
  ever_heard_ = true;
  if (now > last_heard_) last_heard_ = now;
}

Liveness LivenessTracker::evaluate(Cycles now) {
  // A probe never heard from is "not yet live", not "dead of silence":
  // the gap clock starts at first contact.
  if (!ever_heard_) return committed_;
  const Cycles gap = now > last_heard_ ? now - last_heard_ : 0;
  Liveness target = Liveness::kLive;
  if (gap >= config_.dead_after) {
    target = Liveness::kDead;
  } else if (gap >= config_.stale_after) {
    target = Liveness::kStale;
  }

  if (target == committed_) {
    candidate_ = committed_;
    streak_ = 0;
    return committed_;
  }
  if (target == candidate_) {
    ++streak_;
  } else {
    candidate_ = target;
    streak_ = 1;
  }
  if (streak_ < config_.dwell) return committed_;

  transitions_.push_back({committed_, target, now, gap});
  NPAT_OBS_COUNT("npat_resilience_liveness_transitions_total",
                 "Committed probe liveness transitions", 1);
  NPAT_OBS_INSTANT("resilience.liveness",
                   util::format("%s->%s gap=%llu", liveness_name(committed_),
                                liveness_name(target), static_cast<unsigned long long>(gap)));
  committed_ = target;
  candidate_ = target;
  streak_ = 0;
  return committed_;
}

}  // namespace npat::resilience
