// Minimal JSON value type with parser and serializer.
//
// EvSel reads platform event descriptions from a JSON file (the paper
// mirrors Intel's per-platform event JSON); measurement reports are also
// exported as JSON. The subset implemented is full JSON minus \u surrogate
// pairs beyond the BMP.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "util/types.hpp"

namespace npat::util {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys ordered -> deterministic serialization for tests.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  using Value = std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(i64 i) : value_(static_cast<double>(i)) {}
  Json(u64 u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return expect<bool>("bool"); }
  double as_number() const { return expect<double>("number"); }
  i64 as_int() const { return static_cast<i64>(as_number()); }
  const std::string& as_string() const { return expect<std::string>("string"); }
  const JsonArray& as_array() const { return expect<JsonArray>("array"); }
  JsonArray& as_array() { return expect_mut<JsonArray>("array"); }
  const JsonObject& as_object() const { return expect<JsonObject>("object"); }
  JsonObject& as_object() { return expect_mut<JsonObject>("object"); }

  /// Object member access; throws JsonError if missing or not an object.
  const Json& at(const std::string& key) const;
  /// Object member lookup; nullptr if absent.
  const Json* find(const std::string& key) const;
  /// Typed convenience getters with defaults.
  std::string get_string(const std::string& key, const std::string& fallback = "") const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Parses a JSON document; throws JsonError with offset info on failure.
  static Json parse(std::string_view text);

  /// Serializes; indent == 0 -> compact single line.
  std::string dump(int indent = 0) const;

  friend bool operator==(const Json& a, const Json& b) { return a.value_ == b.value_; }

 private:
  template <typename T>
  const T& expect(const char* what) const {
    if (const T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("JSON value is not a ") + what);
  }
  template <typename T>
  T& expect_mut(const char* what) {
    if (T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("JSON value is not a ") + what);
  }

  void dump_to(std::string& out, int indent, int depth) const;

  Value value_;
};

/// Reads an entire file; throws JsonError on I/O failure.
std::string read_file(const std::string& path);
/// Writes an entire file; throws JsonError on I/O failure.
void write_file(const std::string& path, std::string_view contents);

}  // namespace npat::util
