// ASCII table renderer. EvSel's GUI presents counters in a sortable table
// with visual cues; TableRenderer reproduces the layout for terminals.
#pragma once

#include <string>
#include <vector>

#include "util/ansi.hpp"
#include "util/types.hpp"

namespace npat::util {

enum class Align { kLeft, kRight, kCenter };

struct Cell {
  std::string text;
  Style style = Style::kNone;
};

class Table {
 public:
  /// Defines the header row; the number of columns is fixed afterwards.
  explicit Table(std::vector<std::string> headers);

  usize columns() const noexcept { return headers_.size(); }
  usize rows() const noexcept { return rows_.size(); }

  void set_align(usize column, Align align);
  void set_title(std::string title) { title_ = std::move(title); }

  /// Appends a row; the row must have exactly columns() cells.
  void add_styled_row(std::vector<Cell> cells);
  /// Convenience: plain-text row.
  void add_row(const std::vector<std::string>& cells);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  /// Renders with box-drawing borders.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<Cell>> rows_;
  std::vector<bool> rule_before_;  // parallel to rows_
  bool pending_rule_ = false;
  std::string title_;
};

}  // namespace npat::util
