#include "util/histogram_render.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::util {

std::string render_histogram(const std::vector<HistogramBar>& bars,
                             const HistogramRenderOptions& options) {
  usize label_width = 0;
  double max_value = 0.0;
  for (const auto& bar : bars) {
    NPAT_CHECK_MSG(!std::isnan(bar.value), "histogram bars must not be NaN");
    label_width = std::max(label_width, display_width(bar.label));
    max_value = std::max(max_value, std::fabs(bar.value));
  }

  double clip = max_value;
  if (options.truncate_above_fraction > 0.0 && max_value > 0.0) {
    clip = max_value * options.truncate_above_fraction;
    // Only meaningful if something actually exceeds the clip level.
    double second = 0.0;
    for (const auto& bar : bars) {
      if (std::fabs(bar.value) < max_value) second = std::max(second, std::fabs(bar.value));
    }
    clip = std::max(clip, second);
  }
  if (clip <= 0.0) clip = 1.0;

  std::string out;
  if (!options.title.empty()) out += styled(options.title, Style::kBold) + "\n";
  for (const auto& bar : bars) {
    const double magnitude = std::fabs(bar.value);
    const bool clipped = magnitude > clip;
    const double shown = std::min(magnitude, clip);
    const usize width =
        static_cast<usize>(std::llround(shown / clip * static_cast<double>(options.max_bar_width)));

    std::string line = pad_left(bar.label, label_width) + " │";
    std::string bar_glyphs(width, '#');
    if (clipped || bar.truncated) bar_glyphs += "~~";
    const Style style = bar.uncertain ? Style::kDim : Style::kNone;
    line += styled(bar_glyphs, style);
    if (options.show_values) {
      line += " " + styled(si_scaled(bar.value), style);
      if (bar.uncertain) line += " (uncertain)";
      if (clipped || bar.truncated) line += " (truncated)";
    }
    if (!bar.annotation.empty()) line += "  ← " + styled(bar.annotation, Style::kCyan);
    out += line + "\n";
  }
  if (!options.footnote.empty()) out += styled(options.footnote, Style::kDim) + "\n";
  return out;
}

}  // namespace npat::util
