// Fundamental fixed-width aliases used across the toolkit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace npat {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Simulated clock cycles.
using Cycles = u64;
/// Simulated virtual address.
using VirtAddr = u64;
/// Simulated physical address.
using PhysAddr = u64;

inline constexpr usize kCacheLineBytes = 64;
inline constexpr usize kPageBytes = 4096;

constexpr u64 cache_line_of(u64 addr) noexcept { return addr / kCacheLineBytes; }
constexpr u64 page_of(u64 addr) noexcept { return addr / kPageBytes; }

constexpr u64 KiB(u64 n) noexcept { return n << 10; }
constexpr u64 MiB(u64 n) noexcept { return n << 20; }
constexpr u64 GiB(u64 n) noexcept { return n << 30; }

}  // namespace npat
