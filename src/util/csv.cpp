#include "util/csv.hpp"

#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::util {

CsvWriter::CsvWriter(std::vector<std::string> header) : columns_(header.size()) {
  NPAT_CHECK_MSG(columns_ > 0, "CSV needs at least one column");
  for (usize i = 0; i < header.size(); ++i) append_field(header[i], i + 1 == header.size());
}

void CsvWriter::append_field(const std::string& field, bool last) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (needs_quotes) {
    buffer_ += '"';
    for (char c : field) {
      if (c == '"') buffer_ += '"';
      buffer_ += c;
    }
    buffer_ += '"';
  } else {
    buffer_ += field;
  }
  buffer_ += last ? '\n' : ',';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  NPAT_CHECK_MSG(cells.size() == columns_, "CSV row width mismatch");
  for (usize i = 0; i < cells.size(); ++i) append_field(cells[i], i + 1 == cells.size());
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(compact_double(v, 9));
  add_row(text);
}

}  // namespace npat::util
