// String formatting helpers used by the report/table renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace npat::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> split(std::string_view text, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string trim(std::string_view text);
std::string to_lower(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool contains_ci(std::string_view haystack, std::string_view needle);

/// 1234567 -> "1,234,567".
std::string with_thousands(u64 value);
std::string with_thousands(i64 value);

/// 1234567 -> "1.23 M"; 950 -> "950".
std::string si_scaled(double value, int precision = 2);

/// 0.123 -> "+12.3 %" (signed percentage delta).
std::string percent_delta(double ratio, int precision = 1);

/// 1536 bytes -> "1.5 KiB".
std::string human_bytes(u64 bytes);

/// Fixed-point double, trimming trailing zeros: 1.500 -> "1.5".
std::string compact_double(double value, int max_precision = 4);

/// Left/right/center padding to a given display width.
std::string pad_left(std::string_view text, usize width);
std::string pad_right(std::string_view text, usize width);
std::string pad_center(std::string_view text, usize width);

/// Display width of a UTF-8 string, counting code points (good enough for
/// the box-drawing and Latin-1 glyphs we emit).
usize display_width(std::string_view text);

}  // namespace npat::util
