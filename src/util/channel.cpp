#include "util/channel.hpp"

namespace npat::util {

namespace {

/// Shared duplex state: two directed byte queues.
struct LoopbackState {
  std::deque<u8> a_to_b;
  std::deque<u8> b_to_a;
  bool a_closed = false;
  bool b_closed = false;
};

class LoopbackEndpoint : public ByteChannel {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackState> state, bool is_a)
      : state_(std::move(state)), is_a_(is_a) {}

  bool send(const std::vector<u8>& data) override {
    if (my_closed() || peer_closed()) return false;
    auto& queue = is_a_ ? state_->a_to_b : state_->b_to_a;
    queue.insert(queue.end(), data.begin(), data.end());
    return true;
  }

  std::vector<u8> recv(usize max_bytes) override {
    auto& queue = is_a_ ? state_->b_to_a : state_->a_to_b;
    const usize n = std::min(max_bytes, queue.size());
    std::vector<u8> out(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(n));
    queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(n));
    return out;
  }

  void close() override { (is_a_ ? state_->a_closed : state_->b_closed) = true; }

  // Either half-close ends the conversation: sends already fail when the
  // peer closed, and a reader whose peer closed will never see new data.
  bool closed() const override { return my_closed() || peer_closed(); }

 private:
  bool my_closed() const { return is_a_ ? state_->a_closed : state_->b_closed; }
  bool peer_closed() const { return is_a_ ? state_->b_closed : state_->a_closed; }

  std::shared_ptr<LoopbackState> state_;
  bool is_a_;
};

}  // namespace

ChannelPair make_loopback_pair() {
  auto state = std::make_shared<LoopbackState>();
  return ChannelPair{std::make_shared<LoopbackEndpoint>(state, true),
                     std::make_shared<LoopbackEndpoint>(state, false)};
}

bool FaultyChannel::send(const std::vector<u8>& data) {
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    ++dropped_;
    return true;  // silently lost in transit
  }
  std::vector<u8> payload = data;
  if (config_.truncate_to > 0 && payload.size() > config_.truncate_to) {
    payload.resize(config_.truncate_to);
  }
  if (!payload.empty() && config_.corrupt_probability > 0.0 &&
      rng_.chance(config_.corrupt_probability)) {
    payload[rng_.below(payload.size())] ^= 0xFF;
    ++corrupted_;
  }
  return inner_->send(payload);
}

}  // namespace npat::util
