#include "util/channel.hpp"

#include <mutex>

namespace npat::util {

namespace {

/// Shared duplex state: two directed byte queues. The mutex makes a
/// loopback pair safe to use from two threads (a probe thread sending
/// while a sharded collector's decode worker drains the other end) — the
/// socket it stands in for would be. Single-threaded users pay one
/// uncontended lock per call.
struct LoopbackState {
  std::mutex mutex;
  std::deque<u8> a_to_b;
  std::deque<u8> b_to_a;
  bool a_closed = false;
  bool b_closed = false;
};

class LoopbackEndpoint : public ByteChannel {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackState> state, bool is_a)
      : state_(std::move(state)), is_a_(is_a) {}

  bool send(const std::vector<u8>& data) override {
    std::lock_guard lock(state_->mutex);
    if (my_closed() || peer_closed()) return false;
    auto& queue = is_a_ ? state_->a_to_b : state_->b_to_a;
    queue.insert(queue.end(), data.begin(), data.end());
    return true;
  }

  std::vector<u8> recv(usize max_bytes) override {
    std::lock_guard lock(state_->mutex);
    auto& queue = is_a_ ? state_->b_to_a : state_->a_to_b;
    const usize n = std::min(max_bytes, queue.size());
    std::vector<u8> out(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(n));
    queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(n));
    return out;
  }

  void close() override {
    std::lock_guard lock(state_->mutex);
    (is_a_ ? state_->a_closed : state_->b_closed) = true;
  }

  // Either half-close ends the conversation: sends already fail when the
  // peer closed, and a reader whose peer closed will never see new data.
  bool closed() const override {
    std::lock_guard lock(state_->mutex);
    return my_closed() || peer_closed();
  }

 private:
  bool my_closed() const { return is_a_ ? state_->a_closed : state_->b_closed; }
  bool peer_closed() const { return is_a_ ? state_->b_closed : state_->a_closed; }

  std::shared_ptr<LoopbackState> state_;
  bool is_a_;
};

}  // namespace

ChannelPair make_loopback_pair() {
  auto state = std::make_shared<LoopbackState>();
  return ChannelPair{std::make_shared<LoopbackEndpoint>(state, true),
                     std::make_shared<LoopbackEndpoint>(state, false)};
}

bool FaultyChannel::send(const std::vector<u8>& data) {
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    ++dropped_;
    return true;  // silently lost in transit
  }
  std::vector<u8> payload = data;
  if (config_.truncate_to > 0 && payload.size() > config_.truncate_to) {
    payload.resize(config_.truncate_to);
    ++truncated_;
  }
  if (!payload.empty() && config_.corrupt_probability > 0.0 &&
      rng_.chance(config_.corrupt_probability)) {
    payload[rng_.below(payload.size())] ^= 0xFF;
    ++corrupted_;
  }
  return inner_->send(payload);
}

bool DisconnectingChannel::send(const std::vector<u8>& data) {
  if (closed()) return false;
  if (stalled_) {
    stall_queue_.push_back(data);
    ++stalled_sends_;
    return true;  // accepted; delivery is merely delayed
  }
  return forward(data);
}

usize DisconnectingChannel::release_stall() {
  stalled_ = false;
  usize flushed = 0;
  for (usize i = 0; i < stall_queue_.size(); ++i) {
    if (cut_) {
      // The cut fired mid-burst; everything behind it dies with the
      // connection. These frames were accepted earlier, so count them —
      // reconciliation must see the loss somewhere.
      stall_discards_ += stall_queue_.size() - i;
      break;
    }
    forward(stall_queue_[i]);
    ++flushed;
  }
  stall_queue_.clear();
  return flushed;
}

bool DisconnectingChannel::forward(const std::vector<u8>& data) {
  ++sends_seen_;
  if (config_.cut_after_sends > 0 && sends_seen_ >= config_.cut_after_sends && !cut_) {
    // The fatal send: a prefix escapes, then the connection is gone. The
    // send itself still reports success — like a write the kernel
    // accepted before the reset arrived — so the sender only learns of
    // the cut from closed() on its next pump.
    std::vector<u8> prefix = data;
    if (prefix.size() > config_.cut_delivery_bytes) prefix.resize(config_.cut_delivery_bytes);
    if (!prefix.empty()) inner_->send(prefix);
    cut_ = true;
    ++cut_frames_;
    inner_->close();
    return true;
  }
  return inner_->send(data);
}

}  // namespace npat::util
