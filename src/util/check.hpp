// Lightweight precondition checking. Violations throw npat::CheckError so
// tests can assert on misuse; simulation hot loops use NPAT_DCHECK which
// compiles out in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace npat {

class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw CheckError(std::string(file) + ":" + std::to_string(line) + ": check failed: " + expr +
                   (msg.empty() ? "" : " — " + msg));
}

}  // namespace npat

#define NPAT_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) ::npat::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NPAT_CHECK_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr)) ::npat::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define NPAT_DCHECK(expr) ((void)0)
#else
#define NPAT_DCHECK(expr) NPAT_CHECK(expr)
#endif
