// Byte-stream transports for Memhist's remote probing (paper Fig. 6: a
// headless probe on the server ships measurements to the GUI over TCP).
// In this offline reproduction the wire protocol runs over an in-memory
// loopback; the interface matches a blocking TCP socket so a real socket
// backend can be dropped in.
#pragma once

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace npat::util {

/// Blocking byte-stream endpoint (socket-like).
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Queues `data` for the peer. Returns false if the channel is closed.
  virtual bool send(const std::vector<u8>& data) = 0;

  /// Reads up to `max_bytes` of available data (at least 1 byte unless the
  /// channel is drained and closed). Returns an empty vector on EOF.
  virtual std::vector<u8> recv(usize max_bytes) = 0;

  /// Half-closes the write side; the peer sees EOF after draining.
  virtual void close() = 0;

  /// True once either side has half-closed: no data beyond what is already
  /// queued will ever arrive. Readers use this to tell end of stream from
  /// "no data yet" — once recv() returns empty while closed(), the stream
  /// is at EOF and any partially received frame is permanently truncated.
  virtual bool closed() const = 0;
};

/// A connected pair of in-memory endpoints (like socketpair(2)).
struct ChannelPair {
  std::shared_ptr<ByteChannel> a;
  std::shared_ptr<ByteChannel> b;
};

/// Creates a loopback connection; writes to `a` are read from `b` and
/// vice versa. Single-threaded semantics: recv never blocks, it returns
/// whatever is queued (the probe/collector loops are cooperative).
ChannelPair make_loopback_pair();

/// Decorator that injects faults for protocol robustness tests.
class FaultyChannel : public ByteChannel {
 public:
  struct Config {
    double drop_probability = 0.0;     // whole send() silently dropped
    double corrupt_probability = 0.0;  // one byte flipped per send()
    usize truncate_to = 0;             // 0 = no truncation, else max bytes/send
    u64 seed = 42;
  };

  FaultyChannel(std::shared_ptr<ByteChannel> inner, const Config& config)
      : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

  bool send(const std::vector<u8>& data) override;
  std::vector<u8> recv(usize max_bytes) override { return inner_->recv(max_bytes); }
  void close() override { inner_->close(); }
  bool closed() const override { return inner_->closed(); }

  usize dropped_sends() const { return dropped_; }
  usize corrupted_sends() const { return corrupted_; }

 private:
  std::shared_ptr<ByteChannel> inner_;
  Config config_;
  Xoshiro256ss rng_;
  usize dropped_ = 0;
  usize corrupted_ = 0;
};

}  // namespace npat::util
