// Byte-stream transports for Memhist's remote probing (paper Fig. 6: a
// headless probe on the server ships measurements to the GUI over TCP).
// In this offline reproduction the wire protocol runs over an in-memory
// loopback; the interface matches a blocking TCP socket so a real socket
// backend can be dropped in.
#pragma once

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace npat::util {

/// Blocking byte-stream endpoint (socket-like).
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Queues `data` for the peer. Returns false if the channel is closed.
  virtual bool send(const std::vector<u8>& data) = 0;

  /// Reads up to `max_bytes` of available data (at least 1 byte unless the
  /// channel is drained and closed). Returns an empty vector on EOF.
  virtual std::vector<u8> recv(usize max_bytes) = 0;

  /// Half-closes the write side; the peer sees EOF after draining.
  virtual void close() = 0;

  /// True once either side has half-closed: no data beyond what is already
  /// queued will ever arrive. Readers use this to tell end of stream from
  /// "no data yet" — once recv() returns empty while closed(), the stream
  /// is at EOF and any partially received frame is permanently truncated.
  virtual bool closed() const = 0;
};

/// A connected pair of in-memory endpoints (like socketpair(2)).
struct ChannelPair {
  std::shared_ptr<ByteChannel> a;
  std::shared_ptr<ByteChannel> b;
};

/// Creates a loopback connection; writes to `a` are read from `b` and
/// vice versa. Single-threaded semantics: recv never blocks, it returns
/// whatever is queued (the probe/collector loops are cooperative).
ChannelPair make_loopback_pair();

/// Decorator that tallies traffic without touching it. Benchmarks use it
/// to gate wire-byte overhead (e.g. the cost of emit-stamp annotations)
/// and tests use it to assert exactly what hit the wire.
class CountingChannel : public ByteChannel {
 public:
  explicit CountingChannel(std::shared_ptr<ByteChannel> inner) : inner_(std::move(inner)) {}

  bool send(const std::vector<u8>& data) override {
    const bool ok = inner_->send(data);
    if (ok) {
      ++sends_;
      bytes_sent_ += data.size();
    }
    return ok;
  }
  std::vector<u8> recv(usize max_bytes) override {
    std::vector<u8> data = inner_->recv(max_bytes);
    bytes_received_ += data.size();
    return data;
  }
  void close() override { inner_->close(); }
  bool closed() const override { return inner_->closed(); }

  usize sends() const noexcept { return sends_; }
  usize bytes_sent() const noexcept { return bytes_sent_; }
  usize bytes_received() const noexcept { return bytes_received_; }

 private:
  std::shared_ptr<ByteChannel> inner_;
  usize sends_ = 0;
  usize bytes_sent_ = 0;
  usize bytes_received_ = 0;
};

/// Decorator that injects faults for protocol robustness tests.
class FaultyChannel : public ByteChannel {
 public:
  struct Config {
    double drop_probability = 0.0;     // whole send() silently dropped
    double corrupt_probability = 0.0;  // one byte flipped per send()
    usize truncate_to = 0;             // 0 = no truncation, else max bytes/send
    u64 seed = 42;
  };

  FaultyChannel(std::shared_ptr<ByteChannel> inner, const Config& config)
      : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

  bool send(const std::vector<u8>& data) override;
  std::vector<u8> recv(usize max_bytes) override { return inner_->recv(max_bytes); }
  void close() override { inner_->close(); }
  bool closed() const override { return inner_->closed(); }

  usize dropped_sends() const { return dropped_; }
  usize corrupted_sends() const { return corrupted_; }
  usize truncated_sends() const { return truncated_; }

 private:
  std::shared_ptr<ByteChannel> inner_;
  Config config_;
  Xoshiro256ss rng_;
  usize dropped_ = 0;
  usize corrupted_ = 0;
  usize truncated_ = 0;
};

/// Decorator that simulates an unreliable *connection* rather than a
/// noisy wire: after a configured number of accepted sends the link cuts
/// mid-frame — the fatal send is delivered only up to a prefix, the rest
/// vanishes, and the channel reports closed() from then on, like a TCP
/// reset mid-write. It can also stall: while stalled, accepted sends are
/// buffered and release_stall() flushes them to the peer in their
/// original order as one burst (delivery is delayed, never reordered).
class DisconnectingChannel : public ByteChannel {
 public:
  struct Config {
    /// The Nth accepted send is the fatal one (0 = never cut).
    usize cut_after_sends = 0;
    /// Bytes of the fatal send that still reach the peer before the cut.
    usize cut_delivery_bytes = 0;
  };

  DisconnectingChannel(std::shared_ptr<ByteChannel> inner, const Config& config)
      : inner_(std::move(inner)), config_(config) {}

  bool send(const std::vector<u8>& data) override;
  std::vector<u8> recv(usize max_bytes) override { return inner_->recv(max_bytes); }
  void close() override { inner_->close(); }
  bool closed() const override { return cut_ || inner_->closed(); }

  /// Starts buffering accepted sends instead of delivering them.
  void stall() { stalled_ = true; }
  /// Flushes the stalled burst in order; returns sends actually delivered.
  /// A cut scheduled to land inside the burst fires mid-flush; the
  /// remainder of the burst is discarded (and counted).
  usize release_stall();

  bool cut() const noexcept { return cut_; }
  usize sends_seen() const noexcept { return sends_seen_; }
  /// Frames damaged by the cut itself: 1 once the cut fired, else 0.
  usize cut_frames() const noexcept { return cut_frames_; }
  usize stalled_sends() const noexcept { return stalled_sends_; }
  /// Stalled frames discarded because the cut fired mid-burst.
  usize stall_discards() const noexcept { return stall_discards_; }

 private:
  bool forward(const std::vector<u8>& data);

  std::shared_ptr<ByteChannel> inner_;
  Config config_;
  bool cut_ = false;
  bool stalled_ = false;
  std::vector<std::vector<u8>> stall_queue_;
  usize sends_seen_ = 0;
  usize cut_frames_ = 0;
  usize stalled_sends_ = 0;
  usize stall_discards_ = 0;
};

}  // namespace npat::util
