#include "util/random.hpp"

#include <cmath>

#include "util/check.hpp"

namespace npat::util {

u64 splitmix64(u64& state) noexcept {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Xoshiro256ss::reseed(u64 seed) noexcept {
  u64 sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zeros from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  has_cached_normal_ = false;
}

u64 Xoshiro256ss::below(u64 n) noexcept {
  NPAT_DCHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const u64 threshold = (0 - n) % n;
  for (;;) {
    const u64 r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Xoshiro256ss::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Xoshiro256ss::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Xoshiro256ss::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia–Tsang §6).
    const double g = gamma(shape + 1.0, scale);
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

}  // namespace npat::util
