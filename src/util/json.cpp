#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace npat::util {

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing JSON key: " + key);
  return it->second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string Json::get_string(const std::string& key, const std::string& fallback) const {
  const Json* v = find(key);
  return (v && v->is_string()) ? v->as_string() : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return (v && v->is_number()) ? v->as_number() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return (v && v->is_bool()) ? v->as_bool() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) + ": " + message);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_char(char expected) {
    if (!consume(expected)) fail(std::string("expected '") + expected + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_keyword("true"); return Json(true);
      case 'f': expect_keyword("false"); return Json(false);
      case 'n': expect_keyword("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  void expect_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) fail("invalid literal");
    pos_ += keyword.size();
  }

  Json parse_object() {
    expect_char('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect_char(':');
      skip_ws();
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      expect_char('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect_char('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect_char(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect_char('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  std::string parse_unicode_escape() {
    u32 code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<u32>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<u32>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<u32>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    // Encode the BMP code point as UTF-8.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const usize start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      usize consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size()) throw std::invalid_argument(token);
      return Json(value);
    } catch (const std::exception&) {
      fail("invalid number: " + token);
    }
  }

  std::string_view text_;
  usize pos_ = 0;
};

void escape_string(std::string& out, const std::string& in) {
  out += '"';
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) && std::fabs(value) < 1e15) {
    out += std::to_string(static_cast<i64>(value));
  } else if (std::isfinite(value)) {
    out += format("%.17g", value);
  } else {
    out += "null";  // JSON has no NaN/Inf; degrade gracefully.
  }
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<usize>(indent * (depth + 1)), ' ') : "";
  const std::string pad_close = indent > 0 ? std::string(static_cast<usize>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, as_number());
  } else if (is_string()) {
    escape_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (usize i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_to(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    usize i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      escape_string(out, key);
      out += colon;
      value.dump_to(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw JsonError("cannot write file: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

}  // namespace npat::util
