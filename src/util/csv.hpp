// CSV writer for exporting measurement series (EvSel sweeps, Memhist bins,
// Phasenprüfer footprints) to external plotting tools.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace npat::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  usize columns() const noexcept { return columns_; }

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& cells);

  /// RFC-4180 output (quotes fields containing separators/quotes/newlines).
  std::string str() const { return buffer_; }

 private:
  void append_field(const std::string& field, bool last);

  usize columns_;
  std::string buffer_;
};

}  // namespace npat::util
