// Bounded single-producer/single-consumer ring for cross-thread handoff.
// One decode worker pushes finished batches, one merge thread pops them;
// head/tail are monotonic u64 indices so full/empty tests are simple
// subtractions and the slot array never needs a sentinel. The release
// store on publish and the acquire load on consume give the merge thread
// a happens-before edge over *everything* the worker wrote before the
// push — the fleet collector leans on that to read worker-owned probe
// state lock-free after popping the probe's batch.
//
// Backpressure policy: push() blocks (spin + yield) while the ring is
// full, so a slow consumer throttles its producer instead of growing an
// unbounded queue; pop() symmetrically blocks while empty. Callers that
// must not block use try_push()/try_pop().
#pragma once

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace npat::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(usize capacity) : slots_(capacity) {
    NPAT_CHECK_MSG(capacity > 0, "SPSC ring needs a nonzero capacity");
  }

  usize capacity() const noexcept { return slots_.size(); }

  /// Occupancy snapshot; exact only from the producer or consumer thread.
  usize size() const noexcept {
    const u64 tail = tail_.load(std::memory_order_acquire);
    const u64 head = head_.load(std::memory_order_acquire);
    return tail > head ? static_cast<usize>(tail - head) : 0;
  }

  /// Producer side. Returns false (value untouched) when full.
  bool try_push(T&& value) {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) return false;
    slots_[static_cast<usize>(tail % slots_.size())] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side; blocks (spin + yield) while the ring is full.
  void push(T value) {
    while (!try_push(std::move(value))) std::this_thread::yield();
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const u64 head = head_.load(std::memory_order_relaxed);
    if (head >= tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[static_cast<usize>(head % slots_.size())]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side; blocks (spin + yield) while the ring is empty.
  T pop() {
    T out;
    while (!try_pop(out)) std::this_thread::yield();
    return out;
  }

 private:
  std::vector<T> slots_;
  std::atomic<u64> head_{0};  // next index to pop
  std::atomic<u64> tail_{0};  // next index to push
};

}  // namespace npat::util
