#include "util/cli.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace npat::util {

Cli::Cli(std::string program_description) : description_(std::move(program_description)) {}

void Cli::add_flag(const std::string& name, std::string* target, const std::string& help) {
  flags_[name] = Flag{help, *target, [target](const std::string& v) { *target = v; }, false};
}

void Cli::add_flag(const std::string& name, i64* target, const std::string& help) {
  flags_[name] = Flag{help, std::to_string(*target),
                      [target, name](const std::string& v) {
                        try {
                          usize used = 0;
                          *target = std::stoll(v, &used);
                          if (used != v.size()) throw std::invalid_argument(v);
                        } catch (const std::exception&) {
                          throw CliError("--" + name + " expects an integer, got '" + v + "'");
                        }
                      },
                      false};
}

void Cli::add_flag(const std::string& name, double* target, const std::string& help) {
  flags_[name] = Flag{help, compact_double(*target),
                      [target, name](const std::string& v) {
                        try {
                          usize used = 0;
                          *target = std::stod(v, &used);
                          if (used != v.size()) throw std::invalid_argument(v);
                        } catch (const std::exception&) {
                          throw CliError("--" + name + " expects a number, got '" + v + "'");
                        }
                      },
                      false};
}

void Cli::add_flag(const std::string& name, bool* target, const std::string& help) {
  flags_[name] = Flag{help, *target ? "true" : "false",
                      [target, name](const std::string& v) {
                        if (v == "true" || v == "1" || v.empty()) {
                          *target = true;
                        } else if (v == "false" || v == "0") {
                          *target = false;
                        } else {
                          throw CliError("--" + name + " expects true/false, got '" + v + "'");
                        }
                      },
                      true};
}

bool Cli::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) throw CliError("unknown flag: --" + name);
    if (!has_value && !it->second.is_bool) {
      if (i + 1 >= argc) throw CliError("--" + name + " requires a value");
      value = argv[++i];
    }
    it->second.setter(value);
  }
  return true;
}

std::optional<int> Cli::parse_main(int argc, const char* const* argv) {
  try {
    if (!parse(argc, argv)) return 0;
  } catch (const CliError& error) {
    std::fprintf(stderr, "%s: %s\n", program_name_.c_str(), error.what());
    std::fprintf(stderr, "Try '%s --help' for the flag list.\n", program_name_.c_str());
    return 2;
  }
  return std::nullopt;
}

std::string Cli::help_text() const {
  std::string out = description_ + "\n\nUsage: " + program_name_ + " [flags]\n\nFlags:\n";
  usize width = 0;
  for (const auto& [name, flag] : flags_) width = std::max(width, name.size());
  for (const auto& [name, flag] : flags_) {
    out += "  --" + pad_right(name, width) + "  " + flag.help + " (default: " +
           flag.default_value + ")\n";
  }
  out += "  --" + pad_right("help", width) + "  show this message\n";
  return out;
}

}  // namespace npat::util
