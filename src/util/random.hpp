// Deterministic random number generation for simulation and workloads.
//
// Two generators are provided:
//  * Xoshiro256ss — the toolkit's general-purpose engine (fast, 256-bit
//    state, passes BigCrush); used by the simulator for latency jitter,
//    sampling decisions and workload randomization.
//  * BsdLcg — the BSD linear congruential engine from the paper's parallel
//    sort micro-benchmark (Listing 3): "a multiply–add ignoring overflows".
#pragma once

#include <array>
#include <limits>

#include "util/types.hpp"

namespace npat::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256ss {
 public:
  using result_type = u64;

  explicit Xoshiro256ss(u64 seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initializes the state from a single seed via SplitMix64.
  void reseed(u64 seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<u64>::max(); }

  result_type operator()() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  u64 below(u64 n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) noexcept { return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1))); }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal deviate (Box–Muller, cached pair).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double sd) noexcept { return mean + sd * normal(); }

  /// Exponential deviate with the given rate.
  double exponential(double rate) noexcept;

  /// Gamma deviate (Marsaglia–Tsang) with shape k > 0 and scale theta.
  double gamma(double shape, double scale) noexcept;

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// The BSD linear congruential engine used verbatim in the paper's
/// Listing 3: x' = x * 1103515245 + 12345 (mod 2^32).
class BsdLcg {
 public:
  using result_type = u32;

  explicit BsdLcg(u32 seed = 1337) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<u32>::max(); }

  result_type operator()() noexcept {
    state_ = state_ * 1103515245u + 12345u;
    return state_;
  }

  u32 state() const noexcept { return state_; }

 private:
  u32 state_;
};

/// SplitMix64 step, exposed for seeding sub-generators deterministically.
u64 splitmix64(u64& state) noexcept;

}  // namespace npat::util
