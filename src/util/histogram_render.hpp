// ASCII histogram renderer used by Memhist. Reproduces the information of
// the paper's Fig. 10 screenshots: labelled latency intervals, bar heights,
// truncation of dominating bins ("L2 results truncated"), and grey/uncertain
// bins ("grey values: uncertain sampling").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/ansi.hpp"
#include "util/types.hpp"

namespace npat::util {

struct HistogramBar {
  std::string label;          // e.g. "[32, 64)"
  double value = 0.0;         // occurrences or cost
  bool uncertain = false;     // negative/unstable sampling -> rendered dim
  bool truncated = false;     // bar clipped for readability
  std::string annotation;     // e.g. "L2", "local memory"
};

struct HistogramRenderOptions {
  usize max_bar_width = 60;
  /// Bars above this fraction of the max are clipped and marked truncated
  /// (mirrors the paper truncating the L2 peak to half height). 0 disables.
  double truncate_above_fraction = 0.0;
  bool show_values = true;
  std::string title;
  std::string footnote;
};

/// Renders a horizontal bar chart; values may be zero but not NaN.
std::string render_histogram(const std::vector<HistogramBar>& bars,
                             const HistogramRenderOptions& options);

}  // namespace npat::util
