#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace npat::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<usize>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  usize start = 0;
  for (usize i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (usize i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  usize begin = 0;
  usize end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = to_lower(haystack);
  const std::string n = to_lower(needle);
  return h.find(n) != std::string::npos;
}

std::string with_thousands(u64 value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const usize first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (usize i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - first) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string with_thousands(i64 value) {
  if (value < 0) return "-" + with_thousands(static_cast<u64>(-value));
  return with_thousands(static_cast<u64>(value));
}

std::string si_scaled(double value, int precision) {
  const double mag = std::fabs(value);
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr Scale kScales[] = {
      {1e12, " T"}, {1e9, " G"}, {1e6, " M"}, {1e3, " k"}};
  for (const auto& s : kScales) {
    if (mag >= s.factor) {
      return compact_double(value / s.factor, precision) + s.suffix;
    }
  }
  return compact_double(value, precision);
}

std::string percent_delta(double ratio, int precision) {
  const double pct = ratio * 100.0;
  return format("%+.*f %%", precision, pct);
}

std::string human_bytes(u64 bytes) {
  struct Scale {
    u64 factor;
    const char* suffix;
  };
  static constexpr Scale kScales[] = {
      {1ULL << 40, "TiB"}, {1ULL << 30, "GiB"}, {1ULL << 20, "MiB"}, {1ULL << 10, "KiB"}};
  for (const auto& s : kScales) {
    if (bytes >= s.factor) {
      return compact_double(static_cast<double>(bytes) / static_cast<double>(s.factor), 1) + " " +
             s.suffix;
    }
  }
  return std::to_string(bytes) + " B";
}

std::string compact_double(double value, int max_precision) {
  std::string out = format("%.*f", max_precision, value);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

usize display_width(std::string_view text) {
  usize width = 0;
  for (char c : text) {
    // Count UTF-8 lead bytes only (continuation bytes are 10xxxxxx).
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++width;
  }
  return width;
}

std::string pad_left(std::string_view text, usize width) {
  const usize w = display_width(text);
  if (w >= width) return std::string(text);
  return std::string(width - w, ' ') + std::string(text);
}

std::string pad_right(std::string_view text, usize width) {
  const usize w = display_width(text);
  if (w >= width) return std::string(text);
  return std::string(text) + std::string(width - w, ' ');
}

std::string pad_center(std::string_view text, usize width) {
  const usize w = display_width(text);
  if (w >= width) return std::string(text);
  const usize left = (width - w) / 2;
  const usize right = width - w - left;
  return std::string(left, ' ') + std::string(text) + std::string(right, ' ');
}

}  // namespace npat::util
