// ANSI terminal styling. The paper's tools use GUI colour cues (grayed-out
// zero counters, colour-coded correlations, significance icons); the
// terminal renderers reproduce these cues with ANSI SGR codes. Styling is
// globally switchable so tests and piped output stay plain.
#pragma once

#include <string>
#include <string_view>

namespace npat::util {

enum class Style {
  kNone,
  kBold,
  kDim,       // grayed-out (counters that stayed zero)
  kRed,       // regressions / significant increases
  kGreen,     // improvements / significant decreases
  kYellow,    // warnings (uncertain sampling)
  kBlue,
  kMagenta,
  kCyan,
};

/// Process-wide switch; off by default so output is byte-stable in tests.
void set_ansi_enabled(bool enabled);
bool ansi_enabled();

/// Wraps `text` in the SGR sequence for `style` when enabled.
std::string styled(std::string_view text, Style style);

/// RAII guard for tests that flip the global switch.
class AnsiGuard {
 public:
  explicit AnsiGuard(bool enabled) : previous_(ansi_enabled()) { set_ansi_enabled(enabled); }
  ~AnsiGuard() { set_ansi_enabled(previous_); }
  AnsiGuard(const AnsiGuard&) = delete;
  AnsiGuard& operator=(const AnsiGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace npat::util
