// Tiny declarative command-line flag parser for the examples and bench
// binaries ("--threads=8", "--mode occurrences", "--help").
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace npat::util {

class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Registers flags; `name` is used as "--name". Defaults are shown in help.
  void add_flag(const std::string& name, std::string* target, const std::string& help);
  void add_flag(const std::string& name, i64* target, const std::string& help);
  void add_flag(const std::string& name, double* target, const std::string& help);
  void add_flag(const std::string& name, bool* target, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help printed to
  /// stdout); throws CliError on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  /// Front door for main(): parses argv and decides the process's fate.
  ///  - flags parsed cleanly     -> nullopt (continue with the run)
  ///  - --help                   -> 0 (help already printed to stdout)
  ///  - unknown flag / bad value -> 2 (diagnostic printed to stderr)
  /// A typo'd flag must exit non-zero so CI scripts can tell it from a
  /// clean run. Usage: `if (auto rc = cli.parse_main(argc, argv)) return *rc;`
  std::optional<int> parse_main(int argc, const char* const* argv);

  std::string help_text() const;

  /// Positional arguments left over after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    std::function<void(const std::string&)> setter;
    bool is_bool = false;
  };

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string program_name_ = "program";
};

}  // namespace npat::util
