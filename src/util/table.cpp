#include "util/table.hpp"

#include <atomic>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::util {

namespace {
std::atomic<bool> g_ansi_enabled{false};

const char* sgr_code(Style style) {
  switch (style) {
    case Style::kNone: return "";
    case Style::kBold: return "\x1b[1m";
    case Style::kDim: return "\x1b[2m";
    case Style::kRed: return "\x1b[31m";
    case Style::kGreen: return "\x1b[32m";
    case Style::kYellow: return "\x1b[33m";
    case Style::kBlue: return "\x1b[34m";
    case Style::kMagenta: return "\x1b[35m";
    case Style::kCyan: return "\x1b[36m";
  }
  return "";
}
}  // namespace

void set_ansi_enabled(bool enabled) { g_ansi_enabled.store(enabled, std::memory_order_relaxed); }
bool ansi_enabled() { return g_ansi_enabled.load(std::memory_order_relaxed); }

std::string styled(std::string_view text, Style style) {
  if (!ansi_enabled() || style == Style::kNone) return std::string(text);
  return std::string(sgr_code(style)) + std::string(text) + "\x1b[0m";
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {
  NPAT_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::set_align(usize column, Align align) {
  NPAT_CHECK(column < aligns_.size());
  aligns_[column] = align;
}

void Table::add_styled_row(std::vector<Cell> cells) {
  NPAT_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
  rule_before_.push_back(pending_rule_);
  pending_rule_ = false;
}

void Table::add_row(const std::vector<std::string>& cells) {
  std::vector<Cell> styled_cells;
  styled_cells.reserve(cells.size());
  for (const auto& c : cells) styled_cells.push_back({c, Style::kNone});
  add_styled_row(std::move(styled_cells));
}

void Table::add_rule() {
  // Marks the next appended row; if no row follows, the marker is ignored.
  pending_rule_ = true;
}

namespace {
std::string aligned(const std::string& text, Align align, usize width) {
  switch (align) {
    case Align::kLeft: return pad_right(text, width);
    case Align::kRight: return pad_left(text, width);
    case Align::kCenter: return pad_center(text, width);
  }
  return text;
}
}  // namespace

std::string Table::render() const {
  std::vector<usize> widths(headers_.size(), 0);
  for (usize c = 0; c < headers_.size(); ++c) widths[c] = display_width(headers_[c]);
  for (const auto& row : rows_) {
    for (usize c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c].text));
    }
  }

  auto horizontal = [&](const char* left, const char* mid, const char* right) {
    std::string line(left);
    for (usize c = 0; c < widths.size(); ++c) {
      for (usize i = 0; i < widths[c] + 2; ++i) line += "─";
      line += (c + 1 == widths.size()) ? right : mid;
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) out += styled(title_, Style::kBold) + "\n";
  out += horizontal("┌", "┬", "┐");
  out += "│";
  for (usize c = 0; c < headers_.size(); ++c) {
    out += " " + styled(aligned(headers_[c], Align::kCenter, widths[c]), Style::kBold) + " │";
  }
  out += '\n';
  out += horizontal("├", "┼", "┤");
  for (usize r = 0; r < rows_.size(); ++r) {
    if (rule_before_[r] && r != 0) out += horizontal("├", "┼", "┤");
    out += "│";
    for (usize c = 0; c < rows_[r].size(); ++c) {
      out += " " + styled(aligned(rows_[r][c].text, aligns_[c], widths[c]), rows_[r][c].style) +
             " │";
    }
    out += '\n';
  }
  out += horizontal("└", "┴", "┘");
  return out;
}

}  // namespace npat::util
