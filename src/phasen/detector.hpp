// Phasenprüfer's phase detection (paper §IV-C): the memory footprint time
// series is split into ramp-up and computation phases with segmented linear
// regression — every sample is a pivot candidate, two least-squares lines
// are fitted, and the minimal summed error wins. The k-phase extension
// (BSP supersteps) and an automatic model selector implement the paper's
// outlook. Counter-based detection is also provided *because the paper
// reports it failed* — the ablation bench shows why.
#pragma once

#include <optional>
#include <vector>

#include "os/procfs.hpp"
#include "stats/segmented.hpp"

namespace npat::phasen {

struct Phase {
  usize first_sample = 0;
  usize last_sample = 0;   // inclusive
  Cycles start_time = 0;
  Cycles end_time = 0;
  double slope_bytes_per_cycle = 0.0;
};

struct PhaseSplit {
  std::vector<Phase> phases;
  Cycles pivot_time = 0;   // transition between phase 0 and 1
  usize pivot_sample = 0;
  double total_sse = 0.0;
  /// 1 − SSE/SStot of the segmented fit: how well two lines explain the
  /// trace (low values mean the two-phase assumption is dubious).
  double fit_quality = 0.0;
};

struct DetectorOptions {
  usize min_segment = 4;
  /// Use the literal per-pivot refit from the paper instead of the O(n)
  /// scan (identical result; kept for the ablation bench).
  bool naive_scan = false;
};

/// Two-phase split of a footprint trace (>= 2*min_segment samples).
PhaseSplit detect_phases(const std::vector<os::FootprintSample>& samples,
                         const DetectorOptions& options = {});

/// k-phase extension (paper outlook: BSP supersteps).
PhaseSplit detect_phases_k(const std::vector<os::FootprintSample>& samples, usize k,
                           const DetectorOptions& options = {});

/// Automatic k selection via the BIC-style criterion in stats::segmented.
PhaseSplit detect_phases_auto(const std::vector<os::FootprintSample>& samples, usize max_k = 4,
                              const DetectorOptions& options = {});

/// The approach the paper reports as *failed*: detection on a raw counter
/// series instead of the footprint. Returned split carries the (usually
/// poor) fit quality so callers can see the instability themselves.
PhaseSplit detect_on_counter_series(const std::vector<double>& times,
                                    const std::vector<double>& counter_values,
                                    const DetectorOptions& options = {});

}  // namespace npat::phasen
