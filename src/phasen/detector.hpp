// Phasenprüfer's phase detection (paper §IV-C): the memory footprint time
// series is split into ramp-up and computation phases with segmented linear
// regression — every sample is a pivot candidate, two least-squares lines
// are fitted, and the minimal summed error wins. The k-phase extension
// (BSP supersteps) and an automatic model selector implement the paper's
// outlook. Counter-based detection is also provided *because the paper
// reports it failed* — the ablation bench shows why.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "os/procfs.hpp"
#include "stats/segmented.hpp"

namespace npat::phasen {

/// Phases are half-open in time: phases[i].end_time == phases[i+1].start_time
/// (the last phase ends at the final sample), so adjacent phases partition
/// the run and attribution never drops the interval between two boundary
/// snapshots. Sample indices stay inclusive on both ends.
struct Phase {
  usize first_sample = 0;
  usize last_sample = 0;   // inclusive
  Cycles start_time = 0;
  Cycles end_time = 0;
  double slope_bytes_per_cycle = 0.0;
};

struct PhaseSplit {
  std::vector<Phase> phases;
  Cycles pivot_time = 0;   // transition between phase 0 and 1
  usize pivot_sample = 0;
  double total_sse = 0.0;
  /// 1 − SSE/SStot of the segmented fit: how well two lines explain the
  /// trace (low values mean the two-phase assumption is dubious).
  double fit_quality = 0.0;
};

struct DetectorOptions {
  usize min_segment = 4;
  /// Use the literal per-pivot refit from the paper instead of the O(n)
  /// scan (identical result; kept for the ablation bench).
  bool naive_scan = false;
};

/// Two-phase split of a footprint trace (>= 2*min_segment samples).
PhaseSplit detect_phases(const std::vector<os::FootprintSample>& samples,
                         const DetectorOptions& options = {});

/// k-phase extension (paper outlook: BSP supersteps).
PhaseSplit detect_phases_k(const std::vector<os::FootprintSample>& samples, usize k,
                           const DetectorOptions& options = {});

/// Automatic k selection via the BIC-style criterion in stats::segmented.
PhaseSplit detect_phases_auto(const std::vector<os::FootprintSample>& samples, usize max_k = 4,
                              const DetectorOptions& options = {});

/// The approach the paper reports as *failed*: detection on a raw counter
/// series instead of the footprint. Returned split carries the (usually
/// poor) fit quality so callers can see the instability themselves.
PhaseSplit detect_on_counter_series(const std::vector<double>& times,
                                    const std::vector<double>& counter_values,
                                    const DetectorOptions& options = {});

// --- shared between the offline detectors and phasen::OnlineDetector ------
//
// Both paths must condition the series identically, or the online replay of
// an offline fixture would not be bit-identical.

/// Fit abscissa for a footprint sample: mega-cycles since the first sample.
/// Raw cycle timestamps (~1e9+) fed straight into the prefix sums would
/// push sxx to ~1e18 where the centered moments cancel; the integer
/// subtraction is exact and the rescale keeps long captures well inside
/// double precision.
inline double fit_time_axis(Cycles timestamp, Cycles origin) noexcept {
  return static_cast<double>(timestamp - origin) * 1e-6;
}

/// Fit ordinate: footprint in MiB (keeps the normal-equation sums sane).
inline double fit_footprint_axis(u64 bytes) noexcept {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Converts a slope fitted on the conditioned axes (MiB per mega-cycle)
/// back to the Phase::slope_bytes_per_cycle unit (MiB per cycle).
inline constexpr double kFitSlopePerCycle = 1e-6;

/// Builds a PhaseSplit from a segmented fit over the conditioned axes.
/// `timestamps` are the raw sample times (phase boundaries come from
/// these); `values` are the conditioned ordinates the fit ran on (fit
/// quality is variance-explained over them). Phases come out half-open.
PhaseSplit split_from_fit(const stats::SegmentedFit& fit, std::span<const Cycles> timestamps,
                          std::span<const double> values,
                          double slope_scale = kFitSlopePerCycle);

}  // namespace npat::phasen
