#include "phasen/online.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace npat::phasen {

OnlineDetector::OnlineDetector(OnlineDetectorOptions options) : options_(options) {
  NPAT_CHECK_MSG(options_.min_segment >= 2, "min_segment must be >= 2");
  NPAT_CHECK_MSG(options_.rescan_every >= 1, "rescan_every must be >= 1");
  NPAT_CHECK_MSG(options_.publish_dwell >= 1, "publish_dwell must be >= 1");
  NPAT_CHECK_MSG(options_.publish_min_gain >= 0.0 && options_.publish_min_gain < 1.0,
                 "publish_min_gain must be in [0, 1)");
}

void OnlineDetector::push(Cycles timestamp, u64 footprint_bytes) {
  if (timestamps_.empty()) origin_ = timestamp;
  NPAT_CHECK_MSG(timestamps_.empty() || timestamp >= timestamps_.back(),
                 "footprint timestamps must be non-decreasing");
  timestamps_.push_back(timestamp);
  const double y = fit_footprint_axis(footprint_bytes);
  values_.push_back(y);
  scale_yy_ += y * y;
  cost_.append(fit_time_axis(timestamp, origin_), y);

  ++since_scan_;
  if (size() >= 2 * options_.min_segment && since_scan_ >= options_.rescan_every) {
    since_scan_ = 0;
    scan();
  }
}

void OnlineDetector::scan() {
  ++scans_;
  const stats::TwoPhaseScan result = stats::scan_two_phase_pivot(cost_, options_.min_segment);
  last_pivot_ = result.pivot;

  // Publication gate: the split must explain meaningfully more than one
  // line, by the same BIC criterion detect_phases_auto uses to pick k —
  // adaptive in n, so a short noisy prefix (where two free lines always
  // eat >5 % of the SSE by overfitting) cannot publish a boundary onto
  // pure noise. The noise floor keeps rounding residue of an exactly
  // linear series (SSE ~ 1e-13, not 0.0) from reading as relative gain,
  // and publish_min_gain backstops the asymptotic regime.
  const double single = cost_.sse(0, size());
  const double floor = 1e-9 * std::max(1.0, scale_yy_);
  double gain = 0.0;
  if (single > floor) {
    const double n = static_cast<double>(size());
    const double bic1 = n * std::log(std::max(single, 1e-12) / n) + 2.0 * std::log(n);
    const double bic2 =
        n * std::log(std::max(result.total_sse, 1e-12) / n) + 5.0 * std::log(n);
    if (bic2 < bic1) gain = 1.0 - result.total_sse / single;
  }
  if (gain < options_.publish_min_gain) {
    candidate_.reset();
    streak_ = 0;
    return;
  }

  // AlertEngine-style dwell: a *different* pivot must win publish_dwell
  // consecutive scans before the committed boundary changes.
  if (committed_ && *committed_ == result.pivot) {
    candidate_.reset();
    streak_ = 0;
    return;
  }
  if (candidate_ && *candidate_ == result.pivot) {
    ++streak_;
  } else {
    candidate_ = result.pivot;
    streak_ = 1;
  }
  if (streak_ < options_.publish_dwell) return;
  publish(result.pivot);
}

void OnlineDetector::publish(usize pivot) {
  PhaseTransitionEvent event;
  event.scan = scans_;
  event.sample_count = size();
  event.pivot_sample = pivot;
  event.pivot_time = timestamps_[pivot];
  event.republication = committed_.has_value();
  event.previous_pivot = committed_.value_or(0);
  committed_ = pivot;
  candidate_.reset();
  streak_ = 0;

  obs::metrics()
      .counter("npat_phasen_online_publications_total",
               "Online phase boundaries committed after dwell")
      .add(1);
  obs::metrics()
      .gauge("npat_phasen_online_pivot_sample", "Most recently published pivot sample index")
      .set(static_cast<double>(pivot));
  obs::tracer().instant(
      "phasen.online.boundary",
      util::format("pivot=%zu t=%llu n=%zu scan=%llu%s", pivot,
                   static_cast<unsigned long long>(event.pivot_time), event.sample_count,
                   static_cast<unsigned long long>(event.scan),
                   event.republication
                       ? util::format(" (moved from %zu)", event.previous_pivot).c_str()
                       : ""));
  events_.push_back(event);
}

usize OnlineDetector::published_pivot() const {
  NPAT_CHECK_MSG(committed_.has_value(), "no phase boundary published yet");
  return *committed_;
}

Cycles OnlineDetector::published_pivot_time() const { return timestamps_[published_pivot()]; }

PhaseSplit OnlineDetector::finalize() const {
  NPAT_OBS_SPAN("phasen.online.finalize");
  NPAT_CHECK_MSG(size() >= 2 * options_.min_segment,
                 "not enough footprint samples for two phases");
  const stats::TwoPhaseScan result = stats::scan_two_phase_pivot(cost_, options_.min_segment);
  stats::SegmentedFit fit;
  fit.segments = {cost_.fit(0, result.pivot), cost_.fit(result.pivot, size())};
  fit.total_sse = result.total_sse;
  fit.k_considered = 2;
  return split_from_fit(fit, timestamps_, values_);
}

}  // namespace npat::phasen
