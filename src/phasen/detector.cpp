#include "phasen/detector.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace npat::phasen {

namespace {

PhaseSplit from_segmented(const stats::SegmentedFit& fit, const std::vector<double>& times,
                          const std::vector<double>& values) {
  PhaseSplit split;
  split.total_sse = fit.total_sse;

  for (const auto& segment : fit.segments) {
    Phase phase;
    phase.first_sample = segment.begin;
    phase.last_sample = segment.end - 1;
    phase.start_time = static_cast<Cycles>(times[segment.begin]);
    phase.end_time = static_cast<Cycles>(times[segment.end - 1]);
    phase.slope_bytes_per_cycle = segment.slope;
    split.phases.push_back(phase);
  }
  if (fit.segments.size() > 1) {
    split.pivot_sample = fit.segments[1].begin;
    split.pivot_time = static_cast<Cycles>(times[split.pivot_sample]);
  }

  // Fit quality: variance explained by the segmented model.
  const double mean_y = stats::mean(values);
  double ss_tot = 0.0;
  for (double v : values) ss_tot += (v - mean_y) * (v - mean_y);
  split.fit_quality = ss_tot > 0.0 ? std::max(0.0, 1.0 - fit.total_sse / ss_tot) : 1.0;
  return split;
}

void extract_series(const std::vector<os::FootprintSample>& samples,
                    std::vector<double>& times, std::vector<double>& values) {
  times.reserve(samples.size());
  values.reserve(samples.size());
  for (const auto& s : samples) {
    times.push_back(static_cast<double>(s.timestamp));
    // Scale to MiB so the normal-equation sums stay in a sane range.
    values.push_back(static_cast<double>(s.reserved_bytes) / (1024.0 * 1024.0));
  }
}

}  // namespace

PhaseSplit detect_phases(const std::vector<os::FootprintSample>& samples,
                         const DetectorOptions& options) {
  NPAT_OBS_SPAN("phasen.pivot_scan");
  NPAT_CHECK_MSG(samples.size() >= 2 * options.min_segment,
                 "not enough footprint samples for two phases");
  std::vector<double> times;
  std::vector<double> values;
  extract_series(samples, times, values);
  const auto fit = options.naive_scan
                       ? stats::detect_two_phases_naive(times, values, options.min_segment)
                       : stats::detect_two_phases(times, values, options.min_segment);
  return from_segmented(fit, times, values);
}

PhaseSplit detect_phases_k(const std::vector<os::FootprintSample>& samples, usize k,
                           const DetectorOptions& options) {
  NPAT_OBS_SPAN("phasen.pivot_scan");
  NPAT_CHECK_MSG(samples.size() >= k * options.min_segment,
                 "not enough footprint samples for k phases");
  std::vector<double> times;
  std::vector<double> values;
  extract_series(samples, times, values);
  const auto fit = stats::detect_k_phases(times, values, k, options.min_segment);
  return from_segmented(fit, times, values);
}

PhaseSplit detect_phases_auto(const std::vector<os::FootprintSample>& samples, usize max_k,
                              const DetectorOptions& options) {
  NPAT_OBS_SPAN("phasen.pivot_scan");
  NPAT_CHECK_MSG(samples.size() >= options.min_segment, "not enough footprint samples");
  std::vector<double> times;
  std::vector<double> values;
  extract_series(samples, times, values);
  const auto fit = stats::detect_phases_auto(times, values, max_k, options.min_segment);
  return from_segmented(fit, times, values);
}

PhaseSplit detect_on_counter_series(const std::vector<double>& times,
                                    const std::vector<double>& counter_values,
                                    const DetectorOptions& options) {
  NPAT_CHECK_MSG(times.size() == counter_values.size(), "series length mismatch");
  NPAT_CHECK_MSG(times.size() >= 2 * options.min_segment, "not enough samples");
  const auto fit = stats::detect_two_phases(times, counter_values, options.min_segment);
  return from_segmented(fit, times, counter_values);
}

}  // namespace npat::phasen
