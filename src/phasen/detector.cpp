#include "phasen/detector.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace npat::phasen {

namespace {

/// Footprint series conditioned for fitting: raw timestamps for boundary
/// reporting, shifted/rescaled abscissa and MiB ordinate for the fit.
struct Series {
  std::vector<Cycles> timestamps;
  std::vector<double> x;
  std::vector<double> y;
};

Series extract_series(const std::vector<os::FootprintSample>& samples) {
  Series series;
  series.timestamps.reserve(samples.size());
  series.x.reserve(samples.size());
  series.y.reserve(samples.size());
  const Cycles origin = samples.empty() ? 0 : samples.front().timestamp;
  for (const auto& s : samples) {
    series.timestamps.push_back(s.timestamp);
    series.x.push_back(fit_time_axis(s.timestamp, origin));
    series.y.push_back(fit_footprint_axis(s.reserved_bytes));
  }
  return series;
}

}  // namespace

PhaseSplit split_from_fit(const stats::SegmentedFit& fit, std::span<const Cycles> timestamps,
                          std::span<const double> values, double slope_scale) {
  PhaseSplit split;
  split.total_sse = fit.total_sse;

  for (usize s = 0; s < fit.segments.size(); ++s) {
    const auto& segment = fit.segments[s];
    Phase phase;
    phase.first_sample = segment.begin;
    phase.last_sample = segment.end - 1;
    phase.start_time = timestamps[segment.begin];
    // Half-open phases: end where the successor starts, so the interval
    // between the two boundary samples belongs to exactly one phase.
    phase.end_time = s + 1 < fit.segments.size() ? timestamps[fit.segments[s + 1].begin]
                                                 : timestamps[segment.end - 1];
    phase.slope_bytes_per_cycle = segment.slope * slope_scale;
    split.phases.push_back(phase);
  }
  if (fit.segments.size() > 1) {
    split.pivot_sample = fit.segments[1].begin;
    split.pivot_time = timestamps[split.pivot_sample];
  }

  // Fit quality: variance explained by the segmented model.
  const double mean_y = stats::mean(values);
  double ss_tot = 0.0;
  for (double v : values) ss_tot += (v - mean_y) * (v - mean_y);
  split.fit_quality = ss_tot > 0.0 ? std::max(0.0, 1.0 - fit.total_sse / ss_tot) : 1.0;
  return split;
}

PhaseSplit detect_phases(const std::vector<os::FootprintSample>& samples,
                         const DetectorOptions& options) {
  NPAT_OBS_SPAN("phasen.pivot_scan");
  NPAT_CHECK_MSG(samples.size() >= 2 * options.min_segment,
                 "not enough footprint samples for two phases");
  const Series series = extract_series(samples);
  const auto fit = options.naive_scan
                       ? stats::detect_two_phases_naive(series.x, series.y, options.min_segment)
                       : stats::detect_two_phases(series.x, series.y, options.min_segment);
  return split_from_fit(fit, series.timestamps, series.y);
}

PhaseSplit detect_phases_k(const std::vector<os::FootprintSample>& samples, usize k,
                           const DetectorOptions& options) {
  NPAT_OBS_SPAN("phasen.pivot_scan");
  NPAT_CHECK_MSG(samples.size() >= k * options.min_segment,
                 "not enough footprint samples for k phases");
  const Series series = extract_series(samples);
  const auto fit = stats::detect_k_phases(series.x, series.y, k, options.min_segment);
  return split_from_fit(fit, series.timestamps, series.y);
}

PhaseSplit detect_phases_auto(const std::vector<os::FootprintSample>& samples, usize max_k,
                              const DetectorOptions& options) {
  NPAT_OBS_SPAN("phasen.pivot_scan");
  NPAT_CHECK_MSG(samples.size() >= options.min_segment, "not enough footprint samples");
  const Series series = extract_series(samples);
  const auto fit = stats::detect_phases_auto(series.x, series.y, max_k, options.min_segment);
  return split_from_fit(fit, series.timestamps, series.y);
}

PhaseSplit detect_on_counter_series(const std::vector<double>& times,
                                    const std::vector<double>& counter_values,
                                    const DetectorOptions& options) {
  NPAT_CHECK_MSG(times.size() == counter_values.size(), "series length mismatch");
  NPAT_CHECK_MSG(times.size() >= 2 * options.min_segment, "not enough samples");
  // Same origin shift as the footprint path (no rescale: the caller's time
  // unit is unknown); slopes stay in the caller's units.
  std::vector<Cycles> timestamps;
  std::vector<double> x;
  timestamps.reserve(times.size());
  x.reserve(times.size());
  for (double t : times) {
    timestamps.push_back(static_cast<Cycles>(t));
    x.push_back(t - times.front());
  }
  const auto fit = stats::detect_two_phases(x, counter_values, options.min_segment);
  return split_from_fit(fit, timestamps, counter_values, /*slope_scale=*/1.0);
}

}  // namespace npat::phasen
