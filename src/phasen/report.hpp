// Terminal rendering of Phasenprüfer results: the footprint curve with the
// detected phase split marked (paper Fig. 11's "phase split button"), and
// a per-phase counter table.
#pragma once

#include <string>
#include <vector>

#include "phasen/attribution.hpp"
#include "phasen/detector.hpp"

namespace npat::phasen {

struct ChartOptions {
  usize width = 72;
  usize height = 14;
};

/// ASCII chart of the footprint with '|' at phase transitions.
std::string render_footprint_chart(const std::vector<os::FootprintSample>& samples,
                                   const PhaseSplit& split, const ChartOptions& options = {});

/// Per-phase counter table; `highlight` restricts the rows (empty = events
/// whose rates differ most between the first two phases).
std::string render_phase_counters(const PhaseAttribution& attribution,
                                  std::vector<sim::Event> highlight = {}, usize max_rows = 12);

util::Json split_to_json(const PhaseSplit& split, const PhaseAttribution* attribution = nullptr);

}  // namespace npat::phasen
