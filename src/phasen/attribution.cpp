#include "phasen/attribution.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace npat::phasen {

double PhaseCounters::rate(sim::Event event) const {
  const Cycles span = end_time > start_time ? end_time - start_time : 1;
  return static_cast<double>(deltas[event]) * 1e6 / static_cast<double>(span);
}

namespace {

usize nearest_snapshot(const std::vector<CounterSnapshot>& snapshots, Cycles time) {
  usize best = 0;
  u64 best_distance = ~0ULL;
  for (usize i = 0; i < snapshots.size(); ++i) {
    const u64 distance = snapshots[i].timestamp > time ? snapshots[i].timestamp - time
                                                       : time - snapshots[i].timestamp;
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

sim::CounterBlock delta(const sim::CounterBlock& from, const sim::CounterBlock& to) {
  sim::CounterBlock out;
  for (usize i = 0; i < sim::kEventCount; ++i) {
    out.values[i] = to.values[i] - from.values[i];
  }
  return out;
}

}  // namespace

PhaseAttribution attribute(const CounterTimeline& timeline, const PhaseSplit& split) {
  const auto& snapshots = timeline.snapshots();
  NPAT_CHECK_MSG(snapshots.size() >= 2, "need at least two counter snapshots");
  NPAT_CHECK_MSG(!split.phases.empty(), "phase split has no phases");

  // Boundary snapshot indices: run start, each phase transition, run end.
  // Phase p owns the half-open snapshot range [boundaries[p],
  // boundaries[p+1]], so adjacent phases share a boundary snapshot and the
  // per-phase deltas telescope to exactly the whole-run delta.
  std::vector<usize> boundaries;
  boundaries.push_back(0);
  for (usize p = 1; p < split.phases.size(); ++p) {
    boundaries.push_back(nearest_snapshot(snapshots, split.phases[p].start_time));
  }
  boundaries.push_back(snapshots.size() - 1);
  // Nearest-snapshot rounding can invert adjacent boundaries when phase
  // starts straddle one snapshot; clamping to non-decreasing keeps phases
  // disjoint (an inverted phase collapses to empty instead of overlapping
  // its neighbour, which would double-count deltas).
  for (usize b = 1; b < boundaries.size(); ++b) {
    boundaries[b] = std::max(boundaries[b], boundaries[b - 1]);
  }

  PhaseAttribution out;
  for (usize p = 0; p + 1 < boundaries.size(); ++p) {
    const usize from = boundaries[p];
    const usize to = boundaries[p + 1];
    PhaseCounters counters;
    counters.start_time = snapshots[from].timestamp;
    counters.end_time = snapshots[to].timestamp;
    counters.deltas = delta(snapshots[from].totals, snapshots[to].totals);
    out.phases.push_back(std::move(counters));
  }
  return out;
}

}  // namespace npat::phasen
