// Per-phase counter attribution (paper §IV-C): "In order to attribute perf
// event measurements to different phases, Phasenprüfer records and analyzes
// performance counters for the two phases separately." A CounterTimeline
// snapshots the system-wide totals alongside the footprint samples; after
// phase detection the deltas between boundary snapshots attribute every
// event to its phase.
#pragma once

#include <vector>

#include "phasen/detector.hpp"
#include "sim/machine.hpp"

namespace npat::phasen {

struct CounterSnapshot {
  Cycles timestamp = 0;
  sim::CounterBlock totals;
};

class CounterTimeline {
 public:
  explicit CounterTimeline(const sim::Machine& machine) : machine_(&machine) {}

  /// Sampler callback; register with the runner at the footprint rate.
  void sample(Cycles now) {
    snapshots_.push_back(CounterSnapshot{now, machine_->aggregate_counters()});
  }

  const std::vector<CounterSnapshot>& snapshots() const noexcept { return snapshots_; }
  void clear() { snapshots_.clear(); }

 private:
  const sim::Machine* machine_;
  std::vector<CounterSnapshot> snapshots_;
};

struct PhaseCounters {
  Cycles start_time = 0;
  Cycles end_time = 0;
  sim::CounterBlock deltas;

  u64 count(sim::Event event) const { return deltas[event]; }
  /// Events per million cycles — rate-normalized for phase comparison.
  double rate(sim::Event event) const;
};

struct PhaseAttribution {
  std::vector<PhaseCounters> phases;  // one per detected phase
};

/// Splits the timeline at each phase boundary of `split` (nearest snapshot
/// wins) and returns per-phase counter deltas. Requires >= 2 snapshots.
PhaseAttribution attribute(const CounterTimeline& timeline, const PhaseSplit& split);

}  // namespace npat::phasen
