#include "phasen/report.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::phasen {

std::string render_footprint_chart(const std::vector<os::FootprintSample>& samples,
                                   const PhaseSplit& split, const ChartOptions& options) {
  NPAT_CHECK_MSG(!samples.empty(), "no footprint samples to chart");
  NPAT_CHECK_MSG(options.width >= 8 && options.height >= 4, "chart too small");

  const Cycles t0 = samples.front().timestamp;
  const Cycles t1 = std::max(samples.back().timestamp, t0 + 1);
  u64 max_bytes = 1;
  for (const auto& s : samples) max_bytes = std::max(max_bytes, s.reserved_bytes);

  // Map samples onto a grid.
  std::vector<std::string> grid(options.height, std::string(options.width, ' '));
  auto column_of = [&](Cycles t) {
    return std::min(options.width - 1,
                    static_cast<usize>(static_cast<double>(t - t0) /
                                       static_cast<double>(t1 - t0) *
                                       static_cast<double>(options.width - 1)));
  };
  for (const auto& s : samples) {
    const usize col = column_of(s.timestamp);
    const usize row =
        options.height - 1 -
        std::min(options.height - 1,
                 static_cast<usize>(static_cast<double>(s.reserved_bytes) /
                                    static_cast<double>(max_bytes) *
                                    static_cast<double>(options.height - 1)));
    grid[row][col] = '*';
  }
  // Phase transition markers.
  for (usize p = 1; p < split.phases.size(); ++p) {
    const usize col = column_of(split.phases[p].start_time);
    for (auto& row : grid) {
      if (row[col] == ' ') row[col] = '|';
    }
  }

  std::string out = "memory footprint (peak " + util::human_bytes(max_bytes) + ")\n";
  for (const auto& row : grid) out += row + "\n";
  out += std::string(options.width, '-') + "\n";
  out += "phases:";
  for (usize p = 0; p < split.phases.size(); ++p) {
    out += util::format(" [%zu] %s cycles %llu..%llu slope %.3g MiB/Mcycle", p,
                        p == 0 ? "ramp-up" : "computation",
                        static_cast<unsigned long long>(split.phases[p].start_time),
                        static_cast<unsigned long long>(split.phases[p].end_time),
                        split.phases[p].slope_bytes_per_cycle * 1e6);
  }
  out += util::format("\nfit quality R^2 = %.4f\n", split.fit_quality);
  return out;
}

std::string render_phase_counters(const PhaseAttribution& attribution,
                                  std::vector<sim::Event> highlight, usize max_rows) {
  NPAT_CHECK_MSG(!attribution.phases.empty(), "no phases to render");

  if (highlight.empty() && attribution.phases.size() >= 2) {
    // Pick the events whose rate changed most between phase 0 and 1.
    struct Ranked {
      sim::Event event;
      double change;
    };
    std::vector<Ranked> ranked;
    for (const auto& info : sim::all_events()) {
      const double r0 = attribution.phases[0].rate(info.event);
      const double r1 = attribution.phases[1].rate(info.event);
      if (r0 == 0.0 && r1 == 0.0) continue;
      const double change = std::fabs(r1 - r0) / std::max(1.0, std::max(r0, r1));
      ranked.push_back({info.event, change * std::log1p(std::max(r0, r1))});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.change > b.change; });
    for (usize i = 0; i < std::min(max_rows, ranked.size()); ++i) {
      highlight.push_back(ranked[i].event);
    }
  }

  std::vector<std::string> headers = {"event"};
  for (usize p = 0; p < attribution.phases.size(); ++p) {
    headers.push_back(util::format("phase %zu", p));
    headers.push_back(util::format("rate %zu (/Mcyc)", p));
  }
  util::Table table(headers);
  table.set_title("Phasenprüfer: counters attributed per phase");
  for (usize c = 1; c < headers.size(); ++c) table.set_align(c, util::Align::kRight);

  for (const sim::Event event : highlight) {
    std::vector<std::string> row = {std::string(sim::event_name(event))};
    for (const auto& phase : attribution.phases) {
      row.push_back(util::si_scaled(static_cast<double>(phase.count(event))));
      row.push_back(util::si_scaled(phase.rate(event)));
    }
    table.add_row(row);
  }
  return table.render();
}

util::Json split_to_json(const PhaseSplit& split, const PhaseAttribution* attribution) {
  util::JsonObject doc;
  doc["pivot_time"] = split.pivot_time;
  doc["fit_quality"] = split.fit_quality;
  doc["total_sse"] = split.total_sse;
  util::JsonArray phases;
  for (usize p = 0; p < split.phases.size(); ++p) {
    util::JsonObject ph;
    ph["start"] = split.phases[p].start_time;
    ph["end"] = split.phases[p].end_time;
    ph["slope_bytes_per_cycle"] = split.phases[p].slope_bytes_per_cycle;
    if (attribution && p < attribution->phases.size()) {
      util::JsonObject counters;
      for (const auto& info : sim::all_events()) {
        const u64 count = attribution->phases[p].count(info.event);
        if (count > 0) counters[std::string(info.name)] = count;
      }
      ph["counters"] = std::move(counters);
    }
    phases.emplace_back(std::move(ph));
  }
  doc["phases"] = std::move(phases);
  return util::Json(std::move(doc));
}

}  // namespace npat::phasen
