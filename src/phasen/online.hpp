// Online Phasenprüfer (ROADMAP item): the paper's pivot scan runs after a
// run ends; this detector runs it *while* telemetry streams in, NUMAscope
// style. monitor::Sampler samples (or aggregated windows) feed an
// append-only incremental stats::SegmentCost, the shared O(n) pivot scan
// re-runs on a configurable cadence, and a boundary is only *published*
// once the same pivot has survived a dwell of consecutive scans — the
// obs::AlertEngine hysteresis pattern applied to phase detection, so one
// noisy window never announces a phase change.
//
// Equivalence guarantee: replaying any footprint series point-by-point and
// calling finalize() yields a PhaseSplit bit-identical to the offline
// detect_phases on the same series — both paths condition the axes with the
// same helpers, share SegmentCost's append-built prefix sums, and run the
// same scan with the same tie-breaking.
#pragma once

#include <optional>
#include <vector>

#include "monitor/aggregate.hpp"
#include "monitor/sampler.hpp"
#include "phasen/detector.hpp"
#include "stats/segmented.hpp"
#include "util/types.hpp"

namespace npat::phasen {

struct OnlineDetectorOptions {
  /// Minimum samples per segment, as in DetectorOptions.
  usize min_segment = 4;
  /// Pivot-scan cadence in pushed samples (1 = scan on every push). Each
  /// scan costs O(n); a coarser cadence amortizes growth further.
  usize rescan_every = 1;
  /// Consecutive scans the same pivot must win before it is published
  /// (1 = publish immediately). Mirrors obs::AlertRule::dwell_windows.
  usize publish_dwell = 3;
  /// A pivot is only publishable while (a) the BIC criterion from
  /// stats::detect_phases_auto prefers two segments over one — the
  /// adaptive part, which keeps small noisy prefixes from overfitting a
  /// boundary onto pure noise — and (b) the two-line fit beats the single
  /// line by this relative SSE margin, a flat floor that keeps a pure ramp
  /// (where every pivot ties at zero gain) from publishing.
  double publish_min_gain = 0.05;
};

/// One committed boundary publication.
struct PhaseTransitionEvent {
  u64 scan = 0;            // pivot-scan index that committed the transition
  usize sample_count = 0;  // series length at commit time
  usize pivot_sample = 0;
  Cycles pivot_time = 0;
  /// True when a previously published boundary moved (a re-publication);
  /// false for the first publication.
  bool republication = false;
  usize previous_pivot = 0;  // meaningful when republication
};

class OnlineDetector {
 public:
  explicit OnlineDetector(OnlineDetectorOptions options = {});

  /// Feeds one footprint point. Timestamps must be non-decreasing.
  void push(Cycles timestamp, u64 footprint_bytes);
  /// Convenience feeds from the monitor subsystem.
  void push(const monitor::Sample& sample) { push(sample.timestamp, sample.footprint_bytes); }
  void push(const monitor::WindowStats& window) { push(window.end, window.footprint_bytes); }

  usize size() const noexcept { return timestamps_.size(); }
  u64 scans() const noexcept { return scans_; }
  const OnlineDetectorOptions& options() const noexcept { return options_; }

  /// True once a boundary has been published (dwell satisfied).
  bool published() const noexcept { return committed_.has_value(); }
  /// Published pivot sample index / timestamp; CHECK-fails before the
  /// first publication.
  usize published_pivot() const;
  Cycles published_pivot_time() const;
  /// Latest scan's (pre-dwell) pivot; nullopt before the first scan.
  std::optional<usize> provisional_pivot() const noexcept { return last_pivot_; }
  /// Every committed transition, oldest first.
  const std::vector<PhaseTransitionEvent>& events() const noexcept { return events_; }

  /// Live label for views: "ramp-up" until a boundary is published, then
  /// "compute" (the stream is past the published pivot by construction).
  const char* phase_label() const noexcept { return published() ? "compute" : "ramp-up"; }

  /// Full two-phase split over everything pushed so far — bit-identical to
  /// detect_phases on the same series. O(n); independent of cadence and
  /// dwell state (it neither scans-forward the cadence counter nor
  /// publishes). Requires size() >= 2*min_segment.
  PhaseSplit finalize() const;

 private:
  void scan();
  void publish(usize pivot);

  OnlineDetectorOptions options_;
  std::vector<Cycles> timestamps_;
  std::vector<double> values_;  // conditioned ordinate (MiB), fit + quality
  stats::SegmentCost cost_;
  Cycles origin_ = 0;
  double scale_yy_ = 0.0;  // sum of y^2, the gain gate's noise floor scale

  u64 scans_ = 0;
  usize since_scan_ = 0;
  std::optional<usize> last_pivot_;   // latest scan result
  std::optional<usize> candidate_;    // dwell candidate
  usize streak_ = 0;
  std::optional<usize> committed_;    // published pivot
  std::vector<PhaseTransitionEvent> events_;
};

}  // namespace npat::phasen
