// Program execution: the Runner schedules simulated threads (coroutines)
// onto machine cores, keeps their clocks loosely synchronized (min-clock
// scheduling with a cycle quantum), services barriers, and drives
// registered time-based samplers (procfs footprint, Memhist threshold
// cycling) from simulated time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/affinity.hpp"
#include "os/vm.hpp"
#include "sim/machine.hpp"
#include "trace/task.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace npat::trace {

class Runner;

/// Per-thread handle workload bodies use to act on the machine. All memory
/// operations take *virtual* addresses; translation (with first-touch
/// placement) happens here.
class ThreadContext {
 public:
  // --- awaitable operations (must be co_await-ed) ---
  OpAwaiter load(VirtAddr vaddr);
  OpAwaiter store(VirtAddr vaddr);
  /// Locked read-modify-write.
  OpAwaiter atomic(VirtAddr vaddr);
  /// Retires `instructions` ALU instructions.
  OpAwaiter compute(u64 instructions);
  /// One conditional branch at static site `site_key`.
  OpAwaiter branch(u64 site_key, bool taken);
  /// Blocks until all program threads arrive; implemented with an atomic
  /// ticket on a shared line, so barriers generate real coherence traffic.
  OpAwaiter barrier(u32 id);
  /// Cooperative preemption point without machine cost.
  OpAwaiter yield();

  // --- immediate services (plain calls) ---
  VirtAddr alloc(u64 bytes, os::PagePolicy policy = os::PagePolicy::kFirstTouch,
                 sim::NodeId bind_node = 0);
  /// 2 MiB-huge-page-backed allocation (one TLB entry per 2 MiB).
  VirtAddr alloc_huge(u64 bytes, os::PagePolicy policy = os::PagePolicy::kFirstTouch,
                      sim::NodeId bind_node = 0);
  void free(VirtAddr base);
  /// Records a labelled timestamp in the run result (ground truth for
  /// phase-detection tests).
  void phase_mark(u32 id);

  /// Attributes all machine events between tag switches to `tag` (the
  /// counter→code-location mapping of the paper's outlook). Deltas are
  /// delivered to the runner's tag sink; without a sink this is free.
  void set_source_tag(u32 tag);
  u32 source_tag() const noexcept { return source_tag_; }

  // --- introspection ---
  u32 index() const noexcept { return index_; }
  /// Task identity (resolved from the program's TaskSpec at run start).
  u32 pid() const noexcept { return pid_; }
  u32 tid() const noexcept { return tid_; }
  u32 thread_count() const noexcept;
  sim::CoreId core() const noexcept { return core_; }
  sim::NodeId node() const noexcept;
  util::Xoshiro256ss& rng() noexcept { return rng_; }
  sim::DataSource last_source() const noexcept { return last_source_; }
  Cycles now() const noexcept;

 private:
  friend class Runner;
  friend class SubTask;

  enum class State : u8 { kRunnable, kBlocked, kDone };

  ThreadContext(Runner& runner, u32 index, sim::CoreId core, u64 seed)
      : runner_(&runner), index_(index), core_(core), rng_(seed) {}

  OpAwaiter after_op();

  void flush_tag_delta();

  Runner* runner_;
  u32 index_;
  u32 pid_ = 1;
  u32 tid_ = 0;
  sim::CoreId core_;
  State state_ = State::kRunnable;
  Cycles slice_end_ = 0;
  util::Xoshiro256ss rng_;
  sim::DataSource last_source_ = sim::DataSource::kL1;
  u32 source_tag_ = 0;
  sim::CounterBlock tag_baseline_;
  /// Innermost coroutine of this thread's call chain; the scheduler always
  /// resumes this handle (SubTask awaits push/pop it).
  std::coroutine_handle<> active_;
};

/// An awaitable sub-coroutine: lets workload bodies factor logic into
/// helper coroutines (`co_await merge_run(ctx, ...)`). Uses symmetric
/// transfer and keeps the thread's active handle pointed at the innermost
/// frame so the scheduler resumes the right coroutine after a preemption.
/// The first parameter of a SubTask coroutine MUST be the ThreadContext&.
class SubTask {
 public:
  struct promise_type {
    ThreadContext* ctx;
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    // The promise constructor sees the coroutine's arguments (C++20);
    // we only need the leading ThreadContext&.
    template <typename... Args>
    explicit promise_type(ThreadContext& context, Args&&...) : ctx(&context) {}

    SubTask get_return_object() {
      return SubTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) const noexcept {
        auto& promise = handle.promise();
        promise.ctx->active_ = promise.continuation;
        return promise.continuation;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  explicit SubTask(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  SubTask(SubTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&&) = delete;
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    auto& promise = handle_.promise();
    promise.continuation = parent;
    promise.ctx->active_ = handle_;
    return handle_;  // symmetric transfer into the child
  }
  void await_resume() {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

using ThreadBody = std::function<SimTask(ThreadContext&)>;

/// Task identity of one program thread: which simulated process/thread it
/// belongs to (the `(pid, tid)` every access is attributed to when task
/// accounting is on) plus human-readable names for drill-down views.
struct TaskSpec {
  u32 pid = 0;  ///< 0 = assign the default identity at run start
  u32 tid = 0;
  std::string process_name;
  std::string thread_name;
};

struct Program {
  std::vector<ThreadBody> threads;
  /// Optional task identities, parallel to `threads`. May be empty (every
  /// thread gets pid 1 / tid index+1 and generated names) but if non-empty
  /// must match `threads` in size. Unset entries (pid == 0) get defaults.
  std::vector<TaskSpec> tasks;

  static Program single(ThreadBody body) {
    Program p;
    p.threads.push_back(std::move(body));
    return p;
  }
  /// `threads` copies of the same body (they differentiate via ctx.index()).
  static Program homogeneous(u32 threads, ThreadBody body);

  /// Names this program's process: all threads get `pid` and
  /// `process_name`; threads keep (or are assigned) per-thread tids/names.
  Program& name_process(u32 pid, std::string process_name);

  /// Appends `other`'s threads as a separate process `pid` — the way a
  /// multi-process workload mix is composed from single-process programs.
  Program& add_process(u32 pid, std::string process_name, Program other);
};

struct RunnerConfig {
  Cycles quantum = 4000;
  os::AffinityPolicy affinity = os::AffinityPolicy::kCompact;
  Cycles barrier_overhead = 120;
  u64 seed = 0x5eedULL;
  /// When true every scheduler slice charges the machine's per-task PMU
  /// domains with the running thread's (pid, tid) — the data behind
  /// numatop-style drill-down. Off by default: node-only aggregation
  /// stays the zero-overhead baseline.
  bool task_accounting = false;
};

struct PhaseMark {
  u32 id = 0;
  Cycles timestamp = 0;
};

struct RunResult {
  Cycles duration = 0;  // max core clock delta over the run
  std::vector<PhaseMark> phase_marks;
  u64 scheduler_slices = 0;
};

/// The task identities a run of `program` will use, with defaults filled
/// in (pid 1, tid = index + 1, generated names). Exposed so callers can
/// register tasks (e.g. in a wire TaskTable) before the run starts.
std::vector<TaskSpec> resolved_tasks(const Program& program);

class Runner {
 public:
  /// The runner wires the address space's unmap hook to the machine's TLB
  /// shootdown for the duration of its lifetime.
  Runner(sim::Machine& machine, os::AddressSpace& space, RunnerConfig config = {});
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Registers a sampler fired every `interval` cycles of simulated time
  /// (catch-up semantics: a long op fires all missed ticks afterwards).
  void add_sampler(Cycles interval, std::function<void(Cycles)> callback);
  void clear_samplers();

  /// Receives per-tag counter deltas (counter→code-location attribution):
  /// called whenever a thread switches its source tag, and once per thread
  /// at program end for the final region.
  using TagSink = std::function<void(u32 tag, const sim::CounterBlock& delta)>;
  void set_tag_sink(TagSink sink) { tag_sink_ = std::move(sink); }

  /// Runs the program to completion. Throws if a thread body threw or the
  /// program deadlocked on a barrier.
  RunResult run(const Program& program);

  sim::Machine& machine() noexcept { return *machine_; }
  os::AddressSpace& address_space() noexcept { return *space_; }
  const RunnerConfig& config() const noexcept { return config_; }

 private:
  friend class ThreadContext;

  struct ThreadRecord {
    std::unique_ptr<ThreadContext> context;
    SimTask task;
  };

  struct BarrierState {
    u32 arrived = 0;
    Cycles max_arrival = 0;
    std::vector<u32> waiters;
    VirtAddr flag = 0;
  };

  struct Sampler {
    Cycles interval = 0;
    Cycles next_fire = 0;
    std::function<void(Cycles)> callback;
  };

  Cycles clock_of(u32 thread) const;
  void fire_samplers(Cycles now);
  /// Barrier arrival; returns true if the calling thread must block.
  bool barrier_arrive(ThreadContext& ctx, u32 id);

  sim::Machine* machine_;
  os::AddressSpace* space_;
  RunnerConfig config_;
  std::vector<ThreadRecord> threads_;
  std::unordered_map<u32, BarrierState> barriers_;
  std::vector<Sampler> samplers_;
  std::vector<PhaseMark> phase_marks_;
  TagSink tag_sink_;
  u32 live_threads_ = 0;
};

}  // namespace npat::trace
