#include "trace/runner.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace npat::trace {

// --- ThreadContext ---------------------------------------------------------

u32 ThreadContext::thread_count() const noexcept {
  return static_cast<u32>(runner_->threads_.size());
}

sim::NodeId ThreadContext::node() const noexcept {
  return runner_->machine_->topology().node_of_core(core_);
}

Cycles ThreadContext::now() const noexcept { return runner_->machine_->core_clock(core_); }

OpAwaiter ThreadContext::after_op() {
  return OpAwaiter{now() >= slice_end_ || state_ != State::kRunnable};
}

OpAwaiter ThreadContext::load(VirtAddr vaddr) {
  const auto t = runner_->space_->translate_ex(vaddr, node());
  last_source_ = runner_->machine_->load(core_, t.paddr, vaddr, t.tlb_key).source;
  return after_op();
}

OpAwaiter ThreadContext::store(VirtAddr vaddr) {
  const auto t = runner_->space_->translate_ex(vaddr, node());
  last_source_ = runner_->machine_->store(core_, t.paddr, vaddr, t.tlb_key).source;
  return after_op();
}

OpAwaiter ThreadContext::atomic(VirtAddr vaddr) {
  const auto t = runner_->space_->translate_ex(vaddr, node());
  last_source_ = runner_->machine_->atomic_rmw(core_, t.paddr, vaddr, t.tlb_key).source;
  return after_op();
}

OpAwaiter ThreadContext::compute(u64 instructions) {
  runner_->machine_->execute(core_, instructions);
  return after_op();
}

OpAwaiter ThreadContext::branch(u64 site_key, bool taken) {
  runner_->machine_->branch(core_, site_key, taken);
  return after_op();
}

OpAwaiter ThreadContext::barrier(u32 id) {
  const bool blocked = runner_->barrier_arrive(*this, id);
  if (blocked) state_ = State::kBlocked;
  return OpAwaiter{blocked || now() >= slice_end_};
}

OpAwaiter ThreadContext::yield() { return OpAwaiter{true}; }

VirtAddr ThreadContext::alloc(u64 bytes, os::PagePolicy policy, sim::NodeId bind_node) {
  return runner_->space_->allocate(bytes, policy, bind_node);
}

VirtAddr ThreadContext::alloc_huge(u64 bytes, os::PagePolicy policy,
                                   sim::NodeId bind_node) {
  return runner_->space_->allocate_huge(bytes, policy, bind_node);
}

void ThreadContext::free(VirtAddr base) { runner_->space_->free(base); }

void ThreadContext::phase_mark(u32 id) {
  runner_->phase_marks_.push_back(PhaseMark{id, now()});
}

void ThreadContext::flush_tag_delta() {
  if (!runner_->tag_sink_) return;
  const sim::CounterBlock& now_block = runner_->machine_->core_counters(core_);
  sim::CounterBlock delta;
  for (usize i = 0; i < sim::kEventCount; ++i) {
    delta.values[i] = now_block.values[i] - tag_baseline_.values[i];
  }
  runner_->tag_sink_(source_tag_, delta);
  tag_baseline_ = now_block;
}

void ThreadContext::set_source_tag(u32 tag) {
  if (tag == source_tag_) return;
  flush_tag_delta();
  // Without a sink the baseline is stale, but also never read.
  source_tag_ = tag;
}

// --- Program ---------------------------------------------------------------

Program Program::homogeneous(u32 threads, ThreadBody body) {
  NPAT_CHECK_MSG(threads >= 1, "program needs at least one thread");
  Program p;
  p.threads.assign(threads, body);
  return p;
}

Program& Program::name_process(u32 pid, std::string process_name) {
  NPAT_CHECK_MSG(pid != 0, "pid 0 is reserved for the default identity");
  if (tasks.size() < threads.size()) tasks.resize(threads.size());
  for (usize i = 0; i < tasks.size(); ++i) {
    tasks[i].pid = pid;
    tasks[i].process_name = process_name;
    if (tasks[i].tid == 0) tasks[i].tid = static_cast<u32>(i) + 1;
  }
  return *this;
}

Program& Program::add_process(u32 pid, std::string process_name, Program other) {
  other.name_process(pid, std::move(process_name));
  if (tasks.size() < threads.size()) tasks.resize(threads.size());
  for (auto& body : other.threads) threads.push_back(std::move(body));
  for (auto& spec : other.tasks) tasks.push_back(std::move(spec));
  return *this;
}

std::vector<TaskSpec> resolved_tasks(const Program& program) {
  NPAT_CHECK_MSG(program.tasks.empty() || program.tasks.size() == program.threads.size(),
                 "program task specs must be empty or match the thread count");
  std::vector<TaskSpec> resolved(program.tasks);
  resolved.resize(program.threads.size());
  for (usize i = 0; i < resolved.size(); ++i) {
    TaskSpec& spec = resolved[i];
    if (spec.pid == 0) spec.pid = 1;
    if (spec.tid == 0) spec.tid = static_cast<u32>(i) + 1;
    if (spec.process_name.empty()) spec.process_name = "main";
    if (spec.thread_name.empty()) spec.thread_name = "t" + std::to_string(i);
  }
  return resolved;
}

// --- Runner ----------------------------------------------------------------

Runner::Runner(sim::Machine& machine, os::AddressSpace& space, RunnerConfig config)
    : machine_(&machine), space_(&space), config_(config) {
  NPAT_CHECK_MSG(config_.quantum > 0, "quantum must be positive");
  space_->on_unmap = [this](u64 page) { machine_->invalidate_page(page); };
  space_->on_migrate = [this](u64 /*page*/, sim::NodeId /*from*/, sim::NodeId /*to*/) {
    machine_->count_software_event(sim::Event::kSwPageMigrations);
  };
}

Runner::~Runner() {
  space_->on_unmap = nullptr;
  space_->on_migrate = nullptr;
}

void Runner::add_sampler(Cycles interval, std::function<void(Cycles)> callback) {
  NPAT_CHECK_MSG(interval > 0, "sampler interval must be positive");
  samplers_.push_back(Sampler{interval, 0, std::move(callback)});
}

void Runner::clear_samplers() { samplers_.clear(); }

Cycles Runner::clock_of(u32 thread) const {
  return machine_->core_clock(threads_[thread].context->core_);
}

void Runner::fire_samplers(Cycles now) {
  for (auto& sampler : samplers_) {
    while (sampler.next_fire <= now) {
      sampler.callback(sampler.next_fire);
      sampler.next_fire += sampler.interval;
    }
  }
}

bool Runner::barrier_arrive(ThreadContext& ctx, u32 id) {
  BarrierState& barrier = barriers_[id];
  if (barrier.flag == 0) {
    // One cache line per barrier; the ticket bounces between participants.
    barrier.flag = space_->allocate(kCacheLineBytes);
  }
  // Take the ticket: a locked RMW on the shared line (coherence traffic).
  const PhysAddr paddr = space_->translate(barrier.flag, ctx.node());
  machine_->atomic_rmw(ctx.core_, paddr, barrier.flag);

  barrier.arrived += 1;
  barrier.max_arrival = std::max(barrier.max_arrival, ctx.now());

  if (barrier.arrived < live_threads_) {
    barrier.waiters.push_back(ctx.index_);
    return true;  // block
  }

  // Last arrival: release everyone at max_arrival + overhead. Waiting cores
  // spin forward to the release time.
  const Cycles release = barrier.max_arrival + config_.barrier_overhead;
  for (u32 waiter : barrier.waiters) {
    ThreadContext& wctx = *threads_[waiter].context;
    const Cycles wclock = machine_->core_clock(wctx.core_);
    if (release > wclock) machine_->wait(wctx.core_, release - wclock);
    wctx.state_ = ThreadContext::State::kRunnable;
  }
  const Cycles own = machine_->core_clock(ctx.core_);
  if (release > own) machine_->advance(ctx.core_, release - own);  // last arrival was working
  barrier.arrived = 0;
  barrier.max_arrival = 0;
  barrier.waiters.clear();
  return false;
}

RunResult Runner::run(const Program& program) {
  NPAT_CHECK_MSG(!program.threads.empty(), "program needs at least one thread");
  NPAT_CHECK_MSG(threads_.empty(), "Runner::run is not reentrant");

  const Cycles start_clock = machine_->max_clock();
  machine_->set_coherence_enabled(program.threads.size() > 1);
  phase_marks_.clear();
  barriers_.clear();
  for (auto& sampler : samplers_) sampler.next_fire = start_clock + sampler.interval;

  // Materialize thread records. Bodies are created suspended.
  live_threads_ = static_cast<u32>(program.threads.size());
  const std::vector<TaskSpec> tasks = resolved_tasks(program);
  for (u32 i = 0; i < program.threads.size(); ++i) {
    const sim::CoreId core =
        os::core_for_thread(machine_->topology(), config_.affinity, i);
    auto context = std::unique_ptr<ThreadContext>(
        new ThreadContext(*this, i, core, config_.seed ^ (0x9e3779b9ULL * (i + 1))));
    context->pid_ = tasks[i].pid;
    context->tid_ = tasks[i].tid;
    SimTask task = program.threads[i](*context);
    NPAT_CHECK_MSG(task.valid(), "thread body must return a live SimTask");
    context->active_ = task.handle();
    context->tag_baseline_ = machine_->core_counters(core);
    threads_.push_back(ThreadRecord{std::move(context), std::move(task)});
  }

  RunResult result;
  for (;;) {
    // Pick the runnable thread with the smallest core clock.
    u32 chosen = std::numeric_limits<u32>::max();
    Cycles best = std::numeric_limits<Cycles>::max();
    bool any_unfinished = false;
    for (u32 i = 0; i < threads_.size(); ++i) {
      const ThreadContext& ctx = *threads_[i].context;
      if (ctx.state_ == ThreadContext::State::kDone) continue;
      any_unfinished = true;
      if (ctx.state_ != ThreadContext::State::kRunnable) continue;
      const Cycles clock = clock_of(i);
      if (clock < best) {
        best = clock;
        chosen = i;
      }
    }
    if (!any_unfinished) break;
    if (chosen == std::numeric_limits<u32>::max()) {
      threads_.clear();
      NPAT_CHECK_MSG(false, "deadlock: all live threads blocked on barriers");
    }

    ThreadRecord& record = threads_[chosen];
    ThreadContext& ctx = *record.context;
    fire_samplers(best);
    ctx.slice_end_ = best + config_.quantum;
    if (config_.task_accounting) {
      // Context switch: charge the outgoing task's counter delta and
      // re-baseline for this slice's (pid, tid).
      machine_->pmu(ctx.core_).set_current_task(sim::TaskKey{ctx.pid_, ctx.tid_});
    }
    ctx.active_.resume();  // innermost coroutine of this thread's chain
    ++result.scheduler_slices;

    if (record.task.done()) {
      try {
        record.task.rethrow_if_failed();
      } catch (...) {
        threads_.clear();
        throw;
      }
      ctx.state_ = ThreadContext::State::kDone;
      ctx.flush_tag_delta();  // attribute the final region
      --live_threads_;
      // Threads parked on a barrier can never be released if the finished
      // thread was required; re-check feasibility.
      for (auto& [id, barrier] : barriers_) {
        if (!barrier.waiters.empty() && barrier.arrived >= live_threads_) {
          const Cycles release = barrier.max_arrival + config_.barrier_overhead;
          for (u32 waiter : barrier.waiters) {
            ThreadContext& wctx = *threads_[waiter].context;
            const Cycles wclock = machine_->core_clock(wctx.core_);
            if (release > wclock) machine_->wait(wctx.core_, release - wclock);
            wctx.state_ = ThreadContext::State::kRunnable;
          }
          barrier.arrived = 0;
          barrier.max_arrival = 0;
          barrier.waiters.clear();
        }
      }
    }
  }

  if (config_.task_accounting) machine_->flush_task_accounting();
  fire_samplers(machine_->max_clock());
  result.duration = machine_->max_clock() - start_clock;
  result.phase_marks = std::move(phase_marks_);
  // Return the barrier ticket lines to the OS. They are run-local state;
  // leaking them would leave a replay in the same address space starting
  // from a different placement than a fresh run. Freed after the final
  // sampler tick so in-run footprint samples are unaffected.
  for (auto& [id, barrier] : barriers_) {
    if (barrier.flag != 0) space_->free(barrier.flag);
  }
  barriers_.clear();
  threads_.clear();
  live_threads_ = 0;
  return result;
}

}  // namespace npat::trace
