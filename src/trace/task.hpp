// Coroutine handle for simulated threads. Workload bodies are C++20
// coroutines: every machine operation is awaited, giving the runner a
// natural preemption point to interleave threads deterministically at
// quantum granularity without host threads.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace npat::trace {

class SimTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    SimTask get_return_object() { return SimTask{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Suspend at the end so the runner can observe done() before the frame
    // is destroyed by ~SimTask.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  SimTask() = default;
  explicit SimTask(Handle handle) : handle_(handle) {}
  SimTask(SimTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return !handle_ || handle_.done(); }
  void resume() { handle_.resume(); }
  Handle handle() const noexcept { return handle_; }

  /// Rethrows an exception that escaped the coroutine body, if any.
  void rethrow_if_failed() {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

/// Minimal awaiter: the operation already ran inline; suspension only
/// happens when the scheduler decided the slice is over or the thread
/// blocked. The runner resumes via its own stored handle.
struct OpAwaiter {
  bool should_suspend = false;

  bool await_ready() const noexcept { return !should_suspend; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

}  // namespace npat::trace
