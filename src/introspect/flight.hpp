// Flight recorder: a fixed-size ring of structured pipeline events — the
// rare, narratively important moments (resyncs, truncations, epoch
// resets, replay evictions, orphan holds, alert raises/clears, redials)
// that histograms average away. The ring is cheap enough to leave on in
// production: recording is one mutex-guarded deque push, and the ring is
// bounded so a damage storm costs memory proportional to capacity, never
// to damage. The whole ring dumps to JSON on demand, on fatal error (via
// install_terminate_dump) and from chaos-test failures, so the last N
// events before a crash ride along with the core dump.
//
// Totals are kept per event kind *outside* the ring (eviction-proof), so
// reconciliation against the collector's damage ledger stays exact even
// after the ring wraps.
#pragma once

#include <array>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::obs {
struct AlertTransition;  // alert.hpp; hooked via obs::set_transition_observer
}  // namespace npat::obs

namespace npat::introspect {

enum class FlightKind : u8 {
  kResync = 0,        ///< decoder discarded garbage hunting for frame magic
  kFrameDrop,         ///< decoder dropped a frame (CRC/malformed/truncated)
  kTruncation,        ///< incomplete frame flushed at end of stream
  kUnexpectedFrame,   ///< valid frame the collector could not merge
  kEpochReset,        ///< delivery ledger restarted on a new probe epoch
  kReplayEviction,    ///< supervised probe evicted an unacked frame
  kOrphanHeld,        ///< task sample row held awaiting its TaskTable
  kOrphanAttributed,  ///< held row attributed after a late TaskTable
  kAlertRaise,        ///< alert engine committed a severity increase
  kAlertClear,        ///< alert engine committed a severity decrease
  kReattach,          ///< collector reattached a probe's transport
  kDial,              ///< supervised probe dialed (or redialed) its link
  kReconnect,         ///< supervised probe completed a resume handshake
  kLivenessChange,    ///< probe moved between live/stale/dead
  kNote,              ///< free-form marker (tests, tools)
};

inline constexpr usize kFlightKindCount = static_cast<usize>(FlightKind::kNote) + 1;

const char* flight_kind_name(FlightKind kind) noexcept;

struct FlightEvent {
  u64 sequence = 0;  ///< monotonic id assigned by the recorder
  Cycles tick = 0;   ///< caller-supplied clock (collector or probe cycles)
  FlightKind kind = FlightKind::kNote;
  std::string subject;  ///< who: host id, "rule:subject", probe name
  std::string detail;   ///< free-form context, one short clause
  u64 value = 1;        ///< occurrences this event accounts for
};

class FlightRecorder {
 public:
  explicit FlightRecorder(usize capacity = 1024);

  /// Records one event (no-op while obs::enabled() is false, like every
  /// other observability sink). `value` is the occurrence count the event
  /// stands for — collector-side recording batches per poll, so one event
  /// may account for several resyncs.
  void record(FlightKind kind, Cycles tick, std::string subject, std::string detail,
              u64 value = 1);

  /// Occurrences (sum of `value`) ever recorded for `kind`, including
  /// events the ring has since evicted — the reconciliation surface.
  u64 total(FlightKind kind) const;
  u64 recorded() const;  ///< events ever recorded
  u64 evicted() const;   ///< events pushed out by the capacity bound
  usize size() const;
  usize capacity() const { return capacity_; }

  std::vector<FlightEvent> snapshot() const;

  /// {"capacity":…,"recorded":…,"evicted":…,"totals":{…},"events":[…]}
  /// with events oldest-first; totals include only non-zero kinds.
  util::Json to_json() const;

  /// Writes to_json() (2-space indent, trailing newline) to `path`.
  void dump(const std::string& path) const;

  void reset();

 private:
  mutable std::mutex mutex_;
  usize capacity_;
  std::deque<FlightEvent> ring_;
  u64 next_sequence_ = 0;
  u64 evicted_ = 0;
  std::array<u64, kFlightKindCount> totals_{};
};

/// The process-wide recorder every pipeline stage records into.
FlightRecorder& flight();

/// Hooks the alert engine's transition observer so committed raises and
/// clears land in the flight ring (kAlertRaise/kAlertClear, subject
/// "rule:subject", tick = evaluation window). Idempotent.
void install_alert_hook();

/// Installs a std::terminate handler that dumps the flight ring to `path`
/// before chaining to the previous handler — the "on fatal error" dump.
/// util::check sits below introspect in the DAG, so an NPAT_CHECK failure
/// escaping to terminate is caught here rather than at the throw site.
void install_terminate_dump(std::string path);

}  // namespace npat::introspect
