// Health surface: the pipeline observing itself. PipelineStats is the
// plain-value per-probe telemetry the FleetCollector republishes each
// poll (hop latency, reorder dwell, stage depths, decode rate); HealthRow
// adds identity and damage so npat_top --health can render a per-probe
// table; the self-metrics exports bundle the obs registry with the flight
// recorder's totals in Prometheus text and JSON, the same way NUMAscope
// exposes its own ingest latency and backpressure.
//
// introspect sits between obs and the transport layers in the DAG
// (util -> obs -> introspect -> resilience/fleet): this header defines
// the vocabulary, the collector fills it, and nothing here depends on
// fleet types.
#pragma once

#include <string>
#include <vector>

#include "introspect/flight.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace npat::introspect {

/// Per-probe pipeline telemetry, republished by the collector each poll.
/// Latencies are in collector clock cycles; the emit clock is aligned per
/// probe from the first stamped frame (latency 0 by construction), so
/// later values are *relative* transit+queueing delay, immune to clock
/// skew the same way sample timestamps are.
struct PipelineStats {
  u64 frames = 0;          ///< CRC-valid frames decoded from this probe
  u64 stamped_frames = 0;  ///< frames that carried an emit-stamp annotation
  u64 ingest_observations = 0;
  double ingest_sum = 0.0;  ///< cycles, summed over observations
  Cycles ingest_max = 0;
  double ingest_p99 = 0.0;  ///< estimated from the histogram buckets
  /// The p99 crossing landed in the histogram's +Inf bucket: ingest_p99
  /// is only a *floor* (the largest finite bound), and the pane renders
  /// it as ">=bound" so a blown-out tail never masquerades as healthy.
  bool ingest_p99_overflow = false;
  u64 reorder_observations = 0;
  double reorder_sum = 0.0;
  Cycles reorder_max = 0;
  usize pending_depth = 0;  ///< reorder-stage occupancy right now
  usize orphan_depth = 0;   ///< orphan-row pool occupancy right now
  double frames_per_mcycle = 0.0;  ///< decoded frames per million collector cycles

  double ingest_mean() const noexcept {
    return ingest_observations > 0 ? ingest_sum / static_cast<double>(ingest_observations) : 0.0;
  }
  double reorder_mean() const noexcept {
    return reorder_observations > 0 ? reorder_sum / static_cast<double>(reorder_observations)
                                    : 0.0;
  }
};

/// One probe's row in the --health pane.
struct HealthRow {
  std::string host;
  bool supervised = false;
  std::string liveness = "live";
  bool ended = false;
  PipelineStats pipeline;
  u64 delivered = 0;   ///< exactly-once deliveries (0 for plain streams)
  u64 duplicates = 0;  ///< retransmissions suppressed by the ledger
  usize gap_backlog = 0;
  usize dropped = 0;
  usize resyncs = 0;
  usize truncated = 0;
  usize unexpected = 0;
  usize orphaned = 0;
};

struct HealthOptions {
  bool ansi = false;          ///< colour cues (depth/damage highlighting)
  bool clear_screen = false;  ///< prefix the ANSI home+clear sequence
  std::string title = "npat-health";
};

/// Renders the per-probe pipeline table plus a flight-recorder summary
/// line. Byte-stable for fixed inputs when `ansi` is off (golden-tested).
std::string render_health(const std::vector<HealthRow>& rows, Cycles clock,
                          const HealthOptions& options = {});

/// A bucket-quantile estimate that knows when it is lying: `overflow` is
/// set when the crossing landed in the implicit +Inf bucket, in which
/// case `value` (the largest finite bound) is only a floor on the truth.
struct QuantileEstimate {
  double value = 0.0;
  bool overflow = false;
};

/// p-quantile estimate from a fixed-bucket histogram, Prometheus
/// histogram_quantile-style: find the bucket where the cumulative count
/// crosses q*count, interpolate linearly inside it. Returns 0 for an
/// empty histogram; the lowest bound for q <= 0; when the crossing lands
/// in +Inf the value clamps to the last finite bound and `overflow` is
/// set so callers can render the result as ">=bound".
QuantileEstimate histogram_quantile_estimate(const obs::Histogram& histogram, double q);

/// Value-only convenience over histogram_quantile_estimate() — the
/// overflow flag is dropped, so the result can silently floor a
/// blown-out tail; prefer the estimate form anywhere the distinction is
/// user-visible.
double histogram_quantile(const obs::Histogram& histogram, double q);

/// Self-metrics exports: `registry` in Prometheus text followed by the
/// flight recorder's per-kind totals as npat_flight_events_total{kind=…}
/// counters (and npat_flight_ring_{recorded,evicted}_total).
std::string self_metrics_prometheus(const obs::Registry& registry,
                                    const FlightRecorder& recorder);
/// {"metrics": registry.to_json(), "flight": recorder summary}.
util::Json self_metrics_json(const obs::Registry& registry, const FlightRecorder& recorder);

/// Process-wide convenience overloads: obs::metrics() + introspect::flight().
std::string self_metrics_prometheus();
util::Json self_metrics_json();

}  // namespace npat::introspect
