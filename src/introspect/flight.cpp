#include "introspect/flight.hpp"

#include <exception>
#include <utility>

#include "obs/alert.hpp"
#include "obs/runtime.hpp"
#include "util/check.hpp"

namespace npat::introspect {

const char* flight_kind_name(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::kResync: return "resync";
    case FlightKind::kFrameDrop: return "frame_drop";
    case FlightKind::kTruncation: return "truncation";
    case FlightKind::kUnexpectedFrame: return "unexpected_frame";
    case FlightKind::kEpochReset: return "epoch_reset";
    case FlightKind::kReplayEviction: return "replay_eviction";
    case FlightKind::kOrphanHeld: return "orphan_held";
    case FlightKind::kOrphanAttributed: return "orphan_attributed";
    case FlightKind::kAlertRaise: return "alert_raise";
    case FlightKind::kAlertClear: return "alert_clear";
    case FlightKind::kReattach: return "reattach";
    case FlightKind::kDial: return "dial";
    case FlightKind::kReconnect: return "reconnect";
    case FlightKind::kLivenessChange: return "liveness_change";
    case FlightKind::kNote: return "note";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(usize capacity) : capacity_(capacity) {
  NPAT_CHECK_MSG(capacity > 0, "flight recorder needs a non-zero ring");
}

void FlightRecorder::record(FlightKind kind, Cycles tick, std::string subject,
                            std::string detail, u64 value) {
  if (!obs::enabled()) return;
  std::lock_guard lock(mutex_);
  FlightEvent event;
  event.sequence = next_sequence_++;
  event.tick = tick;
  event.kind = kind;
  event.subject = std::move(subject);
  event.detail = std::move(detail);
  event.value = value;
  ring_.push_back(std::move(event));
  totals_[static_cast<usize>(kind)] += value;
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
}

u64 FlightRecorder::total(FlightKind kind) const {
  std::lock_guard lock(mutex_);
  return totals_[static_cast<usize>(kind)];
}

u64 FlightRecorder::recorded() const {
  std::lock_guard lock(mutex_);
  return next_sequence_;
}

u64 FlightRecorder::evicted() const {
  std::lock_guard lock(mutex_);
  return evicted_;
}

usize FlightRecorder::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

util::Json FlightRecorder::to_json() const {
  std::lock_guard lock(mutex_);
  util::JsonObject doc;
  doc["capacity"] = static_cast<u64>(capacity_);
  doc["recorded"] = next_sequence_;
  doc["evicted"] = evicted_;
  util::JsonObject totals;
  for (usize i = 0; i < kFlightKindCount; ++i) {
    if (totals_[i] > 0) totals[flight_kind_name(static_cast<FlightKind>(i))] = totals_[i];
  }
  doc["totals"] = std::move(totals);
  util::JsonArray events;
  for (const FlightEvent& event : ring_) {
    util::JsonObject row;
    row["seq"] = event.sequence;
    row["tick"] = event.tick;
    row["kind"] = flight_kind_name(event.kind);
    row["subject"] = event.subject;
    row["detail"] = event.detail;
    row["value"] = event.value;
    events.push_back(std::move(row));
  }
  doc["events"] = std::move(events);
  return util::Json(std::move(doc));
}

void FlightRecorder::dump(const std::string& path) const {
  util::write_file(path, to_json().dump(2) + "\n");
}

void FlightRecorder::reset() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_sequence_ = 0;
  evicted_ = 0;
  totals_.fill(0);
}

FlightRecorder& flight() {
  static FlightRecorder recorder;
  return recorder;
}

namespace {

void record_alert_transition(const obs::AlertTransition& transition) {
  const bool raise = static_cast<u8>(transition.to) > static_cast<u8>(transition.from);
  flight().record(raise ? FlightKind::kAlertRaise : FlightKind::kAlertClear, transition.window,
                  transition.rule + ":" + transition.subject,
                  std::string(obs::severity_name(transition.from)) + "->" +
                      obs::severity_name(transition.to));
}

std::string g_terminate_dump_path;           // set once before installing
std::terminate_handler g_previous = nullptr;

[[noreturn]] void terminate_with_dump() {
  // Best effort: if the dump itself throws we are already terminating.
  try {
    flight().dump(g_terminate_dump_path);
  } catch (...) {
  }
  if (g_previous != nullptr) g_previous();
  std::abort();
}

}  // namespace

void install_alert_hook() { obs::set_transition_observer(&record_alert_transition); }

void install_terminate_dump(std::string path) {
  g_terminate_dump_path = std::move(path);
  const std::terminate_handler previous = std::set_terminate(&terminate_with_dump);
  if (previous != &terminate_with_dump) g_previous = previous;
}

}  // namespace npat::introspect
