#include "introspect/health.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/ansi.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace npat::introspect {

namespace {

std::string cycles_compact(double cycles) { return util::si_scaled(cycles); }

util::Cell depth_cell(usize depth) {
  return {util::format("%zu", depth), depth > 0 ? util::Style::kYellow : util::Style::kDim};
}

util::Cell damage_cell(usize count) {
  return {util::format("%zu", count), count > 0 ? util::Style::kYellow : util::Style::kDim};
}

util::Cell state_cell(const HealthRow& row) {
  if (row.ended) return {"ended", util::Style::kDim};
  if (row.liveness == "dead") return {"dead", util::Style::kRed};
  if (row.liveness == "stale") return {"stale", util::Style::kYellow};
  return {"live", util::Style::kGreen};
}

}  // namespace

std::string render_health(const std::vector<HealthRow>& rows, Cycles clock,
                          const HealthOptions& options) {
  std::string out;
  if (options.clear_screen && util::ansi_enabled()) out += "\x1b[H\x1b[2J";

  u64 frames = 0, stamped = 0;
  usize damage = 0;
  for (const HealthRow& row : rows) {
    frames += row.pipeline.frames;
    stamped += row.pipeline.stamped_frames;
    damage += row.dropped + row.unexpected;
  }
  const FlightRecorder& recorder = flight();
  out += util::format(
      "%s — probes=%zu  clock=%s  frames=%llu (%llu stamped)  damage=%zu  "
      "flight: %llu events (%llu evicted)\n",
      options.title.c_str(), rows.size(), cycles_compact(static_cast<double>(clock)).c_str(),
      static_cast<unsigned long long>(frames), static_cast<unsigned long long>(stamped), damage,
      static_cast<unsigned long long>(recorder.recorded()),
      static_cast<unsigned long long>(recorder.evicted()));

  util::Table table({"Host", "State", "Frames", "fr/Mcy", "Lat mean", "Lat p99", "Lat max",
                     "Dwell", "Pend", "Orph", "Gap", "Drop", "Rsync", "Trunc", "Unexp", "Dup"});
  for (usize column = 2; column < table.columns(); ++column) {
    table.set_align(column, util::Align::kRight);
  }
  for (const HealthRow& row : rows) {
    const PipelineStats& p = row.pipeline;
    std::vector<util::Cell> cells;
    cells.push_back({row.host, util::Style::kBold});
    cells.push_back(state_cell(row));
    cells.push_back({util::format("%llu", static_cast<unsigned long long>(p.frames)),
                     util::Style::kNone});
    cells.push_back({util::format("%.1f", p.frames_per_mcycle), util::Style::kNone});
    const bool measured = p.ingest_observations > 0;
    const util::Style lat_style = measured ? util::Style::kNone : util::Style::kDim;
    cells.push_back({measured ? cycles_compact(p.ingest_mean()) : "-", lat_style});
    // An overflowed p99 is a floor, not a measurement: ">=bound" in red so
    // a blown-out tail is never mistaken for one that fits the buckets.
    if (measured && p.ingest_p99_overflow) {
      cells.push_back({">=" + cycles_compact(p.ingest_p99), util::Style::kRed});
    } else {
      cells.push_back({measured ? cycles_compact(p.ingest_p99) : "-", lat_style});
    }
    cells.push_back(
        {measured ? cycles_compact(static_cast<double>(p.ingest_max)) : "-", lat_style});
    cells.push_back({p.reorder_observations > 0 ? cycles_compact(p.reorder_mean()) : "-",
                     p.reorder_observations > 0 ? util::Style::kNone : util::Style::kDim});
    cells.push_back(depth_cell(p.pending_depth));
    cells.push_back(depth_cell(p.orphan_depth));
    cells.push_back(depth_cell(row.gap_backlog));
    cells.push_back(damage_cell(row.dropped));
    cells.push_back(damage_cell(row.resyncs));
    cells.push_back(damage_cell(row.truncated));
    cells.push_back(damage_cell(row.unexpected));
    cells.push_back(damage_cell(static_cast<usize>(row.duplicates)));
    table.add_styled_row(std::move(cells));
  }
  out += table.render();
  return out;
}

QuantileEstimate histogram_quantile_estimate(const obs::Histogram& histogram, double q) {
  const u64 count = histogram.count();
  if (count == 0) return {};
  const auto bounds = histogram.bounds();
  if (bounds.empty()) return {};
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  u64 cumulative = 0;
  for (usize i = 0; i < bounds.size(); ++i) {
    const u64 in_bucket = histogram.bucket_count(i);
    if (static_cast<double>(cumulative + in_bucket) >= rank && in_bucket > 0) {
      // Linear interpolation inside the winning bucket, lower edge = the
      // previous bound (or 0 for the first bucket).
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return {lower + (bounds[i] - lower) * std::clamp(fraction, 0.0, 1.0), false};
    }
    cumulative += in_bucket;
  }
  // The crossing lands in +Inf: the largest finite bound is only a floor
  // on the truth — say so, instead of letting a blown-out p99 cosplay as
  // one that just grazed the top bucket.
  return {bounds.back(), true};
}

double histogram_quantile(const obs::Histogram& histogram, double q) {
  return histogram_quantile_estimate(histogram, q).value;
}

std::string self_metrics_prometheus(const obs::Registry& registry,
                                    const FlightRecorder& recorder) {
  std::string out = registry.prometheus_text();
  out += "# HELP npat_flight_events_total Flight-recorder occurrences by event kind\n";
  out += "# TYPE npat_flight_events_total counter\n";
  for (usize i = 0; i < kFlightKindCount; ++i) {
    const FlightKind kind = static_cast<FlightKind>(i);
    out += util::format("npat_flight_events_total{kind=\"%s\"} %llu\n", flight_kind_name(kind),
                        static_cast<unsigned long long>(recorder.total(kind)));
  }
  out += "# HELP npat_flight_ring_recorded_total Events recorded into the flight ring\n";
  out += "# TYPE npat_flight_ring_recorded_total counter\n";
  out += util::format("npat_flight_ring_recorded_total %llu\n",
                      static_cast<unsigned long long>(recorder.recorded()));
  out += "# HELP npat_flight_ring_evicted_total Events evicted by the ring's capacity bound\n";
  out += "# TYPE npat_flight_ring_evicted_total counter\n";
  out += util::format("npat_flight_ring_evicted_total %llu\n",
                      static_cast<unsigned long long>(recorder.evicted()));
  return out;
}

util::Json self_metrics_json(const obs::Registry& registry, const FlightRecorder& recorder) {
  util::JsonObject doc;
  doc["metrics"] = registry.to_json();
  util::JsonObject ring;
  ring["capacity"] = static_cast<u64>(recorder.capacity());
  ring["recorded"] = recorder.recorded();
  ring["evicted"] = recorder.evicted();
  util::JsonObject totals;
  for (usize i = 0; i < kFlightKindCount; ++i) {
    const FlightKind kind = static_cast<FlightKind>(i);
    const u64 total = recorder.total(kind);
    if (total > 0) totals[flight_kind_name(kind)] = total;
  }
  ring["totals"] = std::move(totals);
  doc["flight"] = std::move(ring);
  return util::Json(std::move(doc));
}

std::string self_metrics_prometheus() { return self_metrics_prometheus(obs::metrics(), flight()); }

util::Json self_metrics_json() { return self_metrics_json(obs::metrics(), flight()); }

}  // namespace npat::introspect
