#!/usr/bin/env python3
"""Merge bench reports (BENCH_*.json) into one markdown trajectory table.

Every gated bench writes a flat JSON object named BENCH_<name>.json into
the build directory (ablation_proc_overhead -> BENCH_proc.json,
ablation_introspect_overhead -> BENCH_introspect.json, ...). CI runs this
script after the bench steps and appends the output to
$GITHUB_STEP_SUMMARY, so every run shows the whole overhead trajectory at
a glance instead of burying the numbers in step logs:

    python3 scripts/bench_trajectory.py build >> "$GITHUB_STEP_SUMMARY"

The script is schema-agnostic: the summary table shows each bench's
verdict and its headline percentages (any *_percent field next to its
*_budget_percent partner), and a details section lists every remaining
field verbatim. Stdlib only; exits non-zero if any report says pass=false
so the summary step can double as a cheap gate.
"""

import argparse
import glob
import json
import os
import sys


def load_reports(directory):
    reports = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping {path}: {error}", file=sys.stderr)
            continue
        if isinstance(payload, dict):
            reports.append((name, payload))
    return reports


def fmt(value):
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def headline(report):
    """`x_percent` paired with `x_budget_percent` -> 'x 1.2% / 3%'.

    Trust-harness reports (BENCH_validate.json) carry no percentages; their
    headline is the kernel-suite wall time and the validated/refuted counts.
    """
    cells = []
    for key in sorted(report):
        if not key.endswith("_percent") or key.endswith("_budget_percent"):
            continue
        label = key[: -len("_percent")]
        budget = report.get(label + "_budget_percent")
        text = f"{label} {fmt(report[key])}%"
        if budget is not None:
            text += f" / {fmt(budget)}%"
        cells.append(text)
    if not cells and "wall_ms" in report:
        cells.append(f"wall {fmt(report['wall_ms'])} ms")
    if "validated_events" in report:
        validated = fmt(report["validated_events"])
        registry = report.get("registry_events")
        text = f"validated {validated}/{fmt(registry)}" if registry is not None \
            else f"validated {validated}"
        cells.append(text)
    if "refuted" in report:
        cells.append(f"refuted {fmt(report['refuted'])}")
    return ", ".join(cells) if cells else "-"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", nargs="?", default="build",
                        help="directory holding BENCH_*.json (default: build)")
    args = parser.parse_args()

    reports = load_reports(args.directory)
    if not reports:
        print(f"no BENCH_*.json reports under {args.directory}", file=sys.stderr)
        return 0  # nothing ran, nothing to gate

    print("## Bench trajectory")
    print()
    print("| bench | verdict | overhead vs budget |")
    print("|---|---|---|")
    failed = []
    for name, report in reports:
        verdict = report.get("pass")
        if verdict is False:
            failed.append(name)
        verdict_text = "pass" if verdict else ("FAIL" if verdict is False else "-")
        print(f"| {name} | {verdict_text} | {headline(report)} |")
    print()

    print("<details><summary>full reports</summary>")
    print()
    for name, report in reports:
        print(f"### {name}")
        print()
        print("| field | value |")
        print("|---|---|")
        for key in sorted(report):
            print(f"| {key} | {fmt(report[key])} |")
        print()
    print("</details>")

    if failed:
        print(f"failed benches: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
