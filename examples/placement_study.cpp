// Example: quantify thread/data placement effects with EvSel — the kind of
// optimization study the paper's two-step strategy targets. The STREAM
// triad runs under two placements:
//   * first-touch  (each thread's arrays on its own node — the NUMA-aware
//     pattern the paper's SIFT implementation uses), vs
//   * master-touch (all arrays bound to node 0 — the classic mistake).
// EvSel's run comparison surfaces exactly which indicators expose the
// problem (remote loads, interconnect flits, stall cycles), and the
// affinity policy is swept on top.
#include <cstdio>

#include "advisor/advisor.hpp"
#include "advisor/report.hpp"
#include "evsel/collector.hpp"
#include "evsel/compare.hpp"
#include "evsel/imbalance.hpp"
#include "evsel/report.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/kernels.hpp"

int main(int argc, char** argv) {
  using namespace npat;

  i64 threads = 8;
  i64 elements = 1 << 15;
  i64 repetitions = 3;
  bool advise = false;
  util::Cli cli("Placement study: first-touch vs master-touch STREAM triad");
  cli.add_flag("threads", &threads, "worker threads");
  cli.add_flag("elements", &elements, "doubles per array per thread");
  cli.add_flag("reps", &repetitions, "repetitions per configuration");
  cli.add_flag("advise", &advise, "run the placement advisor on the master-touch triad");
  if (const auto rc = cli.parse_main(argc, argv)) return *rc;

  evsel::Collector collector(sim::hpe_dl580_gen9(4));
  evsel::CollectOptions options;
  options.repetitions = static_cast<u32>(repetitions);
  options.affinity = os::AffinityPolicy::kScatter;
  options.events = {
      sim::Event::kCycles,          sim::Event::kStallCyclesMem,
      sim::Event::kMemLoadLocalDram, sim::Event::kMemLoadRemoteDram,
      sim::Event::kUncQpiTxFlits,   sim::Event::kUncImcReads,
      sim::Event::kFillBufferRejects, sim::Event::kL3Miss,
  };

  auto triad = [&](os::PagePolicy placement) {
    workloads::StreamParams params;
    params.threads = static_cast<u32>(threads);
    params.elements_per_thread = static_cast<usize>(elements);
    params.placement = placement;
    return workloads::stream_triad_program(params);
  };

  const auto local = collector.measure(
      "first-touch", [&] { return triad(os::PagePolicy::kFirstTouch); }, options);
  const auto master = collector.measure(
      "master-touch", [&] { return triad(os::PagePolicy::kBind); }, options);

  const auto comparison = evsel::compare(local, master);
  evsel::ReportOptions report;
  report.include_all_events = true;
  report.show_descriptions = false;
  std::fputs(evsel::render_comparison(comparison, report).c_str(), stdout);

  const double slowdown = comparison.row(sim::Event::kCycles).test.relative_delta;
  std::printf("\nmaster-touch costs %s cycles; interconnect flits went from %s to %s\n",
              util::percent_delta(slowdown).c_str(),
              util::si_scaled(comparison.row(sim::Event::kUncQpiTxFlits).test.mean_a).c_str(),
              util::si_scaled(comparison.row(sim::Event::kUncQpiTxFlits).test.mean_b).c_str());

  // Affinity sweep under first-touch: compact vs scatter.
  std::puts("");
  util::Table affinity_table({"affinity", "cycles", "remote loads", "QPI flits"});
  affinity_table.set_title("affinity policy sweep (first-touch placement)");
  for (usize c = 1; c < 4; ++c) affinity_table.set_align(c, util::Align::kRight);
  for (const auto policy : {os::AffinityPolicy::kCompact, os::AffinityPolicy::kScatter}) {
    evsel::CollectOptions sweep_options = options;
    sweep_options.affinity = policy;
    const auto m = collector.measure(
        os::affinity_name(policy), [&] { return triad(os::PagePolicy::kFirstTouch); },
        sweep_options);
    affinity_table.add_row({os::affinity_name(policy),
                            util::si_scaled(m.mean(sim::Event::kCycles)),
                            util::si_scaled(m.mean(sim::Event::kMemLoadRemoteDram)),
                            util::si_scaled(m.mean(sim::Event::kUncQpiTxFlits))});
  }
  std::fputs(affinity_table.render().c_str(), stdout);

  // perf's §II-F promise, through the toolkit: per-node load and an
  // imbalance verdict for the master-touch configuration.
  sim::Machine machine(sim::hpe_dl580_gen9(4));
  os::AddressSpace space(machine.topology());
  trace::RunnerConfig rc;
  rc.affinity = os::AffinityPolicy::kScatter;
  trace::Runner runner(machine, space, rc);
  runner.run(triad(os::PagePolicy::kBind));
  std::puts("");
  std::fputs(evsel::node_imbalance(machine).render().c_str(), stdout);

  // --advise: hand the broken configuration to the placement advisor and
  // let it close the loop — profile, rank candidate placements, replay the
  // unmodified workload under the best ones, and print the before/after
  // delta table with the counter-signature rationale.
  if (advise) {
    advisor::Advisor adv(sim::hpe_dl580_gen9(4));
    advisor::AdvisorOptions advise_options;
    advise_options.baseline.affinity = os::AffinityPolicy::kScatter;
    advise_options.replay_repetitions = static_cast<u32>(repetitions);
    const auto rec =
        adv.advise([&] { return triad(os::PagePolicy::kBind); }, advise_options);
    std::puts("");
    std::fputs(advisor::render_recommendation(rec).c_str(), stdout);
  }
  return 0;
}
