// Quickstart: measure a tiny workload with all three tools in ~40 lines of
// API. Simulates a 2-socket machine, runs a strided scan, and shows
//   1. EvSel      — which counters changed between two configurations,
//   2. Memhist    — where the load latencies went,
//   3. Phasenprüfer — where the ramp-up phase ended.
// Along the way npat::obs records spans of every tool stage; the demo
// finishes by dumping them as a Chrome trace plus a flame summary.
#include <cstdio>

#include "evsel/collector.hpp"
#include "evsel/compare.hpp"
#include "evsel/report.hpp"
#include "memhist/builder.hpp"
#include "obs/obs.hpp"
#include "os/procfs.hpp"
#include "phasen/attribution.hpp"
#include "phasen/report.hpp"
#include "sim/presets.hpp"
#include "util/json.hpp"
#include "workloads/cache_scan.hpp"
#include "workloads/rampup_app.hpp"

int main() {
  using namespace npat;

  // --- 1. EvSel: compare cache-friendly vs strided traversal -------------
  sim::MachineConfig config = sim::dual_socket_small(2);
  evsel::Collector collector(config);
  evsel::CollectOptions options;
  options.repetitions = 3;

  workloads::CacheScanParams friendly;
  friendly.size = 192;
  workloads::CacheScanParams strided = friendly;
  strided.variant = workloads::ScanVariant::kRowStride;

  const auto measurement_a = collector.measure(
      "unit-stride", [&] { return workloads::cache_scan_program(friendly); }, options);
  const auto measurement_b = collector.measure(
      "row-stride", [&] { return workloads::cache_scan_program(strided); }, options);
  const auto comparison = evsel::compare(measurement_a, measurement_b);
  evsel::ReportOptions report;
  report.max_rows = 10;
  report.show_descriptions = false;
  std::fputs(evsel::render_comparison(comparison, report).c_str(), stdout);

  // --- 2. Memhist: latency histogram of the strided scan -----------------
  sim::Machine machine(config);
  os::AddressSpace space(machine.topology());
  trace::Runner runner(machine, space);
  memhist::MemhistOptions hist_options;
  hist_options.slice_cycles = 40000;
  memhist::MemhistBuilder builder(machine, runner, hist_options);
  builder.start();
  runner.run(workloads::cache_scan_program(strided));
  auto histogram = builder.finish();
  memhist::annotate_with_machine_levels(histogram, config);
  std::puts("");
  std::fputs(histogram.render("Memhist: row-stride scan").c_str(), stdout);

  // --- 3. Phasenprüfer: find the ramp-up/compute transition --------------
  sim::Machine machine2(config);
  os::AddressSpace space2(machine2.topology());
  trace::Runner runner2(machine2, space2);
  os::FootprintRecorder recorder(space2);
  runner2.add_sampler(100000, [&](Cycles now) { recorder.sample(now); });
  workloads::RampupParams app;
  app.regions = 24;
  runner2.run(workloads::rampup_app_program(app));
  const auto split = phasen::detect_phases(recorder.samples());
  std::puts("");
  std::fputs(phasen::render_footprint_chart(recorder.samples(), split).c_str(), stdout);

  // --- 4. npat::obs: where did the toolkit itself spend its time? --------
  const std::string trace_path = "npat_quickstart_trace.json";
  util::write_file(trace_path, obs::tracer().chrome_trace().dump(2));
  std::puts("");
  std::fputs(obs::tracer().flame_summary().c_str(), stdout);
  std::printf("wrote %s — open in chrome://tracing or Perfetto\n", trace_path.c_str());
  return 0;
}
