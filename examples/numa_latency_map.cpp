// Example: map a machine's NUMA latency landscape with the PEBS
// load-latency facility — the matrix Intel mlc prints, produced through
// this toolkit's perf layer. A dependent pointer chase runs on core 0 and
// targets each node's memory in turn; the median sampled use latency per
// target is reported, then the full node matrix is derived from the
// interconnect hop distances.
//
// Also demonstrates the remote-probe protocol: Memhist readings travel
// through the wire format before the histogram is built, exactly like the
// headless server probe of the paper's Fig. 6.
#include <algorithm>
#include <cstdio>
#include <map>

#include "memhist/builder.hpp"
#include "memhist/remote.hpp"
#include "perf/load_latency.hpp"
#include "sim/presets.hpp"
#include "trace/runner.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/mlc_remote.hpp"

int main(int argc, char** argv) {
  using namespace npat;

  std::string preset = "cube8";
  i64 chase_steps = 40000;
  util::Cli cli("NUMA latency map: median load latency per (cpu node, memory node)");
  cli.add_flag("preset", &preset, "machine preset (dl580, dual, uma, cube8)");
  cli.add_flag("chase-steps", &chase_steps, "pointer-chase steps per cell");
  if (const auto rc = cli.parse_main(argc, argv)) return *rc;

  sim::MachineConfig config = sim::preset_by_name(preset);
  config.l3.size_bytes = MiB(2);  // let the chase actually reach DRAM
  std::fputs(config.topology.describe().c_str(), stdout);

  // Measure the median chase latency from core 0 into each node; collect
  // one median per hop distance (the topology is node-symmetric).
  sim::Machine machine(config);
  std::map<u32, Cycles> median_by_hops;
  for (sim::NodeId mem_node = 0; mem_node < config.topology.nodes; ++mem_node) {
    const u32 hops = config.topology.hops(0, mem_node);
    if (median_by_hops.count(hops)) continue;

    machine.reset();
    os::AddressSpace space(machine.topology());
    trace::Runner runner(machine, space);

    workloads::MlcParams params;
    params.buffer_bytes = MiB(8);
    params.target_node = mem_node;
    params.chase_steps = static_cast<u64>(chase_steps);
    params.think_instructions = 24;  // dependent chase, unloaded latency

    perf::LoadLatencySession session(machine);
    session.arm(1, 8);
    runner.run(workloads::mlc_program(params));
    const auto reading = session.disarm();

    std::vector<Cycles> latencies;
    for (const auto& sample : reading.samples) {
      if (sample.source == sim::DataSource::kLocalDram ||
          sample.source == sim::DataSource::kRemoteDram) {
        latencies.push_back(sample.latency);
      }
    }
    if (latencies.empty()) continue;
    std::nth_element(latencies.begin(), latencies.begin() + latencies.size() / 2,
                     latencies.end());
    median_by_hops[hops] = latencies[latencies.size() / 2];
  }

  std::vector<std::string> headers = {"cpu\\mem"};
  for (u32 m = 0; m < config.topology.nodes; ++m) headers.push_back(std::to_string(m));
  util::Table table(headers);
  table.set_title("median DRAM use latency in cycles (measured per hop distance)");
  for (usize c = 1; c < headers.size(); ++c) table.set_align(c, util::Align::kRight);
  for (sim::NodeId cpu_node = 0; cpu_node < config.topology.nodes; ++cpu_node) {
    std::vector<std::string> row = {std::to_string(cpu_node)};
    for (sim::NodeId mem_node = 0; mem_node < config.topology.nodes; ++mem_node) {
      const auto it = median_by_hops.find(config.topology.hops(cpu_node, mem_node));
      row.push_back(it == median_by_hops.end() ? "-" : std::to_string(it->second));
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);

  // Ship one chase's Memhist readings through the remote-probe wire
  // protocol, as the headless server probe would.
  machine.reset();
  os::AddressSpace space(machine.topology());
  trace::Runner runner(machine, space);
  memhist::MemhistOptions options;
  options.slice_cycles = 300000;
  memhist::MemhistBuilder builder(machine, runner, options);
  builder.start();
  workloads::MlcParams params = workloads::mlc_remote(config.topology, MiB(8));
  params.chase_steps = static_cast<u64>(chase_steps);
  const auto result = runner.run(workloads::mlc_program(params));
  builder.finish();

  auto pair = util::make_loopback_pair();
  memhist::Probe probe(pair.a);
  memhist::GuiCollector collector(pair.b);
  probe.send_hello(config.topology.nodes);
  probe.send_readings(builder.readings());
  probe.send_end(result.duration);
  collector.poll();
  auto histogram = collector.build(memhist::HistogramMode::kOccurrences);
  memhist::annotate_with_machine_levels(histogram, config);
  std::puts("");
  std::fputs(histogram.render("remote-probe histogram (farthest-node chase)").c_str(),
             stdout);
  std::printf("wire frames sent: %zu, dropped in transit: %zu\n", probe.frames_sent(),
              collector.dropped_frames());
  return 0;
}
