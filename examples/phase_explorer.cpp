// Example: Phasenprüfer beyond two phases — the paper's outlook case of
// "BSP-like programs, where multiple supersteps could be analyzed". A
// synthetic BSP application alternates allocation supersteps with compute
// supersteps; the k-phase dynamic program and the automatic model selector
// recover the superstep boundaries from the footprint alone, and counters
// are attributed per superstep.
#include <cstdio>

#include "os/procfs.hpp"
#include "phasen/attribution.hpp"
#include "phasen/report.hpp"
#include "sim/presets.hpp"
#include "trace/runner.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workloads/rampup_app.hpp"

namespace {

using namespace npat;

// A BSP-flavoured program: `supersteps` rounds of (allocate + initialize,
// then compute over everything so far).
trace::SimTask bsp_body(trace::ThreadContext& ctx, u32 supersteps, usize step_bytes) {
  std::vector<VirtAddr> regions;
  for (u32 step = 0; step < supersteps; ++step) {
    const VirtAddr region = ctx.alloc(step_bytes);
    regions.push_back(region);
    for (usize i = 0; i < step_bytes / kCacheLineBytes; ++i) {
      co_await ctx.store(region + i * kCacheLineBytes);
      co_await ctx.compute(2);
    }
    ctx.phase_mark(10 + step);
    // Compute superstep: sweep all data accumulated so far, repeatedly.
    for (u32 round = 0; round < 6; ++round) {
      for (const VirtAddr r : regions) {
        for (usize i = 0; i < step_bytes / kCacheLineBytes; i += 2) {
          co_await ctx.load(r + i * kCacheLineBytes);
          co_await ctx.compute(8);
        }
      }
    }
    ctx.phase_mark(100 + step);
  }
}

}  // namespace

int main(int argc, char** argv) {
  i64 supersteps = 3;
  i64 step_kb = 512;
  util::Cli cli("Phase explorer: k-phase detection on a BSP-like program");
  cli.add_flag("supersteps", &supersteps, "BSP supersteps");
  cli.add_flag("step-kb", &step_kb, "bytes allocated per superstep (KiB)");
  if (const auto rc = cli.parse_main(argc, argv)) return *rc;

  const sim::MachineConfig config = sim::dual_socket_small(2);
  sim::Machine machine(config);
  os::AddressSpace space(machine.topology());
  trace::Runner runner(machine, space);

  os::FootprintRecorder footprint(space);
  phasen::CounterTimeline timeline(machine);
  runner.add_sampler(3000, [&](Cycles now) {
    footprint.sample(now);
    timeline.sample(now);
  });

  const u32 steps = static_cast<u32>(supersteps);
  const usize bytes = static_cast<usize>(step_kb) * 1024;
  runner.run(trace::Program::single(
      [steps, bytes](trace::ThreadContext& ctx) { return bsp_body(ctx, steps, bytes); }));

  // The footprint staircase has one segment per superstep: allocation is a
  // near-vertical jump, so each superstep contributes one plateau.
  const usize expected_segments = steps;
  const auto split = phasen::detect_phases_k(footprint.samples(), expected_segments);
  std::fputs(phasen::render_footprint_chart(footprint.samples(), split).c_str(), stdout);

  const auto auto_split = phasen::detect_phases_auto(footprint.samples(),
                                                     expected_segments + 2);
  std::printf("\nautomatic model selection: %zu segments (expected %zu), R^2 = %.4f\n",
              auto_split.phases.size(), expected_segments, auto_split.fit_quality);

  const auto attribution = phasen::attribute(timeline, split);
  std::puts("");
  std::fputs(phasen::render_phase_counters(attribution,
                                           {sim::Event::kStoresRetired,
                                            sim::Event::kLoadsRetired,
                                            sim::Event::kPageWalks,
                                            sim::Event::kUncImcReads})
                 .c_str(),
             stdout);

  std::puts("\nJSON export of the split:");
  std::fputs(phasen::split_to_json(split).dump(2).substr(0, 600).c_str(), stdout);
  std::puts("\n...");
  return 0;
}
