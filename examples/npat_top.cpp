// Example: npat-top — a numatop-style live view over a running simulation.
// Where npat_stat summarizes a finished run, npat_top attaches the
// monitor::Sampler to the trace::Runner's time-based hook and refreshes a
// per-node table (local/remote ratio, IPC, DRAM bandwidth, interconnect
// traffic, RSS) every few sampling periods while the workload executes,
// with a sparkline of each node's recent remote-access ratio.
//
//   npat_top --workload=sort --preset=dual --threads=4
//   npat_top --workload=mlc --period=25000 --refresh-every=3 --clear
//   npat_top --workload=stream --csv=run.csv --json=run.json --wire=run.bin
//   npat_top --workload=gups --trace=top_trace.json
//
// With --fleet=N the same workload runs on N simulated probe hosts whose
// telemetry streams travel over loopback channels (protocol v3, one
// host-id Hello per probe, optional FaultyChannel fault injection) into a
// fleet::FleetCollector, and the merged fleet-wide table is rendered:
//
//   npat_top --fleet=4 --workload=stream --refresh-every=8
//   npat_top --fleet=3 --fault-drop=0.05 --fault-corrupt=0.05 --clear
//
// Adding --supervise upgrades every stream to the v4 resume protocol:
// each host replays through a resilience::SupervisedProbe that redials
// the collector whenever its link dies, and the collector dedups the
// retransmissions so every sample is merged exactly once. The injectors
// become survivable — --fault-disconnect=N cuts each connection mid-frame
// after N accepted sends — and --die-round=R parks host00 entirely for a
// stretch of refresh rounds so the LIVE column visibly decays to stale
// (and back) while the rest of the fleet streams on:
//
//   npat_top --fleet=3 --supervise --fault-disconnect=12 --fault-drop=0.05
//   npat_top --fleet=3 --supervise --die-round=4 --clear
//
// With --tasks the runner charges per-(pid, tid) PMU domains and the view
// becomes a numatop-style keyboard drill-down: nodes (or fleet hosts) →
// processes → threads → hot memory areas, each level a table of RMA, LMA,
// RMA/LMA ratio, CPI and average load latency. --keys scripts one
// keystroke per refresh ('.' is a no-op), so the whole descent is
// reproducible in CI; in fleet mode the per-task telemetry travels as
// protocol-v5 TaskTable + TaskSample frames over the same (faulty,
// supervised) channels as the node samples:
//
//   npat_top --tasks --workload=sort --keys="djd d"
//   npat_top --fleet=2 --tasks --keys="jdddd" --supervise
//
// --health appends the npat::introspect pane after every refresh: one row
// per probe with hop latency (from sampled emit stamps), reorder dwell,
// stage depths and damage, plus the flight-recorder summary line. In
// single-host mode the drained samples are routed through an internal
// stamped loopback probe so the pipeline observes itself end to end; in
// fleet mode the rows come straight from the collector. The self-metrics
// surface exports on exit: --prom (Prometheus text), --metrics-json, and
// --flight (the flight-recorder ring as JSON — also dumped on a fatal
// error so the black box survives a crash):
//
//   npat_top --health --workload=stream
//   npat_top --fleet=3 --supervise --fault-disconnect=12 --health
//   npat_top --health --prom=self.prom --metrics-json=self.json --flight=flight.json
//
// --advise (single-host) closes the detect→act loop after the run: the
// placement advisor profiles the same workload, ranks candidate
// thread/page placements from the counter signature, replays the top
// picks under an os-level policy override, and appends the before/after
// verdict pane:
//
//   npat_top --workload=stream --advise
//   npat_top --workload=gups --preset=dl580 --advise
//
// --trust (single-host) runs the npat::validate refutation-kernel suite
// against the same machine preset before the workload, publishes the
// resulting TrustReport process-wide — evsel comparisons quarantine
// refuted events, the advisor degrades to its uncore fallback when a
// primary event drops below bounded — and appends the per-event trust
// pane (tier, deciding kernel, observed ratio) after the run:
//
//   npat_top --workload=stream --trust
//   npat_top --workload=gups --trust --advise
#include <algorithm>
#include <optional>
#include <cstdio>
#include <fstream>
#include <memory>

#include "advisor/advisor.hpp"
#include "advisor/report.hpp"
#include "fleet/collector.hpp"
#include "fleet/view.hpp"
#include "introspect/flight.hpp"
#include "introspect/health.hpp"
#include "memhist/remote.hpp"
#include "monitor/aggregate.hpp"
#include "monitor/export.hpp"
#include "monitor/sampler.hpp"
#include "monitor/task_sampler.hpp"
#include "monitor/view.hpp"
#include "proc/drill.hpp"
#include "proc/task.hpp"
#include "obs/obs.hpp"
#include "phasen/online.hpp"
#include "resilience/probe.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "validate/harness.hpp"
#include "validate/trust.hpp"
#include "workloads/kernels.hpp"
#include "workloads/mlc_remote.hpp"
#include "workloads/parallel_sort.hpp"
#include "workloads/rampup_app.hpp"

namespace {

using namespace npat;

trace::Program workload_by_name(const std::string& name, u32 threads) {
  if (name == "sort") {
    workloads::ParallelSortParams params;
    params.elements = 1 << 16;
    params.threads = threads;
    return workloads::parallel_sort_program(params);
  }
  if (name == "mlc") {
    workloads::MlcParams params;
    params.buffer_bytes = MiB(8);
    params.chase_steps = 150000;
    return workloads::mlc_program(params);
  }
  if (name == "stream") {
    workloads::StreamParams params;
    params.threads = threads;
    return workloads::stream_triad_program(params);
  }
  if (name == "gups") {
    workloads::GupsParams params;
    params.threads = threads;
    return workloads::gups_program(params);
  }
  if (name == "rampup") {
    workloads::RampupParams params;
    return workloads::rampup_app_program(params);
  }
  throw util::CliError("unknown workload: " + name + " (try sort, mlc, stream, gups, rampup)");
}

void write_file(const std::string& path, const void* data, usize bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw util::CliError("cannot write " + path);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
}

/// End-of-run self-metrics surface: the obs registry + flight totals as
/// Prometheus text and JSON, and the flight ring itself as the black-box
/// artifact. All three read process-wide state, so they cover whichever
/// mode (single-host, fleet, supervised) just ran.
void write_self_exports(const std::string& prom_path, const std::string& json_path,
                        const std::string& flight_path) {
  if (!prom_path.empty()) {
    const std::string text = introspect::self_metrics_prometheus();
    write_file(prom_path, text.data(), text.size());
    std::printf("wrote %s (%s)\n", prom_path.c_str(), util::human_bytes(text.size()).c_str());
  }
  if (!json_path.empty()) {
    const std::string json = introspect::self_metrics_json().dump(2) + "\n";
    write_file(json_path, json.data(), json.size());
    std::printf("wrote %s (%s)\n", json_path.c_str(), util::human_bytes(json.size()).c_str());
  }
  if (!flight_path.empty()) {
    introspect::flight().dump(flight_path);
    std::printf("wrote %s (flight ring: %llu events)\n", flight_path.c_str(),
                static_cast<unsigned long long>(introspect::flight().recorded()));
  }
}

struct FleetFlags {
  usize hosts = 0;
  usize shards = 1;  // decode workers; 1 = sequential collector
  std::string workload;
  std::string preset;
  u32 threads = 4;
  Cycles period = 50000;
  usize refresh_every = 4;
  double fault_drop = 0.0;
  double fault_corrupt = 0.0;
  bool supervise = false;
  usize fault_disconnect = 0;  // cut each supervised link after N accepted sends
  usize die_round = 0;         // host00 stops pumping at this refresh round
  usize revive_round = 0;      // ... and returns here (0 = die_round + 12)
  bool clear = false;
  bool tasks = false;          // per-task attribution + drill-down view
  std::string keys;            // scripted drill keystrokes, one per refresh
  bool health = false;         // append the introspect health pane per refresh
};

void render_health_pane(const fleet::FleetCollector& collector, const std::string& title) {
  introspect::HealthOptions options;
  options.title = title;
  std::fputs(introspect::render_health(collector.health_rows(), collector.clock(), options)
                 .c_str(),
             stdout);
}

struct HostSession {
  std::string id;
  u32 node_count = 0;
  std::vector<monitor::Sample> samples;
  std::vector<monitor::TaskSample> task_samples;  // --tasks only
  proc::TaskRegistry registry;                    // probe-side identities
};

/// Applies the next scripted keystroke (if any) and renders the drill
/// view; shared by the single-host and both fleet paths.
struct DrillSession {
  proc::DrillDown drill;
  proc::DrillOptions options;
  std::string keys;
  usize next_key = 0;

  DrillSession(bool fleet, bool clear, std::string title, std::string scripted)
      : drill(fleet), keys(std::move(scripted)) {
    options.clear_screen = clear;
    options.title = std::move(title);
  }

  void refresh(const proc::DrillScope& scope) {
    if (next_key < keys.size()) drill.apply_key(keys[next_key++], scope);
    std::fputs(proc::render_drill(drill, scope, options).c_str(), stdout);
  }
};

// Phase 1 of every fleet mode: simulate each probe host and capture its
// telemetry session for replay.
std::vector<HostSession> simulate_hosts(const FleetFlags& flags) {
  std::vector<HostSession> hosts;
  for (usize h = 0; h < flags.hosts; ++h) {
    sim::Machine machine(sim::preset_by_name(flags.preset));
    os::AddressSpace space(machine.topology());
    trace::RunnerConfig runner_config;
    runner_config.task_accounting = flags.tasks;
    trace::Runner runner(machine, space, runner_config);
    monitor::SamplerConfig sampler_config;
    sampler_config.period = flags.period;
    sampler_config.ring_capacity = 1 << 16;  // keep the whole session
    monitor::Sampler sampler(machine, space, sampler_config);
    sampler.attach(runner);
    monitor::TaskSamplerConfig task_config;
    task_config.period = flags.period;
    task_config.ring_capacity = 1 << 16;
    monitor::TaskSampler task_sampler(machine, task_config);
    if (flags.tasks) task_sampler.attach(runner);

    const trace::Program program = workload_by_name(flags.workload, flags.threads);
    HostSession host;
    host.id = util::format("host%02zu", h);
    if (flags.tasks) host.registry.add_program(program);
    runner.run(program);
    if (machine.max_clock() > 0) {
      sampler.sample(machine.max_clock());
      if (flags.tasks) task_sampler.sample(machine.max_clock());
    }

    host.node_count = machine.nodes();
    host.samples = sampler.ring().drain();
    if (flags.tasks) host.task_samples = task_sampler.ring().drain();
    // Every host's clock starts at its own arbitrary offset, the way real
    // unsynchronized machines' do; the collector aligns the skew away.
    const Cycles skew = static_cast<Cycles>(h) * (flags.period * 17 + 1013);
    for (monitor::Sample& sample : host.samples) sample.timestamp += skew;
    for (monitor::TaskSample& sample : host.task_samples) sample.timestamp += skew;
    hosts.push_back(std::move(host));
  }
  return hosts;
}

/// Builds the fleet drill scope for one refresh: host labels and task
/// windows from the merged view, names from the drilled host's registry.
proc::DrillScope make_fleet_drill_scope(const fleet::FleetCollector& collector,
                                        const fleet::FleetView& view,
                                        const proc::DrillDown& drill) {
  proc::DrillScope scope;
  scope.hosts.reserve(view.hosts.size());
  scope.host_tasks.reserve(view.hosts.size());
  for (const fleet::HostRow& row : view.hosts) {
    scope.hosts.push_back(row.host_id);
    scope.host_tasks.push_back(row.tasks);
  }
  if (!view.hosts.empty()) {
    const usize selected = std::min(drill.selected_host(), view.hosts.size() - 1);
    scope.tasks = view.hosts[selected].tasks;
    scope.registry = &collector.probe(selected).registry;
  }
  return scope;
}

fleet::FleetViewOptions make_fleet_view_options(const FleetFlags& flags) {
  fleet::FleetViewOptions view_options;
  view_options.clear_screen = flags.clear;
  view_options.title = util::format("npat-fleet — %zux %s on %s%s", flags.hosts,
                                    flags.workload.c_str(), flags.preset.c_str(),
                                    flags.supervise ? " (supervised)" : "");
  return view_options;
}

// Phase 2 (supervised): replay every session through a
// resilience::SupervisedProbe so the streams survive the injected faults.
// Each probe dials the collector over loopback — wrapped in a
// DisconnectingChannel when --fault-disconnect asks for mid-frame cuts,
// then in a FaultyChannel for drop/corrupt noise — and the collector
// reattaches the same probe slot on every redial, deduplicating
// retransmissions by (epoch, seq). The collector clock advances one
// sampling period per refresh round, which drives the per-probe liveness
// column; --die-round parks host00 (no pump, no sends) for a stretch of
// rounds so the view demonstrates a probe dying and returning.
int run_supervised_fleet(const FleetFlags& flags, const std::vector<HostSession>& hosts) {
  fleet::FleetCollectorConfig collector_config;
  collector_config.shards = flags.shards;
  collector_config.liveness.stale_after = flags.period * 4;
  collector_config.liveness.dead_after = flags.period * 12;
  collector_config.liveness.dwell = 2;
  fleet::FleetCollector collector(collector_config);

  struct Link {
    std::unique_ptr<resilience::SupervisedProbe> probe;
    std::vector<std::shared_ptr<util::DisconnectingChannel>> cuts;
    std::vector<std::shared_ptr<util::FaultyChannel>> faults;
    usize slot = 0;
    usize connections = 0;
    usize cursor = 0;
    usize task_cursor = 0;
    bool table_sent = false;
    bool end_sent = false;
  };
  std::vector<std::unique_ptr<Link>> links;  // stable addresses for the dial closures
  for (usize h = 0; h < hosts.size(); ++h) {
    auto link = std::make_unique<Link>();
    Link* raw = link.get();
    auto dial = [raw, h, &collector, &hosts, &flags]() -> std::shared_ptr<util::ByteChannel> {
      auto pair = util::make_loopback_pair();
      if (raw->connections == 0) {
        raw->slot = collector.add_probe(pair.b, hosts[h].id);
      } else {
        collector.reattach_probe(raw->slot, pair.b);
      }
      const usize attempt = raw->connections++;
      std::shared_ptr<util::ByteChannel> channel = pair.a;
      if (flags.fault_disconnect > 0) {
        util::DisconnectingChannel::Config cut;
        cut.cut_after_sends = flags.fault_disconnect;
        cut.cut_delivery_bytes = 9;  // shorter than any frame: one clean truncation per cut
        auto wrapped = std::make_shared<util::DisconnectingChannel>(channel, cut);
        raw->cuts.push_back(wrapped);
        channel = wrapped;
      }
      if (flags.fault_drop > 0.0 || flags.fault_corrupt > 0.0) {
        util::FaultyChannel::Config faults;
        faults.drop_probability = flags.fault_drop;
        faults.corrupt_probability = flags.fault_corrupt;
        faults.seed = 1000 + h * 101 + attempt;
        auto wrapped = std::make_shared<util::FaultyChannel>(channel, faults);
        raw->faults.push_back(wrapped);
        channel = wrapped;
      }
      return channel;
    };
    resilience::SupervisedProbeConfig probe_config;
    probe_config.host_id = hosts[h].id;
    probe_config.node_count = hosts[h].node_count;
    probe_config.heartbeat_interval = flags.period;
    probe_config.resume_timeout = flags.period * 2;
    probe_config.backoff = {.initial = flags.period / 8 + 1,
                            .max = flags.period * 2,
                            .multiplier = 2.0,
                            .jitter = 0.5};
    probe_config.seed = 9000 + h;
    link->probe =
        std::make_unique<resilience::SupervisedProbe>(std::move(probe_config), std::move(dial));
    links.push_back(std::move(link));
  }

  fleet::FleetViewOptions view_options = make_fleet_view_options(flags);
  obs::AlertEngine alerts;
  alerts.add_rule(obs::remote_ratio_rule(view_options.warn_remote_ratio,
                                         view_options.bad_remote_ratio));
  std::vector<phasen::OnlineDetector> phase_detectors(hosts.size());
  std::vector<usize> phase_cursors(hosts.size(), 0);
  view_options.host_phases.resize(hosts.size());

  const usize revive_round = (flags.die_round > 0 && flags.revive_round == 0)
                                 ? flags.die_round + 12
                                 : flags.revive_round;
  DrillSession drill(true, flags.clear,
                     util::format("npat-top/proc — fleet of %zu (supervised)", hosts.size()),
                     flags.keys);
  Cycles now = 0;
  bool done = false;
  for (usize round = 1; !done && round <= 20000; ++round) {
    done = true;
    for (usize h = 0; h < links.size(); ++h) {
      Link& link = *links[h];
      const auto& samples = hosts[h].samples;
      const bool down = h == 0 && flags.die_round > 0 && round >= flags.die_round &&
                        (revive_round == 0 || round < revive_round);
      if (down) {  // the "crashed" probe: no pump, no sends, no heartbeats
        done = false;
        continue;
      }
      link.probe->pump(now);
      if (flags.tasks && !link.table_sent) {
        // Identities ride ahead of the first per-task sample; the replay
        // buffer delivers them exactly once across any reconnects.
        link.probe->send_task_table(hosts[h].registry.to_wire(), now);
        link.table_sent = true;
      }
      for (usize i = 0; i < flags.refresh_every && link.cursor < samples.size();
           ++i, ++link.cursor) {
        link.probe->send_sample(monitor::to_wire(samples[link.cursor]), now);
      }
      for (usize i = 0;
           i < flags.refresh_every && link.task_cursor < hosts[h].task_samples.size();
           ++i, ++link.task_cursor) {
        link.probe->send_task_sample(
            monitor::to_wire_tasks(hosts[h].task_samples[link.task_cursor],
                                   hosts[h].registry.task_ids()),
            now);
      }
      if (link.cursor >= samples.size() && link.task_cursor >= hosts[h].task_samples.size() &&
          !link.end_sent) {
        link.probe->send_end(samples.empty() ? 0 : samples.back().timestamp, now);
        link.end_sent = true;
      }
      if (!(link.end_sent && link.probe->fully_acked())) done = false;
    }
    collector.poll(now);
    for (usize h = 0; h < links.size(); ++h) {
      const auto& merged = collector.probe(links[h]->slot).samples;
      for (; phase_cursors[h] < merged.size(); ++phase_cursors[h]) {
        phase_detectors[h].push(merged[phase_cursors[h]]);
      }
      view_options.host_phases[h] = phase_detectors[h].phase_label();
    }
    const fleet::FleetView view = collector.view();
    if (flags.tasks) {
      drill.refresh(make_fleet_drill_scope(collector, view, drill.drill));
    } else {
      view_options.host_alerts = fleet::evaluate_host_alerts(alerts, view);
      std::fputs(fleet::render_fleet_view(view, view_options).c_str(), stdout);
    }
    if (flags.health) render_health_pane(collector, "npat-health — supervised fleet");
    if (!done) std::fputs("\n", stdout);
    now += flags.period;
  }

  const fleet::ProbeDamage damage = collector.view().damage_total();
  usize data = 0, control = 0, retrans = 0, reconnects = 0, dials = 0, heartbeats = 0,
        evictions = 0;
  usize cut_frames = 0, stall_discards = 0, dropped_in_transit = 0, corrupted = 0;
  u64 delivered = 0, duplicates = 0;
  for (const auto& link : links) {
    data += link->probe->data_transmissions();
    control += link->probe->control_transmissions();
    retrans += link->probe->retransmissions();
    reconnects += link->probe->reconnects();
    dials += link->probe->dial_attempts();
    heartbeats += link->probe->heartbeats_sent();
    evictions += link->probe->evictions();
    for (const auto& cut : link->cuts) {
      cut_frames += cut->cut_frames();
      stall_discards += cut->stall_discards();
    }
    for (const auto& faulty : link->faults) {
      dropped_in_transit += faulty->dropped_sends();
      corrupted += faulty->corrupted_sends();
    }
    const fleet::ProbeState& state = collector.probe(link->slot);
    delivered += state.delivered_frames;
    duplicates += state.duplicate_frames;
  }
  std::printf(
      "\nsupervised replay complete: %zu hosts, %zu sequenced frames accepted "
      "(%zu retransmissions), %llu delivered exactly once, %llu duplicates suppressed\n",
      hosts.size(), data, retrans, static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(duplicates));
  std::printf("links: %zu dial attempts, %zu reconnects, %zu control frames, %zu heartbeats, "
              "%zu replay evictions\n",
              dials, reconnects, control, heartbeats, evictions);
  std::printf(
      "transport damage: %zu cut mid-frame, %zu discarded in stalls, %zu dropped in transit, "
      "%zu corrupted, %zu rejected by decoders (%zu resyncs, %zu EOF truncations), "
      "%zu unexpected frames\n",
      cut_frames, stall_discards, dropped_in_transit, corrupted, damage.dropped_frames,
      damage.resyncs, damage.truncated_flushes, damage.unexpected_frames);
  if (flags.tasks) {
    std::printf("per-task telemetry: %zu rows orphaned before registration, %zu attributed late\n",
                damage.orphaned_task_rows, damage.orphans_attributed);
  }
  if (!alerts.transitions().empty()) {
    std::printf("\nalert transitions:\n%s", alerts.render_transitions().c_str());
  }
  return done ? 0 : 1;
}

int run_fleet(const FleetFlags& flags) {
  const std::vector<HostSession> hosts = simulate_hosts(flags);
  if (flags.supervise) return run_supervised_fleet(flags, hosts);

  // Phase 2: replay every session concurrently over loopback — through
  // fault injection when requested — into the fleet collector, refreshing
  // the merged view as the streams interleave.
  fleet::FleetCollectorConfig collector_config;
  collector_config.shards = flags.shards;
  fleet::FleetCollector collector(collector_config);
  struct Link {
    std::shared_ptr<util::FaultyChannel> tx;
    memhist::Probe probe;
    usize cursor = 0;
    usize task_cursor = 0;
  };
  std::vector<Link> links;
  for (usize h = 0; h < hosts.size(); ++h) {
    auto pair = util::make_loopback_pair();
    util::FaultyChannel::Config faults;
    faults.drop_probability = flags.fault_drop;
    faults.corrupt_probability = flags.fault_corrupt;
    faults.seed = 1000 + h;
    auto tx = std::make_shared<util::FaultyChannel>(pair.a, faults);
    collector.add_probe(pair.b);
    Link link{tx, memhist::Probe(tx), 0, 0};
    // With --health the plain probes opt into sampled emit stamping, so
    // the pane's latency column measures the loopback hop end to end.
    if (flags.health) link.probe.set_stamp_interval(4);
    link.probe.send_hello(hosts[h].node_count, hosts[h].id);
    if (flags.tasks) link.probe.send_task_table(hosts[h].registry.to_wire());
    links.push_back(std::move(link));
  }

  fleet::FleetViewOptions view_options = make_fleet_view_options(flags);
  obs::AlertEngine alerts;
  alerts.add_rule(obs::remote_ratio_rule(view_options.warn_remote_ratio,
                                         view_options.bad_remote_ratio));

  // One online Phasenprüfer per probe stream: detection runs on what the
  // collector actually *received* (post transport damage), the same data
  // the per-host rows render. The collector has already aligned each
  // host's clock to origin 0.
  std::vector<phasen::OnlineDetector> phase_detectors(hosts.size());
  std::vector<usize> phase_cursors(hosts.size(), 0);
  view_options.host_phases.resize(hosts.size());

  DrillSession drill(true, flags.clear,
                     util::format("npat-top/proc — fleet of %zu", hosts.size()), flags.keys);
  Cycles wall = 0;  // largest timestamp sent so far; drives the health pane's clock
  for (bool sending = true; sending;) {
    sending = false;
    for (usize h = 0; h < links.size(); ++h) {
      Link& link = links[h];
      const auto& samples = hosts[h].samples;
      const auto& task_samples = hosts[h].task_samples;
      for (usize i = 0; i < flags.refresh_every && link.cursor < samples.size();
           ++i, ++link.cursor) {
        const monitor::Sample& sample = samples[link.cursor];
        if (flags.health) {
          link.probe.set_clock(sample.timestamp);
          wall = std::max(wall, sample.timestamp);
        }
        link.probe.send_sample(monitor::to_wire(sample));
      }
      for (usize i = 0; i < flags.refresh_every && link.task_cursor < task_samples.size();
           ++i, ++link.task_cursor) {
        if (flags.health) link.probe.set_clock(task_samples[link.task_cursor].timestamp);
        link.probe.send_task_sample(
            monitor::to_wire_tasks(task_samples[link.task_cursor], hosts[h].registry.task_ids()));
      }
      if (link.cursor < samples.size() || link.task_cursor < task_samples.size()) {
        sending = true;
      } else if (!link.tx->closed()) {
        link.probe.send_end(samples.empty() ? 0 : samples.back().timestamp);
        link.tx->close();
      }
    }
    collector.poll(flags.health ? wall : 0);
    for (usize h = 0; h < hosts.size(); ++h) {
      const auto& merged = collector.probe(h).samples;
      for (; phase_cursors[h] < merged.size(); ++phase_cursors[h]) {
        phase_detectors[h].push(merged[phase_cursors[h]]);
      }
      view_options.host_phases[h] = phase_detectors[h].phase_label();
    }
    const fleet::FleetView view = collector.view();
    if (flags.tasks) {
      drill.refresh(make_fleet_drill_scope(collector, view, drill.drill));
    } else {
      view_options.host_alerts = fleet::evaluate_host_alerts(alerts, view);
      std::fputs(fleet::render_fleet_view(view, view_options).c_str(), stdout);
    }
    if (flags.health) render_health_pane(collector, "npat-health — fleet");
    if (sending) std::fputs("\n", stdout);
  }

  const fleet::ProbeDamage damage = collector.view().damage_total();
  usize sent = 0, failures = 0, dropped_in_transit = 0, corrupted = 0;
  for (const Link& link : links) {
    sent += link.probe.frames_sent();
    failures += link.probe.send_failures();
    dropped_in_transit += link.tx->dropped_sends();
    corrupted += link.tx->corrupted_sends();
  }
  std::printf(
      "\nfleet replay complete: %zu hosts, %zu frames sent (%zu send failures), "
      "%zu samples merged\n",
      hosts.size(), sent, failures, collector.samples_merged());
  std::printf(
      "transport damage: %zu dropped in transit, %zu corrupted, %zu rejected by decoders "
      "(%zu resyncs, %zu EOF truncations), %zu unexpected frames\n",
      dropped_in_transit, corrupted, damage.dropped_frames, damage.resyncs,
      damage.truncated_flushes, damage.unexpected_frames);
  if (flags.tasks) {
    std::printf("per-task telemetry: %zu rows orphaned before registration, %zu attributed late\n",
                damage.orphaned_task_rows, damage.orphans_attributed);
  }
  if (!alerts.transitions().empty()) {
    std::printf("\nalert transitions:\n%s", alerts.render_transitions().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "sort";
  std::string preset = "dual";
  std::string csv_path;
  std::string json_path;
  std::string wire_path;
  std::string trace_path;
  i64 threads = 4;
  i64 period = 50000;
  i64 refresh_every = 4;
  i64 read_cost = 0;
  i64 fleet = 0;
  i64 shards = 1;
  double fault_drop = 0.0;
  double fault_corrupt = 0.0;
  bool supervise = false;
  i64 fault_disconnect = 0;
  i64 die_round = 0;
  i64 revive_round = 0;
  bool clear = false;
  bool tasks = false;
  std::string keys;
  std::string csv_tasks_path;
  std::string json_tasks_path;
  std::string wire_tasks_path;
  bool health = false;
  bool advise = false;
  bool trust = false;
  std::string prom_path;
  std::string metrics_json_path;
  std::string flight_path;

  util::Cli cli("npat top — live per-node NUMA telemetry for a running workload");
  cli.add_flag("workload", &workload, "sort | mlc | stream | gups | rampup");
  cli.add_flag("preset", &preset, "machine preset (dl580, dual, uma, cube8)");
  cli.add_flag("threads", &threads, "worker threads for parallel workloads");
  cli.add_flag("period", &period, "sampling period in simulated cycles");
  cli.add_flag("refresh-every", &refresh_every, "sampling periods per view refresh");
  cli.add_flag("read-cost", &read_cost, "simulated cycles charged per sample (models an agent)");
  cli.add_flag("fleet", &fleet, "simulate N probe hosts and render the merged fleet view");
  cli.add_flag("shards", &shards,
               "fleet mode: decode the probe channels on N worker threads (1 = sequential)");
  cli.add_flag("fault-drop", &fault_drop, "fleet mode: per-frame drop probability in transit");
  cli.add_flag("fault-corrupt", &fault_corrupt, "fleet mode: per-frame corruption probability");
  cli.add_flag("supervise", &supervise,
               "fleet mode: replay through supervised probes (v4 resume protocol)");
  cli.add_flag("fault-disconnect", &fault_disconnect,
               "supervised fleet: cut each connection after N accepted frames (0 = never)");
  cli.add_flag("die-round", &die_round,
               "supervised fleet: host00 stops pumping at this refresh round (0 = never)");
  cli.add_flag("revive-round", &revive_round,
               "supervised fleet: host00 returns at this round (0 = die-round + 12)");
  cli.add_flag("clear", &clear, "ANSI clear-screen between refreshes (live top feel)");
  cli.add_flag("tasks", &tasks,
               "per-task attribution + numatop-style drill-down (node > process > thread > area)");
  cli.add_flag("keys", &keys,
               "scripted drill keystrokes, one per refresh ('.' = no-op; needs --tasks)");
  cli.add_flag("csv-tasks", &csv_tasks_path, "dump per-task samples as CSV to this path");
  cli.add_flag("json-tasks", &json_tasks_path, "dump per-task samples as JSON to this path");
  cli.add_flag("wire-tasks", &wire_tasks_path,
               "dump the per-task session as a v5 wire stream to this path");
  cli.add_flag("health", &health,
               "append the pipeline self-observability pane (hop latency, depths, damage)");
  cli.add_flag("advise", &advise,
               "append the placement-advisor pane: rank placements, apply the best and rerun");
  cli.add_flag("trust", &trust,
               "run the counter trust harness first, degrade untrusted events downstream, "
               "and append the trust pane");
  cli.add_flag("prom", &prom_path, "export self-metrics as Prometheus text to this path");
  cli.add_flag("metrics-json", &metrics_json_path, "export self-metrics as JSON to this path");
  cli.add_flag("flight", &flight_path,
               "dump the flight-recorder ring as JSON to this path (also on fatal error)");
  cli.add_flag("csv", &csv_path, "dump all samples as CSV to this path");
  cli.add_flag("json", &json_path, "dump all samples as JSON to this path");
  cli.add_flag("wire", &wire_path, "dump the session as a wire stream to this path");
  cli.add_flag("trace", &trace_path, "dump a Chrome trace (about:tracing) to this path");

  try {
    if (const auto rc = cli.parse_main(argc, argv)) return *rc;
    // Arm the black box before anything can crash: committed alert
    // transitions land in the flight ring, and a std::terminate dumps the
    // ring so the last events before a crash survive it.
    introspect::install_alert_hook();
    introspect::install_terminate_dump("npat_flight_fatal.json");
    if (period <= 0 || refresh_every <= 0) throw util::CliError("period/refresh-every must be > 0");
    if (fleet < 0 || fault_drop < 0.0 || fault_drop > 1.0 || fault_corrupt < 0.0 ||
        fault_corrupt > 1.0) {
      throw util::CliError("--fleet must be >= 0 and fault probabilities within [0, 1]");
    }
    if ((supervise || fault_disconnect > 0 || die_round > 0) && fleet <= 0) {
      throw util::CliError("--supervise/--fault-disconnect/--die-round require --fleet=N");
    }
    if (shards < 1 || shards > 256) throw util::CliError("--shards must be within [1, 256]");
    if (shards > 1 && fleet <= 0) throw util::CliError("--shards=N requires --fleet=N");
    if (fault_disconnect > 0 && !supervise) {
      throw util::CliError("--fault-disconnect needs --supervise (a plain probe cannot resume)");
    }
    if (fault_disconnect != 0 && fault_disconnect < 4) {
      // Each reconnect spends Hello + Resume before data flows, and the
      // fatal frame is truncated; below 4 no connection ever delivers.
      throw util::CliError("--fault-disconnect must be 0 or >= 4");
    }
    if (die_round < 0 || revive_round < 0 || (revive_round > 0 && revive_round <= die_round)) {
      throw util::CliError("--revive-round must be 0 or later than --die-round");
    }
    if (!keys.empty() && !tasks) throw util::CliError("--keys needs --tasks (it drives the drill)");
    if (!tasks && (!csv_tasks_path.empty() || !json_tasks_path.empty() ||
                   !wire_tasks_path.empty())) {
      throw util::CliError("--csv-tasks/--json-tasks/--wire-tasks need --tasks");
    }
    if (fleet > 0 && (!csv_tasks_path.empty() || !json_tasks_path.empty() ||
                      !wire_tasks_path.empty())) {
      throw util::CliError("task export flags are single-host only (fleet streams them as v5)");
    }
    if (advise && fleet > 0) {
      throw util::CliError("--advise is single-host only (it replays the workload locally)");
    }
    if (trust && fleet > 0) {
      throw util::CliError("--trust is single-host only (it validates the local machine model)");
    }

    // --trust: refute the counters before trusting the telemetry built on
    // them. The published report degrades downstream consumers process-wide
    // (evsel comparisons quarantine refuted events, the advisor falls back
    // to the uncore when a primary is below bounded).
    std::optional<validate::SuiteResult> trust_result;
    if (trust) {
      validate::SuiteOptions suite_options;
      suite_options.machine_name = preset;
      trust_result = validate::run_suite(sim::preset_by_name(preset), suite_options);
      validate::set_active_trust_report(trust_result->report);
      std::printf("trust harness: %zu checks, %zu failed (%zu events validated)\n",
                  trust_result->checks_run(), trust_result->checks_failed(),
                  trust_result->report.validated_events());
    }
    if (fleet > 0) {
      FleetFlags flags;
      flags.hosts = static_cast<usize>(fleet);
      flags.shards = static_cast<usize>(shards);
      flags.workload = workload;
      flags.preset = preset;
      flags.threads = static_cast<u32>(threads);
      flags.period = static_cast<Cycles>(period);
      flags.refresh_every = static_cast<usize>(refresh_every);
      flags.fault_drop = fault_drop;
      flags.fault_corrupt = fault_corrupt;
      flags.supervise = supervise;
      flags.fault_disconnect = static_cast<usize>(fault_disconnect);
      flags.die_round = static_cast<usize>(die_round);
      flags.revive_round = static_cast<usize>(revive_round);
      flags.clear = clear;
      flags.tasks = tasks;
      flags.keys = keys;
      flags.health = health;
      const int code = run_fleet(flags);
      write_self_exports(prom_path, metrics_json_path, flight_path);
      return code;
    }

    sim::Machine machine(sim::preset_by_name(preset));
    os::AddressSpace space(machine.topology());
    trace::RunnerConfig runner_config;
    runner_config.task_accounting = tasks;
    trace::Runner runner(machine, space, runner_config);

    monitor::SamplerConfig sampler_config;
    sampler_config.period = static_cast<Cycles>(period);
    sampler_config.read_cost_cycles = static_cast<Cycles>(read_cost);
    monitor::Sampler sampler(machine, space, sampler_config);
    sampler.attach(runner);

    monitor::TaskSamplerConfig task_config;
    task_config.period = static_cast<Cycles>(period);
    monitor::TaskSampler task_sampler(machine, task_config);
    if (tasks) task_sampler.attach(runner);
    proc::TaskRegistry registry;

    // --health: an internal stamped loopback probe routes every drained
    // sample through a FleetCollector, so even the single-host pipeline
    // observes its own hop latency, stage depths and decode rate.
    std::unique_ptr<fleet::FleetCollector> health_collector;
    std::unique_ptr<memhist::Probe> health_probe;
    if (health) {
      health_collector = std::make_unique<fleet::FleetCollector>();
      auto pair = util::make_loopback_pair();
      health_collector->add_probe(pair.b, "local");
      health_probe = std::make_unique<memhist::Probe>(pair.a);
      health_probe->set_stamp_interval(4);
      health_probe->send_hello(machine.nodes(), "local");
    }
    DrillSession drill(false, clear,
                       util::format("npat-top/proc — %s on %s", workload.c_str(), preset.c_str()),
                       keys);

    monitor::ViewOptions view_options;
    view_options.clear_screen = clear;
    view_options.title = util::format("npat-top — %s on %s", workload.c_str(), preset.c_str());

    // The view's ok/warn/bad cues come from the alert engine (hysteresis
    // included), seeded with the same thresholds the colours used to apply
    // inline.
    obs::AlertEngine alerts;
    alerts.add_rule(obs::remote_ratio_rule(view_options.warn_remote_ratio,
                                           view_options.bad_remote_ratio));

    const trace::Program program = workload_by_name(workload, static_cast<u32>(threads));
    if (tasks) registry.add_program(program);

    monitor::TieredHistory tiers;
    std::vector<monitor::Sample> session;       // every sample, for the export paths
    std::vector<monitor::TaskSample> task_session;  // every per-task sample (--tasks)
    std::vector<monitor::WindowStats> windows;  // one per refresh, for the sparkline
    // Online Phasenprüfer: every sample's footprint feeds the incremental
    // pivot scan, and the view's Phase column flips from ramp-up to compute
    // once a boundary survives the dwell.
    phasen::OnlineDetector phase_detector;

    const auto refresh = [&](bool final_flush) {
      auto batch = sampler.ring().drain();
      if (batch.empty()) return;
      for (const monitor::Sample& sample : batch) {
        tiers.add(sample);
        phase_detector.push(sample);
      }
      session.insert(session.end(), batch.begin(), batch.end());
      windows.push_back(monitor::aggregate(batch));
      view_options.node_alerts = monitor::evaluate_node_alerts(alerts, windows.back());
      view_options.phase_label = phase_detector.phase_label();
      if (tasks) {
        auto task_batch = task_sampler.ring().drain();
        task_session.insert(task_session.end(), task_batch.begin(), task_batch.end());
        proc::DrillScope scope;
        scope.nodes = &windows.back();
        scope.tasks = monitor::aggregate_tasks(task_session);
        scope.registry = &registry;
        drill.refresh(scope);
      } else {
        std::fputs(monitor::render_view(windows.back(), windows, view_options).c_str(), stdout);
      }
      if (health_probe) {
        for (const monitor::Sample& sample : batch) {
          health_probe->set_clock(sample.timestamp);
          health_probe->send_sample(monitor::to_wire(sample));
        }
        health_collector->poll(machine.max_clock());
        render_health_pane(*health_collector, "npat-health — local pipeline");
      }
      if (!final_flush) std::fputs("\n", stdout);
    };
    // Registered *after* the sampler's own hook, so every refresh tick sees
    // the periods it covers already in the ring.
    runner.add_sampler(sampler_config.period * static_cast<Cycles>(refresh_every),
                       [&](Cycles) { refresh(false); });

    const auto result = runner.run(program);
    // Flush the tail past the last periodic tick, then render what's left.
    if (machine.max_clock() > 0) {
      sampler.sample(machine.max_clock());
      if (tasks) task_sampler.sample(machine.max_clock());
    }
    refresh(true);
    if (health_probe) {
      // Close the internal stream and show the converged (ended) state.
      health_probe->send_end(machine.max_clock());
      health_collector->poll(machine.max_clock());
      render_health_pane(*health_collector, "npat-health — local pipeline (final)");
    }

    const monitor::NodeStats total = monitor::aggregate(session).total();
    std::printf(
        "\nrun complete: %s cycles, %llu samples (%llu dropped), "
        "remote ratio %.1f%% over the whole run\n",
        util::si_scaled(static_cast<double>(result.duration)).c_str(),
        static_cast<unsigned long long>(sampler.samples_taken()),
        static_cast<unsigned long long>(sampler.ring().dropped()),
        100.0 * total.remote_ratio());
    if (phase_detector.published()) {
      const auto& event = phase_detector.events().back();
      std::printf(
          "phase boundary: sample %zu at t=%s cycles (published on scan %llu of %llu, "
          "%zu transition event%s)\n",
          phase_detector.published_pivot(),
          util::si_scaled(static_cast<double>(phase_detector.published_pivot_time())).c_str(),
          static_cast<unsigned long long>(event.scan),
          static_cast<unsigned long long>(phase_detector.scans()),
          phase_detector.events().size(), phase_detector.events().size() == 1 ? "" : "s");
    } else {
      std::printf("no phase boundary published (%llu pivot scans)\n",
                  static_cast<unsigned long long>(phase_detector.scans()));
    }
    if (!alerts.transitions().empty()) {
      std::printf("\nalert transitions:\n%s", alerts.render_transitions().c_str());
    }

    // --trust: the counter trust pane — per-event tiers with the deciding
    // kernel, exact rows folded to keep the live view compact.
    if (trust_result) {
      std::puts("");
      std::fputs(validate::render_trust_table(trust_result->report, /*include_exact=*/false)
                     .c_str(),
                 stdout);
    }

    // --advise: the apply-and-rerun pane. The advisor profiles the same
    // workload on the same machine preset, ranks candidate placements from
    // the counter signature, replays the best under a policy override, and
    // prints the before/after verdict right below the live view.
    if (advise) {
      advisor::Advisor adv(sim::preset_by_name(preset));
      advisor::AdvisorOptions advise_options;
      advise_options.baseline.affinity = runner_config.affinity;
      advise_options.sample_period = static_cast<Cycles>(period);
      const auto rec = adv.advise(
          [&] { return workload_by_name(workload, static_cast<u32>(threads)); },
          advise_options);
      std::puts("");
      std::fputs(advisor::render_recommendation(rec).c_str(), stdout);
    }

    if (!csv_path.empty()) {
      const std::string csv = monitor::to_csv(session);
      write_file(csv_path, csv.data(), csv.size());
      std::printf("wrote %s (%s)\n", csv_path.c_str(), util::human_bytes(csv.size()).c_str());
    }
    if (!json_path.empty()) {
      const std::string json = monitor::to_json(session).dump(2);
      write_file(json_path, json.data(), json.size());
      std::printf("wrote %s (%s)\n", json_path.c_str(), util::human_bytes(json.size()).c_str());
    }
    if (!wire_path.empty()) {
      const auto bytes = monitor::encode_stream(session);
      write_file(wire_path, bytes.data(), bytes.size());
      std::printf("wrote %s (%s)\n", wire_path.c_str(), util::human_bytes(bytes.size()).c_str());
    }
    if (!csv_tasks_path.empty()) {
      const std::string csv = monitor::to_csv_tasks(task_session, registry.name_table());
      write_file(csv_tasks_path, csv.data(), csv.size());
      std::printf("wrote %s (%s)\n", csv_tasks_path.c_str(),
                  util::human_bytes(csv.size()).c_str());
    }
    if (!json_tasks_path.empty()) {
      const std::string json = monitor::to_json_tasks(task_session, registry.name_table()).dump(2);
      write_file(json_tasks_path, json.data(), json.size());
      std::printf("wrote %s (%s)\n", json_tasks_path.c_str(),
                  util::human_bytes(json.size()).c_str());
    }
    if (!wire_tasks_path.empty()) {
      const auto bytes = monitor::encode_task_stream(task_session, registry.name_table());
      write_file(wire_tasks_path, bytes.data(), bytes.size());
      std::printf("wrote %s (%s)\n", wire_tasks_path.c_str(),
                  util::human_bytes(bytes.size()).c_str());
    }
    if (!trace_path.empty()) {
      const std::string trace = obs::tracer().chrome_trace().dump(2);
      write_file(trace_path, trace.data(), trace.size());
      std::printf("wrote %s (%s) — open in chrome://tracing or Perfetto\n", trace_path.c_str(),
                  util::human_bytes(trace.size()).c_str());
    }
    write_self_exports(prom_path, metrics_json_path, flight_path);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "npat_top: %s\n", error.what());
    // The fatal-error path still leaves the black box behind.
    if (!flight_path.empty()) introspect::flight().dump(flight_path);
    return 1;
  }
}
