// Example: a `perf stat` command-line clone over the toolkit — run a named
// workload on a chosen machine preset and print counter statistics, with
// optional event selection (by registry name), CPU restriction, and
// repetition statistics. Demonstrates the perf layer exactly as a CLI tool
// would consume it.
//
//   npat_stat --workload=sort --threads=8 --events=cpu.cycles,l1d.replacement
//   npat_stat --workload=scan --preset=dual --cpus=0,1 --reps=5
#include <cstdio>

#include "evsel/collector.hpp"
#include "evsel/report.hpp"
#include "perf/registry.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workloads/cache_scan.hpp"
#include "workloads/kernels.hpp"
#include "workloads/mlc_remote.hpp"
#include "workloads/parallel_sort.hpp"
#include "workloads/rampup_app.hpp"
#include "workloads/sift_like.hpp"

namespace {

using namespace npat;

evsel::ProgramFactory workload_by_name(const std::string& name, u32 threads) {
  if (name == "scan") {
    workloads::CacheScanParams params;
    params.size = 512;
    return [params] { return workloads::cache_scan_program(params); };
  }
  if (name == "scan-strided") {
    workloads::CacheScanParams params;
    params.size = 512;
    params.variant = workloads::ScanVariant::kRowStride;
    return [params] { return workloads::cache_scan_program(params); };
  }
  if (name == "sort") {
    workloads::ParallelSortParams params;
    params.elements = 1 << 15;
    params.threads = threads;
    return [params] { return workloads::parallel_sort_program(params); };
  }
  if (name == "sift") {
    workloads::SiftLikeParams params;
    params.threads = threads;
    params.tile_bytes = 512 * 1024;
    return [params] { return workloads::sift_like_program(params); };
  }
  if (name == "mlc") {
    workloads::MlcParams params;
    params.buffer_bytes = MiB(8);
    params.chase_steps = 100000;
    return [params] { return workloads::mlc_program(params); };
  }
  if (name == "stream") {
    workloads::StreamParams params;
    params.threads = threads;
    return [params] { return workloads::stream_triad_program(params); };
  }
  if (name == "rampup") {
    workloads::RampupParams params;
    return [params] { return workloads::rampup_app_program(params); };
  }
  if (name == "gups") {
    workloads::GupsParams params;
    params.threads = threads;
    return [params] { return workloads::gups_program(params); };
  }
  throw util::CliError("unknown workload: " + name +
                       " (try scan, scan-strided, sort, sift, mlc, stream, rampup, gups)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "scan";
  std::string preset = "dl580";
  std::string events;
  i64 threads = 4;
  i64 repetitions = 3;
  bool list_events = false;
  bool json = false;

  util::Cli cli("npat stat — perf-stat-style counter statistics for a workload");
  cli.add_flag("workload", &workload,
               "scan | scan-strided | sort | sift | mlc | stream | rampup | gups");
  cli.add_flag("preset", &preset, "machine preset (dl580, dual, uma, cube8)");
  cli.add_flag("events", &events, "comma-separated event names; empty = all");
  cli.add_flag("threads", &threads, "worker threads for parallel workloads");
  cli.add_flag("reps", &repetitions, "repetitions");
  cli.add_flag("list-events", &list_events, "list available events and exit");
  cli.add_flag("json", &json, "emit JSON instead of a table");

  try {
    if (const auto rc = cli.parse_main(argc, argv)) return *rc;

    if (list_events) {
      for (const auto& info : sim::all_events()) {
        std::printf("%-34s %-7s %s\n", std::string(info.name).c_str(),
                    std::string(info.category).c_str(),
                    std::string(info.description).substr(0, 80).c_str());
      }
      return 0;
    }

    evsel::CollectOptions options;
    options.repetitions = static_cast<u32>(repetitions);
    if (!events.empty()) {
      for (const auto& name : util::split(events, ',')) {
        const auto event = sim::event_by_name(util::trim(name));
        if (!event) throw util::CliError("unknown event: " + name);
        options.events.push_back(*event);
      }
    }

    evsel::Collector collector(sim::preset_by_name(preset));
    const auto factory = workload_by_name(workload, static_cast<u32>(threads));

    const auto groups = perf::plan_event_groups(
        options.events.empty() ? perf::available_events() : options.events);
    std::fprintf(stderr, "measuring '%s' on %s: %lld reps x %zu register groups...\n",
                 workload.c_str(), preset.c_str(), static_cast<long long>(repetitions),
                 groups.size());

    const auto measurement = collector.measure(workload, factory, options);
    if (json) {
      std::puts(measurement.to_json().dump(2).c_str());
    } else {
      std::fputs(evsel::render_measurement(measurement).c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "npat_stat: %s\n", error.what());
    return 1;
  }
}
