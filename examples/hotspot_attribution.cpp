// Example: counter→code-location attribution (the paper's outlook item).
// The parallel-sort micro-benchmark is profiled region by region: its
// bodies tag the fill, local-sort and merge-tree sections, and the
// SourceProfile aggregates exact counter deltas per region — a
// perf-report-style hotspot table without sampling bias. The cost model
// (indicator-to-cost, §III-B step two) is then trained on a size sweep and
// used to predict the cycles of an unseen configuration.
#include <cstdio>

#include "evsel/collector.hpp"
#include "evsel/cost_model.hpp"
#include "profile/source_profile.hpp"
#include "sim/presets.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "workloads/parallel_sort.hpp"

int main(int argc, char** argv) {
  using namespace npat;

  i64 elements = 1 << 15;
  i64 threads = 4;
  util::Cli cli("Hotspot attribution + indicator-to-cost model demo");
  cli.add_flag("elements", &elements, "array elements (uints)");
  cli.add_flag("threads", &threads, "sort threads");
  if (const auto rc = cli.parse_main(argc, argv)) return *rc;

  // --- per-region hotspot attribution ------------------------------------
  const sim::MachineConfig config = sim::hpe_dl580_gen9(2);
  sim::Machine machine(config);
  os::AddressSpace space(machine.topology());
  trace::Runner runner(machine, space);

  profile::SourceProfile profile;
  profile.register_region(workloads::kSortTagFill, "lcg-fill (Listing 3)");
  profile.register_region(workloads::kSortTagLocalSort, "local merge sort");
  profile.register_region(workloads::kSortTagMergeTree, "parallel merge tree");
  profile.attach(runner);

  workloads::ParallelSortParams params;
  params.elements = static_cast<usize>(elements);
  params.threads = static_cast<u32>(threads);
  runner.run(workloads::parallel_sort_program(params));

  std::fputs(profile
                 .report({sim::Event::kCycles, sim::Event::kInstructions,
                          sim::Event::kBranchMisses, sim::Event::kL1dMiss,
                          sim::Event::kStallCyclesTotal, sim::Event::kAtomicOps})
                 .c_str(),
             stdout);

  // --- two-step strategy, step 2: indicator-to-cost -----------------------
  std::puts("\ntraining an indicator-to-cost model on a size sweep...");
  evsel::Collector collector(config);
  evsel::CollectOptions options;
  options.repetitions = 2;
  // Non-collinear features only (branch misses track instructions 1:1 in a
  // sort, and the barrier atomics are size-independent).
  options.events = {sim::Event::kCycles, sim::Event::kInstructions,
                    sim::Event::kL1dMiss, sim::Event::kStallCyclesMem};

  std::vector<evsel::Measurement> training;
  for (usize size : {4096u, 8192u, 12288u, 16384u, 24576u, 32768u, 49152u, 65536u}) {
    workloads::ParallelSortParams p;
    p.elements = size;
    p.threads = static_cast<u32>(threads);
    training.push_back(collector.measure(
        "n" + std::to_string(size),
        [p] { return workloads::parallel_sort_program(p); }, options));
  }
  const auto model = evsel::CostModel::train(training);
  if (!model) {
    std::puts("model training failed (degenerate inputs)");
    return 1;
  }
  std::fputs(model->describe().c_str(), stdout);

  workloads::ParallelSortParams unseen;
  unseen.elements = 1 << 17;
  unseen.threads = static_cast<u32>(threads);
  const auto target = collector.measure(
      "n131072", [unseen] { return workloads::parallel_sort_program(unseen); }, options);
  const double predicted = model->predict(target);
  const double actual = target.mean(sim::Event::kCycles);
  std::printf("\npredicted cycles for 2x-unseen size: %s, measured: %s (error %+.1f %%)\n",
              util::si_scaled(predicted).c_str(), util::si_scaled(actual).c_str(),
              (predicted / actual - 1.0) * 100.0);
  return 0;
}
