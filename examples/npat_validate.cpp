// Example: the counter trust harness as a CLI — run the refutation kernel
// suite against a machine preset, print the per-kernel check summary and
// the event trust table, and optionally write/verify the committed golden
// counts (the sim-boundary refutation gate) or persist the TrustReport for
// downstream consumers.
//
//   npat_validate --preset=dual
//   npat_validate --preset=dual --only=chase_l3_exact,hitm_pair
//   npat_validate --preset=dual --write-golden=tests/validate/golden_dual.json
//   npat_validate --preset=dual --golden=tests/validate/golden_dual.json
//   npat_validate --preset=dual --report=trust.json --fail-on=suspect
#include <cstdio>

#include "sim/presets.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "validate/harness.hpp"
#include "validate/trust.hpp"

int main(int argc, char** argv) {
  using namespace npat;

  std::string preset = "dual";
  std::string only;
  std::string golden_path;
  std::string write_golden_path;
  std::string report_path;
  std::string fail_on = "refuted";
  bool list = false;
  bool json = false;
  bool all_rows = false;

  util::Cli cli("npat validate — counter trust harness over refutation kernels");
  cli.add_flag("preset", &preset, "machine preset (dl580, dual, uma, cube8)");
  cli.add_flag("only", &only, "comma-separated kernel names; empty = full suite");
  cli.add_flag("golden", &golden_path, "verify counters against this golden file");
  cli.add_flag("write-golden", &write_golden_path, "write golden counters and exit");
  cli.add_flag("report", &report_path, "write the TrustReport JSON here");
  cli.add_flag("fail-on", &fail_on, "exit non-zero at this tier or worse (suspect|refuted)");
  cli.add_flag("list", &list, "list suite kernels and exit");
  cli.add_flag("json", &json, "emit the TrustReport JSON to stdout");
  cli.add_flag("all-rows", &all_rows, "show exact rows in the trust table too");

  try {
    if (const auto rc = cli.parse_main(argc, argv)) return *rc;

    if (list) {
      for (const auto& kernel : validate::kernel_suite()) {
        std::printf("%-20s %s\n", kernel.name.c_str(), kernel.description.c_str());
      }
      return 0;
    }
    if (fail_on != "suspect" && fail_on != "refuted") {
      throw util::CliError("--fail-on must be 'suspect' or 'refuted'");
    }

    validate::SuiteOptions options;
    options.machine_name = preset;
    if (!only.empty()) {
      for (const auto& name : util::split(only, ',')) {
        options.only.push_back(util::trim(name));
      }
    }

    const auto result = validate::run_suite(sim::preset_by_name(preset), options);

    if (!write_golden_path.empty()) {
      util::write_file(write_golden_path,
                       validate::golden_from_result(result).dump(2) + "\n");
      std::fprintf(stderr, "wrote golden counts to %s\n", write_golden_path.c_str());
      return 0;
    }

    if (json) {
      std::puts(result.report.to_json().dump(2).c_str());
    } else {
      std::fputs(validate::render_suite(result).c_str(), stdout);
      std::fputs(validate::render_trust_table(result.report, all_rows).c_str(), stdout);
    }
    if (!report_path.empty()) {
      util::write_file(report_path, result.report.to_json().dump(2) + "\n");
    }

    int exit_code = 0;
    if (!golden_path.empty()) {
      const auto golden = util::Json::parse(util::read_file(golden_path));
      const auto mismatches = validate::diff_golden(result, golden);
      std::fputs(validate::render_golden_mismatches(mismatches).c_str(),
                 mismatches.empty() ? stdout : stderr);
      if (!mismatches.empty()) exit_code = 1;
    }

    const auto threshold = validate::tier_from_name(fail_on);
    if (!result.report.events_at_or_below(threshold).empty()) exit_code = 1;
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "npat_validate: %s\n", error.what());
    return 1;
  }
}
