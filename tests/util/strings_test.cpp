#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace npat::util {
namespace {

TEST(Strings, FormatBasics) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Strings, SplitAndJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "|"), "a|b||c");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(contains_ci("Hello World", "wORLD"));
  EXPECT_FALSE(contains_ci("Hello", "xyz"));
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(u64{0}), "0");
  EXPECT_EQ(with_thousands(u64{999}), "999");
  EXPECT_EQ(with_thousands(u64{1000}), "1,000");
  EXPECT_EQ(with_thousands(u64{1234567}), "1,234,567");
  EXPECT_EQ(with_thousands(i64{-1234}), "-1,234");
}

TEST(Strings, SiScaled) {
  EXPECT_EQ(si_scaled(950.0), "950");
  EXPECT_EQ(si_scaled(1500.0), "1.5 k");
  EXPECT_EQ(si_scaled(3.2e6), "3.2 M");
  EXPECT_EQ(si_scaled(2e9), "2 G");
}

TEST(Strings, PercentDelta) {
  EXPECT_EQ(percent_delta(0.123), "+12.3 %");
  EXPECT_EQ(percent_delta(-0.5), "-50.0 %");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(32ULL << 30), "32 GiB");
}

TEST(Strings, CompactDouble) {
  EXPECT_EQ(compact_double(1.5000, 4), "1.5");
  EXPECT_EQ(compact_double(2.0, 4), "2");
  EXPECT_EQ(compact_double(0.125, 2), "0.12");  // round-half-even
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_center("ab", 5), " ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");  // never truncates
}

TEST(Strings, DisplayWidthCountsCodepoints) {
  EXPECT_EQ(display_width("abc"), 3u);
  EXPECT_EQ(display_width("Δx²"), 3u);  // multibyte UTF-8 counts once
}

}  // namespace
}  // namespace npat::util
