#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace npat::util {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256ss a(42);
  Xoshiro256ss b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256ss a(1);
  Xoshiro256ss b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, BelowIsUnbiasedEnough) {
  Xoshiro256ss rng(11);
  std::array<int, 5> counts{};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) counts[rng.below(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.2, 0.02);
  }
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256ss rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, NormalMomentsRoughlyStandard) {
  Xoshiro256ss rng(17);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(Xoshiro, ExponentialMeanMatchesRate) {
  Xoshiro256ss rng(19);
  double sum = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Xoshiro, GammaMeanMatchesShapeScale) {
  Xoshiro256ss rng(23);
  double sum = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) sum += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 6.0, 0.15);
}

TEST(Xoshiro, GammaShapeBelowOne) {
  Xoshiro256ss rng(29);
  double sum = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.gamma(0.5, 1.0);
    EXPECT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.03);
}

TEST(Xoshiro, ChanceEdgeCases) {
  Xoshiro256ss rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(BsdLcg, MatchesPaperConstants) {
  // Listing 3: lcg = lcg * 1103515245 + 12345, seed 1337.
  BsdLcg lcg(1337);
  const u32 first = lcg();
  EXPECT_EQ(first, 1337u * 1103515245u + 12345u);
  const u32 second = lcg();
  EXPECT_EQ(second, first * 1103515245u + 12345u);
}

TEST(BsdLcg, OverflowWraps) {
  BsdLcg lcg(0xFFFFFFFFu);
  (void)lcg();  // must not UB; u32 wraps by definition
  SUCCEED();
}

TEST(SplitMix, ProducesDistinctStream) {
  u64 state = 0;
  const u64 a = splitmix64(state);
  const u64 b = splitmix64(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace npat::util
