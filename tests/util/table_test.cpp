#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/histogram_render.hpp"

namespace npat::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table table({"name", "value"});
  table.add_row({"cycles", "123"});
  table.add_row({"misses", "7"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("cycles"), std::string::npos);
  EXPECT_NE(out.find("123"), std::string::npos);
  EXPECT_NE(out.find("┌"), std::string::npos);
  EXPECT_NE(out.find("└"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
}

TEST(Table, AlignmentRight) {
  Table table({"v"});
  table.set_align(0, Align::kRight);
  table.add_row({"1"});
  table.add_row({"100"});
  const std::string out = table.render();
  // The short value must be left-padded to the column width.
  EXPECT_NE(out.find("│   1 │"), std::string::npos);
}

TEST(Table, RuleSeparatesSections) {
  Table table({"x"});
  table.add_row({"above"});
  table.add_rule();
  table.add_row({"below"});
  const std::string out = table.render();
  // Four horizontal lines: top, under header, the rule, bottom.
  usize lines = 0;
  usize pos = 0;
  while ((pos = out.find("├", pos)) != std::string::npos) {
    ++lines;
    pos += 1;
  }
  EXPECT_EQ(lines, 2u);  // header separator + explicit rule
}

TEST(Table, StyleEmitsAnsiOnlyWhenEnabled) {
  Table table({"x"});
  table.add_styled_row({Cell{"val", Style::kRed}});
  {
    AnsiGuard guard(false);
    EXPECT_EQ(table.render().find('\x1b'), std::string::npos);
  }
  {
    AnsiGuard guard(true);
    EXPECT_NE(table.render().find("\x1b[31m"), std::string::npos);
  }
}

TEST(Table, TitleShown) {
  Table table({"x"});
  table.set_title("My Title");
  table.add_row({"v"});
  EXPECT_NE(table.render().find("My Title"), std::string::npos);
}

TEST(HistogramRender, BasicBars) {
  std::vector<HistogramBar> bars = {
      {"[0,10)", 10.0, false, false, ""},
      {"[10,20)", 5.0, false, false, "L2"},
  };
  HistogramRenderOptions options;
  options.max_bar_width = 10;
  const std::string out = render_histogram(bars, options);
  EXPECT_NE(out.find("##########"), std::string::npos);  // full-width bar
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_NE(out.find("L2"), std::string::npos);
}

TEST(HistogramRender, UncertainMarked) {
  std::vector<HistogramBar> bars = {{"[0,1)", 3.0, true, false, ""}};
  const std::string out = render_histogram(bars, {});
  EXPECT_NE(out.find("(uncertain)"), std::string::npos);
}

TEST(HistogramRender, TruncationClipsDominatingBar) {
  std::vector<HistogramBar> bars = {
      {"big", 1000.0, false, false, ""},
      {"small", 10.0, false, false, ""},
  };
  HistogramRenderOptions options;
  options.max_bar_width = 20;
  options.truncate_above_fraction = 0.5;
  const std::string out = render_histogram(bars, options);
  EXPECT_NE(out.find("(truncated)"), std::string::npos);
}

TEST(HistogramRender, NanRejected) {
  std::vector<HistogramBar> bars = {{"x", std::nan(""), false, false, ""}};
  EXPECT_THROW(render_histogram(bars, {}), CheckError);
}

}  // namespace
}  // namespace npat::util
