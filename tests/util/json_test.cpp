#include "util/json.hpp"

#include <gtest/gtest.h>

namespace npat::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const auto doc = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  ASSERT_TRUE(doc.is_object());
  const auto& arr = doc.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[2].at("b").as_string(), "c");
  EXPECT_TRUE(doc.at("d").as_object().empty());
}

TEST(Json, StringEscapes) {
  const auto doc = Json::parse(R"("a\"b\\c\nd\tA")");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\nd\tA");
}

TEST(Json, UnicodeEscapeUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(Json, RoundTripCompact) {
  const std::string text = R"({"arr":[1,2.5,"x"],"flag":true,"n":null})";
  const auto doc = Json::parse(text);
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

TEST(Json, DumpPrettyIsReparsable) {
  JsonObject obj;
  obj["list"] = JsonArray{Json(1), Json("two"), Json(false)};
  obj["name"] = "npat";
  const Json doc{std::move(obj)};
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), doc);
}

TEST(Json, IntegersSerializeWithoutExponent) {
  EXPECT_EQ(Json(u64{123456789}).dump(), "123456789");
  EXPECT_EQ(Json(-42).dump(), "-42");
}

TEST(Json, TypedGettersWithDefaults) {
  const auto doc = Json::parse(R"({"s":"v","n":2,"b":true})");
  EXPECT_EQ(doc.get_string("s"), "v");
  EXPECT_EQ(doc.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(doc.get_number("n"), 2.0);
  EXPECT_DOUBLE_EQ(doc.get_number("s", 9.0), 9.0);  // wrong type -> default
  EXPECT_TRUE(doc.get_bool("b"));
}

TEST(Json, AtThrowsOnMissingKey) {
  const auto doc = Json::parse("{}");
  EXPECT_THROW(doc.at("nope"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json::parse("3").as_string(), JsonError);
  EXPECT_THROW(Json::parse("\"x\"").as_array(), JsonError);
}

TEST(Json, WhitespaceTolerant) {
  const auto doc = Json::parse(" \n\t{ \"a\" :\t[ 1 ,\n2 ] } \r\n");
  EXPECT_EQ(doc.at("a").as_array().size(), 2u);
}

}  // namespace
}  // namespace npat::util
