#include "util/channel.hpp"

#include <gtest/gtest.h>

namespace npat::util {
namespace {

std::vector<u8> bytes(std::initializer_list<int> values) {
  std::vector<u8> out;
  for (int v : values) out.push_back(static_cast<u8>(v));
  return out;
}

TEST(Loopback, DeliversBothDirections) {
  auto pair = make_loopback_pair();
  EXPECT_TRUE(pair.a->send(bytes({1, 2, 3})));
  EXPECT_TRUE(pair.b->send(bytes({9})));
  EXPECT_EQ(pair.b->recv(10), bytes({1, 2, 3}));
  EXPECT_EQ(pair.a->recv(10), bytes({9}));
}

TEST(Loopback, RecvRespectsMaxBytes) {
  auto pair = make_loopback_pair();
  pair.a->send(bytes({1, 2, 3, 4}));
  EXPECT_EQ(pair.b->recv(2), bytes({1, 2}));
  EXPECT_EQ(pair.b->recv(10), bytes({3, 4}));
}

TEST(Loopback, EmptyWhenNothingQueued) {
  auto pair = make_loopback_pair();
  EXPECT_TRUE(pair.b->recv(16).empty());
}

TEST(Loopback, SendAfterCloseFails) {
  auto pair = make_loopback_pair();
  pair.a->close();
  EXPECT_FALSE(pair.a->send(bytes({1})));
  EXPECT_TRUE(pair.a->closed());
}

TEST(Loopback, PeerCloseBlocksSend) {
  auto pair = make_loopback_pair();
  pair.b->close();
  EXPECT_FALSE(pair.a->send(bytes({1})));
}

TEST(Loopback, DrainAfterSenderClose) {
  auto pair = make_loopback_pair();
  pair.a->send(bytes({5}));
  pair.a->close();
  EXPECT_EQ(pair.b->recv(10), bytes({5}));  // data sent before close survives
}

TEST(Loopback, PeerCloseVisibleToReader) {
  // EOF detection: the surviving side must see the connection as closed
  // even though it never called close() itself, so a reader can tell
  // "stream over" from "no data yet" after draining.
  auto pair = make_loopback_pair();
  EXPECT_FALSE(pair.b->closed());
  pair.a->close();
  EXPECT_TRUE(pair.a->closed());
  EXPECT_TRUE(pair.b->closed());
}

TEST(FaultyChannel, DropsConfiguredFraction) {
  auto pair = make_loopback_pair();
  FaultyChannel faulty(pair.a, {.drop_probability = 1.0, .corrupt_probability = 0.0,
                                .truncate_to = 0, .seed = 1});
  EXPECT_TRUE(faulty.send(bytes({1, 2})));
  EXPECT_TRUE(pair.b->recv(10).empty());
  EXPECT_EQ(faulty.dropped_sends(), 1u);
}

TEST(FaultyChannel, CorruptsBytes) {
  auto pair = make_loopback_pair();
  FaultyChannel faulty(pair.a, {.drop_probability = 0.0, .corrupt_probability = 1.0,
                                .truncate_to = 0, .seed = 2});
  faulty.send(bytes({0x55, 0x55, 0x55, 0x55}));
  const auto received = pair.b->recv(10);
  ASSERT_EQ(received.size(), 4u);
  int flipped = 0;
  for (u8 b : received) flipped += b != 0x55 ? 1 : 0;
  EXPECT_EQ(flipped, 1);  // exactly one byte flipped per send
  EXPECT_EQ(faulty.corrupted_sends(), 1u);
}

TEST(FaultyChannel, Truncates) {
  auto pair = make_loopback_pair();
  FaultyChannel faulty(pair.a, {.drop_probability = 0.0, .corrupt_probability = 0.0,
                                .truncate_to = 2, .seed = 3});
  faulty.send(bytes({1, 2, 3, 4, 5}));
  EXPECT_EQ(pair.b->recv(10), bytes({1, 2}));
  EXPECT_EQ(faulty.truncated_sends(), 1u);
}

TEST(FaultyChannel, TruncationOnlyCountedWhenItBites) {
  auto pair = make_loopback_pair();
  FaultyChannel faulty(pair.a, {.drop_probability = 0.0, .corrupt_probability = 0.0,
                                .truncate_to = 4, .seed = 3});
  faulty.send(bytes({1, 2}));  // already under the limit: untouched
  EXPECT_EQ(faulty.truncated_sends(), 0u);
  faulty.send(bytes({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(faulty.truncated_sends(), 1u);
  EXPECT_EQ(pair.b->recv(16), bytes({1, 2, 1, 2, 3, 4}));
}

TEST(FaultyChannel, CleanPassThrough) {
  auto pair = make_loopback_pair();
  FaultyChannel faulty(pair.a, {.drop_probability = 0.0, .corrupt_probability = 0.0,
                                .truncate_to = 0, .seed = 4});
  faulty.send(bytes({7, 8}));
  EXPECT_EQ(pair.b->recv(10), bytes({7, 8}));
}

TEST(DisconnectingChannel, PassThroughWhenNeverCut) {
  auto pair = make_loopback_pair();
  DisconnectingChannel channel(pair.a, {.cut_after_sends = 0, .cut_delivery_bytes = 0});
  EXPECT_TRUE(channel.send(bytes({1, 2})));
  EXPECT_TRUE(channel.send(bytes({3})));
  EXPECT_EQ(pair.b->recv(10), bytes({1, 2, 3}));
  EXPECT_FALSE(channel.cut());
  EXPECT_EQ(channel.sends_seen(), 2u);
  EXPECT_EQ(channel.cut_frames(), 0u);
}

TEST(DisconnectingChannel, CutsMidFrameOnTheFatalSend) {
  auto pair = make_loopback_pair();
  DisconnectingChannel channel(pair.a, {.cut_after_sends = 2, .cut_delivery_bytes = 3});
  EXPECT_TRUE(channel.send(bytes({1, 2})));
  // The fatal send is "accepted" (like a write the kernel buffered before
  // the reset) but only a 3-byte prefix reaches the peer.
  EXPECT_TRUE(channel.send(bytes({10, 11, 12, 13, 14})));
  EXPECT_TRUE(channel.cut());
  EXPECT_TRUE(channel.closed());
  EXPECT_EQ(channel.cut_frames(), 1u);
  EXPECT_EQ(pair.b->recv(16), bytes({1, 2, 10, 11, 12}));
  EXPECT_TRUE(pair.b->closed());  // the peer sees EOF after draining
  // Everything after the cut is refused outright.
  EXPECT_FALSE(channel.send(bytes({99})));
  EXPECT_EQ(channel.sends_seen(), 2u);
}

TEST(DisconnectingChannel, CutShorterThanFrameDeliversPrefixOnly) {
  auto pair = make_loopback_pair();
  DisconnectingChannel channel(pair.a, {.cut_after_sends = 1, .cut_delivery_bytes = 100});
  EXPECT_TRUE(channel.send(bytes({1, 2, 3})));
  // Prefix longer than the frame: the whole frame goes through, then EOF.
  EXPECT_EQ(pair.b->recv(10), bytes({1, 2, 3}));
  EXPECT_TRUE(channel.cut());
}

TEST(DisconnectingChannel, StallBuffersAndReleasesInOrder) {
  auto pair = make_loopback_pair();
  DisconnectingChannel channel(pair.a, {.cut_after_sends = 0, .cut_delivery_bytes = 0});
  channel.stall();
  EXPECT_TRUE(channel.send(bytes({1})));
  EXPECT_TRUE(channel.send(bytes({2, 3})));
  EXPECT_EQ(channel.stalled_sends(), 2u);
  EXPECT_TRUE(pair.b->recv(10).empty());  // nothing delivered while stalled
  EXPECT_EQ(channel.release_stall(), 2u);
  EXPECT_EQ(pair.b->recv(10), bytes({1, 2, 3}));  // burst, original order
  // After release the channel delivers immediately again.
  EXPECT_TRUE(channel.send(bytes({4})));
  EXPECT_EQ(pair.b->recv(10), bytes({4}));
}

TEST(DisconnectingChannel, CutInsideStalledBurstDiscardsRemainder) {
  auto pair = make_loopback_pair();
  DisconnectingChannel channel(pair.a, {.cut_after_sends = 2, .cut_delivery_bytes = 1});
  channel.stall();
  EXPECT_TRUE(channel.send(bytes({1})));
  EXPECT_TRUE(channel.send(bytes({2, 3})));
  EXPECT_TRUE(channel.send(bytes({4})));
  EXPECT_TRUE(channel.send(bytes({5})));
  // The flush delivers send 1 whole, cuts inside send 2 (1-byte prefix),
  // and discards sends 3 and 4.
  EXPECT_EQ(channel.release_stall(), 2u);
  EXPECT_TRUE(channel.cut());
  EXPECT_EQ(channel.stall_discards(), 2u);
  EXPECT_EQ(pair.b->recv(10), bytes({1, 2}));
  EXPECT_TRUE(pair.b->closed());
}

}  // namespace
}  // namespace npat::util
