#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace npat::util {
namespace {

TEST(Cli, ParsesTypedFlags) {
  std::string name = "default";
  i64 count = 1;
  double ratio = 0.5;
  bool verbose = false;

  Cli cli("test");
  cli.add_flag("name", &name, "a string");
  cli.add_flag("count", &count, "an int");
  cli.add_flag("ratio", &ratio, "a double");
  cli.add_flag("verbose", &verbose, "a bool");

  const char* argv[] = {"prog", "--name=x", "--count", "42", "--ratio=2.5", "--verbose"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(name, "x");
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(ratio, 2.5);
  EXPECT_TRUE(verbose);
}

TEST(Cli, BoolExplicitValues) {
  bool flag = true;
  Cli cli("test");
  cli.add_flag("flag", &flag, "a bool");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(flag);
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), CliError);
}

TEST(Cli, BadIntegerThrows) {
  i64 v = 0;
  Cli cli("test");
  cli.add_flag("v", &v, "int");
  const char* argv[] = {"prog", "--v=12x"};
  EXPECT_THROW(cli.parse(2, argv), CliError);
}

TEST(Cli, MissingValueThrows) {
  i64 v = 0;
  Cli cli("test");
  cli.add_flag("v", &v, "int");
  const char* argv[] = {"prog", "--v"};
  EXPECT_THROW(cli.parse(2, argv), CliError);
}

TEST(Cli, PositionalCollected) {
  Cli cli("test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(cli.parse(3, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ParseMainContinuesOnCleanParse) {
  i64 v = 0;
  Cli cli("test");
  cli.add_flag("v", &v, "int");
  const char* argv[] = {"prog", "--v=3"};
  EXPECT_EQ(cli.parse_main(2, argv), std::nullopt);
  EXPECT_EQ(v, 3);
}

TEST(Cli, ParseMainExitsZeroOnHelp) {
  Cli cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_EQ(cli.parse_main(2, argv), std::optional<int>(0));
}

TEST(Cli, ParseMainExitsNonZeroOnBadFlags) {
  // The bug this guards against: a malformed flag must not fall through to
  // a successful run (or a clean exit 0) — scripts depend on the status.
  i64 v = 0;
  Cli cli("test");
  cli.add_flag("v", &v, "int");
  const char* unknown[] = {"prog", "--nope"};
  EXPECT_EQ(cli.parse_main(2, unknown), std::optional<int>(2));
  const char* bad_value[] = {"prog", "--v=12x"};
  EXPECT_EQ(cli.parse_main(2, bad_value), std::optional<int>(2));
  const char* missing[] = {"prog", "--v"};
  EXPECT_EQ(cli.parse_main(2, missing), std::optional<int>(2));
}

TEST(Cli, HelpTextListsFlagsAndDefaults) {
  i64 v = 7;
  Cli cli("my tool");
  cli.add_flag("threads", &v, "thread count");
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("my tool"), std::string::npos);
  EXPECT_NE(help.find("--threads"), std::string::npos);
  EXPECT_NE(help.find("default: 7"), std::string::npos);
}

}  // namespace
}  // namespace npat::util
