#include "util/csv.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace npat::util {
namespace {

TEST(Csv, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({std::string("1"), std::string("2")});
  EXPECT_EQ(csv.str(), "a,b\n1,2\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter csv({"text"});
  csv.add_row({std::string("has,comma")});
  csv.add_row({std::string("has\"quote")});
  csv.add_row({std::string("has\nnewline")});
  EXPECT_EQ(csv.str(), "text\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Csv, DoubleRows) {
  CsvWriter csv({"x", "y"});
  csv.add_row(std::vector<double>{1.5, 2.0});
  EXPECT_EQ(csv.str(), "x,y\n1.5,2\n");
}

TEST(Csv, WidthMismatchThrows) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({std::string("only")}), CheckError);
}

TEST(Csv, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter csv({}), CheckError);
}

}  // namespace
}  // namespace npat::util
