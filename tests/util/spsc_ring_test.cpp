#include "util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace npat::util {
namespace {

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full: bounded, never overwrites
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, WrapsAroundTheSlotArray) {
  SpscRing<int> ring(3);
  int out = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ring.try_push(int(i)));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, TransfersEverythingAcrossThreads) {
  // One producer, one consumer, ring much smaller than the item count so
  // both the full-ring (producer blocks) and empty-ring (consumer blocks)
  // paths run; every value must arrive exactly once, in order.
  constexpr int kItems = 20000;
  SpscRing<int> ring(8);
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) received.push_back(ring.pop());
  });
  for (int i = 0; i < kItems; ++i) ring.push(int(i));
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<usize>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(received[static_cast<usize>(i)], i);
}

}  // namespace
}  // namespace npat::util
